"""Table 1 — benchmark sizes and CRG/ODG graph sizes + 2-way edgecuts.

Shape claims checked against the paper:
* every ODG has at least as many nodes as allocation contexts demand and the
  ``create`` workload's ODG is the largest (paper: 210 nodes vs 6–49);
* CRGs are small (tens of nodes at most);
* edgecuts are finite and bounded by total edge weight.
"""

from __future__ import annotations

from bench_utils import write_artifact

from repro.harness.tables import table1
from repro.workloads import TABLE1_ORDER


def test_table1(benchmark, out_dir, stage_cache):
    rows, text = benchmark.pedantic(
        lambda: table1("test", cache=stage_cache), rounds=1, iterations=1
    )
    write_artifact(out_dir, "table1.txt", text)

    by_name = {r["benchmark"]: r for r in rows}
    assert set(by_name) == set(TABLE1_ORDER)
    # CRG small, ODG >= CRG-ish structure
    for r in rows:
        assert 2 <= r["crg_nodes"] <= 40
        assert r["odg_nodes"] >= 3
        assert r["classes"] >= 2
        assert r["methods"] >= r["classes"]
    # create is the object-heaviest workload (paper's standout row)
    create_nodes = by_name["create"]["odg_nodes"]
    assert create_nodes == max(r["odg_nodes"] for r in rows)
