"""Sweep orchestrator bench — the batch layer every scaling experiment
rides on.

Runs a 12-point (workload × partitioner × cluster) grid through
``SweepRunner`` twice against one cache and persists the result table plus
the cache telemetry.  Shape claims:

* within the cold run the cache already shares upstream stages (hits > 0);
* the warm repeat is fully served from the cache and byte-identical;
* every configuration produces a live distributed run (messages flow).
"""

from __future__ import annotations

from bench_utils import write_artifact

from repro.harness.cache import StageCache
from repro.harness.sweep import SweepRunner, sweep_grid

GRID_WORKLOADS = ("bank", "method", "crypt", "heapsort")
GRID_METHODS = ("multilevel", "kl", "roundrobin")


def test_sweep_grid_with_cache(benchmark, out_dir):
    grid = sweep_grid(workloads=GRID_WORKLOADS, methods=GRID_METHODS)
    assert len(grid) == 12
    cache = StageCache()

    cold = benchmark.pedantic(
        lambda: SweepRunner(grid, cache=cache).run(), rounds=1, iterations=1
    )
    warm = SweepRunner(grid, cache=cache).run()

    write_artifact(
        out_dir,
        "sweep.txt",
        "\n".join(
            [cold.table(), "", "cold: " + cold.summary(),
             "warm: " + warm.summary(), cache.summary()]
        ),
    )

    assert cold.cache_hits > 0
    assert warm.cache_misses == 0
    assert warm.table() == cold.table()
    for r in cold.records:
        assert r.speedup_pct > 0 and r.messages >= 1, r.config.label()
