"""Ablation — class-level vs object-level distribution granularity
(DESIGN.md §5.1).

The paper partitions the CRG for actual distribution while building the
finer-grained ODG machinery ("Currently we use the class relation graph
partitioning to distribute the program").  This bench compares the two
granularities end-to-end: plan edgecut, dependent-class count, and the
distributed run's message traffic on the bank workload.
"""

from __future__ import annotations

from bench_utils import write_artifact

from repro.distgen import build_plan, rewrite_program
from repro.harness.pipeline import compile_workload
from repro.runtime.cluster import paper_testbed
from repro.runtime.executor import DistributedExecutor


def _run(granularity: str):
    work = compile_workload("bank", "test")
    plan = build_plan(work.bprogram, 2, granularity=granularity, ubfactor=1.3)
    rewritten, stats = rewrite_program(work.bprogram, plan)
    result = DistributedExecutor(rewritten, plan, paper_testbed()).run()
    return plan, stats, result


def test_granularity_comparison(benchmark, out_dir):
    results = benchmark.pedantic(
        lambda: {g: _run(g) for g in ("class", "object")}, rounds=1, iterations=1
    )
    lines = ["Ablation: distribution granularity (bank workload)"]
    outputs = {}
    for g, (plan, stats, result) in results.items():
        lines.append(
            f"  {g:>6}: edgecut={plan.edgecut:.0f} "
            f"dependent={sorted(plan.dependent_classes)} "
            f"rewrites={stats.total} messages={result.total_messages} "
            f"bytes={result.total_bytes}"
        )
        outputs[g] = result.stdout[-1] if result.stdout else None
    write_artifact(out_dir, "ablation_granularity.txt", "\n".join(lines))

    # both granularities must compute the same program result
    assert outputs["class"] == outputs["object"] is not None
    for g, (plan, stats, result) in results.items():
        assert plan.granularity == g
        assert result.stdout, g
    # object granularity tracks allocation sites, so it has site homes
    assert results["object"][0].site_home
    assert not results["class"][0].site_home
