"""Table 2 — execution-time breakdown of code distribution.

Paper shape: CRG construction dominates ("the static analysis of the class
relations is in the order of seconds ... this process only happens once at
compile-time"); partitioning is ~10 ms scale; ODG construction and rewriting
sit in between and can be adjusted incrementally.  Our absolute numbers are
Python wall-clock, so only the ordering claims are asserted.
"""

from __future__ import annotations

from bench_utils import write_artifact

from repro.harness.pipeline import Pipeline
from repro.harness.tables import table2


def test_table2(benchmark, out_dir, stage_cache):
    rows, text = benchmark.pedantic(
        lambda: table2("test", cache=stage_cache), rounds=1, iterations=1
    )
    write_artifact(out_dir, "table2.txt", text)

    total_crg = sum(r["construct_crg_ms"] for r in rows)
    total_part = sum(r["partition_trg_ms"] for r in rows)
    # CRG construction is the expensive compile-time-only stage
    assert total_crg > 0
    assert total_part > 0
    for r in rows:
        assert r["construct_crg_ms"] >= 0
        assert r["rewrite_ms"] >= 0


def test_partition_is_fast_enough_for_adaptation(benchmark):
    """The paper's argument for adaptive repartitioning rests on partitioning
    being ~10 ms; ours must be of that order too (single benchmark)."""
    pipe = Pipeline("db", "test")
    a = pipe.analyze()
    graph, _ = a.odg.partition_graph()
    from repro.partition import part_graph

    result = benchmark(lambda: part_graph(graph, 2))
    assert result.nparts == 2
