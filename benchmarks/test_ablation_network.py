"""Ablation — interconnect sensitivity (DESIGN.md §5; the paper's §1
motivates deployment from 100 Mb LANs down to constrained wireless devices).

The same distributed crypt run over 1 Gb Ethernet, 100 Mb Ethernet and
802.11b wireless: speedup must degrade monotonically as the link gets worse,
while results stay identical.
"""

from __future__ import annotations

from bench_utils import write_artifact

from repro.harness.pipeline import Pipeline
from repro.runtime.cluster import (
    ClusterSpec,
    NodeSpec,
    ethernet_1g,
    ethernet_100m,
    wireless_80211b,
)

LINKS = [
    ("1G ethernet", ethernet_1g()),
    ("100M ethernet", ethernet_100m()),
    ("802.11b", wireless_80211b()),
]


def _cluster(link) -> ClusterSpec:
    return ClusterSpec(
        nodes=[NodeSpec("service-p3-1700", 1.7e9), NodeSpec("compute-p3-800", 800e6)],
        link=link,
    )


def test_network_sensitivity(benchmark, out_dir):
    pipe = Pipeline("crypt", "bench")

    def run():
        out = []
        for label, link in LINKS:
            s = pipe.speedup(cluster=_cluster(link))
            out.append((label, s["speedup_pct"], s["messages"]))
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: link sensitivity (crypt, 2 nodes)"]
    for label, pct, msgs in rows:
        lines.append(f"  {label:>14}: speedup={pct:7.1f}%  messages={msgs}")
    write_artifact(out_dir, "ablation_network.txt", "\n".join(lines))

    speedups = [pct for _, pct, _ in rows]
    # faster links never hurt
    assert speedups[0] >= speedups[1] >= speedups[2]
    # crypt still wins on the paper's 100M testbed
    assert speedups[1] > 110.0
