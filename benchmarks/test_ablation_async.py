"""Ablation — synchronous vs asynchronous remote writes (DESIGN.md §5.3).

The paper (§4.2) argues message-exchange communication "reveals more
optimization opportunities" than request/response RPC; asynchronous
communication is the first of them.  This bench measures a write-heavy
program under both modes: async writes must cut the makespan while leaving
the result identical (per-link FIFO keeps read-after-write consistent).
"""

from __future__ import annotations

from bench_utils import write_artifact

from repro.bytecode import compile_program
from repro.distgen import rewrite_program
from repro.distgen.plan import DistributionPlan
from repro.lang import analyze, parse_program
from repro.runtime.cluster import ClusterSpec, NodeSpec, ethernet_100m
from repro.runtime.executor import DistributedExecutor

SRC = """
class Sink {
    int last;
    int total;
    void record(int v) { last = v; }
    int sum() { return total; }
}
class M {
    static void main(String[] args) {
        Sink sink = new Sink();
        int i;
        for (i = 0; i < 150; i++) {
            sink.last = i;
        }
        Sys.println("last=" + sink.last);
    }
}
"""


def _run(async_writes: bool):
    ast = parse_program(SRC)
    table = analyze(ast)
    bp = compile_program(ast, table)
    plan = DistributionPlan(
        nparts=2,
        granularity="class",
        class_home={"Sink": 1, "M": 0},
        dependent_classes={"Sink", "M"},
        main_partition=0,
    )
    rewritten, _ = rewrite_program(bp, plan)
    cluster = ClusterSpec(
        nodes=[NodeSpec("a", 1e9), NodeSpec("b", 1e9)], link=ethernet_100m()
    )
    result = DistributedExecutor(
        rewritten, plan, cluster, async_writes=async_writes
    ).run()
    return result


def test_async_writes_cut_makespan(benchmark, out_dir):
    results = benchmark.pedantic(
        lambda: {mode: _run(mode) for mode in (False, True)}, rounds=1, iterations=1
    )
    sync_r, async_r = results[False], results[True]
    lines = [
        "Ablation: synchronous vs asynchronous remote writes",
        f"  sync : makespan={sync_r.makespan_s*1e3:8.3f} ms "
        f"messages={sync_r.total_messages}",
        f"  async: makespan={async_r.makespan_s*1e3:8.3f} ms "
        f"messages={async_r.total_messages}",
        f"  speedup from async writes: "
        f"{sync_r.makespan_s/async_r.makespan_s:.2f}x",
    ]
    write_artifact(out_dir, "ablation_async.txt", "\n".join(lines))

    # identical result (FIFO keeps the final read-after-write consistent)
    assert sync_r.stdout == async_r.stdout == ["last=149"]
    # async drops all the write replies
    assert async_r.total_messages < sync_r.total_messages
    # and that translates into real time on a latency-bound loop
    assert async_r.makespan_s < 0.7 * sync_r.makespan_s
