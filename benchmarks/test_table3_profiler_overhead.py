"""Table 3 — profiler overhead per metric.

Paper shape (their numbers: hot paths 14.05%, dynamic call graph 18.80%,
hot methods 3.98%, method duration 49.34%, method frequency 26.07%, memory
usage 19.39%; average 21.94%):

* instrumented metrics (duration, frequency) cost notably more than sampled
  ones;
* hot methods is the cheapest (single-frame sampling);
* duration > frequency;
* every enabled metric costs at least as much as the disabled baseline.
"""

from __future__ import annotations

from bench_utils import write_artifact

from repro.harness.tables import table3


def test_table3(benchmark, out_dir, stage_cache):
    rows, text = benchmark.pedantic(
        lambda: table3("test", cache=stage_cache), rounds=1, iterations=1
    )
    write_artifact(out_dir, "table3.txt", text)

    totals = {m: sum(r[m] for r in rows) for m in rows[0] if m != "benchmark"}
    base = totals["baseline"]
    overhead = {m: (t - base) / base * 100.0 for m, t in totals.items()}

    # ordering claims from the paper
    assert overhead["method-duration"] > overhead["method-frequency"]
    assert overhead["method-frequency"] > overhead["hot-paths"]
    assert overhead["hot-methods"] <= overhead["hot-paths"]
    assert overhead["hot-methods"] <= overhead["dynamic-call-graph"]
    # hot methods lands in the paper's "very good result" band
    assert 0.0 < overhead["hot-methods"] < 12.0
    # instrumentation is tens of percent, not multiples
    assert 15.0 < overhead["method-duration"] < 120.0
    # everything costs something
    for m, v in overhead.items():
        if m != "baseline":
            assert v >= 0.0
