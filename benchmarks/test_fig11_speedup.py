"""Figure 11 — performance of centralized vs distributed execution.

Paper: "The distributed execution shows comparable or improved performance
(79.2% to 175.2%) with the original sequential execution" on the two-node
testbed (1.7 GHz service node + 800 MHz compute node, 100 Mb Ethernet), the
baseline being sequential execution on the 800 MHz machine.

Shape claims asserted:
* the compute-heavy kernels (crypt, heapsort, moldyn, compress) gain
  (>110%);
* chatty/driver-bound workloads stay at comparable performance (60–110%);
* everything lands within a 50%..250% envelope (the paper's 79%..175%
  up to substrate differences);
* distributed output equals sequential output (checked inside speedup()).
"""

from __future__ import annotations

from bench_utils import write_artifact

from repro.harness.tables import figure11

GAINERS = ("crypt", "heapsort", "moldyn", "compress")
COMPARABLE = ("create", "db")


def test_figure11(benchmark, out_dir, stage_cache):
    rows, text = benchmark.pedantic(
        lambda: figure11("bench", cache=stage_cache), rounds=1, iterations=1
    )
    write_artifact(out_dir, "figure11.txt", text)

    by_name = {r["benchmark"]: r for r in rows}
    for name in GAINERS:
        assert by_name[name]["speedup_pct"] > 110.0, (name, by_name[name])
    for name in COMPARABLE:
        assert 50.0 < by_name[name]["speedup_pct"] < 115.0, (name, by_name[name])
    for r in rows:
        assert 50.0 < r["speedup_pct"] < 250.0, r
    lo = min(r["speedup_pct"] for r in rows)
    hi = max(r["speedup_pct"] for r in rows)
    # the spread straddles the break-even line, like the paper's bar chart
    assert lo < 100.0 < hi
