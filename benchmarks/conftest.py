"""Fixtures for the reproduction benches.

Every bench writes its table/figure artifact under ``benchmarks/out/`` so
the reproduced numbers survive the run; the pytest-benchmark timing table
covers the wall-clock side.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

import pytest

from bench_utils import OUT_DIR


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR
