"""Fixtures for the reproduction benches.

Every bench writes its table/figure artifact under ``benchmarks/out/`` so
the reproduced numbers survive the run; the pytest-benchmark timing table
covers the wall-clock side.

All benches route through one session-scoped stage cache (the
process-default :class:`repro.harness.cache.StageCache`), so a workload is
compiled and analyzed once per session instead of once per bench, and every
bench starts from deterministically seeded RNGs.
"""

from __future__ import annotations

import pathlib
import random
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

import numpy as np
import pytest

from bench_utils import OUT_DIR

from repro.harness.cache import StageCache, default_cache

from repro.testing.seeds import derive_seed

#: one seed for every bench — makes any stochastic helper (synthetic graph
#: generators, sampling profilers) reproducible run to run.  Derived from
#: the documented ``REPRO_TEST_SEED`` knob (``repro.testing.seeds``); with
#: the knob unset this is a fixed constant, so default runs stay stable.
BENCH_SEED = derive_seed("bench")


@pytest.fixture(autouse=True)
def seed_rngs():
    """Deterministically seed the global RNGs before every bench."""
    random.seed(BENCH_SEED)
    np.random.seed(BENCH_SEED % 2**32)
    yield


@pytest.fixture(scope="session")
def stage_cache() -> StageCache:
    """The cache every bench's pipelines share (the process default, so
    benches that construct ``Pipeline`` directly hit it too).  The session
    teardown prints the hit/miss summary under ``-s``."""
    cache = default_cache()
    yield cache
    print()
    print(cache.summary())


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR
