"""Figures 8 & 9 — communication-generating bytecode transformations.

Figure 8: ``account.getSavings()`` becomes an access-typed
``DependentObject.access`` invocation (``ldc INVOKE_METHOD_HASRETURN``,
``ldc "getSavings"`` ... ``invokevirtual DependentObject.access``).

Figure 9: ``new Account(...)`` becomes a DependentObject instantiation
carrying the home-partition number and the class name (our rewriter uses a
static ``create`` factory instead of the figure's constructor form —
documented deviation, DESIGN.md §2).
"""

from __future__ import annotations

from bench_utils import write_artifact

from repro.harness.figures import fig8_fig9


def test_fig8_fig9(benchmark, out_dir):
    listings = benchmark.pedantic(lambda: fig8_fig9("test"), rounds=1, iterations=1)
    text = "\n\n".join(f"--- {k} ---\n{v}" for k, v in listings.items())
    write_artifact(out_dir, "fig8_fig9_rewrite.txt", text)

    before8, after8 = listings["fig8_before"], listings["fig8_after"]
    # before: plain virtual invocations on Account/Bank
    assert "invokevirtual Account." in before8 or "invokevirtual Bank." in before8
    # after: access-typed DependentObject calls (Figure 8's shape)
    assert "invokevirtual DependentObject.access" in after8
    assert 'ldc "' in after8
    assert "pack" in after8

    before9, after9 = listings["fig9_before"], listings["fig9_after"]
    assert "new Account" in before9
    assert "invokespecial Account.<init>" in before9
    # after: no direct allocation; the create factory with home partition +
    # class name (Figure 9's ldc 0 / ldc "Account" payload)
    assert "new Account" not in after9
    assert 'ldc "Account"' in after9
    assert "invokestatic DependentObject.create" in after9
