"""Shared helpers for the reproduction benches."""

from __future__ import annotations

import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def write_artifact(out_dir: pathlib.Path, name: str, text: str) -> None:
    out_dir.mkdir(exist_ok=True)
    (out_dir / name).write_text(text + "\n")
