"""Shared helpers for the reproduction benches."""

from __future__ import annotations

import json
import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: the committed VM-throughput baseline (`repro bench` writes it, the CI
#: bench smoke job gates against it)
BENCH_VM_PATH = pathlib.Path(__file__).parent.parent / "BENCH_vm.json"


def write_artifact(out_dir: pathlib.Path, name: str, text: str) -> None:
    out_dir.mkdir(exist_ok=True)
    (out_dir / name).write_text(text + "\n")


def write_json_artifact(out_dir: pathlib.Path, name: str, doc) -> None:
    out_dir.mkdir(exist_ok=True)
    (out_dir / name).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
