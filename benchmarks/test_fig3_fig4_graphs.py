"""Figures 3 & 4 — CRG and ODG of the bank example in VCG format.

Checks the structural facts the paper calls out: the export edge caused by
``openAccount(Account)``, the import edge caused by ``getCustomer``
returning an Account, the ``*``-summary Account instances created inside
``initializeAccounts``'s loop, and the partition annotations on Figure 4.
"""

from __future__ import annotations

from bench_utils import write_artifact

from repro.harness.figures import fig3_fig4
from repro.harness.pipeline import Pipeline


def test_fig3_fig4_artifacts(benchmark, out_dir):
    crg_vcg, odg_vcg = benchmark.pedantic(lambda: fig3_fig4("test"), rounds=1, iterations=1)
    write_artifact(out_dir, "fig3_crg.vcg", crg_vcg)
    write_artifact(out_dir, "fig4_odg.vcg", odg_vcg)
    assert crg_vcg.startswith("graph: {")
    assert odg_vcg.startswith("graph: {")
    assert 'label: "export"' in crg_vcg
    assert 'label: "import"' in crg_vcg
    assert 'label: "use"' in crg_vcg
    # Figure 4 annotates each object label with its partition number
    assert "[0]" in odg_vcg and "[1]" in odg_vcg
    assert "create" in odg_vcg


def test_bank_relations_match_paper():
    pipe = Pipeline("bank", "test")
    a = pipe.analyze()
    crg = a.crg
    # "The export edge occurs due to the invocation of the openAccount
    #  method on the dynamic Bank class with an Account class as parameter."
    assert crg.has_edge("ST_BankMain", "DT_Bank", "export", "Account")
    # "The import edge occurs due to the getCustomer invocation that returns
    #  a result of Account type."
    assert crg.has_edge("ST_BankMain", "DT_Bank", "import", "Account")
    # summary instance: accounts created inside the initializeAccounts loop
    labels = [obj.label for obj in a.odg.objects]
    assert "*DT_Account" in labels
    assert "1DT_Bank" in labels
    assert any(lbl == "1DT_Account" for lbl in labels)
