"""Ablation — resource weight models on the ODG (DESIGN.md §5.4).

Uniform object weights (the paper's current state) vs the loop-scaled static
heuristic (its stated future work) vs profile-derived weights (the adaptive
repartitioning input): multi-constraint (memory, CPU, battery) balance of
the resulting 2-way partitions.
"""

from __future__ import annotations

from bench_utils import write_artifact

from repro.analysis.resources import STATIC_HEURISTIC, UNIFORM, from_profile
from repro.graph.metrics import imbalance
from repro.harness.pipeline import Pipeline
from repro.harness.tables import run_profiled
from repro.partition import part_graph
from repro.profiler.report import to_resource_inputs


def _partition_with(model, pipe):
    a = pipe.analyze()
    graph, order = a.odg.partition_graph()
    objects_by_uid = {o.uid: o for o in a.objects}
    weighted = model.apply(graph, objects_by_uid, pipe.bprogram)
    result = part_graph(weighted, 2, ubfactor=1.5)
    return weighted, result


def test_resource_models(benchmark, out_dir):
    pipe = Pipeline("bank", "test")

    def run():
        out = {}
        for model in (UNIFORM, STATIC_HEURISTIC, _profiled_model()):
            weighted, result = _partition_with(model, pipe)
            out[model.name] = (
                result.edgecut,
                list(imbalance(weighted, result.parts, 2)),
            )
        return out

    def _profiled_model():
        _, duration_report = run_profiled("bank", "method-duration", "test")
        _, memory_report = run_profiled("bank", "memory-usage", "test")
        cycles, bytes_by = to_resource_inputs(duration_report, memory_report)
        return from_profile(cycles, bytes_by)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: resource models (bank ODG, 2-way)"]
    for name, (cut, imb) in results.items():
        lines.append(
            f"  {name:>16}: edgecut={cut:.0f} imbalance="
            + "/".join(f"{x:.2f}" for x in imb)
        )
    write_artifact(out_dir, "ablation_resources.txt", "\n".join(lines))

    assert set(results) == {"uniform", "static-heuristic", "profiled"}
    for name, (cut, imb) in results.items():
        assert cut >= 0
        assert len(imb) == 3  # memory, cpu, battery constraints
        assert all(x >= 0.99 for x in imb)


def test_profile_feedback_produces_class_weights():
    """The adaptive-repartitioning feedback path: measured durations map to
    per-class CPU weights covering the hot classes."""
    _, duration_report = run_profiled("bank", "method-duration", "test")
    _, memory_report = run_profiled("bank", "memory-usage", "test")
    cycles, bytes_by = to_resource_inputs(duration_report, memory_report)
    assert "Bank" in cycles and "Account" in cycles
    assert cycles["Bank"] > 0
    assert any(v > 0 for v in bytes_by.values())
