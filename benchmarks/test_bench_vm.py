"""VM throughput bench — seeds and guards the interpreter perf trajectory.

Runs the ``repro bench`` engine in its quick (CI smoke) configuration,
writes the result under ``benchmarks/out/`` and asserts the perf_opt
acceptance criteria that are deterministic on any machine:

* the discrete-event simulator processes **>= 5x fewer events** (in
  practice orders of magnitude fewer) with cost batching than with
  per-instruction charging, at identical virtual timing — the engine
  itself refuses to report numbers from a diverged fast path;
* the threaded-code fast path is genuinely faster than the per-step
  reference oracle (a loose wall-clock floor, safe on noisy CI: the
  committed ``BENCH_vm.json`` records the precise >= 3x measurement);
* the compiled tier (superinstructions + trace-compiled hot blocks) is
  genuinely faster again than the fast path (same loose floor; the
  committed baseline records the precise >= 3x compiled-vs-fast ratio);
* the fresh run passes the committed baseline's regression gate.
"""

from __future__ import annotations

from bench_utils import BENCH_VM_PATH, write_json_artifact

from repro.harness.bench import check_regression, load_bench, run_bench


def test_bench_vm(benchmark, out_dir):
    doc = benchmark.pedantic(lambda: run_bench(quick=True), rounds=1, iterations=1)
    write_json_artifact(out_dir, "bench_vm_quick.json", doc)

    for name, w in doc["workloads"].items():
        sim = w["simulator"]
        assert sim["event_reduction"] >= 5.0, (
            f"{name}: cost batching shrank simulator events only "
            f"{sim['event_reduction']:.1f}x"
        )
        it = w["interpreter"]
        assert it["speedup"] > 1.5, (
            f"{name}: fast path only {it['speedup']:.2f}x over the oracle"
        )
        assert it["compiled_vs_fast"] > 1.5, (
            f"{name}: compiled tier only {it['compiled_vs_fast']:.2f}x "
            f"over the fast path"
        )

    if BENCH_VM_PATH.exists():
        committed = load_bench(BENCH_VM_PATH)
        failures = check_regression(doc, committed)
        assert not failures, "; ".join(failures)
