"""Ablation — partitioner quality (DESIGN.md §5.2).

The paper attributes its modest Figure 11 numbers partly to "a suboptimal
naive partitioning".  This bench quantifies the gap: edgecut of the
multilevel scheme vs Kernighan–Lin, spectral, and naive round-robin on every
workload's ODG, plus a synthetic 2-community graph where the optimum is
known.
"""

from __future__ import annotations

import numpy as np

from bench_utils import write_artifact

from repro.graph.wgraph import WeightedGraph
from repro.harness.pipeline import Pipeline
from repro.partition import part_graph
from repro.workloads import TABLE1_ORDER

METHODS = ("multilevel", "kl", "spectral", "roundrobin")


def _community_graph(n_per: int = 30, seed: int = 5) -> WeightedGraph:
    rng = np.random.default_rng(seed)
    g = WeightedGraph(1)
    for i in range(2 * n_per):
        g.add_node(i)
    for c in range(2):
        for u in range(c * n_per, (c + 1) * n_per):
            for v in range(u + 1, (c + 1) * n_per):
                if rng.random() < 0.35:
                    g.add_edge(u, v, 4.0)
    g.add_edge(0, n_per, 1.0)
    g.add_edge(1, n_per + 1, 1.0)
    return g


def test_partitioner_quality_on_workloads(benchmark, out_dir):
    def run():
        rows = []
        for name in TABLE1_ORDER:
            pipe = Pipeline(name, "test")
            a = pipe.analyze()
            graph, _ = a.odg.partition_graph()
            cuts = {
                m: part_graph(graph, 2, method=m).edgecut for m in METHODS
            }
            rows.append((name, cuts))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: 2-way ODG edgecut by partitioner",
             f"{'benchmark':>10} " + " ".join(f"{m:>11}" for m in METHODS)]
    for name, cuts in rows:
        lines.append(
            f"{name:>10} " + " ".join(f"{cuts[m]:11.0f}" for m in METHODS)
        )
    write_artifact(out_dir, "ablation_partitioners.txt", "\n".join(lines))

    for name, cuts in rows:
        # the multilevel scheme is never worse than naive round-robin
        assert cuts["multilevel"] <= cuts["roundrobin"] + 1e-9, (name, cuts)
        # and never worse than KL (it subsumes its refinement)
        assert cuts["multilevel"] <= cuts["kl"] + 1e-9, (name, cuts)


def test_multilevel_finds_planted_cut(benchmark):
    g = _community_graph()
    result = benchmark(lambda: part_graph(g, 2, method="multilevel"))
    assert result.edgecut == 2.0  # the two planted bridge edges
    rr = part_graph(g, 2, method="roundrobin")
    assert rr.edgecut > 50 * result.edgecut
