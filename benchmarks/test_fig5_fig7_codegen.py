"""Figures 5, 6 and 7 — quad listing, AST trees, and retargetable codegen.

Asserts the exact structural facts of the paper's listings: the block layout
``BB0 (ENTRY) → BB2 → BB3 → BB4 → BB1 (EXIT)``, the constant-propagated
comparison ``IFCMP_I IConst: 4, IConst: 2, LE, BB4``, and the per-target
instruction selection of Figure 7 (x86 mov+add vs ARM's single three-operand
add; ``ret eax`` vs ``mov PC, R14``).
"""

from __future__ import annotations

from bench_utils import write_artifact

from repro.harness.figures import fig5, fig6, fig7


def test_fig5_quads(benchmark, out_dir):
    text = benchmark.pedantic(fig5, rounds=1, iterations=1)
    write_artifact(out_dir, "fig5_quads.txt", text)
    assert "BB0 (ENTRY) (in: <none>, out: BB2)" in text
    assert "BB1 (EXIT)" in text
    assert "MOVE_I" in text
    assert "IFCMP_I IConst: 4, IConst: 2, LE, BB4" in text
    assert "RETURN_I" in text


def test_fig6_tree(benchmark, out_dir):
    text = benchmark.pedantic(fig6, rounds=1, iterations=1)
    write_artifact(out_dir, "fig6_tree.txt", text)
    assert "MOVE_I" in text
    assert "ICONST:4" in text
    assert "COND:LE" in text
    assert "RETURN_I" in text


def test_fig7_two_targets(benchmark, out_dir):
    listings = benchmark.pedantic(fig7, rounds=1, iterations=1)
    write_artifact(
        out_dir, "fig7_codegen.txt",
        listings["x86"] + "\n\n" + listings["StrongARM"],
    )
    x86 = listings["x86"]
    arm = listings["StrongARM"]
    # Figure 7 left: x86
    assert "mov eax, 4" in x86
    assert "cmp 4, 2" in x86
    assert "jle BB4" in x86
    assert "ret eax" in x86
    # Figure 7 right: StrongARM
    assert "mov R1, #4" in arm
    assert "cmp #4, #2" in arm
    assert "ble .BB4" in arm
    assert "mov PC, R14" in arm
    # the BURS picked ARM's three-operand add (one instruction) where x86
    # needed mov+add
    assert "add R2, #4, #1" in arm
    assert "add" in x86
