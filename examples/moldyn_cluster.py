"""Distributing a compute-heavy workload over heterogeneous clusters.

The molecular-dynamics kernel (JGF MolDyn) is distributed over:
  1. the paper's testbed (1.7 GHz + 800 MHz, 100 Mb Ethernet),
  2. a three-node cluster with a fast server and two slow edge devices,
  3. the same testbed over an 802.11b wireless link (the mobile-device
     scenario the paper's introduction motivates).

For each configuration the script reports placement, message traffic and
speedup against sequential execution on the slowest machine.

Run:  python examples/moldyn_cluster.py
"""

from repro.harness.pipeline import Pipeline
from repro.runtime.cluster import (
    ClusterSpec,
    NodeSpec,
    ethernet_100m,
    wireless_80211b,
)


def run_config(pipe: Pipeline, label: str, cluster: ClusterSpec, nparts: int) -> None:
    baseline_node = min(cluster.nodes, key=lambda n: n.cpu_hz)
    seq = pipe.run_sequential(baseline_node)
    dist, plan, _ = pipe.run_distributed(nparts, cluster)
    assert dist.stdout[-1] == seq.stdout[-1], "distribution changed the answer!"
    print(f"== {label}")
    print(f"   placement: {plan.class_home} (main on node {plan.main_partition})")
    print(f"   sequential on {baseline_node.name}: {seq.exec_time_s*1e3:8.2f} ms")
    print(f"   distributed on {nparts} nodes:      {dist.makespan_s*1e3:8.2f} ms")
    print(f"   messages: {dist.total_messages}, bytes: {dist.total_bytes}")
    print(f"   speedup: {100*seq.exec_time_s/dist.makespan_s:.1f}%\n")


def main() -> None:
    pipe = Pipeline("moldyn", "bench")

    run_config(
        pipe,
        "paper testbed: P3 1.7 GHz + P3 800 MHz, 100 Mb Ethernet",
        ClusterSpec(
            nodes=[NodeSpec("service-p3-1700", 1.7e9), NodeSpec("compute-p3-800", 800e6)],
            link=ethernet_100m(),
        ),
        nparts=2,
    )
    run_config(
        pipe,
        "edge deployment: 2.4 GHz server + two 400 MHz devices",
        ClusterSpec(
            nodes=[
                NodeSpec("server", 2.4e9),
                NodeSpec("device-a", 400e6),
                NodeSpec("device-b", 400e6),
            ],
            link=ethernet_100m(),
        ),
        nparts=3,
    )
    run_config(
        pipe,
        "mobile scenario: same two machines over 802.11b wireless",
        ClusterSpec(
            nodes=[NodeSpec("service-p3-1700", 1.7e9), NodeSpec("compute-p3-800", 800e6)],
            link=wireless_80211b(),
        ),
        nparts=2,
    )


if __name__ == "__main__":
    main()
