"""Profile-guided repartitioning — the feedback loop the paper plans.

Section 6 of the paper ends: "eventually, be able to redistribute the
program according to the actual access patterns and resource requirements".
This script runs the loop once, offline:

  1. profile the db workload (method durations + memory allocation),
  2. convert measurements into per-class resource weights,
  3. re-partition the ODG under uniform vs profiled weights,
  4. compare edgecut and per-constraint balance.

Run:  python examples/profile_guided_repartition.py
"""

from repro.analysis.resources import UNIFORM, from_profile
from repro.graph.metrics import imbalance
from repro.harness.pipeline import Pipeline
from repro.harness.tables import run_profiled
from repro.partition import part_graph
from repro.profiler.report import to_resource_inputs


def main() -> None:
    name = "db"
    pipe = Pipeline(name, "test")

    # 1. profile
    _, duration_report = run_profiled(name, "method-duration", "test")
    _, memory_report = run_profiled(name, "memory-usage", "test")
    print("hot methods by measured duration:")
    for method, cycles in duration_report.top("durations_cycles", 5):
        print(f"  {method:30s} {cycles:>10} cycles")
    print("\nallocation profile:")
    for kind, total in memory_report.top("bytes_by_kind", 5):
        print(f"  {kind:30s} {total:>10} bytes")

    # 2. measured weights
    cycles_by_class, bytes_by_class = to_resource_inputs(
        duration_report, memory_report
    )
    profiled_model = from_profile(cycles_by_class, bytes_by_class)

    # 3 + 4. repartition under both models
    analysis = pipe.analyze()
    graph, _ = analysis.odg.partition_graph()
    objects_by_uid = {o.uid: o for o in analysis.objects}
    print("\nmodel              edgecut   imbalance (mem/cpu/battery)")
    for model in (UNIFORM, profiled_model):
        weighted = model.apply(graph, objects_by_uid, pipe.bprogram)
        result = part_graph(weighted, 2, ubfactor=1.5)
        imb = imbalance(weighted, result.parts, 2)
        print(
            f"{model.name:18s} {result.edgecut:7.0f}   "
            + " / ".join(f"{x:.2f}" for x in imb)
        )
    print(
        "\nThe profiled model balances *measured* load: the partition is "
        "driven by where cycles and bytes actually went, which is exactly "
        "the input the paper's adaptive repartitioning needs."
    )


if __name__ == "__main__":
    main()
