"""Public-API quickstart: one workload through ``repro.api.Experiment``.

Drives the paper's IDEA-cipher benchmark (``crypt``) through the typed
Experiment façade twice — once on the deterministic discrete-event
simulator, once on the real thread backend — showing the composable stage
methods, the event hooks, the shared stage cache, and the structured JSON
report.

Run:  PYTHONPATH=src python examples/api_quickstart.py
"""

from repro.api import Experiment, ExperimentConfig, StageRecorder


def main() -> None:
    # --- configs are typed, validated, and JSON round-trippable -------------
    config = ExperimentConfig.from_options("crypt", method="multilevel", nparts=2)
    print(f"experiment: {config.label()}")
    assert ExperimentConfig.from_json(config.to_json()) == config

    # --- composable stages: compile -> analyze -> partition -> plan ---------
    exp = Experiment(config)
    exp.subscribe(
        lambda e: print(
            f"  [{e.phase:>5}] {e.stage}"
            + (
                f" ({e.elapsed_s * 1e3:.2f} ms, cache_hit={e.cache_hit})"
                if e.phase == "end"
                else ""
            )
        )
    )
    work = exp.compile()
    print(f"compiled {work.num_classes} classes, {work.num_methods} methods")
    analysis = exp.analyze()
    print(f"CRG {analysis.crg.num_nodes} nodes / ODG {analysis.odg.num_nodes} objects")
    partition = exp.partition()
    print(f"placement partition edgecut: {partition.edgecut:.0f}")
    plan = exp.plan()
    print(f"plan: {plan.nparts} homes, main on node {plan.main_partition}")

    # --- run on the simulator (virtual time) --------------------------------
    sim = exp.run()
    print(f"\nsim backend   : {sim.speedup_pct:7.1f}% speedup, "
          f"{sim.messages} messages, {sim.bytes} bytes")

    # --- same experiment on the thread backend (real wall clock) ------------
    # the stage cache is shared, so compile/analyze/plan are all hits here
    threaded = Experiment.from_options("crypt", backend="thread")
    recorder = StageRecorder()
    threaded.subscribe(recorder)
    thr = threaded.run()
    hits = [t.stage for t in recorder.stages if t.cache_hit]
    print(f"thread backend: {thr.speedup_pct:7.1f}% speedup "
          f"(wall-clock; cached stages: {', '.join(hits)})")

    # both backends must print byte-identical program output
    assert thr.stdout == sim.stdout, "backend outputs diverged!"
    print("program output byte-identical across backends ✓")

    # --- the structured report is the machine-readable trajectory -----------
    print("\nreport (sim):")
    print(sim.report.to_json(indent=2))


if __name__ == "__main__":
    main()
