"""Retargetable code generation tour (paper Figures 5, 6 and 7).

Lowers the paper's ``Example.ex`` method to quads, prints the quad listing
in the Figure 5 format, renders the operator trees of Figure 6, and emits
x86 and StrongARM assembly through the BURS back-ends of Figure 7.

Run:  python examples/codegen_tour.py
"""

from repro.harness.figures import FIG5_SOURCE, fig5, fig6, fig7


def main() -> None:
    print("Java (MJ) source:")
    print(FIG5_SOURCE)
    print("Quad IR (Figure 5):")
    print(fig5())
    print("\nAbstract syntax trees over the quads (Figure 6):")
    print(fig6())
    print("\nEmitted machine code (Figure 7):")
    listings = fig7()
    print(listings["x86"])
    print()
    print(listings["StrongARM"])


if __name__ == "__main__":
    main()
