"""Quickstart: the paper's Bank/Account running example, end to end.

Takes the monolithic MJ program of Figure 2 through the whole
infrastructure of Figure 1:

  source -> bytecode -> RTA call graph -> class relation graph (Fig. 3)
         -> object dependence graph (Fig. 4) -> 2-way partitioning
         -> communication rewriting (Figs. 8/9) -> centralized AND
            distributed execution on the paper's simulated testbed.

Run:  python examples/quickstart.py
"""

from repro.bytecode import disassemble_method
from repro.harness.pipeline import Pipeline
from repro.runtime.cluster import paper_testbed


def main() -> None:
    pipe = Pipeline("bank", "test")
    print(f"compiled {pipe.work.num_classes} classes, "
          f"{pipe.work.num_methods} methods, {pipe.work.size_kb:.1f} KB\n")

    # --- dependence analysis -------------------------------------------------
    analysis = pipe.analyze(nparts=2)
    crg = analysis.crg
    print(f"class relation graph: {crg.num_nodes} nodes, {crg.num_edges} edges")
    for edge in crg.edges():
        label = f"[{edge.label}]" if edge.label else ""
        print(f"  {edge.src} --{edge.kind}{label}--> {edge.dst} (x{edge.count})")

    odg = analysis.odg
    print(f"\nobject dependence graph: {odg.num_nodes} objects, "
          f"{odg.num_edges} relations")
    for obj in odg.objects:
        print(f"  {obj.label:15s} from {obj.uid}")

    # --- partitioning ---------------------------------------------------------
    print(f"\n2-way ODG partition edgecut: {analysis.odg_partition.edgecut:.0f}")

    # --- communication generation ---------------------------------------------
    # force a genuine 2-way split for demonstration (the cost model would
    # co-locate this small, chatty example otherwise)
    from repro.distgen import build_plan

    plan = build_plan(pipe.bprogram, 2, force_distribution=True, pin_main_to=1)
    rewritten, stats, _ = pipe.rewrite(plan)
    print(f"\ndistribution plan: homes={plan.class_home}, "
          f"dependent={sorted(plan.dependent_classes)}")
    print(f"rewrites: {stats.instantiations} instantiations, "
          f"{stats.invocations} invocations, "
          f"{stats.field_gets + stats.field_sets} field accesses "
          f"({stats.this_peepholes} kept direct via 'this')")
    if plan.dependent_classes:
        print("\ntransformed Bank.withdraw:")
        print(disassemble_method(rewritten.classes["Bank"].methods["withdraw"]))

    # --- execution --------------------------------------------------------------
    seq = pipe.run_sequential()
    print(f"\ncentralized (800 MHz): {seq.exec_time_s * 1e3:.3f} virtual ms "
          f"-> {seq.stdout}")
    from repro.runtime.executor import DistributedExecutor

    dist = DistributedExecutor(rewritten, plan, paper_testbed()).run()
    print(f"distributed (2 nodes): {dist.makespan_s * 1e3:.3f} virtual ms, "
          f"{dist.total_messages} messages, {dist.total_bytes} bytes "
          f"-> {dist.stdout}")
    print(f"speedup: {100 * seq.exec_time_s / dist.makespan_s:.1f}%")
    assert dist.stdout[-1] == seq.stdout[-1]


if __name__ == "__main__":
    main()
