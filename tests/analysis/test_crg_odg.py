"""Class relation graph + object dependence graph tests, checked against the
paper's §2 worked example."""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

from helpers import compile_mj_raw

from repro.analysis import (
    build_crg,
    build_odg,
    compute_object_set,
    rapid_type_analysis,
)

BANKISH = """
class Account {
    int savings;
    Account(int savings) { this.savings = savings; }
    int getSavings() { return savings; }
}
class Bank {
    Vector accounts;
    Bank(int n) {
        accounts = new Vector();
        int i = 0;
        while (i < n) {
            accounts.add(new Account(i));
            i++;
        }
    }
    void openAccount(Account a) { accounts.add(a); }
    Account getCustomer(int i) { return (Account) accounts.get(i); }
}
class M {
    static void main(String[] args) {
        Bank bank = new Bank(10);
        Account extra = new Account(99);
        bank.openAccount(extra);
        Account got = bank.getCustomer(0);
        Sys.println(got.getSavings());
    }
}
"""


def analysis_of(src=BANKISH):
    bp, _ = compile_mj_raw(src)
    cg = rapid_type_analysis(bp)
    crg = build_crg(cg)
    objects = compute_object_set(cg)
    odg = build_odg(cg, crg, objects)
    return bp, cg, crg, objects, odg


def test_crg_has_static_and_dynamic_parts():
    _, _, crg, _, _ = analysis_of()
    assert "ST_M" in crg.nodes
    assert "DT_Bank" in crg.nodes
    assert "DT_Account" in crg.nodes


def test_crg_use_edges():
    _, _, crg, _, _ = analysis_of()
    assert crg.has_edge("ST_M", "DT_Bank", "use")
    assert crg.has_edge("ST_M", "DT_Account", "use")
    assert crg.has_edge("DT_Bank", "DT_Account", "use")


def test_crg_export_edge_from_parameter():
    # openAccount(Account) exports Account from M to Bank (paper Fig. 3)
    _, _, crg, _, _ = analysis_of()
    assert crg.has_edge("ST_M", "DT_Bank", "export", "Account")


def test_crg_import_edge_from_return():
    # getCustomer returning Account imports Account from Bank (paper Fig. 3)
    _, _, crg, _, _ = analysis_of()
    assert crg.has_edge("ST_M", "DT_Bank", "import", "Account")


def test_builtins_excluded_from_crg():
    _, _, crg, _, _ = analysis_of()
    assert not any("Vector" in str(n) for n in crg.nodes)
    assert not any("Sys" in str(n) for n in crg.nodes)


def test_object_set_multiplicities():
    _, _, _, objects, _ = analysis_of()
    labels = sorted(o.label for o in objects)
    # loop-created accounts are summary instances
    assert "*DT_Account" in labels
    # main's bank and extra account are single instances
    assert "1DT_Bank" in labels
    assert "1DT_Account" in labels
    # static part of M is a pseudo-object
    assert "1ST_M" in labels
    # the Vector created in Bank's ctor is an object too (Fig. 4 shows it)
    assert any("Vector" in o.label for o in objects)


def test_object_in_multi_executed_method_is_summary():
    src = """
    class Node { Node() { } }
    class Factory { Node make() { return new Node(); } }
    class M {
        static void main(String[] args) {
            Factory f = new Factory();
            int i;
            for (i = 0; i < 3; i++) { Node n = f.make(); }
        }
    }
    """
    _, _, _, objects, _ = analysis_of(src)
    node_objs = [o for o in objects if o.class_name == "Node"]
    assert node_objs and all(o.summary for o in node_objs)


def test_odg_create_edges():
    _, _, _, objects, odg = analysis_of()
    creates = {(odg.nodes[e.src], odg.nodes[e.dst]) for e in odg.edges("create")}
    assert ("1ST_M", "1DT_Bank") in creates
    assert ("1ST_M", "1DT_Account") in creates
    assert ("1DT_Bank", "*DT_Account") in creates


def test_odg_export_propagates_reference():
    # M exports 'extra' to Bank via openAccount => Bank references/uses it
    _, _, _, objects, odg = analysis_of()
    pairs = {(odg.nodes[e.src], odg.nodes[e.dst]) for e in odg.edges()}
    assert ("1DT_Bank", "1DT_Account") in pairs


def test_odg_use_edges_follow_class_use():
    _, _, _, _, odg = analysis_of()
    uses = {(odg.nodes[e.src], odg.nodes[e.dst]) for e in odg.edges("use")}
    assert ("1DT_Bank", "*DT_Account") in uses
    assert ("1ST_M", "1DT_Bank") in uses


def test_reference_relation_kept_but_redundant():
    _, _, _, _, odg = analysis_of()
    # the partition graph ignores 'reference' edges (paper: "we can safely
    # abandon it")
    g, order = odg.partition_graph()
    for e in odg.edges("reference"):
        pass  # existence is fine
    kinds_in_partition_graph = {"use", "create"}
    total = sum(
        1 for e in odg.edges() if e.kind in kinds_in_partition_graph and e.src != e.dst
    )
    assert g.num_edges <= total  # merged directions can only shrink


def test_odg_fixpoint_terminates_on_cycles():
    src = """
    class A { B partner; void setB(B b) { partner = b; } }
    class B { A partner; void setA(A a) { partner = a; } }
    class M {
        static void main(String[] args) {
            A a = new A();
            B b = new B();
            a.setB(b);
            b.setA(a);
        }
    }
    """
    _, _, _, objects, odg = analysis_of(src)
    pairs = {(odg.nodes[e.src], odg.nodes[e.dst]) for e in odg.edges()}
    assert ("1DT_A", "1DT_B") in pairs
    assert ("1DT_B", "1DT_A") in pairs


def test_edge_volumes_positive():
    _, _, crg, _, odg = analysis_of()
    for e in crg.edges("use"):
        assert e.volume > 0
        assert e.count >= 1


def test_vcg_export_well_formed():
    _, _, crg, _, odg = analysis_of()
    vcg = crg.to_vcg("test")
    assert vcg.startswith("graph: {") and vcg.endswith("}")
    assert vcg.count("node:") == crg.num_nodes
