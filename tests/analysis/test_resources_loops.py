"""Resource model + loop analysis tests."""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

from helpers import compile_mj_raw

from repro.analysis import (
    STATIC_HEURISTIC,
    UNIFORM,
    compute_object_set,
    rapid_type_analysis,
)
from repro.analysis.loops import frequency_factor, loop_depth_per_index
from repro.analysis.resources import NCON, from_profile


SRC = """
class Small { int a; }
class Big {
    int a; int b; int c; int d; int e;
    void spin() {
        int i;
        for (i = 0; i < 10; i++) {
            int j;
            for (j = 0; j < 10; j++) { a = a + 1; }
        }
    }
}
class M {
    static void main(String[] args) {
        Small s = new Small();
        Big b = new Big();
        b.spin();
        int i;
        for (i = 0; i < 5; i++) { Small t = new Small(); }
    }
}
"""


def objects_and_program():
    bp, _ = compile_mj_raw(SRC)
    cg = rapid_type_analysis(bp)
    return compute_object_set(cg), bp


def test_uniform_model_is_all_ones():
    objects, bp = objects_and_program()
    for obj in objects:
        assert UNIFORM.weights_for(obj, bp) == [1.0, 1.0, 1.0]


def test_heuristic_memory_scales_with_fields():
    objects, bp = objects_and_program()
    by_label = {o.label: o for o in objects}
    small = [o for o in objects if o.class_name == "Small" and not o.summary][0]
    big = [o for o in objects if o.class_name == "Big"][0]
    w_small = STATIC_HEURISTIC.weights_for(small, bp)
    w_big = STATIC_HEURISTIC.weights_for(big, bp)
    assert w_big[0] > w_small[0]   # more fields -> more memory
    assert w_big[1] > w_small[1]   # loops in spin() -> more cpu


def test_heuristic_summary_objects_heavier():
    objects, bp = objects_and_program()
    single = [o for o in objects if o.class_name == "Small" and not o.summary][0]
    summary = [o for o in objects if o.class_name == "Small" and o.summary][0]
    w1 = STATIC_HEURISTIC.weights_for(single, bp)
    w2 = STATIC_HEURISTIC.weights_for(summary, bp)
    assert w2[0] > w1[0] and w2[1] > w1[1]


def test_profiled_model_uses_measurements():
    objects, bp = objects_and_program()
    model = from_profile({"Big": 5000.0}, {"Big": 4096.0})
    big = [o for o in objects if o.class_name == "Big"][0]
    weights = model.weights_for(big, bp)
    assert weights[0] == 4096.0
    assert weights[1] == 5000.0
    assert len(weights) == NCON


def test_loop_depth_per_index():
    bp, _ = compile_mj_raw(SRC)
    spin = bp.classes["Big"].methods["spin"]
    depths = loop_depth_per_index(spin)
    assert max(depths) >= 2       # nested loops
    assert depths[0] == 0          # prologue before the loops


def test_frequency_factor_monotone_and_capped():
    assert frequency_factor(0) == 1.0
    assert frequency_factor(1) > 1.0
    assert frequency_factor(2) > frequency_factor(1)
    assert frequency_factor(10) == frequency_factor(3)  # capped


def test_apply_produces_ncon_graph():
    from repro.analysis import build_crg, build_odg

    bp, _ = compile_mj_raw(SRC)
    cg = rapid_type_analysis(bp)
    crg = build_crg(cg)
    objects = compute_object_set(cg)
    odg = build_odg(cg, crg, objects)
    graph, order = odg.partition_graph()
    weighted = STATIC_HEURISTIC.apply(graph, {o.uid: o for o in objects}, bp)
    assert weighted.ncon == NCON
    assert weighted.num_nodes == graph.num_nodes
    assert weighted.num_edges == graph.num_edges
    vw = weighted.vwgts()
    assert (vw > 0).all()
