"""Rapid Type Analysis tests."""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

import pytest

from helpers import compile_mj_raw

from repro.analysis import rapid_type_analysis
from repro.errors import AnalysisError


def cg_of(src: str):
    bp, _ = compile_mj_raw(src)
    return rapid_type_analysis(bp)


def test_main_is_reachable():
    cg = cg_of("class M { static void main(String[] a) { } }")
    assert "M.main" in cg.reachable


def test_uncalled_method_not_reachable():
    cg = cg_of("""
    class A { void used() { } void unused() { } }
    class M { static void main(String[] a) { new A().used(); } }
    """)
    assert "A.used" in cg.reachable
    assert "A.unused" not in cg.reachable


def test_instantiated_types_tracked():
    cg = cg_of("""
    class A { }
    class B { }
    class M { static void main(String[] a) { A x = new A(); } }
    """)
    assert "A" in cg.instantiated
    assert "B" not in cg.instantiated


def test_virtual_call_resolved_only_against_instantiated_types():
    cg = cg_of("""
    class Base { void f() { } }
    class Sub1 extends Base { void f() { } }
    class Sub2 extends Base { void f() { } }
    class M {
        static void main(String[] a) {
            Base b = new Sub1();
            b.f();
        }
    }
    """)
    callees = cg.callees("M.main")
    assert "Sub1.f" in callees
    assert "Sub2.f" not in callees  # never instantiated
    assert "Base.f" not in callees


def test_inherited_method_resolves_to_declaring_class():
    cg = cg_of("""
    class Base { void f() { } }
    class Sub extends Base { }
    class M { static void main(String[] a) { new Sub().f(); } }
    """)
    assert "Base.f" in cg.callees("M.main")


def test_transitive_reachability():
    cg = cg_of("""
    class A { void f(B b) { b.g(); } }
    class B { void g() { h(); } void h() { } }
    class M { static void main(String[] a) { new A().f(new B()); } }
    """)
    for q in ("A.f", "B.g", "B.h"):
        assert q in cg.reachable


def test_recursion_handled():
    cg = cg_of("""
    class M {
        static int f(int n) { if (n == 0) { return 0; } return f(n - 1); }
        static void main(String[] a) { f(3); }
    }
    """)
    assert ("M.f", 3) in cg.edges["M.f"] or any(
        callee == "M.f" for callee, _ in cg.edges["M.f"]
    )


def test_clinit_always_reachable():
    cg = cg_of("""
    class Config { static int x = 5; }
    class M { static void main(String[] a) { } }
    """)
    assert "Config.<clinit>" in cg.reachable


def test_ctor_reachable_through_new():
    cg = cg_of("""
    class A { A() { helper(); } void helper() { } }
    class M { static void main(String[] a) { new A(); } }
    """)
    assert "A.<init>" in cg.reachable
    assert "A.helper" in cg.reachable


def test_call_sites_of():
    cg = cg_of("""
    class A { void f() { } }
    class M { static void main(String[] a) { A x = new A(); x.f(); x.f(); } }
    """)
    sites = cg.call_sites_of("A.f")
    assert len(sites) == 2
    assert all(caller == "M.main" for caller, _ in sites)


def test_entry_required():
    bp, _ = compile_mj_raw("class A { void f() { } }")
    with pytest.raises(AnalysisError):
        rapid_type_analysis(bp)
    cg = rapid_type_analysis(bp, entry="A.f")
    assert "A.f" in cg.reachable
