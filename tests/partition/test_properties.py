"""Property-based ``part_graph`` tests over random weighted graphs.

Three families (ISSUE satellite):

* assignment totality — every vertex lands in exactly one partition;
* metric honesty — the reported edgecut/imbalance equal recomputation
  via :mod:`repro.graph.metrics` (checked through
  :meth:`PartitionResult.validate`);
* tolerance — in the exhaustive-bisection regime (the CRG/ODG sizes the
  paper actually partitions) a feasible balance constraint is respected.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.metrics import edgecut, imbalance
from repro.graph.wgraph import WeightedGraph
from repro.partition import part_graph
from repro.partition.api import METHODS, part_config_key


def random_graph(n: int, seed: int, p: float = 0.35, unit: bool = False):
    rng = np.random.default_rng(seed)
    g = WeightedGraph(1)
    for i in range(n):
        g.add_node(i, [1.0] if unit else [float(rng.integers(1, 4))])
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v, float(rng.integers(1, 6)))
    return g


@settings(max_examples=30, deadline=None, derandomize=True)
@given(
    n=st.integers(min_value=2, max_value=28),
    seed=st.integers(min_value=0, max_value=9999),
    k=st.integers(min_value=1, max_value=5),
)
def test_every_vertex_in_exactly_one_partition(n, seed, k):
    g = random_graph(n, seed)
    for method in METHODS:
        result = part_graph(g, k, method=method)
        assert len(result.parts) == n
        groups = result.groups()
        assert len(groups) == result.nparts
        # disjoint cover: each vertex appears in exactly one group
        flat = sorted(v for grp in groups for v in grp)
        assert flat == list(range(n))


@settings(max_examples=30, deadline=None, derandomize=True)
@given(
    n=st.integers(min_value=0, max_value=24),
    seed=st.integers(min_value=0, max_value=9999),
    k=st.integers(min_value=1, max_value=4),
)
def test_reported_metrics_match_recomputation(n, seed, k):
    g = random_graph(n, seed)
    for method in METHODS:
        result = part_graph(g, k, method=method)
        result.validate(g)  # raises on any metric mismatch
        assert result.edgecut == edgecut(g, result.parts)
        if n:
            recomputed = imbalance(g, result.parts, result.nparts)
            assert np.allclose(result.imbalance, recomputed)


@settings(max_examples=40, deadline=None, derandomize=True)
@given(
    half=st.integers(min_value=2, max_value=7),
    seed=st.integers(min_value=0, max_value=9999),
    ub=st.sampled_from([1.1, 1.3, 1.5]),
)
def test_multilevel_respects_tolerance_when_feasible(half, seed, ub):
    """Unit weights and even n make a perfectly balanced bisection feasible,
    so the multilevel scheme (exhaustive at these CRG/ODG-like sizes) must
    return a partition within the requested tolerance."""
    n = 2 * half
    g = random_graph(n, seed, p=0.5, unit=True)
    result = part_graph(g, 2, method="multilevel", ubfactor=ub)
    imb = max(imbalance(g, result.parts, 2))
    assert imb <= ub + 1e-6, (n, seed, ub, imb)


@settings(max_examples=20, deadline=None, derandomize=True)
@given(seed=st.integers(min_value=0, max_value=9999))
def test_multilevel_tolerance_weighted_feasible(seed):
    """Weighted variant: the tolerance also holds whenever *some* assignment
    within it exists (verified by enumeration on small graphs)."""
    n = 10
    g = random_graph(n, seed, p=0.5)
    ub = 1.3
    vw = g.vwgts()[:, 0]
    total = float(vw.sum())
    limit = ub * total / 2.0
    feasible = any(
        max(s := sum(vw[i] for i in range(n) if (mask >> i) & 1), total - s) <= limit
        for mask in range(1, 1 << (n - 1))
    )
    result = part_graph(g, 2, method="multilevel", ubfactor=ub)
    if feasible:
        assert max(imbalance(g, result.parts, 2)) <= ub + 1e-6


def test_part_config_key_is_canonical():
    a = part_config_key(2, "multilevel", 1.1, 17, None)
    b = part_config_key(2, "multilevel", 1.10, 17)
    assert a == b
    assert part_config_key(2, "kl") != part_config_key(2, "multilevel")
    assert part_config_key(2, tpwgts=[0.5, 0.5]) != part_config_key(2)
