"""Partitioner tests: correctness invariants, quality floors, multi-
constraint balance, target weights, determinism — unit + hypothesis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.graph.metrics import edgecut, imbalance
from repro.graph.wgraph import WeightedGraph
from repro.partition import part_graph
from repro.partition.api import METHODS
from repro.partition.coarsen import coarsen_to, heavy_edge_matching
from repro.partition.kl import kernighan_lin
from repro.partition.multilevel import exhaustive_bisect, multilevel_bisect
from repro.partition.refine import fm_refine
from repro.partition.spectral import spectral_bisect


def two_cliques(k: int = 8, bridge_w: float = 1.0, clique_w: float = 5.0):
    g = WeightedGraph(1)
    for i in range(2 * k):
        g.add_node(i)
    for c in (0, 1):
        for u in range(c * k, (c + 1) * k):
            for v in range(u + 1, (c + 1) * k):
                g.add_edge(u, v, clique_w)
    g.add_edge(0, k, bridge_w)
    return g


def random_graph(n: int, seed: int, p: float = 0.3, ncon: int = 1):
    rng = np.random.default_rng(seed)
    g = WeightedGraph(ncon)
    for i in range(n):
        g.add_node(i, [float(rng.integers(1, 4)) for _ in range(ncon)])
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v, float(rng.integers(1, 6)))
    return g


# ------------------------------------------------------------------ invariants
@pytest.mark.parametrize("method", METHODS)
def test_parts_vector_valid(method):
    g = random_graph(30, seed=1)
    result = part_graph(g, 3, method=method)
    assert len(result.parts) == 30
    assert all(0 <= p < 3 for p in result.parts)
    assert result.edgecut == edgecut(g, result.parts)


@pytest.mark.parametrize("method", METHODS)
def test_single_partition_trivial(method):
    g = random_graph(10, seed=2)
    result = part_graph(g, 1, method=method)
    assert set(result.parts) == {0}
    assert result.edgecut == 0.0


def test_more_parts_than_nodes():
    g = random_graph(3, seed=3)
    result = part_graph(g, 8)
    assert result.parts == [0, 1, 2]


def test_empty_graph():
    result = part_graph(WeightedGraph(), 2)
    assert result.parts == []


def test_invalid_nparts():
    with pytest.raises(PartitionError):
        part_graph(random_graph(5, 4), 0)


def test_unknown_method():
    from repro.errors import UnknownPluginError

    with pytest.raises(UnknownPluginError, match="unknown partition method"):
        part_graph(random_graph(5, 4), 2, method="simulated-annealing")
    # suggestion attached for near-misses
    with pytest.raises(UnknownPluginError, match="did you mean 'multilevel'"):
        part_graph(random_graph(5, 4), 2, method="multilvel")


def test_tpwgts_length_checked():
    with pytest.raises(PartitionError):
        part_graph(random_graph(5, 4), 2, tpwgts=[1.0])


def test_determinism_same_seed():
    g = random_graph(40, seed=9)
    a = part_graph(g, 2, seed=123)
    b = part_graph(g, 2, seed=123)
    assert a.parts == b.parts


# ------------------------------------------------------------------ quality
def test_multilevel_finds_bridge_cut():
    g = two_cliques()
    result = part_graph(g, 2)
    assert result.edgecut == 1.0


def test_kl_finds_bridge_cut():
    g = two_cliques()
    parts = kernighan_lin(g)
    assert edgecut(g, parts) == 1.0


def test_spectral_finds_bridge_cut():
    g = two_cliques()
    parts = spectral_bisect(g)
    assert edgecut(g, parts) == 1.0


def test_multilevel_beats_random_on_structure():
    g = random_graph(80, seed=11, p=0.1)
    ml = part_graph(g, 2, method="multilevel")
    rnd = part_graph(g, 2, method="random")
    assert ml.edgecut <= rnd.edgecut


def test_exhaustive_is_optimal_on_tiny_graphs():
    g = random_graph(7, seed=13, p=0.5)
    parts = exhaustive_bisect(g, 0.5, ub=1.4)
    best = edgecut(g, parts)
    # brute force verification
    n = g.num_nodes
    vw = g.vwgts()
    total = vw.sum(axis=0)
    for mask in range(1, (1 << n) - 1):
        cand = [(mask >> i) & 1 for i in range(n)]
        w0 = sum(vw[i][0] for i in range(n) if cand[i] == 0)
        if not (total[0] * 0.5 * 1.4 >= w0 >= total[0] - total[0] * 0.5 * 1.4):
            continue
        assert edgecut(g, cand) >= best - 1e-9


# ------------------------------------------------------------------ balance / tpwgts
def test_balance_respected_on_uniform_graph():
    g = random_graph(60, seed=17, p=0.15)
    result = part_graph(g, 2, ubfactor=1.10)
    assert max(result.imbalance) < 1.5


def test_multiconstraint_balance():
    g = random_graph(40, seed=19, p=0.2, ncon=3)
    result = part_graph(g, 2, ubfactor=1.3)
    imb = imbalance(g, result.parts, 2)
    assert len(imb) == 3


def test_tpwgts_skews_partition_sizes():
    g = random_graph(60, seed=23, p=0.15)
    result = part_graph(g, 2, tpwgts=[0.75, 0.25], ubfactor=1.3)
    vw = g.vwgts()
    w0 = sum(vw[i][0] for i in range(60) if result.parts[i] == 0)
    total = float(vw.sum())
    assert w0 / total > 0.55  # clearly skewed toward the 0.75 target


# ------------------------------------------------------------------ components
def test_heavy_edge_matching_halves_graph():
    g = two_cliques(k=16)
    coarse, cmap = heavy_edge_matching(g, np.random.default_rng(0))
    assert coarse.num_nodes < g.num_nodes
    assert coarse.num_nodes >= g.num_nodes // 2
    assert len(cmap) == g.num_nodes
    assert all(0 <= c < coarse.num_nodes for c in cmap)
    # weights conserved
    assert np.allclose(coarse.total_weight(), g.total_weight())


def test_coarsen_to_reaches_target():
    g = random_graph(200, seed=29, p=0.05)
    levels = coarsen_to(g, 40, np.random.default_rng(1))
    assert levels
    assert levels[-1][0].num_nodes <= max(40, g.num_nodes // 2)


def test_fm_refine_never_worsens_cut():
    g = random_graph(50, seed=31, p=0.2)
    rng = np.random.default_rng(7)
    parts = [int(rng.integers(2)) for _ in range(50)]
    before = edgecut(g, parts)
    refined = fm_refine(g, list(parts), 0.5, 1.3)
    assert edgecut(g, refined) <= before


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=24), st.integers(min_value=0, max_value=999),
       st.integers(min_value=2, max_value=4))
def test_property_all_methods_produce_valid_partitions(n, seed, k):
    g = random_graph(n, seed=seed, p=0.35)
    for method in ("multilevel", "kl", "roundrobin"):
        result = part_graph(g, min(k, n), method=method)
        assert len(result.parts) == n
        assert all(0 <= p < min(k, n) for p in result.parts)
        # edgecut is bounded by total edge weight
        total_w = sum(w for _, _, w in g.edges())
        assert 0.0 <= result.edgecut <= total_w + 1e-9


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=4, max_value=20), st.integers(min_value=0, max_value=99))
def test_property_multilevel_bisection_nonempty_sides(n, seed):
    g = random_graph(n, seed=seed, p=0.5)
    parts = multilevel_bisect(g, 0.5, np.random.default_rng(seed))
    assert set(parts) <= {0, 1}
    if n >= 4:
        assert 0 < sum(parts) < n  # both sides populated
