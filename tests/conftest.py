"""Pytest fixtures; helper functions live in tests/helpers.py.

Seed policy: every source of randomness in the suite derives from the one
documented ``REPRO_TEST_SEED`` environment knob
(:mod:`repro.testing.seeds`) — the global ``random``/``numpy`` RNGs are
re-seeded per test from a stream derived from the knob and the test's node
id, hypothesis runs under the registered ``repro`` profile (``print_blob``
on, so failures print their reproduction blob), and failing tests get a
"repro seeds" report section naming the exact ``REPRO_TEST_SEED=...`` to
re-run with.
"""

import os
import pathlib
import random
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

import pytest
from hypothesis import settings as _hyp_settings

from helpers import compile_mj, compile_mj_raw, run_mj  # noqa: F401

from repro.testing.seeds import ENV_VAR, base_seed, derive_seed

_hyp_settings.register_profile("repro", deadline=None, print_blob=True)
_hyp_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))


def pytest_configure(config):
    # route hypothesis's own RNG through the knob when it is set explicitly
    if os.environ.get(ENV_VAR) and hasattr(config.option, "hypothesis_seed"):
        if config.option.hypothesis_seed is None:
            config.option.hypothesis_seed = str(base_seed())


@pytest.fixture(autouse=True)
def _seed_global_rngs(request):
    """Deterministically seed the global RNGs per test, derived from
    ``REPRO_TEST_SEED`` and the test's node id (independent streams)."""
    seed = derive_seed("pytest", request.node.nodeid)
    random.seed(seed)
    try:
        import numpy as np

        np.random.seed(seed % 2**32)
    except ImportError:  # pragma: no cover - numpy is a test dependency
        pass
    yield


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Print the effective seed with every failure, so any randomized test
    can be reproduced with ``REPRO_TEST_SEED=<value> pytest <nodeid>``."""
    outcome = yield
    rep = outcome.get_result()
    if rep.when == "call" and rep.failed:
        rep.sections.append(
            (
                "repro seeds",
                f"{ENV_VAR}={base_seed()} "
                f"(per-test rng stream {derive_seed('pytest', item.nodeid)})",
            )
        )


@pytest.fixture
def bank_loaded():
    from repro.workloads import WORKLOADS

    return compile_mj(WORKLOADS["bank"].source("test"))


@pytest.fixture
def bank_program():
    from repro.workloads import WORKLOADS

    return compile_mj_raw(WORKLOADS["bank"].source("test"))[0]
