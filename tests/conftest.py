"""Pytest fixtures; helper functions live in tests/helpers.py."""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

import pytest

from helpers import compile_mj, compile_mj_raw, run_mj  # noqa: F401


@pytest.fixture
def bank_loaded():
    from repro.workloads import WORKLOADS

    return compile_mj(WORKLOADS["bank"].source("test"))


@pytest.fixture
def bank_program():
    from repro.workloads import WORKLOADS

    return compile_mj_raw(WORKLOADS["bank"].source("test"))[0]
