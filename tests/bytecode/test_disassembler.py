"""Disassembler formatting tests (the Figure 8/9 rendering layer)."""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

from helpers import compile_mj_raw

from repro.bytecode import disassemble_method, disassemble_program


SRC = """
class Account {
    int savings;
    int getSavings() { return savings; }
}
class M {
    static void main(String[] a) {
        Account acc = new Account();
        Sys.println(acc.getSavings());
    }
}
"""


def test_method_listing_shape():
    bp, _ = compile_mj_raw(SRC)
    text = disassemble_method(bp.classes["M"].methods["main"])
    lines = text.splitlines()
    assert lines[0].startswith("static void M.main")
    # javap-ish "index: op" rows
    assert any(": new Account" in line for line in lines)
    assert any(": invokespecial Account.<init>:(0)" in line for line in lines)
    assert any(": invokevirtual Account.getSavings:(0)" in line for line in lines)
    assert any(": astore" in line for line in lines)


def test_ldc_rendering():
    bp, _ = compile_mj_raw(
        'class M { static void main(String[] a) { Sys.println("hi"); int x = 7; } }'
    )
    text = disassemble_method(bp.classes["M"].methods["main"])
    assert 'ldc "hi"' in text
    assert "ldc 7 (int)" in text


def test_branch_rendering_uses_indices():
    bp, _ = compile_mj_raw(
        "class M { static void main(String[] a) { int i = 0; while (i < 3) { i++; } } }"
    )
    text = disassemble_method(bp.classes["M"].methods["main"])
    assert "goto ->" in text
    assert "if_icmp" in text


def test_program_listing_contains_all_classes():
    bp, _ = compile_mj_raw(SRC)
    text = disassemble_program(bp)
    assert "class Account extends Object {" in text
    assert "class M extends Object {" in text
    assert "int savings;" in text


def test_getfield_rendering():
    bp, _ = compile_mj_raw(SRC)
    text = disassemble_method(bp.classes["Account"].methods["getSavings"])
    assert "getfield Account.savings" in text
    assert "ireturn" in text
