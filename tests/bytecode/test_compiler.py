"""Bytecode compiler structural tests: the emitted instruction shapes the
rest of the infrastructure pattern-matches on."""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

import pytest

from helpers import compile_mj_raw

from repro.bytecode import opcodes as op
from repro.errors import CompileError


def method_ops(src: str, cls: str, name: str):
    bp, _ = compile_mj_raw(src)
    return [ins.op for ins in bp.classes[cls].methods[name].flat()]


def test_new_compiles_to_new_dup_invokespecial():
    ops = method_ops(
        """
        class A { A(int x) { } }
        class M { static void main(String[] a) { A o = new A(1); } }
        """,
        "M", "main",
    )
    i = ops.index(op.NEW)
    assert ops[i + 1] == op.DUP
    assert op.INVOKESPECIAL in ops[i + 2 :]


def test_string_concat_lowers_to_str_concat():
    bp, _ = compile_mj_raw(
        'class M { static void main(String[] a) { Sys.println("x" + 1); } }'
    )
    instrs = list(bp.classes["M"].methods["main"].flat())
    calls = [(i.a, i.b) for i in instrs if i.op == op.INVOKESTATIC]
    assert ("Str", "concat") in calls
    assert ("Sys", "println") in calls


def test_instance_field_init_runs_in_ctor():
    bp, _ = compile_mj_raw("class A { int x = 42; }")
    ctor = bp.classes["A"].methods["<init>"]
    ops = [i.op for i in ctor.flat()]
    assert op.PUTFIELD in ops
    assert ops[-1] == op.RETURN


def test_static_init_becomes_clinit():
    bp, _ = compile_mj_raw("class A { static int x = 42; static int y; }")
    clinit = bp.classes["A"].methods["<clinit>"]
    ops = [i.op for i in clinit.flat()]
    assert ops.count(op.PUTSTATIC) == 1  # only initialized fields


def test_no_clinit_without_static_inits():
    bp, _ = compile_mj_raw("class A { static int x; int y = 1; }")
    assert "<clinit>" not in bp.classes["A"].methods


def test_widening_conversions_inserted():
    ops = method_ops(
        "class M { static void main(String[] a) { long l = 1; float f = l; } }",
        "M", "main",
    )
    assert op.I2L in ops
    assert op.L2F in ops


def test_comparison_in_value_position_materializes():
    ops = method_ops(
        "class M { static void main(String[] a) { boolean b = 1 < 2; } }",
        "M", "main",
    )
    assert op.IF_ICMP in ops
    assert ops.count(op.LDC) >= 4  # 1, 2, true, false


def test_condition_in_branch_position_does_not_materialize():
    ops = method_ops(
        "class M { static void main(String[] a) { if (1 < 2) { Sys.println(1); } } }",
        "M", "main",
    )
    assert ops.count(op.IF_ICMP) == 1
    assert op.IFFALSE not in ops


def test_superclass_with_args_ctor_rejected_for_implicit_chain():
    with pytest.raises(CompileError, match="zero-arg"):
        compile_mj_raw(
            """
            class Base { Base(int x) { } }
            class Child extends Base { }
            """
        )


def test_main_class_detected():
    bp, _ = compile_mj_raw(
        "class A { } class M { static void main(String[] a) { } }"
    )
    assert bp.main_class == "M"


def test_max_locals_accounts_for_params_and_temps():
    bp, _ = compile_mj_raw(
        """
        class A {
            int f(int a, int b) { int c = a + b; int d = c * 2; return d; }
        }
        """
    )
    m = bp.classes["A"].methods["f"]
    assert m.max_locals >= 5  # this, a, b, c, d


def test_flat_resolves_labels_to_indices():
    bp, _ = compile_mj_raw(
        """
        class M {
            static int f(int n) {
                int s = 0;
                while (n > 0) { s += n; n--; }
                return s;
            }
        }
        """
    )
    flat = bp.classes["M"].methods["f"].flat()
    for ins in flat:
        if ins.op in op.BRANCHES:
            target = ins.b if ins.op in op.CMP_BRANCHES else ins.a
            assert isinstance(target, int)
            assert 0 <= target <= len(flat)


def test_program_copy_is_deep():
    bp, _ = compile_mj_raw("class M { static void main(String[] a) { int x = 1; } }")
    cp = bp.copy()
    cp.classes["M"].methods["main"].code.clear()
    assert len(bp.classes["M"].methods["main"].code) > 0


def test_size_bytes_positive_and_additive():
    bp, _ = compile_mj_raw(
        "class A { int x; void f() { x = 1; } } class B { }"
    )
    assert bp.size_bytes() > 0
    assert bp.size_bytes() >= bp.classes["A"].size_bytes()


def test_pop_inserted_for_discarded_values():
    ops = method_ops(
        """
        class A { int f() { return 1; } }
        class M { static void main(String[] a) { A o = new A(); o.f(); } }
        """,
        "M", "main",
    )
    assert op.POP in ops
