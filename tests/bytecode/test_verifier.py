"""Bytecode verifier tests — including the property that compiler output and
rewriter output always verify."""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

import pytest

from helpers import compile_mj_raw

from repro.bytecode import opcodes as op
from repro.bytecode.model import BMethod
from repro.bytecode.verifier import VerifyError, verify_method, verify_program
from repro.distgen import build_plan, rewrite_program
from repro.lang.symbols import ClassTable
from repro.lang.types import INT, VOID
from repro.workloads import WORKLOADS


def hand_method(ret=VOID, params=()):
    return BMethod("T", "m", list(params), ret, True, False)


def test_underflow_detected():
    m = hand_method()
    m.emit(op.POP)
    m.emit(op.RETURN)
    with pytest.raises(VerifyError, match="underflow"):
        verify_method(m, ClassTable())


def test_leftover_stack_at_return_detected():
    m = hand_method()
    m.emit(op.LDC, 1, "I")
    m.emit(op.RETURN)
    with pytest.raises(VerifyError, match="values left"):
        verify_method(m, ClassTable())


def test_fall_off_end_detected():
    m = hand_method()
    m.emit(op.LDC, 1, "I")
    m.emit(op.POP)
    with pytest.raises(VerifyError, match="falls off"):
        verify_method(m, ClassTable())


def test_inconsistent_join_depth_detected():
    from repro.bytecode.model import Label

    m = hand_method()
    join = Label("J")
    skip = Label("S")
    m.emit(op.LDC, 1, "I")
    m.emit(op.IFTRUE, skip)      # depth 0 after
    m.emit(op.LDC, 7, "I")       # depth 1 on fallthrough
    m.place(skip)                 # join: 0 vs 1
    m.place(join)
    m.emit(op.RETURN)
    with pytest.raises(VerifyError, match="inconsistent"):
        verify_method(m, ClassTable())


def test_value_method_with_bare_return_detected():
    m = hand_method(ret=INT)
    m.emit(op.RETURN)
    with pytest.raises(VerifyError, match="bare return"):
        verify_method(m, ClassTable())


def test_void_method_with_value_return_detected():
    m = hand_method()
    m.emit(op.LDC, 1, "I")
    m.emit(op.IRETURN)
    with pytest.raises(VerifyError, match="value return"):
        verify_method(m, ClassTable())


def test_max_depth_reported():
    m = hand_method()
    m.emit(op.LDC, 1, "I")
    m.emit(op.LDC, 2, "I")
    m.emit(op.LDC, 3, "I")
    m.emit(op.IADD)
    m.emit(op.IADD)
    m.emit(op.POP)
    m.emit(op.RETURN)
    assert verify_method(m, ClassTable()) == 3


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_compiler_output_always_verifies(name):
    bp, _ = compile_mj_raw(WORKLOADS[name].source("test"))
    depths = verify_program(bp)
    assert depths
    assert all(d >= 0 for d in depths.values())


@pytest.mark.parametrize("name", ["bank", "crypt", "db", "create"])
def test_rewriter_output_always_verifies(name):
    """The communication rewriter preserves stack discipline."""
    bp, _ = compile_mj_raw(WORKLOADS[name].source("test"))
    from repro.distgen.plan import DistributionPlan

    plan = DistributionPlan(
        nparts=2,
        granularity="class",
        class_home={c: 0 for c in bp.classes},
        dependent_classes=set(bp.classes),
        main_partition=0,
    )
    rewritten, stats = rewrite_program(bp, plan)
    assert stats.total > 0
    verify_program(rewritten)
