"""Parser unit tests."""

import pytest

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.parser import parse_program
from repro.lang.types import BOOLEAN, FLOAT, INT, LONG, ArrayType, ClassType, VOID


def parse_class(body: str) -> ast.ClassDecl:
    return parse_program(f"class T {{ {body} }}").classes[0]


def parse_method_body(stmts: str):
    cd = parse_class(f"void m() {{ {stmts} }}")
    return cd.methods[0].body.stmts


def parse_expr(expr: str) -> ast.Expr:
    stmts = parse_method_body(f"int x = {expr};")
    return stmts[0].init


def test_empty_class():
    cd = parse_class("")
    assert cd.name == "T"
    assert cd.superclass is None
    assert cd.fields == [] and cd.methods == []


def test_extends():
    prog = parse_program("class A {} class B extends A {}")
    assert prog.classes[1].superclass == "A"


def test_field_declarations():
    cd = parse_class("int a; static float b; String c = \"x\";")
    assert [f.name for f in cd.fields] == ["a", "b", "c"]
    assert cd.fields[0].ty is INT
    assert cd.fields[1].is_static and cd.fields[1].ty is FLOAT
    assert isinstance(cd.fields[2].init, ast.StrLit)


def test_modifiers_are_accepted_and_ignored():
    cd = parse_class("public int a; private static final long b;")
    assert not cd.fields[0].is_static
    assert cd.fields[1].is_static


def test_constructor_recognized_by_name():
    cd = parse_class("T(int x) { }")
    ctor = cd.methods[0]
    assert ctor.is_ctor and ctor.name == "<init>"
    assert ctor.params[0].ty is INT


def test_method_signature():
    cd = parse_class("static int f(float a, boolean[] b) { return 0; }")
    m = cd.methods[0]
    assert m.is_static and m.ret is INT
    assert m.params[0].ty is FLOAT
    assert m.params[1].ty == ArrayType(BOOLEAN)


def test_array_types_nest():
    cd = parse_class("int[][] grid;")
    assert cd.fields[0].ty == ArrayType(ArrayType(INT))


def test_vardecl_vs_expression_disambiguation():
    stmts = parse_method_body("Foo x; foo.bar(); Foo[] ys; foo[1] = 2;")
    assert isinstance(stmts[0], ast.VarDecl)
    assert isinstance(stmts[1], ast.ExprStmt)
    assert isinstance(stmts[2], ast.VarDecl)
    assert stmts[2].ty == ArrayType(ClassType("Foo"))
    assert isinstance(stmts[3], ast.ExprStmt)
    assert isinstance(stmts[3].expr, ast.Assign)


def test_if_else_binding():
    stmts = parse_method_body("if (a) if (b) x = 1; else x = 2;")
    outer = stmts[0]
    assert isinstance(outer, ast.If)
    inner = outer.then
    assert isinstance(inner, ast.If)
    assert inner.otherwise is not None  # else binds to the nearest if
    assert outer.otherwise is None


def test_for_loop_parts():
    stmts = parse_method_body("for (int i = 0; i < 3; i++) { }")
    loop = stmts[0]
    assert isinstance(loop, ast.For)
    assert isinstance(loop.init, ast.VarDecl)
    assert isinstance(loop.cond, ast.Binary)
    assert isinstance(loop.update, ast.Assign)


def test_for_loop_empty_parts():
    loop = parse_method_body("for (;;) { break; }")[0]
    assert loop.init is None and loop.cond is None and loop.update is None


def test_while_break_continue():
    stmts = parse_method_body("while (c) { break; continue; }")
    body = stmts[0].body
    assert isinstance(body.stmts[0], ast.Break)
    assert isinstance(body.stmts[1], ast.Continue)


def test_precedence_arithmetic():
    e = parse_expr("1 + 2 * 3")
    assert e.op == "+" and e.right.op == "*"


def test_precedence_shift_vs_additive():
    e = parse_expr("a << 1 + 2")
    assert e.op == "<<"
    assert e.right.op == "+"


def test_precedence_bitwise_chain():
    e = parse_expr("a | b ^ c & d")
    assert e.op == "|"
    assert e.right.op == "^"
    assert e.right.right.op == "&"


def test_logical_lower_than_comparison():
    e = parse_expr("a < b && c > d")
    assert e.op == "&&"
    assert e.left.op == "<" and e.right.op == ">"


def test_assignment_right_associative():
    e = parse_expr("a = b = 1")
    assert isinstance(e, ast.Assign)
    assert isinstance(e.value, ast.Assign)


def test_compound_assignment_desugars():
    e = parse_expr("a += 2")
    assert isinstance(e, ast.Assign)
    assert isinstance(e.value, ast.Binary) and e.value.op == "+"


def test_increment_desugars():
    pre = parse_expr("++a")
    post = parse_expr("a++")
    for e in (pre, post):
        assert isinstance(e, ast.Assign)
        assert e.value.op == "+"


def test_unary_chain():
    e = parse_expr("--x")  # pre-decrement, not double negation
    assert isinstance(e, ast.Assign)
    e2 = parse_expr("-(-x)")
    assert isinstance(e2, ast.Unary) and isinstance(e2.operand, ast.Unary)


def test_cast_vs_parenthesized_expr():
    cast = parse_expr("(Foo) x")
    assert isinstance(cast, ast.Cast)
    # lowercase identifier in parens is grouping, not a cast
    grouped = parse_expr("(foo) + x")
    assert isinstance(grouped, ast.Binary)


def test_primitive_cast():
    e = parse_expr("(int) f")
    assert isinstance(e, ast.Cast) and e.to is INT


def test_new_object_and_array():
    obj = parse_expr("new Foo(1, 2)")
    assert isinstance(obj, ast.New) and len(obj.args) == 2
    arr = parse_expr("new int[10]")
    assert isinstance(arr, ast.NewArray) and arr.elem_ty is INT
    arr2 = parse_expr("new Foo[n]")
    assert isinstance(arr2, ast.NewArray)
    assert arr2.elem_ty == ClassType("Foo")


def test_postfix_chains():
    e = parse_expr("a.b.c(1)[2]")
    assert isinstance(e, ast.ArrayIndex)
    assert isinstance(e.target, ast.Call)
    assert isinstance(e.target.target, ast.FieldAccess)


def test_array_length_postfix():
    e = parse_expr("xs.length")
    assert isinstance(e, ast.ArrayLength)


def test_instanceof():
    e = parse_expr("x instanceof Foo")
    assert isinstance(e, ast.InstanceOf)


def test_this_and_null_and_booleans():
    assert isinstance(parse_expr("this"), ast.This)
    assert isinstance(parse_expr("null"), ast.NullLit)
    assert parse_expr("true").value is True
    assert parse_expr("false").value is False


def test_unqualified_call():
    e = parse_expr("helper(1)")
    assert isinstance(e, ast.Call) and e.target is None


def test_error_on_missing_semicolon():
    with pytest.raises(ParseError):
        parse_program("class A { void m() { int x = 1 } }")


def test_error_on_bad_assignment_target():
    with pytest.raises(ParseError):
        parse_program("class A { void m() { 1 = 2; } }")


def test_error_on_void_field():
    with pytest.raises(ParseError):
        parse_program("class A { void x; }")


def test_error_on_stray_token():
    with pytest.raises(ParseError):
        parse_program("class A { } }")


def test_long_literal_expression():
    e = parse_expr("1L")
    assert isinstance(e, ast.LongLit)
