"""Type lattice unit + property tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lang.types import (
    BOOLEAN,
    FLOAT,
    INT,
    LONG,
    NULL,
    OBJECT,
    STRING,
    VOID,
    ArrayType,
    ClassType,
    elem_width,
    is_assignable,
    parse_descriptor,
    promote,
)

PRIMS = [INT, LONG, FLOAT, BOOLEAN, VOID]


def test_class_types_interned():
    assert ClassType("Foo") is ClassType("Foo")
    assert ClassType("Foo") is not ClassType("Bar")


def test_array_types_interned():
    assert ArrayType(INT) is ArrayType(INT)
    assert ArrayType(ArrayType(INT)) is ArrayType(ArrayType(INT))
    assert ArrayType(INT) is not ArrayType(LONG)


def test_descriptors():
    assert INT.descriptor() == "I"
    assert LONG.descriptor() == "J"
    assert FLOAT.descriptor() == "F"
    assert BOOLEAN.descriptor() == "Z"
    assert VOID.descriptor() == "V"
    assert ClassType("Bank").descriptor() == "LBank;"
    assert ArrayType(INT).descriptor() == "[I"
    assert ArrayType(ClassType("A")).descriptor() == "[LA;"


@pytest.mark.parametrize("ty", PRIMS + [STRING, OBJECT, ArrayType(INT),
                                        ArrayType(ArrayType(FLOAT))])
def test_descriptor_roundtrip(ty):
    assert parse_descriptor(ty.descriptor()) is ty


def test_parse_descriptor_rejects_garbage():
    with pytest.raises(ValueError):
        parse_descriptor("Q")


def test_promote_table():
    assert promote(INT, INT) is INT
    assert promote(INT, LONG) is LONG
    assert promote(LONG, FLOAT) is FLOAT
    assert promote(FLOAT, INT) is FLOAT
    assert promote(BOOLEAN, INT) is None
    assert promote(STRING, INT) is None


def test_widening_assignability():
    assert is_assignable(INT, LONG)
    assert is_assignable(INT, FLOAT)
    assert is_assignable(LONG, FLOAT)
    assert not is_assignable(LONG, INT)
    assert not is_assignable(FLOAT, LONG)


def test_null_assignable_to_references_only():
    assert is_assignable(NULL, STRING)
    assert is_assignable(NULL, ArrayType(INT))
    assert not is_assignable(NULL, INT)


def test_object_is_reference_top():
    assert is_assignable(STRING, OBJECT)
    assert is_assignable(ArrayType(INT), OBJECT)
    assert not is_assignable(OBJECT, STRING)


def test_subtype_fn_consulted():
    sub = lambda a, b: (a, b) == ("B", "A")
    assert is_assignable(ClassType("B"), ClassType("A"), sub)
    assert not is_assignable(ClassType("A"), ClassType("B"), sub)


def test_arrays_invariant():
    sub = lambda a, b: True
    assert not is_assignable(ArrayType(ClassType("B")), ArrayType(ClassType("A")), sub)
    assert is_assignable(ArrayType(INT), ArrayType(INT))


def test_elem_width():
    assert elem_width(INT) == 4
    assert elem_width(LONG) == 8
    assert elem_width(FLOAT) == 8
    assert elem_width(BOOLEAN) == 1
    assert elem_width(STRING) == 8  # reference slot


@given(st.sampled_from([INT, LONG, FLOAT]), st.sampled_from([INT, LONG, FLOAT]))
def test_promotion_symmetric_and_idempotent(a, b):
    assert promote(a, b) is promote(b, a)
    res = promote(a, b)
    assert promote(res, res) is res
    assert is_assignable(a, res) and is_assignable(b, res)


@given(st.sampled_from([INT, LONG, FLOAT]), st.sampled_from([INT, LONG, FLOAT]),
       st.sampled_from([INT, LONG, FLOAT]))
def test_widening_transitive(a, b, c):
    if is_assignable(a, b) and is_assignable(b, c):
        assert is_assignable(a, c)
