"""Semantic analysis (name resolution + type checking) tests."""

import pytest

from repro.errors import SemanticError
from repro.lang import analyze, parse_program
from repro.lang.types import BOOLEAN, FLOAT, INT, LONG, STRING


def check(src: str):
    prog = parse_program(src)
    return analyze(prog), prog


def check_fails(src: str, fragment: str = ""):
    with pytest.raises(SemanticError) as err:
        check(src)
    if fragment:
        assert fragment in str(err.value)


def wrap_main(body: str, extra_classes: str = "") -> str:
    return f"{extra_classes}\nclass M {{ static void main(String[] a) {{ {body} }} }}"


# --------------------------------------------------------------------- classes
def test_duplicate_class_rejected():
    check_fails("class A {} class A {}", "duplicate class")


def test_unknown_superclass():
    check_fails("class A extends Nope {}", "unknown superclass")


def test_inheritance_cycle():
    check_fails("class A extends B {} class B extends A {}", "cycle")


def test_duplicate_field():
    check_fails("class A { int x; float x; }", "duplicate field")


def test_field_shadowing_rejected():
    check_fails("class A { int x; } class B extends A { int x; }", "shadows")


def test_no_overloading():
    check_fails("class A { void f() {} void f(int x) {} }", "overloading")


def test_default_ctor_synthesized():
    table, _ = check("class A { }")
    assert table.resolve_ctor("A") is not None


def test_unknown_field_type():
    check_fails("class A { Missing m; }", "unknown type")


# --------------------------------------------------------------------- expressions
def test_arithmetic_promotion_types():
    _, prog = check(wrap_main("int i = 1; long l = 2L; float f = i + l * 1.5;"))
    stmts = prog.classes[-1].methods[0].body.stmts
    assert stmts[2].init.ty is FLOAT
    assert stmts[2].init.right.ty is FLOAT


def test_string_concat_types_as_string():
    _, prog = check(wrap_main('String s = "n=" + 5;'))
    init = prog.classes[-1].methods[0].body.stmts[0].init
    assert init.ty is STRING


def test_condition_must_be_boolean():
    check_fails(wrap_main("if (1) { }"), "condition")
    check_fails(wrap_main("while (\"x\") { }"), "condition")


def test_logical_ops_require_boolean():
    check_fails(wrap_main("boolean b = 1 && 2;"))


def test_bitwise_ops_reject_float():
    check_fails(wrap_main("float f = 1.0; int x = 1 & 2; float y = f & 1.0;"))


def test_shift_amount_must_be_int():
    check_fails(wrap_main("long l = 1L << 2L;"), "shift amount")


def test_comparison_mixed_numeric_ok():
    check(wrap_main("boolean b = 1 < 2.5;"))


def test_equality_reference_vs_numeric():
    check(wrap_main("String s = null; boolean b = s == null;"))
    check_fails(wrap_main('boolean b = "x" == 1;'))


def test_unary_minus_requires_numeric():
    check_fails(wrap_main("boolean b = true; int x = -0 + (-1); b = !b; int y = 0; y = -y; float f = -(1.0); boolean c = -b > 0;"))


def test_assignment_widening_ok_narrowing_rejected():
    check(wrap_main("long l = 5; float f = l;"))
    check_fails(wrap_main("int i = 5L;"), "cannot assign")


def test_explicit_narrowing_cast_ok():
    check(wrap_main("int i = (int) 5L; int j = (int) 1.9;"))


def test_cannot_cast_boolean_to_int():
    check_fails(wrap_main("int i = (int) true;"))


def test_array_indexing_types():
    check(wrap_main("int[] xs = new int[3]; xs[0] = 1; int y = xs[2];"))
    check_fails(wrap_main("int[] xs = new int[3]; xs[1.5] = 1;"), "index")
    check_fails(wrap_main("int x = 1; int y = x[0];"), "non-array")


def test_array_length_requires_array():
    check(wrap_main("float[] xs = new float[2]; int n = xs.length;"))
    check_fails(wrap_main("int n = 5; int m = n.length;"))


def test_array_size_must_be_int():
    check_fails(wrap_main("int[] xs = new int[2L];"), "length")


# --------------------------------------------------------------------- names
def test_unknown_name():
    check_fails(wrap_main("int x = nope;"), "unknown name")


def test_duplicate_local():
    check_fails(wrap_main("int x = 1; int x = 2;"), "duplicate local")


def test_block_scoping_allows_shadow_free_reuse():
    check(wrap_main("{ int x = 1; } { int x = 2; }"))


def test_field_access_via_this_and_unqualified():
    check("""
    class A {
        int v;
        int get() { return v; }
        int get2() { return this.v; }
        static void main(String[] a) { }
    }
    """)


def test_instance_field_from_static_context_rejected():
    check_fails(
        "class A { int v; static void main(String[] a) { int x = v; } }",
        "static context",
    )


def test_instance_method_from_static_context_rejected():
    check_fails(
        "class A { int f() { return 1; } static void main(String[] a) { f(); } }",
        "static context",
    )


def test_this_in_static_context_rejected():
    check_fails("class A { static void main(String[] a) { A x = this; } }", "'this'")


def test_static_field_access_via_class_name():
    check("""
    class Config { static int limit = 10; }
    class M { static void main(String[] a) { int x = Config.limit; } }
    """)


def test_static_method_call_via_class_name():
    check("""
    class Util { static int twice(int x) { return x * 2; } }
    class M { static void main(String[] a) { int y = Util.twice(3); } }
    """)


def test_static_method_called_on_instance_rejected():
    check_fails("""
    class Util { static int f() { return 1; } }
    class M { static void main(String[] a) { Util u = new Util(); u.f(); } }
    """, "static method")


# --------------------------------------------------------------------- calls
def test_arity_checked():
    check_fails("""
    class A { int f(int x) { return x; }
              static void main(String[] a) { A o = new A(); o.f(); } }
    """, "expects 1 args")


def test_argument_types_checked():
    check_fails("""
    class A { int f(int x) { return x; }
              static void main(String[] a) { A o = new A(); o.f("s"); } }
    """, "argument")


def test_virtual_dispatch_through_superclass():
    check("""
    class Base { int f() { return 1; } }
    class Derived extends Base { }
    class M { static void main(String[] a) {
        Derived d = new Derived(); int x = d.f(); } }
    """)


def test_ctor_arity_checked():
    check_fails("""
    class A { A(int x) { } }
    class M { static void main(String[] a) { A o = new A(); } }
    """, "expects 1 args")


def test_cannot_instantiate_static_only_builtins():
    check_fails(wrap_main("Math m = new Math();"), "cannot instantiate")
    check_fails(wrap_main('String s = new String();'), "cannot instantiate")


def test_builtin_vector_api():
    check(wrap_main(
        'Vector v = new Vector(); v.add("a"); int n = v.size(); '
        "String s = (String) v.get(0);"
    ))


def test_math_builtins_typed():
    _, prog = check(wrap_main("float r = Math.sqrt(2.0); int m = Math.imax(1, 2);"))
    stmts = prog.classes[-1].methods[0].body.stmts
    assert stmts[0].init.ty is FLOAT
    assert stmts[1].init.ty is INT


def test_println_accepts_anything():
    check(wrap_main('Sys.println(1); Sys.println("x"); Sys.println(1.5);'))


def test_return_type_checked():
    check_fails("class A { int f() { return \"s\"; } }", "return")
    check_fails("class A { void f() { return 1; } }", "void method")
    check_fails("class A { int f() { return; } }", "missing return value")


def test_break_outside_loop_rejected():
    check_fails(wrap_main("break;"), "outside loop")


def test_vector_get_returns_object_needs_cast():
    check_fails(wrap_main(
        "Vector v = new Vector(); v.add(1); int x = v.get(0);"
    ), "cannot assign")


def test_instanceof_typechecks():
    check(wrap_main('Object o = "s"; boolean b = o instanceof String;'))
    check_fails(wrap_main("boolean b = 1 instanceof String;"), "non-reference")
