"""Lexer unit tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import LexerError
from repro.lang.lexer import tokenize
from repro.lang.tokens import T


def kinds(src):
    return [t.kind for t in tokenize(src)][:-1]  # drop EOF


def test_empty_input():
    toks = tokenize("")
    assert len(toks) == 1 and toks[0].kind is T.EOF


def test_keywords_vs_identifiers():
    toks = tokenize("class classy int integer")
    assert [t.kind for t in toks[:-1]] == [T.CLASS, T.IDENT, T.INT, T.IDENT]


def test_int_literals():
    toks = tokenize("0 42 2147483647")
    assert [t.value for t in toks[:-1]] == [0, 42, 2147483647]
    assert all(t.kind is T.INT_LIT for t in toks[:-1])


def test_long_literal_suffix():
    toks = tokenize("42L 0x10L 7l")
    assert [t.kind for t in toks[:-1]] == [T.LONG_LIT] * 3
    assert [t.value for t in toks[:-1]] == [42, 16, 7]


def test_hex_literals():
    toks = tokenize("0xFF 0x0 0xDEADBEEF")
    assert [t.value for t in toks[:-1]] == [255, 0, 0xDEADBEEF]


def test_float_literals():
    toks = tokenize("1.5 0.25 2e3 1.5e-2 3f 4.0d")
    assert all(t.kind is T.FLOAT_LIT for t in toks[:-1])
    assert toks[0].value == 1.5
    assert toks[2].value == 2000.0
    assert toks[3].value == 0.015


def test_float_requires_digit_after_dot():
    # "1." followed by an identifier is a DOT access, not a float
    toks = tokenize("x.foo")
    assert [t.kind for t in toks[:-1]] == [T.IDENT, T.DOT, T.IDENT]


def test_string_literal_escapes():
    toks = tokenize(r'"a\nb\t\"q\\"')
    assert toks[0].kind is T.STR_LIT
    assert toks[0].value == 'a\nb\t"q\\'


def test_unterminated_string():
    with pytest.raises(LexerError):
        tokenize('"abc')


def test_newline_in_string():
    with pytest.raises(LexerError):
        tokenize('"ab\ncd"')


def test_bad_escape():
    with pytest.raises(LexerError):
        tokenize(r'"\q"')


def test_comments_skipped():
    toks = tokenize("a // line comment\nb /* block\n comment */ c")
    assert [t.text for t in toks[:-1]] == ["a", "b", "c"]


def test_unterminated_block_comment():
    with pytest.raises(LexerError):
        tokenize("a /* never ends")


def test_operators_two_char():
    src = "== != <= >= && || << >> ++ -- += -= *= /="
    expect = [T.EQ, T.NE, T.LE, T.GE, T.ANDAND, T.OROR, T.SHL, T.SHR,
              T.PLUSPLUS, T.MINUSMINUS, T.PLUS_ASSIGN, T.MINUS_ASSIGN,
              T.STAR_ASSIGN, T.SLASH_ASSIGN]
    assert kinds(src) == expect


def test_ushr_three_char():
    assert kinds("a >>> b") == [T.IDENT, T.USHR, T.IDENT]
    assert kinds("a >> > b") == [T.IDENT, T.SHR, T.GT, T.IDENT]


def test_positions_track_lines_and_columns():
    toks = tokenize("a\n  b")
    assert toks[0].pos.line == 1 and toks[0].pos.col == 1
    assert toks[1].pos.line == 2 and toks[1].pos.col == 3


def test_unexpected_character():
    with pytest.raises(LexerError):
        tokenize("a @ b")


def test_double_alias():
    # MJ treats 'double' as an alias for float
    assert kinds("double x") == [T.FLOAT, T.IDENT]


@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_int_literal_roundtrip(n):
    toks = tokenize(str(n))
    assert toks[0].kind is T.INT_LIT and toks[0].value == n


@given(st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu")),
               min_size=1, max_size=12))
def test_identifier_roundtrip(name):
    from repro.lang.tokens import KEYWORDS

    toks = tokenize(name)
    if name in KEYWORDS:
        assert toks[0].kind is KEYWORDS[name]
    elif name.isascii():
        assert toks[0].kind is T.IDENT and toks[0].text == name


@given(st.text(alphabet=" \t\nabc123+-*/%()<>=!&|", max_size=60))
def test_lexer_never_crashes_or_loops(text):
    """Tokenizing arbitrary input from the operator alphabet either succeeds
    or raises LexerError — never hangs or raises anything else."""
    try:
        toks = tokenize(text)
        assert toks[-1].kind is T.EOF
    except LexerError:
        pass
