"""repro.testing.genworld: validity, determinism, config round-trips."""

import random

import pytest

from repro.api.config import ClusterConfig, ConfigError, ExperimentConfig
from repro.testing.genworld import (
    SPEED_PALETTE,
    WorldSpec,
    degenerate_worlds,
    generate_world,
)


def test_generate_world_is_deterministic():
    a = generate_world(random.Random(42))
    b = generate_world(random.Random(42))
    assert a == b


def test_generated_worlds_are_valid_configs():
    """Every sampled world must materialize into a validated
    ExperimentConfig whose cluster can host its plan."""
    for seed in range(40):
        world = generate_world(random.Random(seed), include_thread=True)
        cfg = world.experiment_config("bank")
        assert isinstance(cfg, ExperimentConfig)
        assert cfg.cluster.size == world.nnodes
        assert world.nnodes >= world.nparts
        cluster = cfg.cluster.build(world.nparts)
        assert cluster.size == world.nnodes
        for spec, hz in zip(cluster.nodes, world.speeds):
            assert spec.cpu_hz == hz
        for backend in world.backends:
            assert backend in ("sim", "thread", "process")


def test_world_round_trip():
    for seed in range(10):
        world = generate_world(random.Random(seed))
        assert WorldSpec.from_dict(world.to_dict()) == world


def test_degenerate_worlds_cover_corners():
    worlds = degenerate_worlds()
    sizes = {w.nnodes for w in worlds}
    assert 1 in sizes, "must include the 1-node degenerate topology"
    assert 16 in sizes, "must include the wide 16-node topology"
    assert any(w.granularity == "object" for w in worlds)
    assert any(w.async_writes for w in worlds)
    for w in worlds:
        w.experiment_config("bank")  # all must validate


def test_cluster_config_speeds_build():
    cfg = ClusterConfig(speeds=(1.7e9, 800e6, 2.4e9), mem_mb=128)
    assert cfg.size == 3
    cluster = cfg.build(2)
    assert [n.cpu_hz for n in cluster.nodes] == [1.7e9, 800e6, 2.4e9]
    assert all(n.mem_bytes == 128 << 20 for n in cluster.nodes)


def test_cluster_config_mem_applies_without_speeds():
    """mem_mb bounds every node's memory on every cluster shape, not just
    explicit-speeds ones."""
    for nodes in (2, 4):  # paper-testbed shape and homogeneous shape
        cluster = ClusterConfig(nodes=nodes, mem_mb=64).build(nodes)
        assert all(n.mem_bytes == 64 << 20 for n in cluster.nodes)


def test_cluster_config_speeds_round_trip():
    cfg = ClusterConfig(speeds=(1.0e9, 3.2e9), network="ethernet_1g")
    again = ClusterConfig.from_json(cfg.to_json())
    assert again == cfg
    assert isinstance(again.speeds, tuple)


def test_cluster_config_speeds_validation():
    with pytest.raises(ConfigError):
        ClusterConfig(speeds=())
    with pytest.raises(ConfigError):
        ClusterConfig(speeds=(0.0,))
    with pytest.raises(ConfigError):
        ClusterConfig(nodes=3, speeds=(1e9, 1e9))
    with pytest.raises(ConfigError):
        ClusterConfig(speeds=(1e9,), mem_mb=0)


def test_experiment_config_uses_effective_cluster_size():
    world = WorldSpec(nparts=3, speeds=(1e9, 1e9, 1e9))
    world.experiment_config("bank")  # 3 speeds host 3 parts: fine
    with pytest.raises(ConfigError):
        WorldSpec(nparts=3, speeds=(1e9, 1e9)).experiment_config("bank")


def test_speed_palette_sane():
    assert all(s > 0 for s in SPEED_PALETTE)
    assert max(SPEED_PALETTE) / min(SPEED_PALETTE) >= 4  # real heterogeneity


# ------------------------------------------------------------------ faults
def test_fault_free_sampling_unchanged_by_fault_axis_default():
    """include_faults=False must reproduce the historical stream exactly —
    existing corpora replay against the same worlds."""
    for seed in range(25):
        assert generate_world(random.Random(seed)) == generate_world(
            random.Random(seed), include_faults=False
        )


def test_fault_worlds_sampled_and_round_trip():
    from repro.runtime.faults import FaultPlan

    lossy = crashy = replicated = 0
    for seed in range(120):
        w = generate_world(random.Random(seed), include_faults=True)
        if w.faults is not None:
            assert isinstance(w.faults, FaultPlan)
            if w.faults.transient_only:
                lossy += 1
                assert "/lossy" in w.label()
            else:
                crashy += 1
                assert "/faulty" in w.label()
                (victim, cycle), = w.faults.crashes
                assert 0 <= victim < w.nnodes and cycle > 0
        if w.replication > 1:
            replicated += 1
            assert w.replication <= w.nnodes
            assert f"/r{w.replication}" in w.label()
        again = WorldSpec.from_dict(w.to_dict())
        assert again == w
        # the typed config carries both axes through
        cfg = w.experiment_config("bank")
        assert cfg.cluster.faults == w.faults
        assert cfg.partition.replication == w.replication
    assert lossy > 0 and crashy > 0 and replicated > 0


def test_single_node_worlds_never_fault():
    for seed in range(200):
        w = generate_world(random.Random(seed), include_faults=True)
        if w.nnodes == 1:
            assert w.faults is None and w.replication == 1
