"""repro.testing.seeds: the one documented REPRO_TEST_SEED knob."""

from repro.testing.seeds import ENV_VAR, base_seed, derive_seed, describe


def test_default_when_unset(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert base_seed() == 0
    assert base_seed(default=7) == 7


def test_env_overrides_decimal_and_hex(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "123")
    assert base_seed() == 123
    monkeypatch.setenv(ENV_VAR, "0x10")
    assert base_seed() == 16


def test_env_strings_hash_stably(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "tuesday")
    a = base_seed()
    b = base_seed()
    assert a == b > 0


def test_derive_is_stable_and_stream_separated():
    assert derive_seed("a", 1, base=5) == derive_seed("a", 1, base=5)
    assert derive_seed("a", 1, base=5) != derive_seed("a", 2, base=5)
    assert derive_seed("a", base=5) != derive_seed("a", base=6)
    # 63-bit: always a valid non-negative seed
    assert 0 <= derive_seed("x", base=0) < 2**63


def test_derived_streams_follow_the_knob(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "41")
    a = derive_seed("stream")
    monkeypatch.setenv(ENV_VAR, "42")
    b = derive_seed("stream")
    assert a != b
    assert "REPRO_TEST_SEED=42" in describe()
