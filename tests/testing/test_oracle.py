"""repro.testing.oracle: clean scenarios pass, injected VM faults are
caught with minimized replayable counterexamples, Experiment.conformance
works, and the degenerate worlds all hold the equivalence claim."""

import pytest

from repro.api import Experiment
from repro.testing import (
    GenConfig,
    Scenario,
    WorldSpec,
    check_scenario,
    degenerate_worlds,
    generate_program,
    run_fuzz,
    temp_workload,
)


def _scenario(seed=7, n_classes=2, world=None, **cfg_kwargs):
    spec = generate_program(GenConfig(seed=seed, n_classes=n_classes,
                                      **cfg_kwargs))
    return Scenario(
        name=f"t-{seed}",
        source=spec.render(),
        world=world if world is not None else WorldSpec(),
        spec=spec,
        gen_seed=seed,
    )


def test_clean_scenario_passes():
    out = check_scenario(_scenario())
    assert out.ok, [d.to_dict() for d in out.divergences]
    assert out.checks_run > 5
    assert out.reference["stdout"][-1].startswith("digest:")


@pytest.mark.parametrize(
    "world", degenerate_worlds(), ids=lambda w: w.label()
)
def test_degenerate_worlds_hold_equivalence(world):
    """1-node, wide-16, slow-wireless/async, object-granularity: the same
    generated program must conform everywhere."""
    out = check_scenario(_scenario(seed=3, world=world))
    assert out.ok, [d.to_dict() for d in out.divergences]


def test_faulting_scenario_skips_distributed_but_checks_vm():
    # seed chosen so the program faults: find one deterministically
    for seed in range(60):
        sc = _scenario(seed=seed, allow_faults=True)
        out = check_scenario(sc)
        if out.faulted:
            assert out.ok  # both engines agreed on the fault
            assert out.reference["error"] is not None
            return
    pytest.skip("no faulting seed in range (generator changed?)")


def test_injected_vm_fault_is_caught_and_minimized(monkeypatch):
    """The acceptance scenario: a deliberately injected VM fault (the fast
    path overcharges one cycle per block) must be caught by the oracle and
    reported as a minimized, replayable counterexample."""
    monkeypatch.setenv("REPRO_VM_INJECT_OVERCHARGE", "1")
    report, _ = run_fuzz(seed=0, budget=2, max_failures=1)
    assert not report.ok
    ce = report.failures[0]
    assert any(d.check == "vm.cycles" for d in ce.divergences)
    # minimized: the shrinker got rid of (at least) most of the program
    assert ce.minimized_statements <= ce.original_statements
    assert ce.shrink_evals > 0
    assert "FuzzMain" in ce.source
    # replayable: the minimized source alone still reproduces while the
    # fault is injected...
    from repro.testing import entry_from_counterexample, replay_entry

    entry = entry_from_counterexample(ce)
    divs = replay_entry(entry)
    assert any(d.check == "vm.cycles" for d in divs)
    # ...and stops reproducing once the fault is fixed
    monkeypatch.delenv("REPRO_VM_INJECT_OVERCHARGE")
    assert replay_entry(entry) == []


def test_run_fuzz_small_budget_clean():
    report, golden = run_fuzz(seed=1, budget=6, collect_golden=True)
    assert report.ok, report.summary()
    assert report.scenarios == 6
    assert report.checks > 6 * 5
    # every conforming scenario (faulting ones included — their fault text
    # is the gold) is collectible as a corpus entry
    assert len(golden) == 6


def test_experiment_conformance_entry_point():
    """Experiment.conformance(): the oracle on a hand-picked configuration,
    through the public API."""
    exp = Experiment.from_options("bank", backend="sim")
    outcome = exp.conformance()
    assert outcome.ok, [d.to_dict() for d in outcome.divergences]
    assert outcome.checks_run >= 9
    assert outcome.reference["stdout"]


def test_experiment_conformance_deep_sim():
    exp = Experiment.from_options("bank", backend="sim")
    outcome = exp.conformance(deep=True)
    assert outcome.ok, [d.to_dict() for d in outcome.divergences]


def test_temp_workload_registers_and_cleans_up():
    from repro.workloads import WORKLOADS

    source = "class M { static void main(String[] a) { Sys.println(1); } }"
    with temp_workload(source) as name:
        assert name in WORKLOADS
        assert WORKLOADS.get(name).source("test") == source
    assert name not in WORKLOADS


def test_temp_workload_cleans_up_on_error():
    from repro.workloads import WORKLOADS

    with pytest.raises(RuntimeError):
        with temp_workload("class M {}") as name:
            raise RuntimeError("boom")
    assert name not in WORKLOADS
