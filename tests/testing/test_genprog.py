"""repro.testing.genprog: determinism, well-typedness, richness, shrinking."""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

import pytest

from helpers import compile_mj

from repro.errors import VMError
from repro.testing.genprog import (
    ARRAY_LEN,
    GenConfig,
    generate_program,
    generate_source,
    shrink_program,
)
from repro.vm.interpreter import Machine, run_sync


def _run(source):
    loaded = compile_mj(source)
    machine = Machine(loaded)
    machine.statics = loaded.fresh_statics()
    machine.call_bmethod(loaded.main_method(), None, [None])
    run_sync(machine)
    return machine


def test_same_config_same_source():
    cfg = GenConfig(seed=1234, n_classes=3)
    assert generate_source(cfg) == generate_source(cfg)


def test_different_seeds_differ():
    sources = {generate_source(GenConfig(seed=s)) for s in range(10)}
    assert len(sources) == 10


@pytest.mark.parametrize("n_classes", (0, 1, 2, 4))
def test_guarded_programs_compile_and_terminate(n_classes):
    """With allow_faults=False every generated program is total: it must
    compile, run to completion and print its digest."""
    for seed in range(8):
        cfg = GenConfig(seed=seed, n_classes=n_classes, allow_faults=False)
        machine = _run(generate_source(cfg))
        assert machine.stdout, f"seed {seed}: no output"
        assert machine.stdout[-1].startswith("digest:")
        assert machine.cycles > 0


def test_faulting_programs_compile():
    """allow_faults may produce runtime faults but never compile errors."""
    ran = faulted = 0
    for seed in range(20):
        source = generate_source(GenConfig(seed=seed, allow_faults=True))
        loaded = compile_mj(source)  # must always compile
        machine = Machine(loaded)
        machine.statics = loaded.fresh_statics()
        machine.call_bmethod(loaded.main_method(), None, [None])
        try:
            run_sync(machine)
            ran += 1
        except VMError:
            faulted += 1
    assert ran + faulted == 20
    assert ran > 0  # the guard helpers keep most programs total


def test_programs_exercise_cross_class_state():
    """Rich programs must really be multi-class: helper classes, a peer
    chain, arrays and the check() digest of every class."""
    source = generate_source(GenConfig(seed=5, n_classes=3))
    assert "class Helper0" in source
    assert "class Helper2" in source
    assert "Helper1 peer;" in source
    assert f"new int[{ARRAY_LEN}]" in source
    assert "h2.check()" in source
    # two renders of structurally equal specs agree
    spec = generate_program(GenConfig(seed=5, n_classes=3))
    assert spec.render() == source


def test_num_statements_counts_nested():
    spec = generate_program(GenConfig(seed=3, n_classes=2))
    assert spec.num_statements() > 0


def test_shrink_preserves_predicate_and_reduces():
    """Shrinking a program against "still prints a digest with helper 0's
    check" must keep that property while removing statements."""
    spec = generate_program(GenConfig(seed=11, n_classes=2, max_stmts=6))
    original = spec.num_statements()

    def still_runs(candidate):
        machine = _run(candidate.render())
        return bool(machine.stdout) and machine.stdout[-1].startswith("digest:")

    shrunk, evals = shrink_program(spec, still_runs, max_evals=150)
    assert evals > 0
    assert shrunk.num_statements() <= original
    # the minimized program still satisfies the predicate and re-renders
    # deterministically
    assert still_runs(shrunk)
    assert shrunk.render() == shrunk.render()
    # greedy statement removal should reach (near-)empty main for a
    # predicate this weak
    assert shrunk.num_statements() < original


def test_shrink_rejects_non_compiling_candidates():
    """A predicate that raises on broken candidates must be treated as
    'does not reproduce' — shrinking never crashes on them."""
    spec = generate_program(GenConfig(seed=2, n_classes=2))

    def strict(candidate):
        machine = _run(candidate.render())  # raises if candidate is broken
        return len(machine.stdout) >= 1

    shrunk, _ = shrink_program(spec, strict, max_evals=60)
    assert _run(shrunk.render()).stdout


def test_config_round_trip():
    cfg = GenConfig(seed=9, n_classes=3, allow_faults=True, loop_bound=4)
    assert GenConfig.from_dict(cfg.to_dict()) == cfg
