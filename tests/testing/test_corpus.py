"""repro.testing.corpus: entry round-trips, the committed corpus replays
clean, and golden drift is detected."""

import pathlib

import pytest

from repro.errors import ReproError
from repro.testing import (
    CorpusEntry,
    GenConfig,
    Scenario,
    WorldSpec,
    check_scenario,
    entry_from_outcome,
    generate_program,
    load_corpus,
    replay_entry,
)

CORPUS_DIR = pathlib.Path(__file__).parent.parent / "corpus"


def _passing_entry(seed=4):
    spec = generate_program(GenConfig(seed=seed, n_classes=1))
    scenario = Scenario(
        name=f"corpus-t-{seed}", source=spec.render(), world=WorldSpec(),
        spec=spec,
    )
    outcome = check_scenario(scenario)
    assert outcome.ok
    return entry_from_outcome(scenario, outcome, meta={"seed": seed})


def test_entry_json_round_trip(tmp_path):
    entry = _passing_entry()
    path = entry.save(tmp_path)
    again = CorpusEntry.from_json(path.read_text())
    assert again.name == entry.name
    assert again.source == entry.source
    assert again.expected == entry.expected
    assert again.world == entry.world


def test_replay_fresh_entry_passes():
    entry = _passing_entry()
    assert replay_entry(entry) == []


def test_replay_detects_golden_drift():
    entry = _passing_entry()
    entry.expected["cycles"] += 1  # simulate a cost-model drift
    divs = replay_entry(entry)
    assert any(d.check == "corpus.cycles" for d in divs)


def test_replay_detects_stdout_drift():
    entry = _passing_entry()
    entry.expected["stdout"] = list(entry.expected["stdout"]) + ["extra"]
    divs = replay_entry(entry)
    assert any(d.check == "corpus.stdout" for d in divs)


def test_load_corpus_rejects_missing_and_garbage(tmp_path):
    with pytest.raises(ReproError):
        load_corpus(tmp_path / "nope")
    (tmp_path / "bad.json").write_text("{not json")
    with pytest.raises(ReproError):
        load_corpus(tmp_path)


def test_committed_corpus_loads_and_has_both_shapes():
    entries = load_corpus(CORPUS_DIR)
    assert len(entries) >= 5
    kinds = {e.kind for _, e in entries}
    assert "golden" in kinds
    for _, entry in entries:
        assert entry.source.strip()
        assert entry.expected["stdout"], entry.name
        WorldSpec.from_dict(entry.world)  # world must round-trip


def test_committed_corpus_replays_clean():
    """The CI regression gate, in-process: every committed golden trace
    still reproduces and still conforms."""
    for path, entry in load_corpus(CORPUS_DIR):
        divs = replay_entry(entry)
        assert divs == [], (
            f"{path.name}: {[d.to_dict() for d in divs]}"
        )
