"""Quad builder tests: abstract stack interpretation correctness."""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

from helpers import compile_mj_raw

from repro.quad import build_quads, format_method
from repro.quad.quads import Const, Reg


def quads_of(src: str, cls: str, name: str):
    bp, table = compile_mj_raw(src)
    return build_quads(bp.classes[cls].methods[name], table)


FIG5 = """
public class Example {
    int ex(int b) {
        b = 4;
        if (b > 2) { b++; }
        return b;
    }
}
"""


def test_figure5_block_structure():
    qm = quads_of(FIG5, "Example", "ex")
    order = [b.bid for b in qm.block_order()]
    assert order[0] == 0 and order[-1] == 1      # ENTRY first, EXIT last
    assert 0 in qm.blocks and 1 in qm.blocks
    entry = qm.blocks[0]
    assert entry.quads == []
    assert entry.succs == [2]


def test_figure5_listing_exact_lines():
    text = format_method(quads_of(FIG5, "Example", "ex"))
    assert "BB0 (ENTRY) (in: <none>, out: BB2)" in text
    assert "IFCMP_I IConst: 4, IConst: 2, LE, BB4" in text
    assert "BB1 (EXIT)" in text
    assert "RETURN_I" in text


def test_constant_propagated_through_local():
    # b = 4; return b + 1  ==>  ADD uses IConst 4 directly
    qm = quads_of(
        "class A { int f() { int b = 4; return b + 1; } }", "A", "f"
    )
    adds = [q for q in qm.all_quads() if q.op == "ADD"]
    assert len(adds) == 1
    assert adds[0].srcs[0] == Const(4, "I")


def test_constant_killed_by_reassignment():
    qm = quads_of(
        "class A { int f(int p) { int b = 4; b = p; return b + 1; } }", "A", "f"
    )
    adds = [q for q in qm.all_quads() if q.op == "ADD"]
    assert isinstance(adds[0].srcs[0], Reg)


def test_loop_has_back_edge():
    qm = quads_of(
        "class A { int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; } }",
        "A", "f",
    )
    back = [
        (b.bid, s) for b in qm.blocks.values() for s in b.succs if s <= b.bid and s >= 2
    ]
    assert back, "expected a back edge in the loop CFG"


def test_invoke_quads_have_receiver_and_args():
    qm = quads_of(
        """
        class B { int g(int x) { return x; } }
        class A { int f(B b) { return b.g(7); } }
        """,
        "A", "f",
    )
    invokes = [q for q in qm.all_quads() if q.op == "INVOKEVIRTUAL"]
    assert len(invokes) == 1
    assert invokes[0].extra == ("B", "g")
    assert len(invokes[0].srcs) == 2  # receiver + one argument
    assert invokes[0].dst is not None


def test_void_invoke_has_no_dst():
    qm = quads_of(
        """
        class B { void g() { } }
        class A { void f(B b) { b.g(); } }
        """,
        "A", "f",
    )
    invokes = [q for q in qm.all_quads() if q.op == "INVOKEVIRTUAL"]
    assert invokes[0].dst is None


def test_field_quads():
    qm = quads_of(
        "class A { int v; void f() { v = v + 1; } }", "A", "f"
    )
    ops = [q.op for q in qm.all_quads()]
    assert "GETFIELD" in ops and "PUTFIELD" in ops


def test_array_quads():
    qm = quads_of(
        "class A { int f() { int[] xs = new int[3]; xs[0] = 5; return xs[0] + xs.length; } }",
        "A", "f",
    )
    ops = [q.op for q in qm.all_quads()]
    assert "NEWARRAY" in ops
    assert "ASTORE" in ops and "ALOAD" in ops
    assert "ARRAYLENGTH" in ops


def test_every_user_method_of_every_workload_lifts():
    """Integration: the quad builder handles all bytecode the compiler emits."""
    from repro.workloads import WORKLOADS

    for name, w in WORKLOADS.items():
        bp, table = compile_mj_raw(w.source("test"))
        for bclass in bp.classes.values():
            for method in bclass.methods.values():
                qm = build_quads(method, table)
                assert qm.blocks, (name, method.qualified)
                text = format_method(qm)
                assert "BB0 (ENTRY)" in text


def test_register_numbering_locals_then_stack():
    qm = quads_of(FIG5, "Example", "ex")
    # instance method: this=slot0 -> R1, param b=slot1 -> R2
    moves = [q for q in qm.all_quads() if q.op == "MOVE"]
    assert moves[0].dst == Reg(2, "I")
