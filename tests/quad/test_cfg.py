"""CFG algorithms: dominators and natural loops."""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

from helpers import compile_mj_raw

from repro.quad import build_quads
from repro.quad.cfg import QuadCFG, blocks_in_loops, dominators, loop_depth, natural_loops


def cfg_of(src: str, cls: str, name: str):
    bp, table = compile_mj_raw(src)
    qm = build_quads(bp.classes[cls].methods[name], table)
    return qm, QuadCFG(qm)


def test_entry_dominates_everything():
    qm, cfg = cfg_of(
        "class A { int f(int n) { if (n > 0) { return 1; } return 2; } }",
        "A", "f",
    )
    dom = dominators(cfg)
    for b in cfg.reachable():
        assert 0 in dom[b]
    assert dom[0] == {0}


def test_straight_line_has_no_loops():
    qm, cfg = cfg_of("class A { int f() { return 1 + 2; } }", "A", "f")
    assert natural_loops(cfg) == []
    assert blocks_in_loops(qm) == set()


def test_while_loop_detected():
    qm, cfg = cfg_of(
        "class A { int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; } }",
        "A", "f",
    )
    loops = natural_loops(cfg)
    assert len(loops) >= 1
    header, body = loops[0]
    assert header in body
    assert len(body) >= 2


def test_nested_loops_have_depth_two():
    qm, _ = cfg_of(
        """
        class A {
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++) {
                    for (int j = 0; j < n; j++) { s++; }
                }
                return s;
            }
        }
        """,
        "A", "f",
    )
    depths = loop_depth(qm)
    assert max(depths.values()) >= 2
    assert min(depths.values()) == 0


def test_reachability_excludes_orphans():
    qm, cfg = cfg_of(
        "class A { int f(boolean b) { if (b) { return 1; } else { return 2; } } }",
        "A", "f",
    )
    reach = cfg.reachable()
    assert 0 in reach and 1 in reach
