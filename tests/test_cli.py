"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


def test_run_command(capsys):
    assert main(["run", "bank"]) == 0
    captured = capsys.readouterr()
    assert "assets=6597100" in captured.out
    assert "virtual ms" in captured.err  # diagnostics stay off stdout


def test_run_backend_stdout_matches_sequential(capsys):
    """The documented contract: program output on stdout is byte-identical
    whether the workload runs sequentially or on a runtime backend."""
    assert main(["run", "bank"]) == 0
    seq = capsys.readouterr().out
    assert main(["run", "bank", "--backend", "sim"]) == 0
    sim = capsys.readouterr()
    assert sim.out == seq
    assert "backend=sim" in sim.err


def test_analyze_command(capsys, tmp_path):
    assert main(["analyze", "bank", "--vcg", str(tmp_path / "vcg")]) == 0
    out = capsys.readouterr().out
    assert "CRG:" in out and "ODG:" in out
    assert (tmp_path / "vcg" / "bank_crg.vcg").exists()
    assert (tmp_path / "vcg" / "bank_odg.vcg").exists()


def test_distribute_command(capsys):
    assert main(["distribute", "method", "--size", "test"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "messages" in out


def test_sweep_command(capsys, tmp_path):
    out_file = tmp_path / "sweep.txt"
    assert main([
        "sweep", "--workloads", "bank,method", "--methods", "multilevel,kl",
        "--out", str(out_file),
    ]) == 0
    out = capsys.readouterr().out
    assert "workload" in out and "speedup %" in out
    assert "hit rate" in out  # stage-cache telemetry reported
    assert "4 configs" in out
    assert out_file.read_text().count("\n") >= 6  # header + rule + 4 rows


def test_sweep_rejects_bad_grid_cleanly(capsys):
    assert main(["sweep", "--workloads", "bank", "--methods", "annealing"]) == 2
    assert "unknown method" in capsys.readouterr().err
    assert main(["sweep", "--workloads", "bank", "--nodes", "two"]) == 2
    assert "two" in capsys.readouterr().err


def test_codegen_command(capsys):
    assert main(["codegen"]) == 0
    out = capsys.readouterr().out
    assert "mov eax, 4" in out
    assert "mov PC, R14" in out


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        main(["run", "nosuch"])


def test_parser_lists_all_workloads():
    parser = build_parser()
    help_text = parser.format_help()
    assert "distribute" in help_text and "analyze" in help_text
