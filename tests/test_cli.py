"""CLI smoke tests."""

import json

import pytest

from repro.cli import build_parser, main


def test_run_command(capsys):
    assert main(["run", "bank"]) == 0
    captured = capsys.readouterr()
    assert "assets=6597100" in captured.out
    assert "virtual ms" in captured.err  # diagnostics stay off stdout


def test_run_backend_stdout_matches_sequential(capsys):
    """The documented contract: program output on stdout is byte-identical
    whether the workload runs sequentially or on a runtime backend."""
    assert main(["run", "bank"]) == 0
    seq = capsys.readouterr().out
    assert main(["run", "bank", "--backend", "sim"]) == 0
    sim = capsys.readouterr()
    assert sim.out == seq
    assert "backend=sim" in sim.err


def test_run_json_emits_report(capsys):
    assert main(["run", "bank", "--backend", "sim", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["config"]["workload"]["name"] == "bank"
    assert report["speedup_pct"] > 0
    assert report["messages"] >= 1
    stages = [t["stage"] for t in report["stages"]]
    assert stages == ["compile", "sequential", "plan", "rewrite", "execute"]
    # the distributed program output rides inside the node statistics
    assert any(
        "assets=6597100" in line
        for ns in report["node_stats"]
        for line in ns["stdout"]
    )


def test_run_seq_baseline_ignores_nodes(capsys):
    """--nodes shapes distributed runs only: the centralized baseline always
    runs on the paper's 800 MHz machine, so its numbers don't drift."""
    assert main(["run", "bank"]) == 0
    two = capsys.readouterr().err
    assert main(["run", "bank", "--nodes", "3"]) == 0
    three = capsys.readouterr().err
    assert two == three
    assert "800 MHz baseline" in two


def test_run_seq_json_emits_report(capsys):
    assert main(["run", "bank", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["sequential_s"] > 0
    assert report["distributed_s"] is None  # nothing distributed ran


def test_analyze_command(capsys, tmp_path):
    assert main(["analyze", "bank", "--vcg", str(tmp_path / "vcg")]) == 0
    out = capsys.readouterr().out
    assert "CRG:" in out and "ODG:" in out
    assert (tmp_path / "vcg" / "bank_crg.vcg").exists()
    assert (tmp_path / "vcg" / "bank_odg.vcg").exists()


def test_distribute_command(capsys):
    assert main(["distribute", "method", "--size", "test"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "messages" in out


def test_distribute_json_emits_report(capsys):
    assert main(["distribute", "method", "--size", "test", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["partition"]["nparts"] == 2
    assert report["speedup_pct"] > 0
    assert report["config"]["backend"]["name"] == "sim"


def test_sweep_command(capsys, tmp_path):
    out_file = tmp_path / "sweep.txt"
    assert main([
        "sweep", "--workloads", "bank,method", "--methods", "multilevel,kl",
        "--out", str(out_file),
    ]) == 0
    out = capsys.readouterr().out
    assert "workload" in out and "speedup %" in out
    assert "hit rate" in out  # stage-cache telemetry reported
    assert "4 configs" in out
    assert out_file.read_text().count("\n") >= 6  # header + rule + 4 rows


def test_sweep_json_emits_reports(capsys):
    assert main([
        "sweep", "--workloads", "bank", "--methods", "multilevel,kl", "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["records"]) == 2
    methods = [
        r["config"]["partition"]["method"] for r in payload["records"]
    ]
    assert methods == ["multilevel", "kl"]
    assert all(r["speedup_pct"] > 0 for r in payload["records"])


def test_sweep_rejects_bad_grid_cleanly(capsys):
    assert main(["sweep", "--workloads", "bank", "--methods", "annealing"]) == 2
    assert "unknown partition method" in capsys.readouterr().err
    assert main(["sweep", "--workloads", "bank", "--nodes", "two"]) == 2
    assert "two" in capsys.readouterr().err


def test_codegen_command(capsys):
    assert main(["codegen"]) == 0
    out = capsys.readouterr().out
    assert "mov eax, 4" in out
    assert "mov PC, R14" in out


def test_unknown_workload_rejected(capsys):
    """Unknown plugin names exit cleanly with a did-you-mean, no traceback."""
    assert main(["run", "nosuch"]) == 2
    err = capsys.readouterr().err
    assert "error: unknown workload 'nosuch'" in err
    assert main(["run", "hepsort"]) == 2
    assert "did you mean 'heapsort'" in capsys.readouterr().err


def test_unknown_backend_rejected(capsys):
    assert main(["run", "bank", "--backend", "threds"]) == 2
    err = capsys.readouterr().err
    assert "error: unknown runtime backend 'threds'" in err
    assert "did you mean 'thread'" in err
    assert main(["distribute", "bank", "--backend", "carrier-pigeon"]) == 2
    assert "unknown runtime backend" in capsys.readouterr().err


def test_bench_command_writes_and_gates(tmp_path, capsys):
    """`repro bench`: measures both VM paths, writes BENCH_vm.json, and the
    --check gate passes against the measurement it just produced."""
    out = tmp_path / "BENCH_vm.json"
    assert main(["bench", "--workloads", "bank", "--quick",
                 "--out", str(out)]) == 0
    captured = capsys.readouterr()
    assert "speedup" in captured.out
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.bench_vm/2"
    assert doc["engines"] == ["reference", "fast", "compiled"]
    bank = doc["workloads"]["bank"]
    assert bank["interpreter"]["speedup"] > 1.0
    assert bank["simulator"]["event_reduction"] > 5.0
    assert doc["summary"]["ips_fast"] > doc["summary"]["ips_slow"]

    assert main(["bench", "--workloads", "bank", "--quick", "--out", "",
                 "--check", str(out)]) == 0
    assert "within 30%" in capsys.readouterr().err


def test_bench_check_reads_baseline_before_overwrite(tmp_path, capsys):
    """The documented gate `repro bench --check BENCH_vm.json` writes its
    fresh measurement over the committed baseline by default — the gate
    must compare against the baseline as committed, not against itself."""
    out = tmp_path / "BENCH_vm.json"
    assert main(["bench", "--workloads", "bank", "--quick",
                 "--out", str(out)]) == 0
    capsys.readouterr()
    doc = json.loads(out.read_text())
    doc["summary"]["speedup"] = 1000.0  # unreachable: the gate must fail
    out.write_text(json.dumps(doc))
    assert main(["bench", "--workloads", "bank", "--quick",
                 "--out", str(out), "--check", str(out)]) == 1
    assert "regressed" in capsys.readouterr().err


def test_bench_check_rejects_size_mismatch(tmp_path, capsys):
    """A quick run must not be gated against a full-size baseline — event
    reduction scales with workload size."""
    out = tmp_path / "BENCH_vm.json"
    assert main(["bench", "--workloads", "bank", "--quick",
                 "--out", str(out)]) == 0
    capsys.readouterr()
    doc = json.loads(out.read_text())
    doc["size"] = "bench"
    out.write_text(json.dumps(doc))
    assert main(["bench", "--workloads", "bank", "--quick", "--out", "",
                 "--check", str(out)]) == 1
    assert "size mismatch" in capsys.readouterr().err


def test_parser_lists_all_workloads():
    parser = build_parser()
    help_text = parser.format_help()
    assert "distribute" in help_text and "analyze" in help_text
    assert "bench" in help_text
    assert "fuzz" in help_text


# ------------------------------------------------------------------ fuzz
def test_fuzz_small_budget_clean(capsys):
    assert main(["fuzz", "--seed", "0", "--budget", "4"]) == 0
    captured = capsys.readouterr()
    assert "0 failures" in captured.out
    assert "seed=0" in captured.err  # the seed is always announced


def test_fuzz_json_report(capsys):
    assert main(["fuzz", "--seed", "2", "--budget", "3", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is True
    assert report["scenarios"] == 3
    assert report["seed"] == 2
    assert report["failures"] == []


def test_fuzz_replay_committed_corpus(capsys):
    import pathlib

    corpus = pathlib.Path(__file__).parent / "corpus"
    assert main(["fuzz", "--replay", str(corpus)]) == 0
    err = capsys.readouterr().err
    assert "replayed" in err and "0 divergences" in err


def test_fuzz_replay_missing_path_is_clean_error(capsys):
    assert main(["fuzz", "--replay", "does/not/exist"]) == 2
    assert "error:" in capsys.readouterr().err


def test_fuzz_save_corpus_and_replay_round_trip(tmp_path, capsys):
    corpus_dir = tmp_path / "corpus"
    assert main(["fuzz", "--seed", "5", "--budget", "3",
                 "--save-corpus", str(corpus_dir)]) == 0
    capsys.readouterr()
    saved = list(corpus_dir.glob("*.json"))
    assert saved, "passing scenarios must be saved as golden entries"
    assert main(["fuzz", "--replay", str(corpus_dir)]) == 0


def test_fuzz_injected_fault_fails_with_counterexample(
    tmp_path, capsys, monkeypatch
):
    """The acceptance criterion, end to end through the CLI: an injected VM
    fault makes `repro fuzz` exit 1 and write a minimized, replayable
    counterexample."""
    monkeypatch.setenv("REPRO_VM_INJECT_OVERCHARGE", "1")
    fail_dir = tmp_path / "failures"
    assert main(["fuzz", "--seed", "0", "--budget", "2",
                 "--failures-dir", str(fail_dir)]) == 1
    captured = capsys.readouterr()
    assert "vm.cycles" in captured.out
    saved = list(fail_dir.glob("*.json"))
    assert saved, "minimized counterexample must be written"
    # the saved entry replays: still failing while the fault is in...
    assert main(["fuzz", "--replay", str(saved[0])]) == 1
    capsys.readouterr()
    # ...and clean once the fault is fixed
    monkeypatch.delenv("REPRO_VM_INJECT_OVERCHARGE")
    assert main(["fuzz", "--replay", str(saved[0])]) == 0
