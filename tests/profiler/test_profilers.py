"""Profiler tests: metric correctness and overhead accounting."""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

import pytest

from helpers import compile_mj

from repro.profiler import (
    ALL_METRICS,
    BaselineProfiler,
    DynamicCallGraphProfiler,
    HotMethodsProfiler,
    HotPathsProfiler,
    MemoryProfiler,
    MethodDurationProfiler,
    MethodFrequencyProfiler,
    attach,
    detach,
    make_profiler,
)
from repro.vm.interpreter import Machine, run_sync


SRC = """
class Worker {
    int hot() {
        int s = 0;
        for (int i = 0; i < 500; i++) { s += i; }
        return s;
    }
    int cold() { return 1; }
}
class M {
    static void main(String[] args) {
        Worker w = new Worker();
        for (int i = 0; i < 10; i++) { w.hot(); }
        w.cold();
        int[] big = new int[100];
        Vector v = new Vector();
        v.add(1);
    }
}
"""


def run_with(profiler):
    loaded = compile_mj(SRC)
    machine = Machine(loaded)
    machine.statics = loaded.fresh_statics()
    attach(machine, profiler)
    machine.call_bmethod(loaded.main_method(), None, [None])
    run_sync(machine)
    return machine, profiler


def test_baseline_is_free():
    base, _ = run_with(BaselineProfiler())
    off = compile_mj(SRC)
    machine = Machine(off)
    machine.statics = off.fresh_statics()
    machine.call_bmethod(off.main_method(), None, [None])
    run_sync(machine)
    assert base.cycles == machine.cycles


def test_method_frequency_counts_exact():
    _, prof = run_with(MethodFrequencyProfiler())
    assert prof.counts["Worker.hot"] == 10
    assert prof.counts["Worker.cold"] == 1
    assert prof.counts["M.main"] == 1
    assert prof.counts["Worker.<init>"] == 1


def test_method_duration_hot_dominates():
    machine, prof = run_with(MethodDurationProfiler())
    assert prof.durations["Worker.hot"] > prof.durations["Worker.cold"]
    assert prof.calls["Worker.hot"] == 10
    # main's inclusive duration covers nearly the whole run
    assert prof.durations["M.main"] >= prof.durations["Worker.hot"]
    assert machine.cycles > 0


def test_duration_costs_more_than_frequency():
    m_dur, _ = run_with(MethodDurationProfiler())
    m_freq, _ = run_with(MethodFrequencyProfiler())
    m_base, _ = run_with(BaselineProfiler())
    assert m_dur.cycles > m_freq.cycles > m_base.cycles


def test_hot_methods_sampling_finds_hot():
    _, prof = run_with(HotMethodsProfiler(quantum=500))
    assert prof.samples_taken > 5
    assert prof.counts.get("Worker.hot", 0) >= prof.counts.get("Worker.cold", 0)
    top = max(prof.counts.items(), key=lambda kv: kv[1])
    assert top[0] in ("Worker.hot", "M.main")


def test_hot_paths_sampling_records_stacks():
    _, prof = run_with(HotPathsProfiler(quantum=500))
    assert prof.paths
    hottest = prof.hottest(1)[0][0]
    assert hottest[0] == "M.main"
    # the hot path goes through Worker.hot
    assert any("Worker.hot" in path for path in prof.paths)


def test_dynamic_call_graph_edges():
    _, prof = run_with(DynamicCallGraphProfiler(quantum=500))
    assert ("M.main", "Worker.hot") in prof.edges
    # cold() is too brief to ever be sampled at this quantum -> the dynamic
    # call graph reflects what actually ran long enough to observe
    assert prof.nodes.get("M.main", 0) > 0


def test_memory_profiler_accounts_allocations():
    _, prof = run_with(MemoryProfiler())
    assert prof.count_by_kind.get("Worker") == 1
    assert prof.count_by_kind.get("I[]") == 1
    assert prof.bytes_by_kind["I[]"] >= 100 * 4
    assert prof.count_by_kind.get("Vector") == 1
    assert prof.total_allocations >= 3
    assert prof.total_bytes > 0


def test_sampling_cheaper_than_instrumentation_on_call_dense_code():
    """The paper's Table 3 claim holds for call-dense code (instrumentation
    pays per call, sampling pays per quantum)."""
    call_dense = """
    class T { int f(int x) { return x + 1; } }
    class M {
        static void main(String[] args) {
            T t = new T();
            int acc = 0;
            for (int i = 0; i < 2000; i++) { acc = t.f(acc); }
        }
    }
    """

    def run(profiler):
        loaded = compile_mj(call_dense)
        machine = Machine(loaded)
        machine.statics = loaded.fresh_statics()
        attach(machine, profiler)
        machine.call_bmethod(loaded.main_method(), None, [None])
        run_sync(machine)
        return machine

    m_hot = run(HotMethodsProfiler())
    m_dur = run(MethodDurationProfiler())
    m_base = run(BaselineProfiler())
    assert m_hot.cycles < m_dur.cycles
    assert m_base.cycles < m_hot.cycles


def test_detach_restores_machine():
    loaded = compile_mj(SRC)
    machine = Machine(loaded)
    attach(machine, MemoryProfiler())
    assert machine.heap.alloc_hook is not None
    detach(machine)
    assert machine.profiler is None
    assert machine.heap.alloc_hook is None


def test_factory_covers_all_metrics():
    for metric in ALL_METRICS:
        prof = make_profiler(metric)
        assert prof.name == metric or metric == "baseline"
    with pytest.raises(ValueError):
        make_profiler("heat-map")


def test_reports_format():
    _, prof = run_with(MethodDurationProfiler())
    report = prof.report()
    text = report.format()
    assert "method-duration" in text
    assert "Worker.hot" in text
