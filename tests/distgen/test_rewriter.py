"""Communication-rewriting tests.

The central property: **rewriting preserves semantics** — a rewritten
program run on one machine (local dispatcher resolves every
DependentObject access) produces exactly the original output.
"""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

import pytest

from helpers import compile_mj_raw

from repro.bytecode import opcodes as op
from repro.distgen import build_plan, rewrite_program
from repro.distgen.plan import DistributionPlan
from repro.lang.symbols import DEPENDENT_OBJECT
from repro.vm import load_program, run_main
from repro.workloads import WORKLOADS


def forced_plan(bp, dependent, homes=None) -> DistributionPlan:
    return DistributionPlan(
        nparts=2,
        granularity="class",
        class_home=homes or {c: 0 for c in dependent},
        dependent_classes=set(dependent),
        main_partition=0,
    )


SRC = """
class Account {
    int savings;
    Account(int savings) { this.savings = savings; }
    int getSavings() { return savings; }
    void setSavings(int s) { savings = s; }
}
class M {
    static void main(String[] args) {
        Account account = new Account(100);
        account.setSavings(account.getSavings() + 1);
        Sys.println(account.getSavings() + "," + account.savings);
    }
}
"""


def test_invocation_rewritten_figure8_shape():
    bp, _ = compile_mj_raw(SRC)
    rewritten, stats = rewrite_program(bp, forced_plan(bp, {"Account"}))
    flat = rewritten.classes["M"].methods["main"].flat()
    ops = [(i.op, i.a, i.b) for i in flat]
    # PACK; LDC type; LDC name; INVOKEVIRTUAL DependentObject.access
    idx = next(
        k for k, (o, a, b) in enumerate(ops)
        if o == op.INVOKEVIRTUAL and a == DEPENDENT_OBJECT and b == "access"
    )
    assert ops[idx - 1][0] == op.LDC      # member name
    assert ops[idx - 2][0] == op.LDC      # access type
    assert ops[idx - 3][0] == op.PACK
    assert stats.invocations >= 2


def test_instantiation_rewritten_figure9_shape():
    bp, _ = compile_mj_raw(SRC)
    rewritten, stats = rewrite_program(bp, forced_plan(bp, {"Account"}))
    flat = rewritten.classes["M"].methods["main"].flat()
    ops = [i.op for i in flat]
    assert op.NEW not in [
        i.op for i in flat if i.a == "Account"
    ]
    creates = [
        i for i in flat
        if i.op == op.INVOKESTATIC and i.a == DEPENDENT_OBJECT and i.b == "create"
    ]
    assert len(creates) == 1
    assert stats.instantiations == 1
    # the class name travels as a string constant (ldc "Account")
    assert any(i.op == op.LDC and i.a == "Account" and i.b == "S" for i in flat)


def test_field_access_rewritten():
    bp, _ = compile_mj_raw(SRC)
    rewritten, stats = rewrite_program(bp, forced_plan(bp, {"Account"}))
    assert stats.field_gets >= 1  # account.savings in main


def test_this_accesses_kept_direct():
    bp, _ = compile_mj_raw(SRC)
    rewritten, stats = rewrite_program(bp, forced_plan(bp, {"Account"}))
    # Account.getSavings reads this.savings — must stay a plain GETFIELD
    flat = rewritten.classes["Account"].methods["getSavings"].flat()
    assert any(i.op == op.GETFIELD for i in flat)
    assert not any(i.a == DEPENDENT_OBJECT for i in flat)
    assert stats.this_peepholes >= 2


def test_void_invocations_popped():
    bp, _ = compile_mj_raw(SRC)
    rewritten, _ = rewrite_program(bp, forced_plan(bp, {"Account"}))
    flat = rewritten.classes["M"].methods["main"].flat()
    for k, ins in enumerate(flat):
        if ins.op == op.INVOKEVIRTUAL and ins.b == "access":
            # setSavings (void) must be followed by POP
            prev_name = flat[k - 1].a
            if prev_name == "setSavings":
                assert flat[k + 1].op == op.POP


def test_nparts1_plan_rewrites_nothing():
    bp, _ = compile_mj_raw(SRC)
    plan = build_plan(bp, 1)
    rewritten, stats = rewrite_program(bp, plan)
    assert stats.total == 0
    flat = rewritten.classes["M"].methods["main"].flat()
    assert not any(i.a == DEPENDENT_OBJECT for i in flat)


def test_original_program_untouched():
    bp, _ = compile_mj_raw(SRC)
    before = len(bp.classes["M"].methods["main"].code)
    rewrite_program(bp, forced_plan(bp, {"Account"}))
    assert len(bp.classes["M"].methods["main"].code) == before


def test_subtype_receivers_rewritten():
    src = """
    class Base { int f() { return 1; } }
    class Sub extends Base { int f() { return 2; } }
    class M {
        static void main(String[] args) {
            Base b = new Sub();
            Sys.println(b.f());
        }
    }
    """
    bp, _ = compile_mj_raw(src)
    rewritten, stats = rewrite_program(bp, forced_plan(bp, {"Sub"}))
    flat = rewritten.classes["M"].methods["main"].flat()
    # the call through static type Base must be rewritten because Sub is
    # dependent
    assert any(i.a == DEPENDENT_OBJECT and i.b == "access" for i in flat)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_rewritten_program_semantics_preserved(name):
    """Property: for every workload, rewriting everything as dependent and
    running on one machine (local dispatcher) gives identical output."""
    bp, _ = compile_mj_raw(WORKLOADS[name].source("test"))
    baseline = run_main(load_program(bp)).stdout

    dependent = set(bp.classes)
    plan = forced_plan(bp, dependent, homes={c: 0 for c in bp.classes})
    rewritten, stats = rewrite_program(bp, plan)
    assert stats.total > 0
    out = run_main(load_program(rewritten)).stdout
    assert out == baseline
