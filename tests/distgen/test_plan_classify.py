"""Distribution plan + dependence classification tests."""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

import pytest

from helpers import compile_mj_raw

from repro.analysis import build_crg, rapid_type_analysis
from repro.distgen import build_plan, build_plans, classify_dependent
from repro.distgen.classify import classify_dependent_crg
from repro.errors import AnalysisError
from repro.workloads import WORKLOADS


def bank_bp():
    return compile_mj_raw(WORKLOADS["bank"].source("test"))[0]


def test_plan_covers_all_user_classes():
    bp = bank_bp()
    plan = build_plan(bp, 2, force_distribution=True)
    for cls in bp.classes:
        assert cls in plan.class_home


def test_plan_partitions_in_range():
    bp = bank_bp()
    for n in (1, 2, 3):
        plan = build_plan(bp, n)
        assert all(0 <= p < n for p in plan.class_home.values())
        assert 0 <= plan.main_partition < n


def test_single_partition_has_no_dependents():
    plan = build_plan(bank_bp(), 1)
    assert plan.dependent_classes == set()
    assert plan.rewritten_classes() == set()


def test_pin_main_respected():
    bp = bank_bp()
    plan = build_plan(bp, 2, pin_main_to=1, force_distribution=True)
    assert plan.main_partition == 1


def test_object_granularity_has_site_homes():
    bp = bank_bp()
    plan = build_plan(bp, 2, granularity="object")
    assert plan.granularity == "object"
    assert isinstance(plan.site_home, dict)
    for (method, idx), home in plan.site_home.items():
        assert 0 <= home < 2
        assert "." in method and idx >= 0


def test_home_of_site_falls_back_to_class():
    bp = bank_bp()
    plan = build_plan(bp, 2, granularity="class", force_distribution=True)
    home = plan.home_of_site("Bank.initializeAccounts", 99, "Account")
    assert home == plan.class_home["Account"]


def test_unknown_granularity_rejected():
    with pytest.raises(AnalysisError):
        build_plan(bank_bp(), 2, granularity="module")


def test_offline_plans_for_1_to_n():
    plans = build_plans(bank_bp(), 3)
    assert [p.nparts for p in plans] == [1, 2, 3]


def test_classification_cross_edges_only():
    bp = bank_bp()
    cg = rapid_type_analysis(bp)
    crg = build_crg(cg)
    all_same = {node: 0 for node in crg.nodes}
    assert classify_dependent_crg(crg, all_same) == set()
    # force Bank's dynamic part to the other side: both endpoints of any
    # crossing edge become dependent
    split = dict(all_same)
    split["DT_Bank"] = 1
    dependent = classify_dependent_crg(crg, split)
    assert "Bank" in dependent
    assert "Account" in dependent or "BankMain" in dependent


def test_classify_dispatches_on_graph_type():
    bp = bank_bp()
    cg = rapid_type_analysis(bp)
    crg = build_crg(cg)
    assert classify_dependent(crg, {n: 0 for n in crg.nodes}) == set()


def test_cost_model_colocates_chatty_db():
    bp, _ = compile_mj_raw(WORKLOADS["db"].source("test"))
    plan = build_plan(bp, 2, tpwgts=[0.68, 0.32], pin_main_to=1)
    # db is chatty: the cost model keeps everything with main
    assert len(set(plan.class_home.values())) == 1


def test_cost_model_splits_compute_heavy_crypt():
    bp, _ = compile_mj_raw(WORKLOADS["crypt"].source("test"))
    plan = build_plan(bp, 2, tpwgts=[0.68, 0.32], pin_main_to=1)
    homes = set(plan.class_home.values())
    assert len(homes) == 2  # kernel offloaded away from main
    assert plan.class_home["CryptEngine"] != plan.main_partition
    # the hot engine<->keys pair stays together
    assert plan.class_home["CryptEngine"] == plan.class_home["KeySchedule"]
