"""WeightedGraph unit + property tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.graph.metrics import edgecut, imbalance, is_balanced, part_weights
from repro.graph.wgraph import WeightedGraph


def small_graph():
    g = WeightedGraph(2)
    for i in range(4):
        g.add_node(f"n{i}", [1.0, float(i)])
    g.add_edge(0, 1, 2.0)
    g.add_edge(1, 2, 3.0)
    g.add_edge(2, 3, 1.0)
    return g


def test_basic_counts():
    g = small_graph()
    assert g.num_nodes == 4
    assert g.num_edges == 3
    assert g.degree(1) == 5.0


def test_duplicate_label_rejected():
    g = WeightedGraph()
    g.add_node("a")
    with pytest.raises(PartitionError):
        g.add_node("a")


def test_edge_weight_accumulates():
    g = WeightedGraph()
    g.add_node(); g.add_node()
    g.add_edge(0, 1, 1.0)
    g.add_edge(0, 1, 2.5)
    assert g.adj[0][1] == 3.5
    assert g.num_edges == 1


def test_self_loops_ignored():
    g = WeightedGraph()
    g.add_node()
    g.add_edge(0, 0, 5.0)
    assert g.num_edges == 0


def test_edge_out_of_range():
    g = WeightedGraph()
    g.add_node()
    with pytest.raises(PartitionError):
        g.add_edge(0, 3)


def test_weight_vector_length_checked():
    g = WeightedGraph(2)
    with pytest.raises(PartitionError):
        g.add_node("x", [1.0])


def test_vwgts_matrix():
    g = small_graph()
    vw = g.vwgts()
    assert vw.shape == (4, 2)
    assert vw[2][1] == 2.0
    assert np.allclose(g.total_weight(), [4.0, 6.0])


def test_subgraph_preserves_internal_edges():
    g = small_graph()
    sub, mapping = g.subgraph([1, 2, 3])
    assert sub.num_nodes == 3
    assert sub.num_edges == 2  # 1-2 and 2-3; 0-1 dropped
    assert mapping == [1, 2, 3]
    assert sub.labels == ["n1", "n2", "n3"]


def test_to_networkx_roundtrip_structure():
    g = small_graph()
    nx_graph = g.to_networkx()
    assert nx_graph.number_of_nodes() == 4
    assert nx_graph.number_of_edges() == 3
    assert nx_graph[0][1]["weight"] == 2.0


def test_edgecut_and_weights():
    g = small_graph()
    parts = [0, 0, 1, 1]
    assert edgecut(g, parts) == 3.0
    weights = part_weights(g, parts, 2)
    assert np.allclose(weights[0], [2.0, 1.0])
    assert np.allclose(weights[1], [2.0, 5.0])


def test_edgecut_validates_length():
    with pytest.raises(PartitionError):
        edgecut(small_graph(), [0, 1])


def test_imbalance_perfect_split():
    g = WeightedGraph(1)
    for i in range(4):
        g.add_node(i)
    imb = imbalance(g, [0, 0, 1, 1], 2)
    assert np.allclose(imb, [1.0])
    assert is_balanced(g, [0, 0, 1, 1], 2, [1.05])
    assert not is_balanced(g, [0, 0, 0, 1], 2, [1.05])


@given(st.integers(min_value=2, max_value=12), st.data())
def test_edgecut_matches_networkx_cut_size(n, data):
    rng = np.random.default_rng(data.draw(st.integers(0, 1000)))
    g = WeightedGraph(1)
    for i in range(n):
        g.add_node(i)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < 0.4:
                g.add_edge(u, v, float(rng.integers(1, 5)))
    parts = [int(rng.integers(2)) for _ in range(n)]
    import networkx as nx

    expected = nx.cut_size(
        g.to_networkx(),
        {i for i in range(n) if parts[i] == 0},
        weight="weight",
    )
    assert edgecut(g, parts) == pytest.approx(expected)


def test_from_edges_constructor():
    g = WeightedGraph.from_edges(3, [(0, 1, 2.0), (1, 2, 1.0)])
    assert g.num_nodes == 3 and g.num_edges == 2
