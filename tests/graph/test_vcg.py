"""VCG export tests."""

from repro.graph.vcg import vcg_digraph, vcg_graph
from repro.graph.wgraph import WeightedGraph


def test_digraph_format():
    text = vcg_digraph(
        "t",
        [("a", "ST_A"), ("b", "DT_B")],
        [("a", "b", "use"), ("b", "a", "export")],
    )
    assert text.startswith("graph: {")
    assert text.rstrip().endswith("}")
    assert 'node: { title: "a" label: "ST_A" }' in text
    assert 'sourcename: "a" targetname: "b"' in text
    assert 'label: "use" color: blue' in text
    assert 'label: "export" color: red' in text


def test_quotes_escaped():
    text = vcg_digraph("t", [('x"y', 'la"bel')], [])
    assert '"x\'y"' in text
    assert '"la\'bel"' in text


def test_weighted_graph_with_partitions():
    g = WeightedGraph()
    g.add_node("alpha")
    g.add_node("beta")
    g.add_edge(0, 1, 2.5)
    text = vcg_graph(g, "demo", parts=[0, 1])
    assert 'label: "alpha [0]"' in text
    assert 'label: "beta [1]"' in text
    assert 'label: "2.5"' in text


def test_weighted_graph_without_partitions():
    g = WeightedGraph()
    g.add_node("alpha")
    text = vcg_graph(g)
    assert "[0]" not in text
