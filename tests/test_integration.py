"""End-to-end integration tests across the whole infrastructure."""

import pytest

from repro import compile_source
from repro.distgen import build_plan, rewrite_program
from repro.harness.pipeline import Pipeline
from repro.runtime.cluster import ClusterSpec, NodeSpec, ethernet_100m
from repro.runtime.executor import DistributedExecutor, run_sequential
from repro.vm import run_main
from repro.workloads import WORKLOADS


def test_compile_source_one_shot():
    loaded = compile_source(
        "class M { static void main(String[] a) { Sys.println(6 * 7); } }"
    )
    assert run_main(loaded).stdout == ["42"]


@pytest.mark.parametrize("name", ["crypt", "moldyn", "compress"])
def test_full_pipeline_distributed_correctness(name):
    """source -> analysis -> plan -> rewrite -> 2-node execution == seq."""
    pipe = Pipeline(name, "test")
    s = pipe.speedup()  # raises if outputs diverge
    assert s["distributed_s"] > 0


def test_all_workloads_survive_forced_object_granularity():
    for name in ("bank", "method", "search"):
        pipe = Pipeline(name, "test")
        seq = pipe.run_sequential()
        result, plan, _ = pipe.run_distributed(2, granularity="object")
        assert result.stdout[-1] == seq.stdout[-1], name


def test_four_node_homogeneous_cluster():
    pipe = Pipeline("create", "test")
    cluster = ClusterSpec(
        nodes=[NodeSpec(f"n{i}", 1e9) for i in range(4)], link=ethernet_100m()
    )
    seq = pipe.run_sequential(cluster.nodes[0])
    result, plan, _ = pipe.run_distributed(4, cluster)
    assert result.stdout[-1] == seq.stdout[-1]
    assert plan.nparts == 4


def test_rewrite_then_run_locally_is_identity():
    """A fully rewritten program still runs on a single machine thanks to
    the local dispatcher — offline plans are runnable anywhere."""
    from repro.vm import load_program

    bp, = [compile_source(WORKLOADS["bank"].source("test")).bprogram]
    plan = build_plan(bp, 2, force_distribution=True)
    rewritten, _ = rewrite_program(bp, plan)
    out = run_main(load_program(rewritten)).stdout
    base = run_main(load_program(bp)).stdout
    assert out == base


def test_makespan_never_less_than_busy_time():
    pipe = Pipeline("heapsort", "test")
    result, _, _ = pipe.run_distributed(2)
    for ns in result.node_stats:
        assert result.makespan_s >= ns.busy_s - 1e-12


def test_message_accounting_consistent():
    pipe = Pipeline("method", "test")
    result, _, _ = pipe.run_distributed(2)
    assert result.total_messages == sum(n.messages_sent for n in result.node_stats)
    assert result.total_bytes == sum(n.bytes_sent for n in result.node_stats)
