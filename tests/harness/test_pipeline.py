"""Pipeline / harness integration tests (fast versions of the benches)."""

import pytest

from repro.harness.cache import StageCache
from repro.harness.figures import fig3_fig4, fig5, fig6, fig7, fig8_fig9
from repro.harness.pipeline import Pipeline, compile_workload
from repro.harness.tables import run_profiled
from repro.runtime.cluster import paper_testbed


def test_compile_workload_content_addressed():
    # same source through the same cache -> the identical compiled object;
    # a different cache recompiles from scratch
    w1 = compile_workload("bank", "test")
    w2 = compile_workload("bank", "test")
    assert w1.num_classes == w2.num_classes == 3
    assert w1 is w2
    w3 = compile_workload("bank", "test", cache=StageCache())
    assert w3.bprogram is not w1.bprogram
    assert w3.source_fp == w1.source_fp


def test_analysis_timings_populated():
    pipe = Pipeline("bank", "test")
    a = pipe.analyze()
    t = a.timings
    assert t.construct_crg_ms > 0
    assert t.construct_odg_ms >= 0
    assert t.partition_trg_ms >= 0
    assert t.partition_odg_ms >= 0


def test_analysis_cached():
    pipe = Pipeline("bank", "test")
    assert pipe.analyze() is pipe.analyze()


def test_speedup_validates_output_equality():
    pipe = Pipeline("method", "test")
    s = pipe.speedup()
    assert s["speedup_pct"] > 0
    assert s["messages"] >= 1
    assert s["sequential_s"] > 0 and s["distributed_s"] > 0


def test_plan_uses_cluster_capacities():
    pipe = Pipeline("crypt", "test")
    plan = pipe.plan(2, cluster=paper_testbed())
    # main pinned to the slow machine (node 1 of the paper testbed)
    assert plan.main_partition == 1


def test_run_distributed_returns_stats():
    pipe = Pipeline("heapsort", "test")
    result, plan, stats = pipe.run_distributed(2)
    assert result.makespan_s > 0
    assert len(result.node_stats) == 2
    assert result.stdout
    assert plan.nparts == 2


def test_figures_generate():
    crg_vcg, odg_vcg = fig3_fig4("test")
    assert "graph: {" in crg_vcg and "graph: {" in odg_vcg
    assert "IFCMP_I IConst: 4, IConst: 2, LE, BB4" in fig5()
    assert "ICONST:4" in fig6()
    listings = fig7()
    assert set(listings) == {"x86", "StrongARM"}
    rewrites = fig8_fig9("test")
    assert "invokevirtual DependentObject.access" in rewrites["fig8_after"]
    assert "invokestatic DependentObject.create" in rewrites["fig9_after"]


def test_run_profiled_returns_cycles_and_report():
    cycles, report = run_profiled("bank", "method-frequency", "test")
    assert cycles > 0
    assert report.data["counts"]


def test_map_partitions_fastest_gets_heaviest():
    pipe = Pipeline("heapsort", "test")
    plan = pipe.plan(2, pin_main=False)
    mapped = pipe.map_partitions(plan, paper_testbed())
    assert len(mapped.nodes) == 2
    # the kernel class partition must get the 1.7 GHz machine
    kernel_part = plan.class_home.get("Sorter", 0)
    assert mapped.nodes[kernel_part].cpu_hz == 1.7e9
