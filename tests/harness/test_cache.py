"""Stage-cache correctness: content addressing, identity on hit,
invalidation on any config-field change, and the cached-vs-uncached sweep
regression."""

import pytest

from repro.harness.cache import StageCache, default_cache, fingerprint
from repro.harness.pipeline import Pipeline
from repro.harness.sweep import SweepRunner, sweep_grid
from repro.runtime.cluster import paper_testbed


# ------------------------------------------------------------------ fingerprint
def test_fingerprint_deterministic_and_order_sensitive():
    assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})
    assert fingerprint("x", "y") != fingerprint("y", "x")
    assert fingerprint("xy") != fingerprint("x", "y")  # separator matters
    assert fingerprint({"k": 2}) != fingerprint({"k": 3})


# ------------------------------------------------------------------ core table
def test_hit_returns_identical_object():
    cache = StageCache()
    a = cache.get_or_build("stage", {"k": 1}, lambda: object())
    b = cache.get_or_build("stage", {"k": 1}, lambda: object())
    assert a is b
    assert cache.counts() == (1, 1)


def test_any_key_field_change_misses():
    cache = StageCache()
    base = {"nparts": 2, "method": "multilevel", "ubfactor": 1.1, "seed": 17}
    first = cache.get_or_build("plan", base, lambda: object())
    for field, value in (
        ("nparts", 3),
        ("method", "kl"),
        ("ubfactor", 1.3),
        ("seed", 18),
    ):
        changed = dict(base, **{field: value})
        other = cache.get_or_build("plan", changed, lambda: object())
        assert other is not first, f"changing {field} must miss"
    stats = cache.stats()["plan"]
    assert stats.misses == 5 and stats.hits == 0


def test_stage_namespaces_are_disjoint():
    cache = StageCache()
    a = cache.get_or_build("compile", {"k": 1}, lambda: "A")
    b = cache.get_or_build("analysis", {"k": 1}, lambda: "B")
    assert (a, b) == ("A", "B")
    assert len(cache) == 2


def test_clear_resets_store_and_stats():
    cache = StageCache()
    cache.get_or_build("s", 1, lambda: 1)
    cache.get_or_build("s", 1, lambda: 1)
    cache.clear()
    assert len(cache) == 0
    assert cache.counts() == (0, 0)


def test_summary_reports_hit_rate():
    cache = StageCache()
    cache.get_or_build("compile", 1, lambda: 1)
    cache.get_or_build("compile", 1, lambda: 1)
    text = cache.summary()
    assert "hit rate" in text and "compile" in text


def test_default_cache_is_process_singleton():
    assert default_cache() is default_cache()


# ------------------------------------------------------------------ pipeline keys
def test_pipeline_analysis_keyed_by_config():
    cache = StageCache()
    pipe = Pipeline("bank", "test", cache=cache)
    a1 = pipe.analyze(nparts=2, method="multilevel")
    assert pipe.analyze(nparts=2, method="multilevel") is a1
    assert pipe.analyze(nparts=3, method="multilevel") is not a1
    assert pipe.analyze(nparts=2, method="kl") is not a1


def test_pipeline_plan_keyed_by_config():
    cache = StageCache()
    pipe = Pipeline("bank", "test", cache=cache)
    p1 = pipe.plan(2)
    assert pipe.plan(2) is p1
    assert pipe.plan(2, method="kl") is not p1
    assert pipe.plan(3) is not p1
    assert pipe.plan(2, cluster=paper_testbed()) is not p1


def test_pipeline_sequential_keyed_by_node_speed():
    cache = StageCache()
    pipe = Pipeline("bank", "test", cache=cache)
    nodes = paper_testbed().nodes
    slow = pipe.run_sequential(nodes[1])
    assert pipe.run_sequential(nodes[1]) is slow
    fast = pipe.run_sequential(nodes[0])
    assert fast is not slow
    assert fast.cycles == slow.cycles  # same program, different clock
    assert fast.exec_time_s < slow.exec_time_s


def test_two_pipelines_share_one_cache():
    cache = StageCache()
    p1 = Pipeline("method", "test", cache=cache)
    p2 = Pipeline("method", "test", cache=cache)
    assert p1.work is p2.work
    assert p1.analyze() is p2.analyze()


# ------------------------------------------------------------------ regression
def test_cached_sweep_table_byte_identical_to_uncached():
    grid = sweep_grid(
        workloads=["bank", "method"], methods=("multilevel", "roundrobin")
    )
    cache = StageCache()
    cold = SweepRunner(grid, cache=cache).run()
    warm = SweepRunner(grid, cache=cache).run()
    fresh = SweepRunner(grid, cache=StageCache()).run()
    assert warm.cache_misses == 0
    assert warm.table() == cold.table()  # fully cached == computed
    assert fresh.table() == cold.table()  # independent recompute agrees
