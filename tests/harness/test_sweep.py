"""SweepRunner tests: grid construction, record sanity, process-pool
parity, and the acceptance benchmark — a >= 12-config sweep whose repeat
run is at least 2x faster thanks to the stage cache."""

import pytest

from repro.errors import ConfigError, ReproError, UnknownPluginError
from repro.harness.cache import StageCache
from repro.harness.sweep import (
    NETWORKS,
    SweepConfig,
    SweepError,
    SweepRunner,
    build_cluster,
    run_config,
    sweep_grid,
)
from repro.workloads import TABLE1_ORDER


# ------------------------------------------------------------------ grid
def test_sweep_grid_is_full_cross_product():
    grid = sweep_grid(
        workloads=["bank", "crypt"],
        methods=("multilevel", "kl"),
        cluster_sizes=(2, 3),
        networks=("ethernet_100m", "ethernet_1g"),
    )
    assert len(grid) == 2 * 2 * 2 * 2
    assert len(set(grid)) == len(grid)  # frozen + hashable, all distinct


def test_sweep_grid_defaults_to_table1_workloads():
    grid = sweep_grid()
    assert [c.workload for c in grid] == list(TABLE1_ORDER)


def test_config_validation():
    # unknown plugin names share one failure mode across every axis
    with pytest.raises(UnknownPluginError, match="unknown workload"):
        SweepConfig(workload="nosuch")
    with pytest.raises(UnknownPluginError, match="unknown network preset"):
        SweepConfig(workload="bank", network="carrier-pigeon")
    with pytest.raises(ConfigError, match="nparts"):
        SweepConfig(workload="bank", nparts=0)
    with pytest.raises(UnknownPluginError, match="unknown runtime backend"):
        SweepConfig(workload="bank", backend="carrier-pigeon")
    with pytest.raises(UnknownPluginError, match="unknown partition method"):
        SweepConfig(workload="bank", method="annealing")
    assert issubclass(SweepError, ReproError)
    assert issubclass(UnknownPluginError, ReproError)


def test_backend_is_a_sweep_axis():
    grid = sweep_grid(
        workloads=["bank"], methods=("multilevel",), backends=("sim", "thread")
    )
    assert [c.backend for c in grid] == ["sim", "thread"]
    assert all(c.label().endswith(c.backend) for c in grid)


def test_run_config_on_thread_backend_reports_wall_time():
    rec = run_config(
        SweepConfig(workload="bank", backend="thread"), cache=StageCache()
    )
    assert rec.distributed_s > 0
    assert rec.messages >= 1
    # wall-clock executions never come from the execute cache: a repeat run
    # really executes (hits only on the pure upstream stages)
    cache = StageCache()
    run_config(SweepConfig(workload="bank", backend="thread"), cache=cache)
    h0, m0 = cache.counts()
    run_config(SweepConfig(workload="bank", backend="thread"), cache=cache)
    h1, m1 = cache.counts()
    assert m1 == m0  # no new misses: upstream all cached
    assert h1 > h0


def test_empty_grid_rejected():
    with pytest.raises(SweepError):
        SweepRunner([])


def test_explicit_cache_with_pool_rejected():
    grid = sweep_grid(workloads=["bank"])
    with pytest.raises(SweepError):
        SweepRunner(grid, workers=2, cache=StageCache())


def test_build_cluster_respects_network_and_size():
    two = build_cluster(SweepConfig(workload="bank", network="wireless_80211b"))
    assert two.size == 2
    assert two.link.latency_s == NETWORKS["wireless_80211b"]().latency_s
    # nparts == 2 keeps the paper's heterogeneous testbed
    assert {n.cpu_hz for n in two.nodes} == {1.7e9, 800e6}
    four = build_cluster(SweepConfig(workload="bank", nparts=4))
    assert four.size == 4


# ------------------------------------------------------------------ records
def test_run_config_record_is_sane():
    rec = run_config(SweepConfig(workload="method"), cache=StageCache())
    assert rec.sequential_s > 0 and rec.distributed_s > 0
    assert rec.speedup_pct == pytest.approx(
        100.0 * rec.sequential_s / rec.distributed_s
    )
    assert rec.messages >= 1
    assert len(rec.node_stats) == 2
    agg = rec.aggregate
    assert agg["messages_sent"] == rec.messages
    assert 0.0 < agg["busy_frac"] <= 1.0
    assert rec.cache_misses > 0  # cold cache built every stage


@pytest.mark.parametrize("method", ("spectral", "random"))
def test_run_config_divergence_guard_covers_all_methods(method):
    """run_config raises if distributed output diverges from the baseline;
    the methods outside the differential grid go through it cleanly too."""
    rec = run_config(
        SweepConfig(workload="bank", method=method), cache=StageCache()
    )
    assert rec.distributed_s > 0


# ------------------------------------------------------------------ acceptance
def test_sweep_of_12_configs_repeat_run_2x_faster():
    """The ISSUE acceptance criterion: >= 12 (workload x partitioner x
    cluster) configs through SweepRunner, hit rate reported, and a repeated
    run at least 2x faster from caching (coarse margin: the warm run is
    observed ~1000x faster, so 2x has huge headroom)."""
    grid = sweep_grid(
        workloads=["bank", "method", "crypt", "heapsort"],
        methods=("multilevel", "kl", "roundrobin"),
        cluster_sizes=(2,),
    )
    assert len(grid) >= 12
    cache = StageCache()
    cold = SweepRunner(grid, cache=cache).run()
    warm = SweepRunner(grid, cache=cache).run()

    assert len(cold.records) == len(grid)
    # hit-rate telemetry is reported and consistent
    assert "hit rate" in cold.summary() and "hit rate" in warm.summary()
    assert warm.cache_hit_rate == 1.0
    assert warm.cache_misses == 0
    # the cached repeat is at least 2x faster wall-clock
    assert warm.elapsed_s * 2.0 <= cold.elapsed_s, (
        f"cold={cold.elapsed_s:.3f}s warm={warm.elapsed_s:.3f}s"
    )
    # and numerically identical
    assert warm.table() == cold.table()


def test_cold_sweep_still_shares_upstream_stages():
    """Within one cold sweep, varying only the partitioner reuses the
    compile/analysis/sequential stages: hits occur even on the first run."""
    grid = sweep_grid(workloads=["bank"], methods=("multilevel", "kl"))
    result = SweepRunner(grid, cache=StageCache()).run()
    assert result.cache_hits > 0


# ------------------------------------------------------------------ parallel
def test_process_pool_matches_serial():
    grid = sweep_grid(workloads=["bank", "method"], methods=("multilevel",))
    serial = SweepRunner(grid, cache=StageCache()).run()
    pooled = SweepRunner(grid, workers=2).run()
    assert pooled.table() == serial.table()
    assert [r.config for r in pooled.records] == [r.config for r in serial.records]
