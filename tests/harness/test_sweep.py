"""SweepRunner tests: grid construction, record sanity, process-pool
parity, and the acceptance benchmark — a >= 12-config sweep whose repeat
run is at least 2x faster thanks to the stage cache."""

import pytest

from repro.errors import ConfigError, ReproError, UnknownPluginError
from repro.harness.cache import StageCache
from repro.harness.sweep import (
    NETWORKS,
    SweepConfig,
    SweepError,
    SweepRunner,
    build_cluster,
    run_config,
    sweep_grid,
)
from repro.workloads import TABLE1_ORDER


# ------------------------------------------------------------------ grid
def test_sweep_grid_is_full_cross_product():
    grid = sweep_grid(
        workloads=["bank", "crypt"],
        methods=("multilevel", "kl"),
        cluster_sizes=(2, 3),
        networks=("ethernet_100m", "ethernet_1g"),
    )
    assert len(grid) == 2 * 2 * 2 * 2
    assert len(set(grid)) == len(grid)  # frozen + hashable, all distinct


def test_sweep_grid_defaults_to_table1_workloads():
    grid = sweep_grid()
    assert [c.workload for c in grid] == list(TABLE1_ORDER)


def test_config_validation():
    # unknown plugin names share one failure mode across every axis
    with pytest.raises(UnknownPluginError, match="unknown workload"):
        SweepConfig(workload="nosuch")
    with pytest.raises(UnknownPluginError, match="unknown network preset"):
        SweepConfig(workload="bank", network="carrier-pigeon")
    with pytest.raises(ConfigError, match="nparts"):
        SweepConfig(workload="bank", nparts=0)
    with pytest.raises(UnknownPluginError, match="unknown runtime backend"):
        SweepConfig(workload="bank", backend="carrier-pigeon")
    with pytest.raises(UnknownPluginError, match="unknown partition method"):
        SweepConfig(workload="bank", method="annealing")
    assert issubclass(SweepError, ReproError)
    assert issubclass(UnknownPluginError, ReproError)


def test_backend_is_a_sweep_axis():
    grid = sweep_grid(
        workloads=["bank"], methods=("multilevel",), backends=("sim", "thread")
    )
    assert [c.backend for c in grid] == ["sim", "thread"]
    assert all(c.label().endswith(c.backend) for c in grid)


def test_run_config_on_thread_backend_reports_wall_time():
    rec = run_config(
        SweepConfig(workload="bank", backend="thread"), cache=StageCache()
    )
    assert rec.distributed_s > 0
    assert rec.messages >= 1
    # wall-clock executions never come from the execute cache: a repeat run
    # really executes (hits only on the pure upstream stages)
    cache = StageCache()
    run_config(SweepConfig(workload="bank", backend="thread"), cache=cache)
    h0, m0 = cache.counts()
    run_config(SweepConfig(workload="bank", backend="thread"), cache=cache)
    h1, m1 = cache.counts()
    assert m1 == m0  # no new misses: upstream all cached
    assert h1 > h0


def test_empty_grid_rejected():
    with pytest.raises(SweepError):
        SweepRunner([])


def test_explicit_cache_with_pool_rejected():
    grid = sweep_grid(workloads=["bank"])
    with pytest.raises(SweepError):
        SweepRunner(grid, workers=2, cache=StageCache())


def test_build_cluster_respects_network_and_size():
    two = build_cluster(SweepConfig(workload="bank", network="wireless_80211b"))
    assert two.size == 2
    assert two.link.latency_s == NETWORKS["wireless_80211b"]().latency_s
    # nparts == 2 keeps the paper's heterogeneous testbed
    assert {n.cpu_hz for n in two.nodes} == {1.7e9, 800e6}
    four = build_cluster(SweepConfig(workload="bank", nparts=4))
    assert four.size == 4


# ------------------------------------------------------------------ records
def test_run_config_record_is_sane():
    rec = run_config(SweepConfig(workload="method"), cache=StageCache())
    assert rec.sequential_s > 0 and rec.distributed_s > 0
    assert rec.speedup_pct == pytest.approx(
        100.0 * rec.sequential_s / rec.distributed_s
    )
    assert rec.messages >= 1
    assert len(rec.node_stats) == 2
    agg = rec.aggregate
    assert agg["messages_sent"] == rec.messages
    assert 0.0 < agg["busy_frac"] <= 1.0
    assert rec.cache_misses > 0  # cold cache built every stage


@pytest.mark.parametrize("method", ("spectral", "random"))
def test_run_config_divergence_guard_covers_all_methods(method):
    """run_config raises if distributed output diverges from the baseline;
    the methods outside the differential grid go through it cleanly too."""
    rec = run_config(
        SweepConfig(workload="bank", method=method), cache=StageCache()
    )
    assert rec.distributed_s > 0


# ------------------------------------------------------------------ acceptance
def test_sweep_of_12_configs_repeat_run_2x_faster():
    """The ISSUE acceptance criterion: >= 12 (workload x partitioner x
    cluster) configs through SweepRunner, hit rate reported, and a repeated
    run at least 2x faster from caching (coarse margin: the warm run is
    observed ~1000x faster, so 2x has huge headroom)."""
    grid = sweep_grid(
        workloads=["bank", "method", "crypt", "heapsort"],
        methods=("multilevel", "kl", "roundrobin"),
        cluster_sizes=(2,),
    )
    assert len(grid) >= 12
    cache = StageCache()
    cold = SweepRunner(grid, cache=cache).run()
    warm = SweepRunner(grid, cache=cache).run()

    assert len(cold.records) == len(grid)
    # hit-rate telemetry is reported and consistent
    assert "hit rate" in cold.summary() and "hit rate" in warm.summary()
    assert warm.cache_hit_rate == 1.0
    assert warm.cache_misses == 0
    # the cached repeat is at least 2x faster wall-clock
    assert warm.elapsed_s * 2.0 <= cold.elapsed_s, (
        f"cold={cold.elapsed_s:.3f}s warm={warm.elapsed_s:.3f}s"
    )
    # and numerically identical
    assert warm.table() == cold.table()


def test_cold_sweep_still_shares_upstream_stages():
    """Within one cold sweep, varying only the partitioner reuses the
    compile/analysis/sequential stages: hits occur even on the first run."""
    grid = sweep_grid(workloads=["bank"], methods=("multilevel", "kl"))
    result = SweepRunner(grid, cache=StageCache()).run()
    assert result.cache_hits > 0


# ------------------------------------------------------------------ parallel
def test_process_pool_matches_serial():
    grid = sweep_grid(workloads=["bank", "method"], methods=("multilevel",))
    serial = SweepRunner(grid, cache=StageCache()).run()
    pooled = SweepRunner(grid, workers=2).run()
    assert pooled.table() == serial.table()
    assert [r.config for r in pooled.records] == [r.config for r in serial.records]


# ------------------------------------------------------------- fault isolation
def _poison(monkeypatch, bad_workload, action="raise"):
    """Make Experiment.run fail for one workload.  Patched on the sweep
    module, so (fork-started) pool workers inherit it too."""
    import os

    from repro.harness import sweep as sweep_mod

    real = sweep_mod.Experiment

    class PoisonedExperiment(real):
        def run(self):
            if self.config.workload.name == bad_workload:
                if action == "die":  # vanish like an OOM-killed worker
                    os._exit(17)
                raise ReproError("poisoned config")
            return super().run()

    monkeypatch.setattr(sweep_mod, "Experiment", PoisonedExperiment)


def test_serial_sweep_survives_poisoned_config(monkeypatch):
    _poison(monkeypatch, "method")
    grid = sweep_grid(workloads=["bank", "method", "crypt"])
    result = SweepRunner(grid, cache=StageCache()).run()
    assert [r.config.workload for r in result.records] == [
        "bank", "method", "crypt"
    ]  # grid order survives the failure
    bad = result.records[1]
    assert not bad.ok and "poisoned config" in bad.error
    assert bad.distributed_s == 0.0 and bad.node_stats == []
    good = [result.records[0], result.records[2]]
    assert all(r.ok and r.distributed_s > 0 for r in good)
    assert "1 config(s) FAILED" in result.summary()
    assert result.table().count("ERROR") == 1
    errs = result.to_dict()["errors"]
    assert len(errs) == 1 and errs[0]["config"]["workload"] == "method"


def test_pooled_sweep_survives_poisoned_config(monkeypatch):
    _poison(monkeypatch, "method")
    grid = sweep_grid(workloads=["bank", "method", "crypt"])
    result = SweepRunner(grid, workers=2).run()
    assert len(result.records) == len(grid)
    statuses = {r.config.workload: r.ok for r in result.records}
    assert statuses == {"bank": True, "method": False, "crypt": True}


def test_pooled_sweep_survives_dead_worker(monkeypatch):
    """A worker that vanishes mid-config (BrokenProcessPool) costs at most
    the unfinished grid points — the sweep still returns one record per
    config, with errors marked, instead of raising."""
    _poison(monkeypatch, "method", action="die")
    grid = sweep_grid(workloads=["bank", "method", "crypt"])
    result = SweepRunner(grid, workers=2).run()
    assert len(result.records) == len(grid)
    assert [r.config for r in result.records] == list(grid)
    bad = next(r for r in result.records if r.config.workload == "method")
    assert not bad.ok
    assert sum(1 for r in result.records if not r.ok) >= 1


def test_pooled_sweep_carries_cache_counters_back():
    """Regression guard: per-config cache hit/miss deltas measured inside
    pool workers must ride back on the records (a pooled sweep whose
    telemetry read 0 hits would hide the warm-cache effect entirely)."""
    grid = sweep_grid(
        workloads=["bank"],
        methods=("multilevel", "kl", "roundrobin"),
        networks=("ethernet_100m", "ethernet_1g"),
    )
    assert len(grid) == 6
    result = SweepRunner(grid, workers=2).run()
    assert all(r.ok for r in result.records)
    assert result.cache_misses > 0       # cold caches did real work
    assert result.cache_hits > 0         # later configs hit the warm shard
    assert "hit rate" in result.summary()


# ----------------------------------------------------- bind failure (tcp cells)
def test_tcp_bind_failure_becomes_per_config_error_record():
    """PR 6 hardening, extended to the tcp backend: a grid cell whose
    roster port is already occupied must produce a per-config error record
    — the sweep keeps going and the other cells stay clean."""
    import socket

    blocker = socket.socket()
    blocker.bind(("127.0.0.1", 0))
    blocker.listen(1)
    port = blocker.getsockname()[1]
    spare = socket.socket()
    spare.bind(("127.0.0.1", 0))
    free = spare.getsockname()[1]
    spare.close()
    try:
        grid = sweep_grid(
            workloads=["bank"],
            methods=("multilevel",),
            backends=("sim", "tcp"),
            roster=f"127.0.0.1:{port},127.0.0.1:{free}",
        )
        result = SweepRunner(grid, cache=StageCache()).run()
    finally:
        blocker.close()
    assert len(result.records) == 2
    by_backend = {r.config.backend: r for r in result.records}
    assert by_backend["sim"].ok
    bad = by_backend["tcp"]
    assert not bad.ok
    assert "cannot bind" in bad.error and str(port) in bad.error
    assert "1 config(s) FAILED" in result.summary()
    errs = result.to_dict()["errors"]
    assert len(errs) == 1 and errs[0]["config"]["backend"] == "tcp"


def test_tcp_bind_failure_does_not_poison_the_pool():
    import socket

    blocker = socket.socket()
    blocker.bind(("127.0.0.1", 0))
    blocker.listen(1)
    port = blocker.getsockname()[1]
    spare = socket.socket()
    spare.bind(("127.0.0.1", 0))
    free = spare.getsockname()[1]
    spare.close()
    try:
        grid = sweep_grid(
            workloads=["bank", "method"],
            methods=("multilevel",),
            backends=("sim", "tcp"),
            roster=f"127.0.0.1:{port},127.0.0.1:{free}",
        )
        result = SweepRunner(grid, workers=2).run()
    finally:
        blocker.close()
    assert len(result.records) == len(grid)
    statuses = {
        (r.config.workload, r.config.backend): r.ok for r in result.records
    }
    # every tcp cell fails on the occupied port; every sim cell survives
    assert statuses == {
        ("bank", "sim"): True, ("bank", "tcp"): False,
        ("method", "sim"): True, ("method", "tcp"): False,
    }


# -------------------------------------------------------- service-grid columns
def test_serve_sweep_reports_throughput_and_latency_columns():
    """The service acceptance criterion: a --serve sweep over the open-loop
    service workload reports throughput and p50/p95/p99 latency per cell."""
    grid = sweep_grid(
        workloads=["service_bank"],
        methods=("multilevel",),
        backends=("sim",),
        serve=True,
    )
    assert all(c.serve for c in grid)
    assert grid[0].label().endswith("/serve")
    result = SweepRunner(grid, cache=StageCache()).run()
    rec = result.records[0]
    assert rec.ok
    rep = rec.report
    assert rep.throughput_rps > 0
    assert rep.latency_count > 0
    assert 0 < rep.latency_p50_ms <= rep.latency_p95_ms <= rep.latency_p99_ms
    table = result.table()
    for col in ("tput r/s", "p50 ms", "p95 ms", "p99 ms"):
        assert col in table
    # the cell's row carries real numbers, not the blank placeholder
    row = next(ln for ln in table.splitlines() if "service_bank" in ln)
    assert " - " not in row
