"""Differential test harness: sequential vs distributed execution.

For every workload in ``repro.workloads`` and every plan produced by the
``kl``, ``multilevel``, ``spectral`` and ``roundrobin`` partitioners, the
distributed execution must compute exactly what the centralized baseline
computes:

* the same final result value,
* the same final output line (printed by ``main`` on its home node),
* the same multiset of stdout lines (distribution may interleave the
  per-node output streams, but every line is printed exactly once),
* the same total number of user heap objects (proxies for remote objects
  are VM-internal and never inflate the user object count).

The same equivalence holds across runtime *backends*: the simulator, the
thread backend, the multiprocessing backend and the real-socket tcp
backend must produce byte-identical program output to sequential execution
for every workload (the acceptance criterion for the pluggable transport
layer).  ``REPRO_DIFF_BACKENDS`` narrows the backend set — CI uses it to
fan the suite over a matrix.

The Experiment API must be indistinguishable from the legacy pipeline:
for every workload × partitioner × {sim, thread}, ``Experiment.run()``
produces byte-identical program output and equal NodeStats to
``Pipeline.run_distributed`` (the api_redesign acceptance criterion).

All pipelines share the process-default stage cache, so the grid compiles
and analyzes each workload once.
"""

import dataclasses
import os

import pytest

from repro.api import Experiment
from repro.harness.pipeline import Pipeline
from repro.runtime.cluster import paper_testbed
from repro.runtime.executor import DistributedExecutor
from repro.vm.interpreter import forced_slow_path
from repro.workloads import WORKLOADS

PLAN_METHODS = ("kl", "multilevel", "spectral", "roundrobin")

BACKENDS = tuple(
    b.strip()
    for b in os.environ.get(
        "REPRO_DIFF_BACKENDS", "sim,thread,process,tcp"
    ).split(",")
    if b.strip()
)

#: backends the Experiment-vs-legacy grid covers (the api_redesign
#: acceptance criterion: sim + thread), narrowed by the same env filter
API_BACKENDS = tuple(b for b in ("sim", "thread") if b in BACKENDS)


@pytest.mark.parametrize("method", PLAN_METHODS)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_distributed_matches_sequential(workload, method):
    pipe = Pipeline(workload, "test")
    seq = pipe.run_sequential()
    dist, plan, _ = pipe.run_distributed(2, method=method)

    assert plan.method == method
    assert plan.nparts == 2
    assert dist.result == seq.result
    assert seq.stdout, f"{workload}: sequential run produced no output"
    assert dist.stdout[-1] == seq.stdout[-1], (
        f"{workload}/{method}: final line diverged"
    )
    assert sorted(dist.stdout) == sorted(seq.stdout), (
        f"{workload}/{method}: stdout multiset diverged"
    )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_backend_output_byte_identical(workload, backend):
    """sequential == sim == thread == process, byte for byte: every backend
    runs the same plan and must print exactly the sequential output and
    compute the same result."""
    pipe = Pipeline(workload, "test")
    seq = pipe.run_sequential()
    dist, plan, _ = pipe.run_distributed(2, method="multilevel", backend=backend)

    assert plan.nparts == 2
    assert dist.result == seq.result
    assert dist.stdout == seq.stdout, (
        f"{workload}/{backend}: program output diverged"
    )
    if backend != "sim":
        # wall-clock backends must report real measurements
        assert dist.makespan_s > 0.0
    assert len(dist.node_stats) == 2


@pytest.mark.parametrize("backend", API_BACKENDS)
@pytest.mark.parametrize("method", PLAN_METHODS)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_experiment_matches_legacy_pipeline(workload, method, backend):
    """The api_redesign acceptance criterion: the Experiment façade produces
    byte-identical program output and equal NodeStats to the legacy
    ``Pipeline.run_distributed`` path for every workload × partitioner ×
    {sim, thread}.  On the deterministic simulator *everything* must match
    exactly; on the wall-clock thread backend the timing fields naturally
    differ between two real executions, so equality is asserted on every
    deterministic NodeStats field."""
    pipe = Pipeline(workload, "test")
    legacy_dist, legacy_plan, _ = pipe.run_distributed(
        2, method=method, backend=backend
    )

    exp = Experiment.from_options(workload, method=method, backend=backend)
    res = exp.run()

    assert res.plan is legacy_plan  # same engine, same cache key
    assert res.distributed.stdout == legacy_dist.stdout
    assert res.distributed.result == legacy_dist.result
    if backend == "sim":
        assert res.distributed.node_stats == legacy_dist.node_stats
        assert res.distributed.makespan_s == legacy_dist.makespan_s
        assert res.distributed.total_messages == legacy_dist.total_messages
        assert res.distributed.total_bytes == legacy_dist.total_bytes
    else:
        assert len(res.distributed.node_stats) == len(legacy_dist.node_stats)
        for ours, theirs in zip(
            res.distributed.node_stats, legacy_dist.node_stats
        ):
            assert ours.name == theirs.name
            assert ours.messages_sent == theirs.messages_sent
            assert ours.bytes_sent == theirs.bytes_sent
            assert ours.requests_served == theirs.requests_served
            assert ours.heap_objects == theirs.heap_objects
            assert ours.heap_bytes == theirs.heap_bytes
            assert ours.stdout == theirs.stdout


def _run_on_path(workload, method, backend, slow):
    """One distributed run straight through the executor (bypassing the
    ``execute`` stage cache, which would otherwise replay the first path's
    result) on the chosen VM engine."""
    pipe = Pipeline(workload, "test")
    cluster = paper_testbed()
    plan = pipe.plan(2, method=method, cluster=cluster)
    rewritten, _, _ = pipe.rewrite(plan)
    # forced_slow_path also exports REPRO_VM_SLOW, so process-backend
    # workers pick the engine up even under spawn-style multiprocessing
    with forced_slow_path(slow):
        return DistributedExecutor(
            rewritten, plan, cluster, backend=backend
        ).run()


@pytest.mark.skipif("sim" not in BACKENDS, reason="sim excluded by env")
@pytest.mark.parametrize("method", PLAN_METHODS)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_fast_path_matches_reference_sim(workload, method):
    """The perf_opt acceptance criterion, simulator half: the cost-batched
    fast path must be **byte-identical** to the per-step reference oracle —
    stdout, result, every NodeStats field (including the float clocks),
    makespan and message totals — for every workload × partitioner."""
    fast = _run_on_path(workload, method, "sim", slow=False)
    ref = _run_on_path(workload, method, "sim", slow=True)

    assert fast.stdout == ref.stdout
    assert fast.result == ref.result
    assert fast.total_messages == ref.total_messages
    assert fast.total_bytes == ref.total_bytes
    assert fast.makespan_s == ref.makespan_s
    assert [dataclasses.asdict(s) for s in fast.node_stats] == [
        dataclasses.asdict(s) for s in ref.node_stats
    ]


@pytest.mark.parametrize("backend", tuple(b for b in BACKENDS if b != "sim"))
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_fast_path_matches_reference_wallclock(workload, backend):
    """Fast vs reference path on the wall-clock backends: every
    deterministic observable must match (clocks are real time and differ
    between two executions by nature)."""
    fast = _run_on_path(workload, "multilevel", backend, slow=False)
    ref = _run_on_path(workload, "multilevel", backend, slow=True)

    assert fast.stdout == ref.stdout
    assert fast.result == ref.result
    assert fast.total_messages == ref.total_messages
    assert fast.total_bytes == ref.total_bytes
    for ours, theirs in zip(fast.node_stats, ref.node_stats):
        assert ours.name == theirs.name
        assert ours.messages_sent == theirs.messages_sent
        assert ours.bytes_sent == theirs.bytes_sent
        assert ours.requests_served == theirs.requests_served
        assert ours.heap_objects == theirs.heap_objects
        assert ours.heap_bytes == theirs.heap_bytes
        assert ours.stdout == theirs.stdout


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_heap_population_matches_sequential(workload):
    """Every ``new`` the sequential run executes happens exactly once
    somewhere in the cluster too: the distributed heaps together hold at
    least the sequential census (proxies may add, never subtract)."""
    from repro.vm.heap import Heap
    from repro.vm.interpreter import Machine, run_sync

    pipe = Pipeline(workload, "test")
    machine = Machine(pipe.work.loaded, heap=Heap())
    machine.statics = pipe.work.loaded.fresh_statics()
    machine.call_bmethod(pipe.work.loaded.main_method(), None, [None])
    run_sync(machine)

    dist, _, _ = pipe.run_distributed(2, method="multilevel")
    dist_objects = sum(ns.heap_objects for ns in dist.node_stats)
    assert dist_objects >= machine.heap.allocated_objects, (
        f"{workload}: distributed heaps lost objects"
    )
