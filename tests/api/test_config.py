"""Config dataclasses: validation and dict/JSON round-tripping."""

import json

import pytest

from repro.api import (
    BackendConfig,
    ClusterConfig,
    ConfigError,
    ExperimentConfig,
    PartitionConfig,
    UnknownPluginError,
    WorkloadSpec,
)

ALL_FLAT_CONFIGS = (
    WorkloadSpec(name="crypt", size="bench"),
    PartitionConfig(method="kl", nparts=3, granularity="object", pin_main=False),
    ClusterConfig(nodes=4, network="wireless_80211b"),
    ClusterConfig(),  # nodes=None must survive the round trip too
    BackendConfig(name="thread", async_writes=True, max_events=1000),
)


@pytest.mark.parametrize("cfg", ALL_FLAT_CONFIGS, ids=lambda c: type(c).__name__)
def test_flat_config_dict_round_trip(cfg):
    data = cfg.to_dict()
    assert type(cfg).from_dict(data) == cfg
    # and via JSON text
    assert type(cfg).from_json(cfg.to_json()) == cfg
    # to_json is valid, key-sorted JSON
    assert json.loads(cfg.to_json()) == data


def test_experiment_config_round_trip():
    cfg = ExperimentConfig.from_options(
        "heapsort", size="test", method="spectral", nparts=3, backend="thread",
        network="ethernet_1g", pin_main=False, async_writes=True,
    )
    data = cfg.to_dict()
    assert set(data) == {"workload", "partition", "cluster", "backend"}
    restored = ExperimentConfig.from_dict(data)
    assert restored == cfg
    assert ExperimentConfig.from_json(cfg.to_json()) == cfg
    assert restored.label() == cfg.label()


def test_experiment_config_partial_dict_uses_defaults():
    cfg = ExperimentConfig.from_dict({"workload": {"name": "bank"}})
    assert cfg.partition == PartitionConfig()
    assert cfg.backend.name == "sim"


def test_unknown_plugin_names_rejected():
    with pytest.raises(UnknownPluginError, match="unknown workload"):
        WorkloadSpec(name="quicksort")
    with pytest.raises(UnknownPluginError, match="unknown partition method"):
        PartitionConfig(method="annealing")
    with pytest.raises(UnknownPluginError, match="unknown network preset"):
        ClusterConfig(network="token-ring")
    with pytest.raises(UnknownPluginError, match="unknown runtime backend"):
        BackendConfig(name="mpi")


def test_did_you_mean_suggestions():
    with pytest.raises(UnknownPluginError, match="did you mean 'heapsort'"):
        WorkloadSpec(name="heapsorted")
    with pytest.raises(UnknownPluginError, match="did you mean 'thread'"):
        BackendConfig(name="threads")


def test_bad_field_values_rejected():
    with pytest.raises(ConfigError, match="size"):
        WorkloadSpec(name="bank", size="gigantic")
    with pytest.raises(ConfigError, match="nparts"):
        PartitionConfig(nparts=0)
    with pytest.raises(ConfigError, match="granularity"):
        PartitionConfig(granularity="module")
    with pytest.raises(ConfigError, match="node"):
        ClusterConfig(nodes=0)
    with pytest.raises(ConfigError, match="max_events"):
        BackendConfig(max_events=0)
    with pytest.raises(ConfigError, match="nodes"):
        ExperimentConfig.from_options("bank", nparts=4, nodes=2)


def test_unknown_dict_fields_rejected():
    with pytest.raises(ConfigError, match="unknown WorkloadSpec field"):
        WorkloadSpec.from_dict({"name": "bank", "flavor": "spicy"})
    with pytest.raises(ConfigError, match="unknown ExperimentConfig field"):
        ExperimentConfig.from_dict({"workload": {"name": "bank"}, "extra": {}})
    with pytest.raises(ConfigError, match="workload"):
        ExperimentConfig.from_dict({})


def test_configs_are_frozen_with_replace():
    spec = WorkloadSpec(name="bank")
    with pytest.raises(Exception):
        spec.name = "crypt"  # frozen dataclass
    bench = spec.replace(size="bench")
    assert bench.size == "bench" and spec.size == "test"


def test_workload_spec_source():
    assert "class" in WorkloadSpec(name="bank").source()


def test_cluster_config_build_matches_paper_testbed():
    from repro.runtime.cluster import paper_testbed

    spec = ClusterConfig().build(2)
    assert [n.cpu_hz for n in spec.nodes] == [
        n.cpu_hz for n in paper_testbed().nodes
    ]
    four = ClusterConfig(network="ethernet_1g").build(4)
    assert four.size == 4
    assert four.link.bandwidth_Bps == 125e6
