"""The unified Registry: registration, override, lookup and error paths."""

import pytest

from repro.api import Registry, UnknownPluginError
from repro.errors import ReproError


def test_register_and_get():
    reg = Registry("gadget")
    reg.register("a", 1)
    assert reg.get("a") == 1
    assert reg.names() == ["a"]


def test_register_as_decorator():
    reg = Registry("gadget")

    @reg.register("fn")
    def fn():
        return 42

    assert reg.get("fn") is fn


def test_duplicate_registration_needs_override():
    reg = Registry("gadget")
    reg.register("a", 1)
    with pytest.raises(ReproError, match="already registered"):
        reg.register("a", 2)
    assert reg.get("a") == 1
    reg.register("a", 2, override=True)
    assert reg.get("a") == 2


def test_unknown_name_error_shape():
    reg = Registry("gadget")
    reg.register("multilevel", 1)
    reg.register("spectral", 2)
    with pytest.raises(UnknownPluginError) as exc_info:
        reg.get("multilvel")
    err = exc_info.value
    assert err.kind == "gadget"
    assert err.name == "multilvel"
    assert err.available == ["multilevel", "spectral"]
    assert err.suggestion == "multilevel"
    assert "did you mean 'multilevel'?" in str(err)
    # UnknownPluginError doubles as KeyError for mapping-style callers
    assert isinstance(err, KeyError) and isinstance(err, ReproError)


def test_get_with_explicit_default():
    reg = Registry("gadget")
    reg.register("a", 1)
    assert reg.get("a", None) == 1
    assert reg.get("z", None) is None
    assert reg.get("z", "fallback") == "fallback"
    with pytest.raises(UnknownPluginError):
        reg.get("z")  # no default -> loud failure


def test_mapping_protocol():
    reg = Registry("gadget")
    reg.register("b", 2)
    reg.register("a", 1)
    assert sorted(reg) == ["a", "b"]
    assert len(reg) == 2
    assert "a" in reg and "z" not in reg
    assert reg["a"] == 1
    assert dict(reg.items()) == {"a": 1, "b": 2}
    with pytest.raises(KeyError):
        reg["z"]


def test_unregister():
    reg = Registry("gadget")
    reg.register("a", 1)
    assert reg.unregister("a") == 1
    assert "a" not in reg
    with pytest.raises(UnknownPluginError):
        reg.unregister("a")


def test_lazy_loader_runs_once():
    calls = []
    reg = Registry("gadget")

    def loader():
        calls.append(1)
        reg.register("late", 9)

    reg.set_loader(loader)
    assert reg.names() == ["late"]
    assert reg.get("late") == 9
    assert calls == [1]


def test_builtin_registries_are_unified():
    """The three historically divergent lookups now share one mechanism
    and one error type."""
    from repro.partition.api import PARTITIONERS
    from repro.runtime.backend import BACKENDS
    from repro.runtime.cluster import NETWORKS
    from repro.workloads import WORKLOADS

    for reg, known in (
        (PARTITIONERS, "multilevel"),
        (BACKENDS, "sim"),
        (NETWORKS, "ethernet_100m"),
        (WORKLOADS, "bank"),
    ):
        assert isinstance(reg, Registry)
        assert known in reg.names()
        with pytest.raises(UnknownPluginError):
            reg.get("definitely-not-registered")


def test_workload_registration_roundtrip():
    from repro.workloads import WORKLOADS, Workload, register_workload

    wl = Workload("tmp_test_wl", "synthetic", lambda size: "class M {}", "tmp")
    try:
        register_workload(wl)
        assert WORKLOADS.get("tmp_test_wl") is wl
        with pytest.raises(ReproError, match="already registered"):
            register_workload(wl)
        register_workload(wl, override=True)
    finally:
        WORKLOADS.unregister("tmp_test_wl")
    assert "tmp_test_wl" not in WORKLOADS
