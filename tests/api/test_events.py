"""Event hooks: ordering, cache-hit flags, observer styles."""

from repro.api import EventBus, Experiment, ExperimentObserver, StageRecorder
from repro.harness.cache import StageCache


class Collector(ExperimentObserver):
    def __init__(self):
        self.calls = []

    def on_stage_start(self, event):
        self.calls.append(("start", event.stage))

    def on_stage_end(self, event):
        self.calls.append(("end", event.stage, event.cache_hit))


def test_bus_notifies_in_subscription_order():
    order = []
    bus = EventBus("exp")
    bus.subscribe(lambda e: order.append(("first", e.seq)))
    bus.subscribe(lambda e: order.append(("second", e.seq)))
    bus.stage_start("compile")
    bus.stage_end("compile", 0.5, False)
    assert order == [("first", 0), ("second", 0), ("first", 1), ("second", 1)]


def test_bus_unsubscribe():
    seen = []
    bus = EventBus("exp")
    cb = bus.subscribe(lambda e: seen.append(e.stage))
    bus.stage_start("a")
    bus.unsubscribe(cb)
    bus.stage_start("b")
    assert seen == ["a"]


def test_experiment_emits_ordered_start_end_pairs():
    collector = Collector()
    exp = Experiment.from_options(
        "bank", cache=StageCache(), observers=[collector]
    )
    exp.run()
    assert collector.calls == [
        ("start", "compile"), ("end", "compile", False),
        ("start", "sequential"), ("end", "sequential", False),
        ("start", "plan"), ("end", "plan", False),
        ("start", "rewrite"), ("end", "rewrite", False),
        ("start", "execute"), ("end", "execute", False),
    ]
    # events carry monotonically increasing sequence numbers
    seqs = [e.seq for e in exp.recorder.events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)


def test_stage_methods_emit_once():
    """Composable stage methods memoize: a repeated call emits no events."""
    collector = Collector()
    exp = Experiment.from_options(
        "bank", cache=StageCache(), observers=[collector]
    )
    exp.analyze()
    n = len(collector.calls)
    assert [c[:2] for c in collector.calls] == [
        ("start", "compile"), ("end", "compile"),
        ("start", "analyze"), ("end", "analyze"),
    ]
    exp.analyze()
    exp.compile()
    assert len(collector.calls) == n


def test_cache_hit_flags_on_shared_cache():
    """A second experiment over the same cache reports cache hits on every
    cache-backed stage; rewrite is deliberately uncached."""
    cache = StageCache()
    Experiment.from_options("bank", cache=cache).run()
    collector = Collector()
    Experiment.from_options("bank", cache=cache, observers=[collector]).run()
    flags = {c[1]: c[2] for c in collector.calls if c[0] == "end"}
    assert flags == {
        "compile": True, "sequential": True, "plan": True,
        "rewrite": False, "execute": True,
    }


def test_recorder_keeps_end_view():
    exp = Experiment.from_options("bank", cache=StageCache())
    exp.compile()
    recorder = exp.recorder
    assert isinstance(recorder, StageRecorder)
    assert [e.stage for e in recorder.stages] == ["compile"]
    assert all(e.phase == "end" for e in recorder.stages)
    assert recorder.stages[0].elapsed_s >= 0.0


def test_late_subscriber_sees_only_subsequent_events():
    exp = Experiment.from_options("bank", cache=StageCache())
    exp.compile()
    collector = Collector()
    exp.subscribe(collector)
    exp.analyze()
    assert [c[:2] for c in collector.calls] == [
        ("start", "analyze"), ("end", "analyze"),
    ]
