"""Experiment façade: stage composition, memoization, reports, and the
end-to-end equivalence with the legacy Pipeline path."""

import dataclasses
import json

import pytest

from repro.api import Experiment, ExperimentConfig, Report, WorkloadSpec
from repro.errors import ConfigError
from repro.harness.cache import StageCache
from repro.harness.pipeline import Pipeline


def test_stage_methods_return_typed_artifacts():
    exp = Experiment.from_options("bank", cache=StageCache())
    work = exp.compile()
    assert work.num_classes == 3
    analysis = exp.analyze()
    assert analysis.crg.num_nodes > 0
    partition = exp.partition()
    assert partition.nparts == 2
    assert len(partition.parts) == analysis.crg.use_graph()[0].num_nodes
    plan = exp.plan()
    assert plan.nparts == 2
    rewritten = exp.rewrite()
    assert rewritten.elapsed_ms >= 0.0
    result = exp.run()
    assert result.speedup_pct > 0
    assert result.stdout


def test_stage_artifacts_are_instance_memoized():
    exp = Experiment.from_options("bank", cache=StageCache())
    assert exp.compile() is exp.compile()
    assert exp.analyze() is exp.analyze()
    assert exp.plan() is exp.plan()
    assert exp.run() is exp.run()


def test_two_experiments_share_stage_cache():
    cache = StageCache()
    e1 = Experiment.from_options("method", cache=cache)
    e2 = Experiment.from_options("method", cache=cache)
    assert e1.compile() is e2.compile()
    assert e1.analyze() is e2.analyze()
    # deterministic simulator: even the execution artifact is shared
    assert e1.run().distributed is e2.run().distributed


def test_partition_stage_cached_and_valid():
    cache = StageCache()
    e1 = Experiment.from_options("crypt", cache=cache)
    p1 = e1.partition()
    assert e1.partition() is p1
    e2 = Experiment.from_options("crypt", cache=cache)
    assert e2.partition() is p1  # cross-experiment via the stage cache
    graph, _ = e1.analyze().crg.use_graph()
    p1.validate(graph)


def test_run_report_is_json_round_trippable():
    exp = Experiment.from_options("bank", cache=StageCache())
    report = exp.run().report
    data = json.loads(report.to_json())
    restored = Report.from_json(report.to_json())
    assert restored.to_dict() == report.to_dict()
    assert data["config"]["workload"]["name"] == "bank"
    assert data["partition"]["nparts"] == 2
    assert [t["stage"] for t in data["stages"]] == [
        "compile", "sequential", "plan", "rewrite", "execute",
    ]
    assert data["speedup_pct"] == pytest.approx(
        100.0 * data["sequential_s"] / data["distributed_s"]
    )
    assert len(data["node_stats"]) == 2
    # config section round-trips into an equal typed config
    assert ExperimentConfig.from_dict(data["config"]) == exp.config


def test_report_before_run_is_partial():
    exp = Experiment.from_options("bank", cache=StageCache())
    exp.analyze()
    report = exp.report()
    assert report.partition is None
    assert report.speedup_pct is None
    assert [t.stage for t in report.stages] == ["compile", "analyze"]


def test_report_aggregate_rolls_up_node_stats():
    report = Experiment.from_options("bank", cache=StageCache()).run().report
    agg = report.aggregate()
    assert agg["nodes"] == 2.0
    assert agg["messages_sent"] >= 1


def test_config_validation_happens_at_construction():
    with pytest.raises(ConfigError):
        Experiment(
            ExperimentConfig(
                workload=WorkloadSpec(name="bank"),
                partition=dataclasses.replace(
                    ExperimentConfig.from_options("bank").partition, nparts=4
                ),
                cluster=ExperimentConfig.from_options("bank", nodes=2).cluster,
            )
        )


# --------------------------------------------------------------- equivalence
def test_experiment_end_to_end_matches_legacy_pipeline():
    """The acceptance smoke: byte-identical output and equal NodeStats
    between the new API and the legacy pipeline path, on one shared cache
    (the full workload × method × backend grid lives in the differential
    suite)."""
    cache = StageCache()
    pipe = Pipeline("method", "test", cache=cache)
    seq = pipe.run_sequential()
    legacy_dist, legacy_plan, legacy_stats = pipe.run_distributed(2)

    exp = Experiment.from_options("method", cache=cache)
    res = exp.run()

    assert res.plan is legacy_plan  # identical cache key -> identical object
    assert res.distributed.stdout == legacy_dist.stdout
    assert res.distributed.node_stats == legacy_dist.node_stats
    assert res.distributed.makespan_s == legacy_dist.makespan_s
    assert res.rewrite_stats.total == legacy_stats.total
    assert res.sequential.stdout == seq.stdout

    speedup = pipe.speedup()
    assert res.speedup_pct == pytest.approx(speedup["speedup_pct"])
    assert res.sequential_s == pytest.approx(speedup["sequential_s"])


def test_thread_backend_reports_wall_time():
    res = Experiment.from_options(
        "bank", cache=StageCache(), backend="thread"
    ).run()
    assert res.distributed_s > 0.0
    assert res.sequential_s > 0.0  # wall-clock baseline, not virtual
    assert res.report.to_dict()["config"]["backend"]["name"] == "thread"
