"""MPI service + MessageExchange unit tests."""

import pytest

from repro.runtime.cluster import ClusterSpec, LinkSpec, NodeSpec
from repro.runtime.message import Message, MessageKind
from repro.runtime.mpi import MPIService
from repro.runtime.simnet import SimCluster


def make_cluster(n=2):
    spec = ClusterSpec(
        nodes=[NodeSpec(f"n{i}", 1e9) for i in range(n)],
        link=LinkSpec(latency_s=1e-4, bandwidth_Bps=1e7),
    )
    cluster = SimCluster(spec)
    for node in cluster.nodes:
        node.mpi = MPIService(node, cluster)
    return cluster


def drive(gen, node, cluster):
    """Synchronously drive one generator, fast-forwarding the node clock.
    Mirrors the scheduler's rule: a 'wait' can only be satisfied by a
    *future* arrival (everything already arrived was examined and did not
    match)."""
    try:
        while True:
            ev = next(gen)
            if ev[0] == "cost":
                node.clock += ev[1] / node.spec.cpu_hz
            elif ev[0] == "wait":
                future = node.earliest_future_arrival()
                if future is None:
                    raise RuntimeError("would block forever")
                node.clock = future
    except StopIteration as stop:
        return stop.value


def test_rank_and_size():
    cluster = make_cluster(3)
    assert cluster.nodes[0].mpi.rank == 0
    assert cluster.nodes[2].mpi.rank == 2
    assert cluster.nodes[0].mpi.size == 3
    assert cluster.nodes[0].mpi.comm_world.ranks == [0, 1, 2]


def test_send_recv_roundtrip():
    cluster = make_cluster()
    n0, n1 = cluster.nodes
    msg = Message(MessageKind.NEW, 0, 1, 42, b"payload")
    drive(n0.mpi.send(msg), n0, cluster)
    got = drive(n1.mpi.recv(lambda m: m.req_id == 42), n1, cluster)
    assert got.payload == b"payload"
    assert got.kind is MessageKind.NEW


def test_send_charges_cycles_per_byte():
    cluster = make_cluster()
    n0 = cluster.nodes[0]
    small = Message(MessageKind.NEW, 0, 1, 1, b"x")
    big = Message(MessageKind.NEW, 0, 1, 2, b"x" * 10000)
    t0 = n0.clock
    drive(n0.mpi.send(small), n0, cluster)
    t_small = n0.clock - t0
    t1 = n0.clock
    drive(n0.mpi.send(big), n0, cluster)
    t_big = n0.clock - t1
    assert t_big > t_small


def test_iprobe_nonblocking():
    cluster = make_cluster()
    n0, n1 = cluster.nodes
    assert not n1.mpi.iprobe(lambda m: True)
    drive(n0.mpi.send(Message(MessageKind.NEW, 0, 1, 1)), n0, cluster)
    assert not n1.mpi.iprobe(lambda m: True)  # not yet arrived (latency)
    n1.clock = 1.0
    assert n1.mpi.iprobe(lambda m: True)


def test_reply_to_routes_back():
    cluster = make_cluster()
    n1 = cluster.nodes[1]
    req = Message(MessageKind.DEPENDENCE, 0, 1, 77, b"")
    reply = n1.mpi.reply_to(req, b"result")
    assert reply.kind is MessageKind.REPLY
    assert reply.dst == 0 and reply.src == 1
    assert reply.req_id == 77


def test_req_ids_unique_per_node():
    cluster = make_cluster()
    a = cluster.nodes[0].mpi
    b = cluster.nodes[1].mpi
    ids = {a.next_req_id() for _ in range(100)}
    ids |= {b.next_req_id() for _ in range(100)}
    assert len(ids) == 200


def test_recv_is_selective_and_ordered():
    cluster = make_cluster()
    n0, n1 = cluster.nodes
    for req in (1, 2, 3):
        drive(n0.mpi.send(Message(MessageKind.NEW, 0, 1, req)), n0, cluster)
    got = drive(n1.mpi.recv(lambda m: m.req_id == 2), n1, cluster)
    assert got.req_id == 2
    got = drive(n1.mpi.recv(lambda m: True), n1, cluster)
    assert got.req_id == 1  # earliest remaining
