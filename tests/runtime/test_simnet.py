"""Discrete-event cluster tests: clocks, FIFO links, deadlock detection."""

import pytest

from repro.errors import RuntimeServiceError
from repro.runtime.cluster import ClusterSpec, LinkSpec, NodeSpec
from repro.runtime.message import Message, MessageKind
from repro.runtime.simnet import SimCluster


def cluster(n=2, latency=1e-3, bw=1e6, hz=(1e9, 1e9, 1e9)):
    return SimCluster(
        ClusterSpec(
            nodes=[NodeSpec(f"n{i}", hz[i]) for i in range(n)],
            link=LinkSpec(latency_s=latency, bandwidth_Bps=bw),
        )
    )


def msg(src, dst, req=1, payload=b""):
    return Message(MessageKind.DEPENDENCE, src, dst, req, payload)


def test_cost_advances_clock_by_cycles_over_hz():
    c = cluster(n=1)

    def proc():
        yield ("cost", 2_000_000)

    c.nodes[0].gen = proc()
    c.run()
    assert c.nodes[0].clock == pytest.approx(0.002)
    assert c.nodes[0].busy_s == pytest.approx(0.002)


def test_heterogeneous_speeds():
    c = cluster(n=2, hz=(2e9, 5e8, 0))

    def proc():
        yield ("cost", 1_000_000)

    c.nodes[0].gen = proc()
    c.nodes[1].gen = proc()
    c.run()
    assert c.nodes[0].clock == pytest.approx(0.0005)
    assert c.nodes[1].clock == pytest.approx(0.002)


def test_message_arrival_includes_latency_and_bandwidth():
    c = cluster(latency=1e-3, bw=1e6)
    received = {}

    def sender():
        yield ("cost", 1000)  # 1 µs
        c.post(0, 1, msg(0, 1, payload=b"x" * 976))  # 976+24 = 1000 B -> 1 ms

    def receiver():
        while True:
            m = c.nodes[1].take_matching(lambda m: True)
            if m is not None:
                received["msg"] = m
                received["at"] = c.nodes[1].clock
                return
            yield ("wait",)

    c.nodes[0].gen = sender()
    c.nodes[1].gen = receiver()
    c.run()
    # arrival = 1µs (send) + 1ms latency + 1ms serialization
    assert received["at"] == pytest.approx(0.002001, rel=1e-6)


def test_fifo_per_link():
    c = cluster()
    order = []

    def sender():
        c.post(0, 1, msg(0, 1, req=1, payload=b"a" * 5000))  # big, slow
        c.post(0, 1, msg(0, 1, req=2))                        # small
        yield ("cost", 1)

    def receiver():
        while len(order) < 2:
            m = c.nodes[1].take_matching(lambda m: True)
            if m is not None:
                order.append(m.req_id)
            else:
                yield ("wait",)

    c.nodes[0].gen = sender()
    c.nodes[1].gen = receiver()
    c.run()
    assert order == [1, 2]  # FIFO despite the size difference


def test_deadlock_detected():
    c = cluster()

    def waiter(i):
        while True:
            yield ("wait",)

    c.nodes[0].gen = waiter(0)
    c.nodes[1].gen = waiter(1)
    with pytest.raises(RuntimeServiceError, match="deadlock"):
        c.run()


def test_event_budget_enforced():
    c = cluster(n=1)

    def spinner():
        while True:
            yield ("cost", 1)

    c.nodes[0].gen = spinner()
    with pytest.raises(RuntimeServiceError, match="event budget"):
        c.run(max_events=100)


def test_unknown_destination_rejected():
    c = cluster()
    with pytest.raises(RuntimeServiceError, match="unknown node"):
        c.post(0, 9, msg(0, 9))


def test_take_matching_is_selective():
    c = cluster()
    node = c.nodes[1]
    c.post(0, 1, msg(0, 1, req=1))
    c.post(0, 1, msg(0, 1, req=2))
    node.clock = 10.0  # everything has arrived
    got = node.take_matching(lambda m: m.req_id == 2)
    assert got.req_id == 2
    assert len(node.inbox) == 1  # req 1 still queued
    assert node.take_matching(lambda m: m.req_id == 2) is None


def test_take_matching_respects_arrival_time():
    c = cluster(latency=1.0)
    node = c.nodes[1]
    c.post(0, 1, msg(0, 1))
    assert node.take_matching(lambda m: True) is None  # not arrived yet
    node.clock = 2.0
    assert node.take_matching(lambda m: True) is not None


def test_stats_counted():
    c = cluster()

    def sender():
        c.post(0, 1, msg(0, 1, payload=b"abc"))
        yield ("cost", 1)

    def receiver():
        while True:
            if c.nodes[1].take_matching(lambda m: True):
                return
            yield ("wait",)

    c.nodes[0].gen = sender()
    c.nodes[1].gen = receiver()
    c.run()
    assert c.total_messages == 1
    assert c.total_bytes == 24 + 3
    assert c.nodes[0].msgs_sent == 1
    assert c.nodes[1].msgs_received == 1


def test_makespan_is_max_clock():
    c = cluster(n=2, hz=(1e9, 1e8, 0))

    def proc(n):
        yield ("cost", n)

    c.nodes[0].gen = proc(100)
    c.nodes[1].gen = proc(100)
    c.run()
    assert c.makespan == pytest.approx(c.nodes[1].clock)
