"""TCP backend tests: real-socket cluster runs must be byte-identical to
the in-memory backends, a roster pins listen endpoints, bind failures are
structured errors (not tracebacks or hangs), and the service workload's
throughput/latency reporting flows through the Experiment report.

Cross-backend parity, fault injection and recovery composition are covered
by the shared grids in ``test_backends.py`` / ``test_faults.py`` /
``test_recovery.py`` / ``test_differential.py`` (all of which include
``tcp``); this file holds the tcp-only contracts.
"""

import socket
import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

import pytest

from helpers import compile_mj_raw

from repro.distgen import rewrite_program
from repro.distgen.plan import DistributionPlan
from repro.errors import RuntimeServiceError
from repro.runtime.cluster import ClusterSpec, NodeSpec, ethernet_100m
from repro.runtime.executor import DistributedExecutor

SRC = """
class Cell {
    int v;
    Cell(int v) { this.v = v; }
    int get() { return v; }
    void set(int x) { v = x; }
}
class M {
    static void main(String[] args) {
        Cell c = new Cell(20);
        c.set(c.get() * 2 + 2);
        Sys.println("cell:" + c.get());
    }
}
"""


def _free_ports(n):
    """Reserve n distinct free localhost ports (closed again before use —
    the tiny race is acceptable in a test)."""
    socks, ports = [], []
    for _ in range(n):
        s = socket.socket()
        s.bind(("127.0.0.1", 0))
        socks.append(s)
        ports.append(s.getsockname()[1])
    for s in socks:
        s.close()
    return ports


def _run_tcp(roster=None, nparts=2):
    bp, _ = compile_mj_raw(SRC)
    plan = DistributionPlan(
        nparts=nparts,
        granularity="class",
        class_home={"Cell": 1, "M": 0},
        dependent_classes={"Cell", "M"},
        main_partition=0,
    )
    rewritten, _ = rewrite_program(bp, plan)
    cluster = ClusterSpec(
        nodes=[NodeSpec(f"n{i}", 1e9) for i in range(nparts)],
        link=ethernet_100m(),
        roster=roster,
    )
    return DistributedExecutor(
        rewritten, plan, cluster, backend="tcp"
    ).run()


# ------------------------------------------------------------------- roster
def test_roster_pins_listen_endpoints():
    ports = _free_ports(2)
    roster = [f"127.0.0.1:{p}" for p in ports]
    run = _run_tcp(roster=roster)
    assert run.stdout == ["cell:42"]
    assert run.total_messages > 0


def test_default_roster_uses_ephemeral_ports():
    run = _run_tcp(roster=None)
    assert run.stdout == ["cell:42"]


def test_roster_length_must_match_cluster():
    with pytest.raises(RuntimeServiceError, match="roster"):
        ClusterSpec(
            nodes=[NodeSpec("n0", 1e9), NodeSpec("n1", 1e9)],
            link=ethernet_100m(),
            roster=["127.0.0.1:9000"],
        )


def test_roster_entries_must_be_host_port():
    with pytest.raises(RuntimeServiceError, match="host:port"):
        ClusterSpec(
            nodes=[NodeSpec("n0", 1e9)],
            link=ethernet_100m(),
            roster=["localhost"],
        )


# ------------------------------------------------------------- bind failure
def test_bind_failure_is_structured_error():
    """An occupied roster port must surface as a RuntimeServiceError naming
    the endpoint — promptly, with no worker processes left behind."""
    blocker = socket.socket()
    blocker.bind(("127.0.0.1", 0))
    blocker.listen(1)
    port = blocker.getsockname()[1]
    try:
        free = _free_ports(1)[0]
        with pytest.raises(RuntimeServiceError, match=f"cannot bind.*{port}"):
            _run_tcp(roster=[f"127.0.0.1:{port}", f"127.0.0.1:{free}"])
    finally:
        blocker.close()


# -------------------------------------------------- byte-identity (Experiment)
@pytest.mark.parametrize("workload", ("bank", "service_bank"))
def test_tcp_matches_process_through_experiment(workload):
    """The tentpole acceptance criterion at the API level: a tcp run on
    localhost is byte-identical to the process backend — stdout, result and
    every deterministic NodeStats field."""
    from repro.api import Experiment

    def observe(backend):
        res = Experiment.from_options(
            workload, backend=backend, force_distribution=True
        ).run()
        det = [
            (s.name, s.messages_sent, s.bytes_sent,
             s.requests_served, s.requests_sent, s.heap_objects,
             tuple(s.stdout))
            for s in res.distributed.node_stats
        ]
        return list(res.stdout), res.distributed.result, det

    assert observe("tcp") == observe("process")


# ------------------------------------------------------------ service report
def test_service_workload_reports_throughput_and_latency():
    from repro.api import Experiment

    exp = Experiment.from_options(
        "service_bank", backend="sim", force_distribution=True
    )
    exp.run()
    rep = exp.report()
    assert rep.throughput_rps is not None and rep.throughput_rps > 0
    assert rep.latency_count > 0
    assert 0 < rep.latency_p50_ms <= rep.latency_p95_ms <= rep.latency_p99_ms
    d = rep.to_dict()
    for key in ("throughput_rps", "latency_p50_ms", "latency_p95_ms",
                "latency_p99_ms", "latency_count"):
        assert key in d


def test_latency_samples_merge_sorted_across_backends():
    """Every backend funnels request latencies into the run; the merged
    sample list is sorted (the percentile input contract)."""
    from repro.api import Experiment

    for backend in ("sim", "thread", "tcp"):
        res = Experiment.from_options(
            "service_bank", backend=backend, force_distribution=True
        ).run()
        samples = res.distributed.latency_s
        assert len(samples) > 0, backend
        assert samples == sorted(samples), backend
        assert all(s >= 0 for s in samples), backend
