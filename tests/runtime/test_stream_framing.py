"""Stream framing tests for the 24-byte wire format (PR 10 satellite).

``Message.decode_stream`` is the reassembly primitive the tcp backend's
read loop is built on: frames are self-delimiting via the header's payload
length, a prefix of a frame is a *torn read* (return ``None``, wait for
bytes), and bytes that can never become a valid frame raise
:class:`FrameError` with a machine-readable reason.  These tests pin that
contract down, including property-based round trips and arbitrary stream
re-chunkings under hypothesis.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.message import (
    HEADER_BYTES,
    MAX_PAYLOAD_BYTES,
    WIRE_MAGIC,
    WIRE_VERSION,
    FrameError,
    Message,
    MessageKind,
)

kinds = st.sampled_from(list(MessageKind))
node_ids = st.integers(min_value=-(2**15), max_value=2**15 - 1)
req_ids = st.integers(min_value=-(2**63), max_value=2**63 - 1)
payloads = st.binary(max_size=512)

messages = st.builds(
    Message, kind=kinds, src=node_ids, dst=node_ids, req_id=req_ids,
    payload=payloads,
)


@settings(max_examples=200, deadline=None)
@given(messages)
def test_round_trip_property(msg):
    frame = msg.serialize()
    assert len(frame) == msg.size
    back = Message.deserialize(frame)
    assert back == msg


@settings(max_examples=100, deadline=None)
@given(st.lists(messages, min_size=1, max_size=6), st.data())
def test_stream_reassembly_survives_arbitrary_chunking(msgs, data):
    """Concatenated frames delivered in arbitrary chunk sizes reassemble to
    exactly the original message sequence — the property the tcp read loop
    depends on."""
    stream = b"".join(m.serialize() for m in msgs)
    # re-chunk the stream at hypothesis-chosen split points
    cuts = sorted(
        data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(stream)), max_size=8
            )
        )
    )
    chunks = [
        stream[a:b] for a, b in zip([0] + cuts, cuts + [len(stream)])
    ]
    buffer = bytearray()
    decoded = []
    for chunk in chunks:
        buffer.extend(chunk)
        offset = 0
        while True:
            got = Message.decode_stream(buffer, offset)
            if got is None:
                break
            msg, consumed = got
            decoded.append(msg)
            offset += consumed
        del buffer[:offset]
    assert decoded == msgs
    assert not buffer  # nothing left over


def test_back_to_back_frames_in_one_buffer():
    a = Message(MessageKind.NEW, 0, 1, 7, b"first")
    b = Message(MessageKind.REPLY, 1, 0, 7, b"second")
    buf = a.serialize() + b.serialize()
    m1, used1 = Message.decode_stream(buf)
    m2, used2 = Message.decode_stream(buf, used1)
    assert (m1, m2) == (a, b)
    assert used1 + used2 == len(buf)


def test_torn_reads_return_none():
    frame = Message(MessageKind.DEPENDENCE, 2, 3, 11, b"payload!").serialize()
    # every strict prefix is a torn read, never an error
    for cut in range(len(frame)):
        assert Message.decode_stream(frame[:cut]) is None


def test_garbage_prefix_raises_structured_frame_error():
    frame = Message(MessageKind.NEW, 0, 1, 1, b"x").serialize()
    with pytest.raises(FrameError, match="bad magic") as exc_info:
        Message.decode_stream(b"!!" + frame[2:])
    assert exc_info.value.reason == "bad magic"


def test_foreign_version_raises():
    buf = bytearray(Message(MessageKind.NEW, 0, 1, 1).serialize())
    buf[2] = WIRE_VERSION + 1
    with pytest.raises(FrameError, match="version"):
        Message.decode_stream(bytes(buf))


def test_implausible_length_raises_instead_of_waiting_forever():
    """A corrupted header claiming gigabytes must be rejected immediately —
    the satellite bugfix: a reassembler must not park forever waiting for a
    payload that will never arrive."""
    hdr = struct.Struct("<2sBBhhqII").pack(
        WIRE_MAGIC, WIRE_VERSION, MessageKind.NEW.value, 0, 1, 1,
        MAX_PAYLOAD_BYTES + 1, 0,
    )
    with pytest.raises(FrameError, match="implausible") as exc_info:
        Message.decode_stream(hdr)
    assert exc_info.value.reason == "implausible payload length"


def test_corrupt_payload_in_stream_raises():
    buf = bytearray(Message(MessageKind.NEW, 0, 1, 1, b"hello").serialize())
    buf[-1] ^= 0xFF
    with pytest.raises(FrameError, match="checksum"):
        Message.decode_stream(bytes(buf))


def test_deserialize_validates_plen_exactly():
    """The original bug: ``deserialize`` ignored the header's plen field.
    Extra trailing bytes and missing payload bytes must both be length
    mismatches now."""
    frame = Message(MessageKind.NEW, 0, 1, 1, b"hello").serialize()
    with pytest.raises(FrameError, match="length mismatch"):
        Message.deserialize(frame + b"trailing")
    with pytest.raises(FrameError, match="length mismatch"):
        Message.deserialize(frame[:-1])


def test_header_bytes_matches_struct():
    assert HEADER_BYTES == 24
    assert len(Message(MessageKind.SHUTDOWN, 0, 1, 0).serialize()) == 24
