"""Recovery-tier tests: checkpointed object state, heartbeat leases and
object migration (repro.runtime.checkpoint).

The recovery contract, checked on every backend and VM engine: for a
recoverable seeded crash (a non-main node dies), a RecoveryPlan-enabled
run finishes with ``result`` and ``stdout`` byte-identical to the
fault-free run — the crash shows up only as fault evidence next to a
RECOVERED record — at a measurable (charged-cycle) cost.  Unrecoverable
crashes (the main node itself) keep PR-6 degradation semantics.
"""

import sys
import pathlib
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

import pytest

from helpers import compile_mj_raw

from repro.distgen import rewrite_program
from repro.distgen.plan import DistributionPlan
from repro.errors import ConfigError
from repro.runtime.checkpoint import (
    NodeRecovery,
    RecoveryPlan,
    decode_checkpoint,
    encode_checkpoint,
    recovery_homes,
)
from repro.runtime.cluster import ClusterSpec, NodeSpec, ethernet_100m
from repro.runtime.executor import DistributedExecutor
from repro.runtime.faults import FaultPlan, PeerLost
from repro.runtime.message import Message, MessageKind

BACKENDS = ("sim", "thread", "process", "tcp")

# three classes over three partitions: Worker (node 0) and Helper (node 2)
# both carry state the crashed run must reconstruct exactly
SRC = """
class Worker {
    int acc;
    Worker(int s) { acc = s; }
    int crunch(int n) {
        int i = 0;
        int v = acc;
        while (i < n) {
            int k = 0;
            while (k < n) { v = (v * 31 + k) % 65521; k = k + 1; }
            i = i + 1;
        }
        acc = v;
        return v;
    }
    int get() { return acc; }
}

class Helper {
    int tot;
    Helper(int s) { tot = s; }
    int fold(int x) { tot = (tot * 17 + x) % 99991; return tot; }
}

class Main {
    static void main(String[] args) {
        Worker w = new Worker(7);
        Helper h = new Helper(3);
        int j = 0;
        int s = 0;
        while (j < 8) {
            s = s + w.crunch(6) + h.fold(j);
            j = j + 1;
        }
        Sys.println("grand:" + (s + w.get() + h.fold(s)));
    }
}
"""
EXPECTED_STDOUT = ["grand:573169"]

REC = RecoveryPlan(interval=4_000)


def run_cluster(backend="sim", nnodes=5, faults=None, recovery=None,
                engine="default"):
    """SRC over 3 partitions (Worker@0, Main@1, Helper@2) on ``nnodes``
    machines — the extra nodes are the idle recovery homes."""
    bp, _ = compile_mj_raw(SRC)
    plan = DistributionPlan(
        nparts=3,
        granularity="class",
        class_home={"Worker": 0, "Main": 1, "Helper": 2},
        dependent_classes={"Worker", "Helper", "Main"},
        main_partition=1,
    )
    rewritten, _ = rewrite_program(bp, plan)
    cluster = ClusterSpec(
        nodes=[NodeSpec(f"n{i}", 1e9) for i in range(nnodes)],
        link=ethernet_100m(),
    )
    return DistributedExecutor(
        rewritten, plan, cluster, backend=backend,
        faults=faults, recovery=recovery, engine=engine,
    ).run()


def assert_masked(run, dead_nodes):
    """The full recovery contract for one run."""
    assert run.stdout == EXPECTED_STDOUT
    assert not run.degraded
    assert sorted({r.node for r in run.recovered}) == sorted(dead_nodes)
    assert all(r.kind == "recovered" for r in run.recovered)
    crash_records = {f.node for f in run.faults
                     if f.kind in ("crash", "worker_lost")}
    assert crash_records == set(dead_nodes)


# ------------------------------------------------------------ RecoveryPlan
def test_recovery_plan_round_trip():
    plan = RecoveryPlan(interval=9_000, heartbeat_cycles=1_000,
                        lease_cycles=50_000, copies=2, enabled=True)
    assert RecoveryPlan.from_dict(plan.to_dict()) == plan


def test_recovery_plan_rejects_unknown_fields():
    with pytest.raises(ConfigError):
        RecoveryPlan.from_dict({"interval": 100, "cadence": 5})


@pytest.mark.parametrize("kwargs", (
    {"interval": 0},
    {"heartbeat_cycles": -1},
    {"heartbeat_cycles": 1_000, "lease_cycles": 10},
    {"copies": 0},
))
def test_recovery_plan_validation(kwargs):
    with pytest.raises(ConfigError):
        RecoveryPlan(**kwargs)


def test_recovery_homes_prefer_idle_nodes():
    # 5 machines, 3 partitions: nodes 3 and 4 are idle and rank first —
    # the same preference order plan_replication uses
    assert recovery_homes(0, 5, 3) == (3,)
    assert recovery_homes(0, 5, 3, copies=3) == (3, 4, 1)
    assert recovery_homes(3, 5, 3, copies=2) == (4, 0)
    # no idle nodes: the lowest surviving id takes over
    assert recovery_homes(0, 2, 2) == (1,)
    assert recovery_homes(1, 2, 2) == (0,)


# ----------------------------------------------------------- blob framing
def test_checkpoint_blob_round_trip():
    blob = {"node": 0, "epoch": 3, "objects": {1: ("O", "C", {"x": 9}, None)}}
    assert decode_checkpoint(encode_checkpoint(blob)) == blob


@pytest.mark.parametrize("mangle", (
    lambda b: b[:-1],                 # truncated payload (torn write)
    lambda b: b[:8] + b"\x00" * (len(b) - 8),  # corrupted payload
    lambda b: b[:3],                  # shorter than the header
    lambda b: b"",                    # nothing at all
))
def test_torn_checkpoint_blob_detected(mangle):
    data = encode_checkpoint({"node": 0, "epoch": 1})
    assert decode_checkpoint(mangle(data)) is None


# ----------------------------------------------------- the masking matrix
@pytest.mark.parametrize("backend", BACKENDS)
def test_single_crash_masked(backend):
    run = run_cluster(backend=backend,
                      faults=FaultPlan(crashes=((0, 9_000),)), recovery=REC)
    assert_masked(run, [0])
    baseline = run_cluster(backend=backend)
    assert run.result == baseline.result
    assert run.stdout == baseline.stdout


@pytest.mark.parametrize("backend", BACKENDS)
def test_double_nonadjacent_crash_masked(backend):
    run = run_cluster(
        backend=backend,
        faults=FaultPlan(crashes=((0, 9_000), (2, 5_000))), recovery=REC,
    )
    assert_masked(run, [0, 2])


@pytest.mark.parametrize("engine", ("fast", "compiled"))
def test_crash_masked_on_forced_engine(engine):
    run = run_cluster(faults=FaultPlan(crashes=((0, 9_000), (2, 5_000))),
                      recovery=REC, engine=engine)
    assert_masked(run, [0, 2])


def test_early_crash_before_first_checkpoint_masked():
    # the victim dies before any checkpoint barrier: recovery restores the
    # empty epoch-0 blob and replays the client's full log — and the
    # heartbeat traffic this generates must not false-fire anyone's lease
    run = run_cluster(faults=FaultPlan(crashes=((0, 1_500),)), recovery=REC)
    assert_masked(run, [0])
    assert not any(f.kind == "lease_expired" for f in run.faults)
    assert [r.node for r in run.recovered] == [0]
    assert "epoch 0" in run.recovered[0].detail


def test_recovery_charges_cycles():
    clean = run_cluster(recovery=REC)
    crashed = run_cluster(faults=FaultPlan(crashes=((0, 9_000),)),
                          recovery=REC)
    # checkpointing runs even fault-free; restoration only after a crash
    assert clean.checkpoint_overhead_cycles > 0
    assert clean.recovery_cycles == 0
    assert crashed.recovery_cycles > 0
    # masking is not free: the recovered run pays measurable virtual time
    assert crashed.makespan_s > clean.makespan_s


def test_fault_free_run_unchanged_by_recovery_plan():
    bare = run_cluster()
    with_rec = run_cluster(recovery=REC)
    assert with_rec.stdout == bare.stdout == EXPECTED_STDOUT
    assert with_rec.result == bare.result
    assert not with_rec.degraded and not with_rec.recovered


def test_main_node_crash_still_degrades():
    # the main partition has nowhere to migrate to (its continuation is
    # its own stack): PR-6 degradation semantics are preserved
    run = run_cluster(faults=FaultPlan(crashes=((1, 9_000),)), recovery=REC)
    assert run.degraded
    assert not run.recovered
    assert any(f.node == 1 and f.kind in ("crash", "worker_lost")
               for f in run.faults)


def test_disabled_recovery_plan_is_inert():
    run = run_cluster(
        faults=FaultPlan(crashes=((0, 9_000),)),
        recovery=RecoveryPlan(interval=4_000, enabled=False),
    )
    assert run.degraded
    assert not run.recovered


def test_two_node_cluster_recovers_without_idle_homes():
    # no idle machines: the main node itself is the recovery home
    bp, _ = compile_mj_raw(SRC)
    plan = DistributionPlan(
        nparts=2, granularity="class",
        class_home={"Worker": 0, "Helper": 0, "Main": 1},
        dependent_classes={"Worker", "Helper", "Main"},
        main_partition=1,
    )
    rewritten, _ = rewrite_program(bp, plan)
    cluster = ClusterSpec(
        nodes=[NodeSpec(f"n{i}", 1e9) for i in range(2)],
        link=ethernet_100m(),
    )
    baseline = DistributedExecutor(rewritten, plan, cluster).run()
    run = DistributedExecutor(
        rewritten, plan, cluster,
        faults=FaultPlan(crashes=((0, 9_000),)),
        recovery=REC,
    ).run()
    assert run.stdout == baseline.stdout == EXPECTED_STDOUT
    assert not run.degraded
    assert [r.node for r in run.recovered] == [0]


# -------------------------------------------------- detection primitives
class _FakeMPI:
    def __init__(self, size=3):
        self.size = size
        self.sent = []

    def isend(self, msg):
        self.sent.append(msg)
        yield ("cost", 1)


@pytest.fixture
def unit_reference_hz(monkeypatch):
    """Pin the detection reference speed to 1 Hz so the plan's
    cycle-denominated knobs map 1:1 onto node.clock seconds."""
    import repro.runtime.checkpoint as ckpt_mod

    monkeypatch.setattr(ckpt_mod, "REFERENCE_HZ", 1.0)


class _FakeNode:
    def __init__(self):
        self.node_id = 1
        self.main_partition = 1
        self.spec = NodeSpec("fake", 1.0)
        self.charged_cycles = 0
        self.clock = 0.0
        self.dead_peers = set()
        self.faults = []
        self.injector = object()   # fault plan present: leases are armed
        self.replica_dir = {}
        self.mpi = _FakeMPI()

    def take_matching(self, match):
        return None    # empty inbox


def _drive(gen):
    return [event for event in gen]


def test_heartbeats_emitted_on_cycle_schedule(unit_reference_hz):
    node = _FakeNode()
    rec = NodeRecovery(
        node, RecoveryPlan(interval=10**9, heartbeat_cycles=100,
                           lease_cycles=1_000), nparts=2,
    )
    node.clock = 150.0
    _drive(rec.tick(serving=False))
    beats = [m for m in node.mpi.sent if m.kind is MessageKind.HEARTBEAT]
    assert sorted(m.dst for m in beats) == [0, 2]
    # not due again until another 100 "cycles" of virtual time pass
    node.mpi.sent.clear()
    _drive(rec.tick(serving=False))
    assert node.mpi.sent == []
    node.clock = 260.0
    _drive(rec.tick(serving=False))
    assert [m.dst for m in node.mpi.sent
            if m.kind is MessageKind.HEARTBEAT] == [0, 2]


def test_lease_expiry_declares_peer_dead(unit_reference_hz):
    node = _FakeNode()
    rec = NodeRecovery(
        node, RecoveryPlan(interval=10**9, heartbeat_cycles=100,
                           lease_cycles=500), nparts=2,
    )
    rec.note_frame(2)              # heard from node 2 at clock 0
    node.clock = 400.0
    _drive(rec.tick(serving=False))
    assert 2 not in node.dead_peers          # lease not yet expired
    # expiry needs BOTH the lease window and >= 3 unanswered probes: walk
    # the clock through enough beat rounds to accumulate them
    for clock in (501.0, 601.0, 701.0, 801.0):
        node.clock = clock
        _drive(rec.tick(serving=False))
    assert 2 in node.dead_peers
    verdicts = [f for f in node.faults if f.kind == "lease_expired"]
    assert len(verdicts) == 1 and verdicts[0].node == 2


def test_lease_needs_unanswered_probes(unit_reference_hz):
    # a single clock burst far past the lease window (a node returning
    # from a long local stretch) must NOT indict a peer it never probed:
    # verdicts need several unanswered pings, not just elapsed time
    node = _FakeNode()
    rec = NodeRecovery(
        node, RecoveryPlan(interval=10**9, heartbeat_cycles=100,
                           lease_cycles=500), nparts=2,
    )
    rec.note_frame(2)
    node.clock = 50_000.0          # 100x the lease window in one jump
    _drive(rec.tick(serving=False))
    assert 2 not in node.dead_peers and node.faults == []
    # and a beat-back mid-probing resets the count: still no verdict
    node.clock = 50_100.0
    _drive(rec.tick(serving=False))
    rec.note_frame(2)
    node.clock = 50_200.0
    _drive(rec.tick(serving=False))
    assert 2 not in node.dead_peers and node.faults == []


def test_lease_disarmed_without_fault_plan(unit_reference_hz):
    node = _FakeNode()
    node.injector = None           # fault-free run: no verdicts, ever
    rec = NodeRecovery(
        node, RecoveryPlan(interval=10**9, heartbeat_cycles=100,
                           lease_cycles=500), nparts=2,
    )
    rec.note_frame(2)
    node.clock = 10_000.0
    _drive(rec.tick(serving=False))
    assert node.dead_peers == set() and node.faults == []


# -------------------------------- wait_for_message short-circuits (fix)
def test_thread_wait_short_circuits_when_all_peers_dead():
    from repro.runtime.threads import ThreadNode

    node = ThreadNode(0, NodeSpec("n0", 1e9))
    node._cluster_size = 3
    node.dead_peers.update({1, 2})
    t0 = time.monotonic()
    with pytest.raises(PeerLost):
        node.wait_for_message(timeout_s=60.0)
    assert time.monotonic() - t0 < 1.0
    # with one peer still alive the wait must block (and then time out on
    # the short timeout we hand it) instead of raising PeerLost
    node.dead_peers.discard(2)
    from repro.errors import RuntimeServiceError

    with pytest.raises(RuntimeServiceError):
        node.wait_for_message(timeout_s=0.01)


def test_process_wait_short_circuits_when_all_peers_dead():
    import multiprocessing

    from repro.runtime.proc import PARENT_CTRL, ProcNode

    r1, _w1 = multiprocessing.Pipe(duplex=False)
    rc, _wc = multiprocessing.Pipe(duplex=False)
    node = ProcNode(0, NodeSpec("n0", 1e9), {1: r1, PARENT_CTRL: rc})
    node.dead_peers.add(1)
    t0 = time.monotonic()
    with pytest.raises(PeerLost):
        node.wait_for_message(timeout_s=60.0)
    assert time.monotonic() - t0 < 1.0
