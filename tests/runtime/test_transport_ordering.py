"""Transport ordering guarantees.

The message-exchange protocol relies on per-(src, dst) FIFO delivery: an
asynchronous remote write followed by a synchronous read of the same object
must observe the write (the paper's §4.2 communication optimization).  These
tests pin that down on every backend:

* a hypothesis property that the simulated network keeps per-pair FIFO under
  randomized latency, bandwidth and message sizes;
* the same property for the thread backend's locked queues;
* the §async ablation invariant — async-write-then-sync-read reads its own
  writes — as an end-to-end MJ program on sim, thread and process backends.
"""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import compile_mj_raw

from repro.distgen import rewrite_program
from repro.distgen.plan import DistributionPlan
from repro.runtime.cluster import ClusterSpec, LinkSpec, NodeSpec, ethernet_100m
from repro.runtime.executor import DistributedExecutor
from repro.runtime.message import Message, MessageKind
from repro.runtime.simnet import SimCluster
from repro.runtime.threads import ThreadBackend

BACKENDS = ("sim", "thread", "process")


# ------------------------------------------------------------- simnet property
@settings(max_examples=60, deadline=None)
@given(
    latency=st.floats(min_value=1e-6, max_value=0.5),
    bandwidth=st.floats(min_value=1e3, max_value=1e9),
    sizes=st.lists(st.integers(min_value=0, max_value=5000), min_size=1, max_size=30),
    interleave=st.lists(st.booleans(), min_size=0, max_size=30),
)
def test_simnet_fifo_per_pair_under_random_timing(latency, bandwidth, sizes, interleave):
    """Per-(src, dst) FIFO must hold whatever the link looks like: messages
    of wildly different sizes from the same sender arrive in send order,
    even when a second sender interleaves its own traffic."""
    spec = ClusterSpec(
        nodes=[NodeSpec(f"n{i}", 1e9) for i in range(3)],
        link=LinkSpec(latency_s=latency, bandwidth_Bps=bandwidth),
    )
    cluster = SimCluster(spec)
    received = []

    def sender():
        for req, size in enumerate(sizes, start=1):
            cluster.post(0, 2, Message(MessageKind.DEPENDENCE, 0, 2, req, b"x" * size))
            # vary the sender clock so departures are not simultaneous
            yield ("cost", 1000 * (size % 7 + 1))

    def other_sender():
        for req, _ in enumerate(interleave, start=1):
            cluster.post(1, 2, Message(MessageKind.DEPENDENCE, 1, 2, req, b"y" * 64))
            yield ("cost", 500)

    def receiver():
        want = len(sizes) + len(interleave)
        while len(received) < want:
            m = cluster.nodes[2].take_matching(lambda m: True)
            if m is not None:
                received.append((m.src, m.req_id))
            else:
                yield ("wait",)

    cluster.nodes[0].gen = sender()
    cluster.nodes[1].gen = other_sender()
    cluster.nodes[2].gen = receiver()
    cluster.run()

    from_0 = [req for src, req in received if src == 0]
    from_1 = [req for src, req in received if src == 1]
    assert from_0 == sorted(from_0), "per-(0,2) FIFO violated"
    assert from_1 == sorted(from_1), "per-(1,2) FIFO violated"


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=0, max_value=2000), min_size=1, max_size=40)
)
def test_thread_backend_fifo_per_pair(sizes):
    """The thread backend's locked queue preserves sender program order."""
    spec = ClusterSpec(
        nodes=[NodeSpec("a", 1e9), NodeSpec("b", 1e9)], link=ethernet_100m()
    )
    backend = ThreadBackend(spec)
    for req, size in enumerate(sizes, start=1):
        backend.post(0, 1, Message(MessageKind.DEPENDENCE, 0, 1, req, b"x" * size))
    got = []
    while True:
        m = backend.nodes[1].take_matching(lambda m: True)
        if m is None:
            break
        got.append(m.req_id)
    assert got == list(range(1, len(sizes) + 1))
    assert backend.total_messages == len(sizes)
    assert backend.nodes[0].msgs_sent == len(sizes)


# ------------------------------------------------- async ablation invariant
ASYNC_SRC = """
class Store {
    int a;
    int b;
    int[] arr;
    Store() { arr = new int[8]; }
    int sum() { return a + b + arr[3]; }
}
class M {
    static void main(String[] args) {
        Store s = new Store();
        int i;
        for (i = 0; i < 25; i++) {
            s.a = i;
            s.b = i * 2;
            s.arr[3] = i * 3;
        }
        Sys.println(s.sum() + "," + s.a + "," + s.arr[3]);
    }
}
"""


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("async_writes", (False, True))
def test_async_write_then_sync_read_consistent(backend, async_writes):
    """The §async ablation invariant: fire-and-forget remote field/array
    writes followed by a synchronous read observe every write, because the
    transport keeps per-pair FIFO.  Holds on every backend, and the result
    is identical with the optimization off."""
    bp, _ = compile_mj_raw(ASYNC_SRC)
    plan = DistributionPlan(
        nparts=2,
        granularity="class",
        class_home={"Store": 1, "M": 0},
        dependent_classes={"Store", "M"},
        main_partition=0,
    )
    rewritten, _ = rewrite_program(bp, plan)
    cluster = ClusterSpec(
        nodes=[NodeSpec("n0", 1e9), NodeSpec("n1", 1e9)], link=ethernet_100m()
    )
    result = DistributedExecutor(
        rewritten, plan, cluster, async_writes=async_writes, backend=backend
    ).run()
    assert result.stdout == ["144,24,72"]  # 24 + 48 + 72, a=24, arr[3]=72


def test_async_writes_send_fewer_replies_on_sim():
    """Sanity that the ablation really goes fire-and-forget: async mode
    moves fewer messages (no REPLY per write) for the same program."""
    bp, _ = compile_mj_raw(ASYNC_SRC)
    plan = DistributionPlan(
        nparts=2, granularity="class", class_home={"Store": 1, "M": 0},
        dependent_classes={"Store", "M"}, main_partition=0,
    )
    rewritten, _ = rewrite_program(bp, plan)
    cluster = ClusterSpec(
        nodes=[NodeSpec("n0", 1e9), NodeSpec("n1", 1e9)], link=ethernet_100m()
    )

    def run(async_writes):
        return DistributedExecutor(
            rewritten, plan, cluster, async_writes=async_writes, backend="sim"
        ).run()

    assert run(True).total_messages < run(False).total_messages
