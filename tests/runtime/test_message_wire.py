"""Message wire-format tests: serialize/deserialize round trip, size
accounting (frame length == the byte volume the simulated network charges),
and framing validation."""

import pytest

from repro.errors import RuntimeServiceError
from repro.runtime.message import (
    HEADER_BYTES,
    Message,
    MessageKind,
    WIRE_MAGIC,
)


@pytest.mark.parametrize("kind", list(MessageKind))
@pytest.mark.parametrize(
    "payload", [b"", b"x", b"payload-bytes", bytes(range(256)) * 17]
)
def test_round_trip(kind, payload):
    msg = Message(kind, src=3, dst=7, req_id=3_000_042, payload=payload)
    back = Message.deserialize(msg.serialize())
    assert back == msg
    assert back.kind is kind


def test_frame_length_equals_accounted_size():
    """The simnet charges ``msg.size`` bytes per message; a real transport
    moves ``len(serialize())`` bytes.  They must agree exactly."""
    for payload in (b"", b"abc", b"z" * 10_000):
        msg = Message(MessageKind.DEPENDENCE, 0, 1, 9, payload)
        frame = msg.serialize()
        assert len(frame) == msg.size == HEADER_BYTES + len(payload)


def test_header_is_24_bytes():
    assert len(Message(MessageKind.SHUTDOWN, 0, 1, 0).serialize()) == HEADER_BYTES


def test_req_id_range_survives():
    # req ids are node_id * 1_000_000 + k; make sure 64-bit values survive
    msg = Message(MessageKind.REPLY, 100, 200, 2**40 + 17, b"ok")
    assert Message.deserialize(msg.serialize()).req_id == 2**40 + 17


def test_truncated_frame_rejected():
    frame = Message(MessageKind.NEW, 0, 1, 1, b"hello").serialize()
    with pytest.raises(RuntimeServiceError, match="truncated"):
        Message.deserialize(frame[:10])
    with pytest.raises(RuntimeServiceError, match="length mismatch"):
        Message.deserialize(frame[:-2])


def test_bad_magic_rejected():
    frame = bytearray(Message(MessageKind.NEW, 0, 1, 1).serialize())
    frame[0:2] = b"??"
    with pytest.raises(RuntimeServiceError, match="magic"):
        Message.deserialize(bytes(frame))
    assert frame[2:4] != WIRE_MAGIC  # sanity: we really flipped the magic


def test_corrupted_payload_rejected():
    frame = bytearray(Message(MessageKind.NEW, 0, 1, 1, b"hello").serialize())
    frame[-1] ^= 0xFF
    with pytest.raises(RuntimeServiceError, match="checksum"):
        Message.deserialize(bytes(frame))
