"""Process-backend worker-death tests: a worker killed before it can
report (SIGKILL — simulating OOM-kill or a segfault) must surface as a
structured ``worker_lost`` fault record promptly, never as a hang on the
results queue or on peers blocked in recv.
"""

import os
import signal
import sys
import pathlib
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

import pytest

from helpers import compile_mj_raw

from repro.distgen import rewrite_program
from repro.distgen.plan import DistributionPlan
from repro.runtime import proc as proc_mod
from repro.runtime.cluster import ClusterSpec, NodeSpec, ethernet_100m
from repro.runtime.executor import DistributedExecutor

SRC = """
class Cell {
    int v;
    Cell(int v) { this.v = v; }
    int get() { return v; }
}

class Main {
    static void main(String[] args) {
        Cell c = new Cell(41);
        Sys.println("got:" + (c.get() + 1));
    }
}
"""


def _run_process(monkeypatch, victim):
    """Run SRC on the process backend with node ``victim`` SIGKILLing
    itself during provisioning (fork inherits the patch, the parent keeps
    the real function)."""
    real_provision = proc_mod.provision_node

    def killing_provision(node, transport, loaded, policy):
        if node.node_id == victim:
            os.kill(os.getpid(), signal.SIGKILL)
        return real_provision(node, transport, loaded, policy)

    monkeypatch.setattr(proc_mod, "provision_node", killing_provision)
    bp, _ = compile_mj_raw(SRC)
    plan = DistributionPlan(
        nparts=2,
        granularity="class",
        class_home={"Cell": 0, "Main": 1},
        dependent_classes={"Cell", "Main"},
        main_partition=1,
    )
    rewritten, _ = rewrite_program(bp, plan)
    cluster = ClusterSpec(
        nodes=[NodeSpec(f"n{i}", 1e9) for i in range(2)],
        link=ethernet_100m(),
    )
    return DistributedExecutor(
        rewritten, plan, cluster, backend="process"
    ).run()


@pytest.mark.parametrize("victim", (0, 1))
def test_sigkilled_worker_becomes_structured_fault(monkeypatch, victim):
    t0 = time.monotonic()
    run = _run_process(monkeypatch, victim)
    elapsed = time.monotonic() - t0
    # promptly: dead-worker detection polls exit codes, it does not sit out
    # the 60 s recv timeout the peers would otherwise block in
    assert elapsed < 30.0
    assert run.degraded
    lost = [f for f in run.faults if f.kind == "worker_lost"]
    assert len(lost) == 1
    assert lost[0].node == victim
    assert f"node {victim}" in lost[0].detail
    # the survivor still reports; the dead node contributes zeroed stats
    assert len(run.node_stats) == 2


def test_unkilled_process_run_still_clean(monkeypatch):
    """Guard against the harness itself: with no victim the same plumbing
    reports a clean, undegraded run."""
    run = _run_process(monkeypatch, victim=-1)
    assert not run.degraded
    assert run.faults == []
    assert run.stdout == ["got:42"]
