"""Process-backend worker-death tests: a worker killed before it can
report (SIGKILL — simulating OOM-kill or a segfault) must surface as a
structured ``worker_lost`` fault record promptly, never as a hang on the
results queue or on peers blocked in recv.
"""

import os
import signal
import sys
import pathlib
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

import pytest

from helpers import compile_mj_raw

from repro.distgen import rewrite_program
from repro.distgen.plan import DistributionPlan
from repro.runtime import worker as worker_mod
from repro.runtime.cluster import ClusterSpec, NodeSpec, ethernet_100m
from repro.runtime.executor import DistributedExecutor

SRC = """
class Cell {
    int v;
    Cell(int v) { this.v = v; }
    int get() { return v; }
}

class Main {
    static void main(String[] args) {
        Cell c = new Cell(41);
        Sys.println("got:" + (c.get() + 1));
    }
}
"""


def _run_process(monkeypatch, victim):
    """Run SRC on the process backend with node ``victim`` SIGKILLing
    itself during provisioning (fork inherits the patch, the parent keeps
    the real function)."""
    real_provision = worker_mod.provision_node

    def killing_provision(node, transport, loaded, policy):
        if node.node_id == victim:
            os.kill(os.getpid(), signal.SIGKILL)
        return real_provision(node, transport, loaded, policy)

    monkeypatch.setattr(worker_mod, "provision_node", killing_provision)
    bp, _ = compile_mj_raw(SRC)
    plan = DistributionPlan(
        nparts=2,
        granularity="class",
        class_home={"Cell": 0, "Main": 1},
        dependent_classes={"Cell", "Main"},
        main_partition=1,
    )
    rewritten, _ = rewrite_program(bp, plan)
    cluster = ClusterSpec(
        nodes=[NodeSpec(f"n{i}", 1e9) for i in range(2)],
        link=ethernet_100m(),
    )
    return DistributedExecutor(
        rewritten, plan, cluster, backend="process"
    ).run()


@pytest.mark.parametrize("victim", (0, 1))
def test_sigkilled_worker_becomes_structured_fault(monkeypatch, victim):
    t0 = time.monotonic()
    run = _run_process(monkeypatch, victim)
    elapsed = time.monotonic() - t0
    # promptly: dead-worker detection polls exit codes, it does not sit out
    # the 60 s recv timeout the peers would otherwise block in
    assert elapsed < 30.0
    assert run.degraded
    lost = [f for f in run.faults if f.kind == "worker_lost"]
    assert len(lost) == 1
    assert lost[0].node == victim
    assert f"node {victim}" in lost[0].detail
    # the survivor still reports; the dead node contributes zeroed stats
    assert len(run.node_stats) == 2


def test_unkilled_process_run_still_clean(monkeypatch):
    """Guard against the harness itself: with no victim the same plumbing
    reports a clean, undegraded run."""
    run = _run_process(monkeypatch, victim=-1)
    assert not run.degraded
    assert run.faults == []
    assert run.stdout == ["got:42"]


# --------------------------------------------------------- torn checkpoints
COUNTER_SRC = """
class Cell {
    int v;
    Cell(int v) { this.v = v; }
    int bump(int d) { v = v + d; return v; }
    int get() { return v; }
}

class Main {
    static void main(String[] args) {
        Cell c = new Cell(1);
        int i = 0;
        while (i < 40) { c.bump(i); i = i + 1; }
        Sys.println("cell:" + c.get());
    }
}
"""
COUNTER_STDOUT = ["cell:781"]


def _run_counter(monkeypatch, recovery, torn_victim=-1):
    """COUNTER_SRC on the process backend; with ``torn_victim`` >= 0 that
    node is SIGKILLed in the middle of shipping its second checkpoint, so
    its recovery home holds epoch 1 intact and a truncated epoch-2 blob."""
    from repro.runtime import checkpoint as ckpt_mod
    from repro.runtime.message import Message, MessageKind

    real_checkpoint = ckpt_mod.NodeRecovery.checkpoint

    def torn_checkpoint(self):
        if self.node.node_id == torn_victim and self.epoch >= 1:
            # the write is torn mid-flight: only a prefix of the encoded
            # blob reaches the home, then the process dies on the spot —
            # no acks, no retransmit
            node = self.node
            payload = ckpt_mod.encode_checkpoint(self._snapshot_blob())
            torn = payload[: max(8, len(payload) // 3)]
            for home in ckpt_mod.recovery_homes(
                node.node_id, node.mpi.size, self.nparts, self.plan.copies
            ):
                yield from node.mpi.isend(
                    Message(MessageKind.CHECKPOINT, node.node_id, home, 0, torn)
                )
            os.kill(os.getpid(), signal.SIGKILL)
        result = yield from real_checkpoint(self)
        return result

    monkeypatch.setattr(
        ckpt_mod.NodeRecovery, "checkpoint", torn_checkpoint
    )
    bp, _ = compile_mj_raw(COUNTER_SRC)
    plan = DistributionPlan(
        nparts=2,
        granularity="class",
        class_home={"Cell": 0, "Main": 1},
        dependent_classes={"Cell", "Main"},
        main_partition=1,
    )
    rewritten, _ = rewrite_program(bp, plan)
    cluster = ClusterSpec(
        nodes=[NodeSpec(f"n{i}", 1e9) for i in range(3)],
        link=ethernet_100m(),
    )
    return DistributedExecutor(
        rewritten, plan, cluster, backend="process", recovery=recovery
    ).run()


def test_sigkill_during_checkpoint_write_falls_back_an_epoch(monkeypatch):
    from repro.runtime.checkpoint import RecoveryPlan

    t0 = time.monotonic()
    run = _run_counter(
        monkeypatch,
        recovery=RecoveryPlan(interval=2_000),
        torn_victim=0,
    )
    elapsed = time.monotonic() - t0
    assert elapsed < 60.0
    # the torn epoch-2 blob failed validation at the home and was dropped
    torn = [f for f in run.faults if f.kind == "torn_checkpoint"]
    assert torn and torn[0].node == 0
    assert "keeping previous epoch" in torn[0].detail
    # ... so the takeover restored epoch 1, replayed the rest, and the
    # crash is fully masked: byte-identical output, nothing degraded
    assert [r.node for r in run.recovered] == [0]
    assert "epoch 1" in run.recovered[0].detail
    assert not run.degraded
    assert run.stdout == COUNTER_STDOUT
    assert any(f.kind == "worker_lost" and f.node == 0 for f in run.faults)


def test_counter_workload_baseline_masks_plain_sigkill(monkeypatch):
    """Same workload, no torn write: checkpointed recovery on the process
    backend masks an uncorrupted crash too (the control for the test
    above)."""
    from repro.runtime.checkpoint import RecoveryPlan

    run = _run_counter(monkeypatch, recovery=RecoveryPlan(interval=2_000))
    assert not run.degraded
    assert run.stdout == COUNTER_STDOUT
    assert run.faults == []
