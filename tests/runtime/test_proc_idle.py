"""Idle-CPU regression test for the process backend (PR 10 satellite).

The original worker loop spun on ``conn.poll(0)`` across the whole pipe
mesh while blocked, burning a full core per idle node.  The fix blocks in
``multiprocessing.connection.wait()``; this test pins the contract down by
measuring actual CPU time consumed while a node sits in
``wait_for_message`` with nothing arriving.
"""

import sys
import pathlib
import threading
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

from repro.runtime.cluster import NodeSpec
from repro.runtime.message import Message, MessageKind
from repro.runtime.proc import ProcNode, _mp_context


def test_blocked_wait_does_not_spin():
    """A node blocked in wait_for_message for ~0.6s of wall time must burn
    (almost) no CPU: the wait is a real blocking select, not a poll loop."""
    ctx = _mp_context()
    r0, w0 = ctx.Pipe(duplex=False)
    r1, w1 = ctx.Pipe(duplex=False)
    node = ProcNode(0, NodeSpec("n0", 1e9), {1: r0, 2: r1})

    frame = Message(MessageKind.REPLY, 1, 0, 7, b"late").serialize()
    sender = threading.Timer(0.6, lambda: w0.send_bytes(frame))
    sender.start()
    try:
        wall0 = time.monotonic()
        cpu0 = time.process_time()
        node.wait_for_message(10.0)
        wall = time.monotonic() - wall0
        cpu = time.process_time() - cpu0
        # the frame that woke us up is actually deliverable
        got = node.take_matching(lambda m: m.req_id == 7)
    finally:
        sender.cancel()
        for conn in (r0, w0, r1, w1):
            conn.close()

    assert wall >= 0.5, "sender fired early — the wait never blocked"
    # a poll(0) spin loop would burn ~wall seconds of CPU here; the blocking
    # wait should use a small fraction (generous bound for slow CI boxes)
    assert cpu < 0.25, f"blocked wait burned {cpu:.3f}s CPU over {wall:.3f}s"
    assert got is not None and got.payload == b"late"
