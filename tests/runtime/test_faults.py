"""Fault-injection and quorum-replication tests.

The crash-safety contract, checked on every backend:

* a planned node crash degrades the run to a structured
  :class:`~repro.runtime.faults.FaultRecord` report — never a hang, never
  a bare exception out of :meth:`DistributedExecutor.run`;
* transient message loss / duplication / delay is masked by bounded retry
  with backoff, so outputs stay byte-identical to the fault-free run;
* with quorum replication (read ``ceil(n/2)``, write majority), the same
  crash is *masked*: the run completes with the correct result and the
  crash shows up only as fault evidence.
"""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

import pytest

from helpers import compile_mj_raw

from repro.distgen import rewrite_program
from repro.distgen.plan import DistributionPlan
from repro.distgen.quorum import (
    plan_replication,
    quorum_availability,
    read_quorum,
    replication_safe_classes,
    write_quorum,
)
from repro.errors import ConfigError
from repro.runtime.cluster import ClusterSpec, NodeSpec, ethernet_100m
from repro.runtime.executor import DistributedExecutor
from repro.runtime.faults import FaultInjector, FaultPlan, FaultRecord

BACKENDS = ("sim", "thread", "process", "tcp")

# a replication-safe worker (primitive state only, self-contained methods)
# doing enough compute on its home node that a mid-run crash cycle exists
WORKER_SRC = """
class Worker {
    int acc;
    Worker(int s) { acc = s; }
    int crunch(int n) {
        int i = 0;
        int v = acc;
        while (i < n) {
            int k = 0;
            while (k < n) {
                int m = 0;
                while (m < n) { v = (v * 31 + m) % 65521; m = m + 1; }
                k = k + 1;
            }
            i = i + 1;
        }
        acc = v;
        return v;
    }
    int get() { return acc; }
}

class Main {
    static void main(String[] args) {
        Worker w = new Worker(7);
        int r = w.crunch(9);
        Sys.println("total:" + (r + w.get()));
    }
}
"""
WORKER_STDOUT = ["total:27422"]


def run_worker(backend, nnodes=2, faults=None, replicas=None):
    """WORKER_SRC with Worker homed on node 0 and main on node 1."""
    bp, _ = compile_mj_raw(WORKER_SRC)
    plan = DistributionPlan(
        nparts=2,
        granularity="class",
        class_home={"Worker": 0, "Main": 1},
        dependent_classes={"Worker", "Main"},
        main_partition=1,
    )
    rewritten, _ = rewrite_program(bp, plan)
    cluster = ClusterSpec(
        nodes=[NodeSpec(f"n{i}", 1e9) for i in range(nnodes)],
        link=ethernet_100m(),
    )
    return DistributedExecutor(
        rewritten, plan, cluster, backend=backend,
        faults=faults, replicas=replicas,
    ).run()


# ------------------------------------------------------------------ FaultPlan
def test_fault_plan_round_trip():
    plan = FaultPlan(
        crashes=((0, 5_000), (2, 9_999)),
        drop_pct=0.05, dup_pct=0.01, delay_s=1e-4,
        partitions=((0, 3),), seed=42, max_retries=4, backoff_cycles=500,
    )
    again = FaultPlan.from_dict(plan.to_dict())
    assert again == plan
    assert again.crash_cycle(0) == 5_000
    assert again.crash_cycle(1) is None
    assert not again.transient_only


def test_fault_plan_transient_only():
    assert FaultPlan(drop_pct=0.1, dup_pct=0.05, delay_s=1e-5).transient_only
    assert not FaultPlan(crashes=((1, 100),)).transient_only
    assert not FaultPlan(partitions=((0, 1),)).transient_only


def test_fault_plan_validation():
    with pytest.raises(ConfigError):
        FaultPlan(drop_pct=1.5)
    with pytest.raises(ConfigError):
        FaultPlan(crashes=((0, -1),))
    with pytest.raises(ConfigError):
        FaultPlan(max_retries=-1)


@pytest.mark.parametrize("plan", (
    FaultPlan(),                                     # the empty plan
    FaultPlan(partitions=()),                        # explicit empty edges
    FaultPlan(max_retries=0),                        # no retry budget at all
    FaultPlan(crashes=((0, 0),)),                    # crash at cycle zero
    FaultPlan(crashes=((3, 1),), max_retries=0, backoff_cycles=1),
    FaultPlan(drop_pct=1.0, dup_pct=1.0),            # probability extremes
    FaultPlan(partitions=((0, 1), (1, 0))),          # both link directions
), ids=("empty", "no-partitions", "no-retries", "cycle-zero",
        "minima", "extremes", "bidirectional"))
def test_fault_plan_round_trip_edge_shapes(plan):
    again = FaultPlan.from_dict(plan.to_dict())
    assert again == plan
    assert again.to_dict() == plan.to_dict()
    # and a second hop is a fixed point
    assert FaultPlan.from_dict(again.to_dict()) == again


def test_fault_plan_rejects_duplicate_crash_entries():
    with pytest.raises(ValueError, match="node 2 more than once"):
        FaultPlan(crashes=((2, 1_000), (2, 5_000)))
    # even an exact duplicate of the same entry is refused: a node dies
    # at most once, so the plan is ambiguous either way
    with pytest.raises(ValueError, match="more than once"):
        FaultPlan(crashes=((1, 100), (1, 100)))
    with pytest.raises(ValueError):
        FaultPlan.from_dict(
            {"crashes": [[0, 10], [1, 20], [0, 30]], "seed": 7}
        )


def test_cluster_config_coerces_fault_dict():
    from repro.api.config import ClusterConfig

    plan = FaultPlan(drop_pct=0.1, seed=3)
    cfg = ClusterConfig(faults=plan.to_dict())
    assert cfg.faults == plan
    assert ClusterConfig.from_dict(cfg.to_dict()) == cfg


# ---------------------------------------------------------------- FaultInjector
def test_injector_verdicts_are_deterministic():
    plan = FaultPlan(drop_pct=0.3, dup_pct=0.2, delay_s=1e-5, seed=99)
    a = FaultInjector(plan, node_id=1)
    b = FaultInjector(plan, node_id=1)
    va = [a.on_send(dst=0, req_id=i) for i in range(50)]
    vb = [b.on_send(dst=0, req_id=i) for i in range(50)]
    assert va == vb
    assert any(not v.deliver for v in va)       # drops do happen at 30%
    assert any(v.copies == 2 for v in va)       # and duplications at 20%


def test_injector_nodes_draw_independent_streams():
    plan = FaultPlan(drop_pct=0.5, seed=7)
    ia, ib = FaultInjector(plan, 0), FaultInjector(plan, 1)
    a = [ia.on_send(1, i).deliver for i in range(40)]
    b = [ib.on_send(0, i).deliver for i in range(40)]
    assert a != b


def test_injector_backoff_grows_then_caps():
    plan = FaultPlan(drop_pct=1.0, backoff_cycles=100)
    inj = FaultInjector(plan, 0)
    costs = [inj.backoff(k) for k in range(1, 14)]
    assert costs[0] == 100
    assert costs == sorted(costs)
    assert costs[-1] == costs[-2] == 100 << 10  # capped exponent


def test_injector_crash_fires_once():
    inj = FaultInjector(FaultPlan(crashes=((3, 1_000),)), node_id=3)
    assert not inj.crash_due(999)
    assert inj.crash_due(1_000)
    assert not inj.crash_due(2_000)  # one structured record, not a storm
    assert not FaultInjector(FaultPlan(crashes=((3, 1_000),)), 0).crash_due(5_000)


# -------------------------------------------------------------------- quorum
def test_quorum_sizes_match_mcs():
    # read ceil(n/2), write floor(n/2)+1 — every read meets every write
    for n in range(1, 8):
        assert read_quorum(n) == (n + 1) // 2
        assert write_quorum(n) == n // 2 + 1
        assert read_quorum(n) + write_quorum(n) > n


def test_quorum_availability_bounds():
    assert quorum_availability(3, 1.0, 2) == pytest.approx(1.0)
    assert quorum_availability(3, 0.0, 2) == pytest.approx(0.0)
    # 3 copies at p=0.9, need 2 up: 0.9^3 + 3*0.9^2*0.1
    assert quorum_availability(3, 0.9, 2) == pytest.approx(0.972)
    # more copies at the same quorum never hurt
    assert quorum_availability(5, 0.9, 2) >= quorum_availability(3, 0.9, 2)


def test_replication_safety_scan():
    bp, _ = compile_mj_raw(WORKER_SRC)
    assert replication_safe_classes(bp) == {"Worker"}  # Main is main_class

    arr_src = """
    class Holder {
        int[] data;
        Holder(int n) { data = new int[n]; }
        int get(int i) { return data[i]; }
    }
    class Main { static void main(String[] args) { Sys.println(0); } }
    """
    bp2, _ = compile_mj_raw(arr_src)
    # array fields read back as per-node heap refs -> never quorum-safe
    assert "Holder" not in replication_safe_classes(bp2)


def test_plan_replication_prefers_idle_nodes():
    bp, _ = compile_mj_raw(WORKER_SRC)
    plan = DistributionPlan(
        nparts=2, granularity="class",
        class_home={"Worker": 0, "Main": 1},
        dependent_classes={"Worker", "Main"},
        main_partition=1,
    )
    rmap = plan_replication(plan, bp, cluster_size=4, factor=3)
    assert rmap == {"Worker": (0, 2, 3)}  # home first, then the idle nodes
    assert plan_replication(plan, bp, cluster_size=4, factor=1) == {}


# ----------------------------------------------------- crash: degrade, don't hang
@pytest.mark.parametrize("backend", BACKENDS)
def test_node_crash_degrades_to_structured_report(backend):
    run = run_worker(backend, faults=FaultPlan(crashes=((0, 5_000),), seed=1))
    assert run.degraded
    kinds = {f.kind for f in run.faults}
    assert "crash" in kinds
    assert all(isinstance(f, FaultRecord) for f in run.faults)
    crash = next(f for f in run.faults if f.kind == "crash")
    assert crash.node == 0
    assert crash.at_cycle >= 5_000
    # every node still reports stats — a degraded run is still observable
    assert len(run.node_stats) == 2


@pytest.mark.parametrize("backend", BACKENDS)
def test_transient_loss_is_masked_by_retry(backend):
    plan = FaultPlan(drop_pct=0.10, dup_pct=0.05, delay_s=1e-5, seed=11)
    run = run_worker(backend, faults=plan)
    assert not run.degraded
    assert run.faults == []
    assert run.stdout == WORKER_STDOUT


def test_total_loss_exhausts_retries_and_degrades():
    plan = FaultPlan(drop_pct=1.0, seed=2, max_retries=3)
    run = run_worker("sim", faults=plan)
    assert run.degraded
    assert "retries_exhausted" in {f.kind for f in run.faults}


# ------------------------------------------------------ replication masks crashes
@pytest.mark.parametrize("backend", BACKENDS)
def test_replicated_run_is_correct_without_faults(backend):
    run = run_worker(backend, nnodes=4, replicas={"Worker": (0, 2, 3)})
    assert run.stdout == WORKER_STDOUT
    assert not run.degraded


@pytest.mark.parametrize("backend", BACKENDS)
def test_quorum_masks_primary_crash(backend):
    """The flagship scenario: the replica primary crashes mid-run, yet the
    quorum-replicated run completes with the correct result; the same
    world unreplicated only degrades."""
    faults = FaultPlan(crashes=((0, 5_000),), seed=5)
    masked = run_worker(
        backend, nnodes=4, faults=faults, replicas={"Worker": (0, 2, 3)}
    )
    assert masked.stdout == WORKER_STDOUT
    assert masked.degraded  # the crash is still evidence, not hidden
    assert "crash" in {f.kind for f in masked.faults}

    bare = run_worker(backend, nnodes=4, faults=faults)
    assert bare.degraded
    assert bare.stdout == []


# --------------------------------------------------------------- API plumbing
def test_experiment_threads_faults_and_reports_availability():
    from repro.api.config import (
        BackendConfig,
        ClusterConfig,
        ExperimentConfig,
        PartitionConfig,
        WorkloadSpec,
    )
    from repro.api.experiment import Experiment
    from repro.testing.oracle import temp_workload

    with temp_workload(WORKER_SRC) as wname:
        cfg = ExperimentConfig(
            workload=WorkloadSpec(name=wname, size="test"),
            partition=PartitionConfig(nparts=2, replication=3),
            cluster=ClusterConfig(
                speeds=(1.7e9, 800e6, 1.0e9, 2.4e9),
                faults=FaultPlan(crashes=((0, 5_000),), seed=5),
            ),
            backend=BackendConfig(name="sim"),
        )
        exp = Experiment(cfg)
        assert exp.replicas() == {"Worker": (0, 2, 3)}
        res = exp.run()
        assert res.distributed.stdout == WORKER_STDOUT
        assert res.distributed.degraded
        report = exp.report()
        assert report.replication == 3
        assert report.degraded
        assert report.availability == pytest.approx(
            quorum_availability(3, 0.9, write_quorum(3))
        )
        assert any(f["kind"] == "crash" for f in report.faults)


def test_oracle_accepts_degraded_crashy_world():
    from repro.api.config import ExperimentConfig
    from repro.api.experiment import Experiment
    from repro.testing.oracle import _check_backend

    cfg = ExperimentConfig.from_options(
        "crypt", nparts=2, backend="sim",
        faults=FaultPlan(crashes=((0, 20_000),), seed=3),
    )
    divs, checks = _check_backend(Experiment(cfg), "sim", deep=False)
    assert divs == []
    assert checks == 2  # the degraded-mode checks, not the equality suite
