"""Distributed execution tests — the big equivalence property plus runtime
service behaviors (nested remote calls, remote arrays, error propagation)."""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

import pytest

from helpers import compile_mj_raw

from repro.distgen import rewrite_program
from repro.distgen.plan import DistributionPlan
from repro.errors import RuntimeServiceError, VMError
from repro.runtime.cluster import ClusterSpec, NodeSpec, ethernet_100m, paper_testbed
from repro.runtime.executor import DistributedExecutor, run_sequential
from repro.workloads import WORKLOADS


def forced_plan(dependent, homes, main_partition=0, nparts=2):
    return DistributionPlan(
        nparts=nparts,
        granularity="class",
        class_home=homes,
        dependent_classes=set(dependent),
        main_partition=main_partition,
    )


def run_split(src, homes, main_partition=0, nparts=2):
    bp, _ = compile_mj_raw(src)
    dependent = set(bp.classes)
    plan = forced_plan(dependent, homes, main_partition, nparts)
    rewritten, _ = rewrite_program(bp, plan)
    cluster = ClusterSpec(
        nodes=[NodeSpec(f"n{i}", 1e9) for i in range(nparts)],
        link=ethernet_100m(),
    )
    return DistributedExecutor(rewritten, plan, cluster).run()


def test_remote_object_full_lifecycle():
    src = """
    class Cell {
        int v;
        Cell(int v) { this.v = v; }
        int get() { return v; }
        void set(int x) { v = x; }
    }
    class M {
        static void main(String[] args) {
            Cell c = new Cell(5);
            c.set(c.get() * 2);
            Sys.println(c.get() + "," + c.v);
        }
    }
    """
    result = run_split(src, {"Cell": 1, "M": 0})
    assert result.stdout == ["10,10"]
    assert result.total_messages >= 6  # NEW + accesses + replies


def test_nested_remote_calls_callback():
    """A remote method that calls back into an object on the caller's node —
    the re-entrant pump case."""
    src = """
    class Alpha {
        Beta peer;
        int base;
        Alpha(int base) { this.base = base; }
        void setPeer(Beta b) { peer = b; }
        int compute(int x) { return base + peer.scale(x); }
        int raw() { return base; }
    }
    class Beta {
        Alpha friend;
        void setFriend(Alpha a) { friend = a; }
        int scale(int x) { return x * friend.raw(); }
    }
    class M {
        static void main(String[] args) {
            Alpha a = new Alpha(3);
            Beta b = new Beta();
            a.setPeer(b);
            b.setFriend(a);
            Sys.println(a.compute(4));
        }
    }
    """
    result = run_split(src, {"Alpha": 0, "Beta": 1, "M": 0})
    assert result.stdout == ["15"]  # 3 + 4*3


def test_remote_array_access():
    src = """
    class Holder {
        int[] data;
        Holder(int n) { data = new int[n]; }
        int[] expose() { return data; }
        int sum() {
            int s = 0;
            for (int i = 0; i < data.length; i++) { s += data[i]; }
            return s;
        }
    }
    class M {
        static void main(String[] args) {
            Holder h = new Holder(4);
            int[] remote = h.expose();
            remote[0] = 10;
            remote[3] = 32;
            Sys.println(h.sum() + "," + remote.length + "," + remote[3]);
        }
    }
    """
    result = run_split(src, {"Holder": 1, "M": 0})
    assert result.stdout == ["42,4,32"]


def test_reference_identity_across_the_wire():
    """An object shipped out and back resolves to the same heap object."""
    src = """
    class Box {
        Object held;
        void put(Object o) { held = o; }
        Object take() { return held; }
    }
    class Payload { int v; Payload(int v) { this.v = v; } int get() { return v; } }
    class M {
        static void main(String[] args) {
            Box box = new Box();
            Payload p = new Payload(7);
            box.put(p);
            Payload back = (Payload) box.take();
            back.v = 9;
            Sys.println(p.get() + "," + (back == p));
        }
    }
    """
    result = run_split(src, {"Box": 1, "Payload": 0, "M": 0})
    assert result.stdout == ["9,1"]


def test_remote_error_propagates():
    src = """
    class Risky {
        int divide(int a, int b) { return a / b; }
    }
    class M {
        static void main(String[] args) {
            Risky r = new Risky();
            Sys.println(r.divide(1, 0));
        }
    }
    """
    with pytest.raises(VMError, match="remote error"):
        run_split(src, {"Risky": 1, "M": 0})


def test_three_node_distribution():
    src = """
    class A { int f() { return 1; } }
    class B { int g() { return 2; } }
    class M {
        static void main(String[] args) {
            A a = new A();
            B b = new B();
            Sys.println(a.f() + b.g());
        }
    }
    """
    result = run_split(src, {"A": 1, "B": 2, "M": 0}, nparts=3)
    assert result.stdout == ["3"]
    assert len(result.node_stats) == 3


def test_statics_are_per_node():
    """Statics are per-JVM, as in the paper's deployment: code on the remote
    node sees its own copy."""
    src = """
    class G { static int counter; }
    class Worker {
        int bump() { G.counter++; return G.counter; }
    }
    class M {
        static void main(String[] args) {
            Worker w = new Worker();
            w.bump(); w.bump();
            G.counter = 100;
            Sys.println(w.bump() + "," + G.counter);
        }
    }
    """
    result = run_split(src, {"Worker": 1, "M": 0, "G": 0})
    # Worker's bumps hit node 1's copy (1,2,3); main's 100 lives on node 0
    assert result.stdout == ["3,100"]


def test_plan_larger_than_cluster_rejected():
    bp, _ = compile_mj_raw(WORKLOADS["bank"].source("test"))
    plan = forced_plan({"Bank"}, {"Bank": 2}, nparts=3)
    with pytest.raises(RuntimeServiceError, match="cluster has"):
        DistributedExecutor(bp, plan, paper_testbed())


def test_virtual_time_scales_with_cpu_speed():
    bp, _ = compile_mj_raw(WORKLOADS["heapsort"].source("test"))
    fast = run_sequential(bp, NodeSpec("fast", 2e9))
    slow = run_sequential(bp, NodeSpec("slow", 5e8))
    assert fast.stdout == slow.stdout
    assert slow.exec_time_s == pytest.approx(4 * fast.exec_time_s)


@pytest.mark.parametrize("name", ["bank", "method", "heapsort", "search", "db"])
def test_distributed_equals_sequential_for_workloads(name):
    """The headline equivalence property on a forced 2-way split."""
    bp, _ = compile_mj_raw(WORKLOADS[name].source("test"))
    seq = run_sequential(bp, NodeSpec("base", 1e9))

    classes = sorted(bp.classes)
    homes = {c: (i % 2) for i, c in enumerate(classes)}
    homes[bp.main_class] = 0
    plan = forced_plan(set(classes), homes, main_partition=0)
    rewritten, _ = rewrite_program(bp, plan)
    cluster = ClusterSpec(
        nodes=[NodeSpec("n0", 1e9), NodeSpec("n1", 1e9)], link=ethernet_100m()
    )
    dist = DistributedExecutor(rewritten, plan, cluster).run()
    assert dist.stdout == seq.stdout
