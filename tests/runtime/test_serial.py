"""Streamed message format tests: unit + hypothesis round trips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RuntimeServiceError
from repro.runtime.serial import decode_value, encode_value
from repro.vm.heap import Heap
from repro.vm.values import DependentRef, Ref


class FakeHeapEntry:
    def __init__(self, class_name):
        self.class_name = class_name


def roundtrip(value, src_node=0, dst_node=0, heap=None):
    data = encode_value(value, src_node, heap or Heap())
    return decode_value(data, dst_node)


@pytest.mark.parametrize("value", [
    None, 0, 1, -1, 2**31 - 1, -(2**31), 2**40, -(2**62),
    0.0, 1.5, -2.25, "hello", "", "unicode: üñí",
    [], [1, 2, 3], [1, "x", None, 2.5], [[1], [2, [3]]],
])
def test_roundtrip_values(value):
    assert roundtrip(value) == value


def test_boolean_encodes_as_int():
    assert roundtrip(True) == 1
    assert roundtrip(False) == 0


def test_local_ref_becomes_remote_descriptor():
    heap = Heap()
    ref = heap.new_object("Account", ["savings"], ["I"])
    data = encode_value(ref, 3, heap)
    # decoded on a DIFFERENT node -> DependentRef pointing back at node 3
    got = decode_value(data, 7)
    assert isinstance(got, DependentRef)
    assert got.node == 3 and got.oid == ref.oid
    assert got.class_name == "Account"


def test_ref_swizzles_back_home():
    heap = Heap()
    ref = heap.new_object("Account", [], [])
    data = encode_value(ref, 3, heap)
    got = decode_value(data, 3)  # decoded back on the owning node
    assert isinstance(got, Ref)
    assert got == ref


def test_dependent_ref_passes_through():
    dref = DependentRef(2, 44, "Bank")
    got = roundtrip(dref, src_node=0, dst_node=1)
    assert got == dref
    assert got.class_name == "Bank"


def test_dependent_ref_swizzles_at_home():
    dref = DependentRef(5, 44, "Bank")
    got = roundtrip(dref, src_node=0, dst_node=5)
    assert isinstance(got, Ref) and got.oid == 44


def test_array_ref_encodes_with_array_class():
    heap = Heap()
    arr = heap.new_array("I", 4)
    got = decode_value(encode_value(arr, 1, heap), 2)
    assert isinstance(got, DependentRef)
    assert got.class_name == "<array>"


def test_size_grows_with_payload():
    small = encode_value([1], 0, Heap())
    big = encode_value(list(range(100)), 0, Heap())
    assert len(big) > len(small)


def test_trailing_bytes_rejected():
    data = encode_value(5, 0, Heap()) + b"junk"
    with pytest.raises(RuntimeServiceError, match="trailing"):
        decode_value(data, 0)


def test_bad_tag_rejected():
    with pytest.raises(RuntimeServiceError, match="bad stream tag"):
        decode_value(b"Qxxxx", 0)


def test_unstreamable_value_rejected():
    with pytest.raises(RuntimeServiceError, match="cannot stream"):
        encode_value(object(), 0, Heap())


mj_scalars = st.one_of(
    st.none(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=40),
)
mj_values = st.recursive(mj_scalars, lambda inner: st.lists(inner, max_size=5),
                         max_leaves=20)


@given(mj_values)
def test_property_roundtrip(value):
    assert roundtrip(value) == value


@given(st.integers(min_value=0, max_value=30000),
       st.integers(min_value=0, max_value=100),
       st.integers(min_value=0, max_value=100))
def test_property_ref_swizzling(oid, src, dst):
    dref = DependentRef(src, oid + 1, "C")
    got = roundtrip(dref, dst_node=dst)
    if dst == src:
        assert isinstance(got, Ref) and got.oid == oid + 1
    else:
        assert isinstance(got, DependentRef) and got.node == src
