"""Message structure + cluster spec tests."""

import pytest

from repro.errors import RuntimeServiceError
from repro.runtime.cluster import (
    ClusterSpec,
    NodeSpec,
    ethernet_100m,
    ethernet_1g,
    homogeneous,
    paper_testbed,
    wireless_80211b,
)
from repro.runtime.message import HEADER_BYTES, Message, MessageKind


def test_message_size_includes_header():
    msg = Message(MessageKind.NEW, 0, 1, 5, b"abc")
    assert msg.size == HEADER_BYTES + 3
    assert Message(MessageKind.SHUTDOWN, 0, 1, 0).size == HEADER_BYTES


def test_message_kinds_match_paper():
    # "We currently identify two types of messages: NEW and DEPENDENCE"
    assert MessageKind.NEW.value == 1
    assert MessageKind.DEPENDENCE.value == 2
    assert {k.name for k in MessageKind} == {
        "NEW", "DEPENDENCE", "REPLY", "SHUTDOWN", "REPLICA_NEW", "REPLICA_DEP",
        # the recovery tier's frames (repro.runtime.checkpoint)
        "HEARTBEAT", "CHECKPOINT", "CHECKPOINT_ACK", "REPLAY", "RECOVER_NEW",
    }


def test_paper_testbed_matches_section7():
    spec = paper_testbed()
    assert spec.size == 2
    assert spec.nodes[0].cpu_hz == 1.7e9          # service node
    assert spec.nodes[1].cpu_hz == 800e6          # computation node
    assert spec.nodes[0].mem_bytes == 512 << 20   # 512 MB
    assert spec.nodes[1].mem_bytes == 384 << 20   # 384 MB
    assert spec.link.bandwidth_Bps == 12.5e6      # 100 Mb/s


def test_link_presets_ordered_by_quality():
    assert ethernet_1g().latency_s < ethernet_100m().latency_s
    assert ethernet_1g().bandwidth_Bps > ethernet_100m().bandwidth_Bps
    assert wireless_80211b().bandwidth_Bps < ethernet_100m().bandwidth_Bps


def test_homogeneous_factory():
    spec = homogeneous(4, cpu_hz=2e9)
    assert spec.size == 4
    assert all(n.cpu_hz == 2e9 for n in spec.nodes)
    assert len({n.name for n in spec.nodes}) == 4


def test_empty_cluster_rejected():
    with pytest.raises(RuntimeServiceError):
        ClusterSpec(nodes=[])


def test_node_spec_battery_defaults_infinite():
    assert NodeSpec("x", 1e9).battery_j == float("inf")
    constrained = NodeSpec("pda", 2e8, battery_j=5000.0)
    assert constrained.battery_j == 5000.0
