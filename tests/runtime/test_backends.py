"""Runtime backend tests: registry, and behavioral parity of the thread and
process backends with the simulator (lifecycle, remote objects, nested
calls, statics, error propagation)."""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

import pytest

from helpers import compile_mj_raw

from repro.distgen import rewrite_program
from repro.distgen.plan import DistributionPlan
from repro.errors import RuntimeServiceError, VMError
from repro.runtime.backend import backend_names, create_backend
from repro.runtime.cluster import ClusterSpec, NodeSpec, ethernet_100m
from repro.runtime.executor import DistributedExecutor

BACKENDS = ("sim", "thread", "process", "tcp")


def run_split(src, homes, backend, main_partition=0, nparts=2,
              async_writes=False):
    bp, _ = compile_mj_raw(src)
    plan = DistributionPlan(
        nparts=nparts,
        granularity="class",
        class_home=homes,
        dependent_classes=set(bp.classes),
        main_partition=main_partition,
    )
    rewritten, _ = rewrite_program(bp, plan)
    cluster = ClusterSpec(
        nodes=[NodeSpec(f"n{i}", 1e9) for i in range(nparts)],
        link=ethernet_100m(),
    )
    return DistributedExecutor(
        rewritten, plan, cluster, async_writes=async_writes, backend=backend
    ).run()


# ------------------------------------------------------------------ registry
def test_registry_lists_all_builtin_backends():
    assert backend_names() == ["process", "sim", "tcp", "thread"]


def test_unknown_backend_rejected():
    from repro.errors import UnknownPluginError

    spec = ClusterSpec(nodes=[NodeSpec("n0", 1e9)], link=ethernet_100m())
    with pytest.raises(UnknownPluginError, match="unknown runtime backend"):
        create_backend("carrier-pigeon", spec)
    with pytest.raises(UnknownPluginError, match="did you mean 'thread'"):
        create_backend("threads", spec)


def test_executor_rejects_unknown_backend_at_run():
    src = "class M { static void main(String[] args) { Sys.println(1); } }"
    bp, _ = compile_mj_raw(src)
    plan = DistributionPlan(
        nparts=1, granularity="class", class_home={"M": 0},
        dependent_classes=set(), main_partition=0,
    )
    cluster = ClusterSpec(nodes=[NodeSpec("n0", 1e9)], link=ethernet_100m())
    ex = DistributedExecutor(bp, plan, cluster, backend="nosuch")
    from repro.errors import UnknownPluginError

    with pytest.raises(UnknownPluginError, match="unknown runtime backend"):
        ex.run()


# ------------------------------------------------------------------- parity
@pytest.mark.parametrize("backend", BACKENDS)
def test_remote_object_lifecycle(backend):
    src = """
    class Cell {
        int v;
        Cell(int v) { this.v = v; }
        int get() { return v; }
        void set(int x) { v = x; }
    }
    class M {
        static void main(String[] args) {
            Cell c = new Cell(5);
            c.set(c.get() * 2);
            Sys.println(c.get() + "," + c.v);
        }
    }
    """
    result = run_split(src, {"Cell": 1, "M": 0}, backend)
    assert result.stdout == ["10,10"]
    assert result.total_messages >= 6  # NEW + accesses + replies
    assert result.total_bytes > 0
    assert len(result.node_stats) == 2
    assert result.makespan_s > 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_nested_remote_callback(backend):
    """A remote method calling back into the caller's node — the re-entrant
    pump case — must work under every driver (scheduler, threads, pipes)."""
    src = """
    class Alpha {
        Beta peer;
        int base;
        Alpha(int base) { this.base = base; }
        void setPeer(Beta b) { peer = b; }
        int compute(int x) { return base + peer.scale(x); }
        int raw() { return base; }
    }
    class Beta {
        Alpha friend;
        void setFriend(Alpha a) { friend = a; }
        int scale(int x) { return x * friend.raw(); }
    }
    class M {
        static void main(String[] args) {
            Alpha a = new Alpha(3);
            Beta b = new Beta();
            a.setPeer(b);
            b.setFriend(a);
            Sys.println(a.compute(4));
        }
    }
    """
    assert run_split(src, {"Alpha": 0, "Beta": 1, "M": 0}, backend).stdout == ["15"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_three_node_distribution(backend):
    src = """
    class A { int f() { return 1; } }
    class B { int g() { return 2; } }
    class M {
        static void main(String[] args) {
            A a = new A();
            B b = new B();
            Sys.println(a.f() + b.g());
        }
    }
    """
    result = run_split(src, {"A": 1, "B": 2, "M": 0}, backend, nparts=3)
    assert result.stdout == ["3"]
    assert len(result.node_stats) == 3


@pytest.mark.parametrize("backend", BACKENDS)
def test_statics_are_per_node(backend):
    """Per-JVM statics: trivially true for the process backend (real
    separate heaps) and must stay true in shared-interpreter backends."""
    src = """
    class G { static int counter; }
    class Worker {
        int bump() { G.counter++; return G.counter; }
    }
    class M {
        static void main(String[] args) {
            Worker w = new Worker();
            w.bump(); w.bump();
            G.counter = 100;
            Sys.println(w.bump() + "," + G.counter);
        }
    }
    """
    assert run_split(src, {"Worker": 1, "M": 0, "G": 0}, backend).stdout == ["3,100"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_remote_error_propagates(backend):
    src = """
    class Risky {
        int divide(int a, int b) { return a / b; }
    }
    class M {
        static void main(String[] args) {
            Risky r = new Risky();
            Sys.println(r.divide(1, 0));
        }
    }
    """
    with pytest.raises(VMError, match="remote error"):
        run_split(src, {"Risky": 1, "M": 0}, backend)


@pytest.mark.parametrize("backend", ("thread", "process", "tcp"))
def test_peer_failure_fails_fast(backend):
    """A node dying outside the reply protocol (here: event-budget blowout)
    broadcasts SHUTDOWN; a peer stuck awaiting a reply must fail promptly
    instead of sitting out its full wait timeout."""
    import time

    src = """
    class Cell {
        int v;
        int get() { return v; }
        void set(int x) { v = x; }
    }
    class M {
        static void main(String[] args) {
            Cell c = new Cell();
            int i;
            for (i = 0; i < 50; i++) { c.set(c.get() + i); }
            Sys.println(c.get());
        }
    }
    """
    bp, _ = compile_mj_raw(src)
    plan = DistributionPlan(
        nparts=2, granularity="class", class_home={"Cell": 1, "M": 0},
        dependent_classes={"Cell", "M"}, main_partition=0,
    )
    from repro.distgen import rewrite_program as _rw

    rewritten, _ = _rw(bp, plan)
    cluster = ClusterSpec(
        nodes=[NodeSpec("n0", 1e9), NodeSpec("n1", 1e9)], link=ethernet_100m()
    )
    ex = DistributedExecutor(rewritten, plan, cluster, backend=backend)
    t0 = time.monotonic()
    with pytest.raises(RuntimeServiceError):
        ex.run(max_events=40)
    assert time.monotonic() - t0 < 30.0, "peer failure took the slow path"


# -------------------------------------------------------------------- stats
@pytest.mark.parametrize("backend", BACKENDS)
def test_node_stats_flow_through_shared_snapshot(backend):
    """Stats come off every backend through the same snapshot path: heap
    census, stdout capture and message counters are populated."""
    src = """
    class Item { int v; Item(int v) { this.v = v; } int get() { return v; } }
    class M {
        static void main(String[] args) {
            Item a = new Item(1);
            Item b = new Item(2);
            Sys.println(a.get() + b.get());
        }
    }
    """
    result = run_split(src, {"Item": 1, "M": 0}, backend)
    assert result.stdout == ["3"]
    total_heap = sum(s.heap_objects for s in result.node_stats)
    assert total_heap >= 2
    assert sum(s.messages_sent for s in result.node_stats) == result.total_messages
    assert sum(s.bytes_sent for s in result.node_stats) == result.total_bytes
    assert [line for s in result.node_stats for line in s.stdout] == result.stdout
    agg = result.aggregate()
    assert agg["nodes"] == 2.0
    assert agg["requests_served"] >= 1.0
