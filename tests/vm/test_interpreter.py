"""Interpreter behavior tests: MJ programs executed end to end."""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

import pytest

from helpers import compile_mj, eval_expr, run_mj, stdout_of

from repro.errors import VMError


# ------------------------------------------------------------------ arithmetic
def test_int_arithmetic():
    assert eval_expr("2 + 3 * 4 - 6 / 2") == "11"
    assert eval_expr("7 % 3") == "1"
    assert eval_expr("-7 / 2") == "-3"   # truncation toward zero
    assert eval_expr("-7 % 2") == "-1"


def test_int_overflow_wraps():
    assert eval_expr("2147483647 + 1") == "-2147483648"
    assert eval_expr("2147483647 * 2") == "-2"


def test_long_arithmetic():
    assert eval_expr("(1L << 40) + 5L", ty="long") == "1099511627781"
    assert eval_expr("9223372036854775807L + 1L", ty="long") == "-9223372036854775808"


def test_float_arithmetic():
    assert eval_expr("1.5 * 2.0", ty="float") == "3.0"
    assert eval_expr("1.0 / 4.0", ty="float") == "0.25"


def test_mixed_promotion():
    assert eval_expr("1 + 2L", ty="long") == "3"
    assert eval_expr("1 + 0.5", ty="float") == "1.5"
    assert eval_expr("3L * 0.5", ty="float") == "1.5"


def test_bitwise_ops():
    assert eval_expr("12 & 10") == "8"
    assert eval_expr("12 | 10") == "14"
    assert eval_expr("12 ^ 10") == "6"
    assert eval_expr("1 << 5") == "32"
    assert eval_expr("-8 >> 1") == "-4"
    assert eval_expr("-1 >>> 28") == "15"


def test_division_by_zero_raises():
    with pytest.raises(VMError, match="division by zero"):
        eval_expr("1 / 0")
    with pytest.raises(VMError, match="division by zero"):
        eval_expr("1L % 0L", ty="long")


def test_casts():
    assert eval_expr("(int) 3.99") == "3"
    assert eval_expr("(int) -3.99") == "-3"
    assert eval_expr("(int) 5000000000L") == "705032704"
    assert eval_expr("(float) 3", ty="float") == "3.0"


# ------------------------------------------------------------------ control flow
def test_if_else_chains():
    src = """
    class M {
        static String grade(int score) {
            if (score >= 90) { return "A"; }
            else if (score >= 80) { return "B"; }
            else { return "C"; }
        }
        static void main(String[] a) {
            Sys.println(grade(95) + grade(85) + grade(10));
        }
    }
    """
    assert stdout_of(src) == ["ABC"]


def test_while_and_for_equivalent():
    src = """
    class M {
        static void main(String[] a) {
            int s1 = 0;
            int i = 0;
            while (i < 10) { s1 = s1 + i; i++; }
            int s2 = 0;
            for (int j = 0; j < 10; j++) { s2 = s2 + j; }
            Sys.println(s1 + "," + s2);
        }
    }
    """
    assert stdout_of(src) == ["45,45"]


def test_break_continue():
    src = """
    class M {
        static void main(String[] a) {
            int s = 0;
            for (int i = 0; i < 100; i++) {
                if (i % 2 == 0) { continue; }
                if (i > 10) { break; }
                s = s + i;
            }
            Sys.println(s);
        }
    }
    """
    assert stdout_of(src) == ["25"]  # 1+3+5+7+9


def test_nested_loops_with_break():
    src = """
    class M {
        static void main(String[] a) {
            int hits = 0;
            for (int i = 0; i < 5; i++) {
                for (int j = 0; j < 5; j++) {
                    if (j > i) { break; }
                    hits++;
                }
            }
            Sys.println(hits);
        }
    }
    """
    assert stdout_of(src) == ["15"]


def test_short_circuit_evaluation():
    src = """
    class M {
        static int calls;
        static boolean bump() { calls++; return true; }
        static void main(String[] a) {
            boolean x = false && bump();
            boolean y = true || bump();
            Sys.println(calls);
        }
    }
    """
    assert stdout_of(src) == ["0"]


def test_comparison_as_value():
    assert eval_expr("(3 < 5) == true", ty="boolean") == "1"
    assert eval_expr("!(3 < 5)", ty="boolean") == "0"


# ------------------------------------------------------------------ objects
def test_object_fields_and_methods():
    src = """
    class Counter {
        int n;
        Counter(int start) { n = start; }
        void inc() { n++; }
        int get() { return n; }
    }
    class M {
        static void main(String[] a) {
            Counter c = new Counter(10);
            c.inc(); c.inc(); c.inc();
            Sys.println(c.get());
        }
    }
    """
    assert stdout_of(src) == ["13"]


def test_inheritance_and_virtual_dispatch():
    src = """
    class Animal { String speak() { return "?"; } }
    class Dog extends Animal { String speak() { return "woof"; } }
    class Cat extends Animal { String speak() { return "meow"; } }
    class M {
        static void main(String[] a) {
            Animal x = new Dog();
            Animal y = new Cat();
            Animal z = new Animal();
            Sys.println(x.speak() + y.speak() + z.speak());
        }
    }
    """
    assert stdout_of(src) == ["woofmeow?"]


def test_inherited_fields_initialized():
    src = """
    class Base { int b = 7; }
    class Child extends Base { int c = 2; int total() { return b + c; } }
    class M {
        static void main(String[] a) {
            Sys.println(new Child().total());
        }
    }
    """
    assert stdout_of(src) == ["9"]


def test_superclass_ctor_chained():
    src = """
    class Base { int x; Base() { x = 5; } }
    class Child extends Base { }
    class M { static void main(String[] a) { Sys.println(new Child().x); } }
    """
    assert stdout_of(src) == ["5"]


def test_static_fields_and_clinit():
    src = """
    class Config { static int limit = 6 * 7; static int uses; }
    class M {
        static void main(String[] a) {
            Config.uses++;
            Config.uses++;
            Sys.println(Config.limit + ":" + Config.uses);
        }
    }
    """
    assert stdout_of(src) == ["42:2"]


def test_null_dereference_raises():
    src = """
    class A { int v; }
    class M { static void main(String[] a) { A x = null; Sys.println(x.v); } }
    """
    with pytest.raises(VMError, match="null"):
        run_mj(src)


def test_checkcast_failure_raises():
    src = """
    class A { }
    class B { }
    class M {
        static void main(String[] args) {
            Vector v = new Vector();
            v.add(new A());
            B b = (B) v.get(0);
        }
    }
    """
    with pytest.raises(VMError, match="cast"):
        run_mj(src)


def test_instanceof_runtime():
    src = """
    class A { }
    class B extends A { }
    class M {
        static void main(String[] args) {
            Object o = new B();
            Sys.println((o instanceof B) + "" + (o instanceof A) + ""
                        + (o instanceof String));
        }
    }
    """
    assert stdout_of(src) == ["110"]


# ------------------------------------------------------------------ arrays
def test_array_read_write_defaults():
    src = """
    class M {
        static void main(String[] a) {
            int[] xs = new int[4];
            xs[1] = 5;
            float[] fs = new float[2];
            Sys.println(xs[0] + "," + xs[1] + "," + fs[0] + "," + xs.length);
        }
    }
    """
    assert stdout_of(src) == ["0,5,0.0,4"]


def test_array_bounds_checked():
    src = """
    class M { static void main(String[] a) { int[] xs = new int[2]; xs[2] = 1; } }
    """
    with pytest.raises(VMError, match="out of bounds"):
        run_mj(src)
    src2 = """
    class M { static void main(String[] a) { int[] xs = new int[2]; int y = xs[-1]; } }
    """
    with pytest.raises(VMError, match="out of bounds"):
        run_mj(src2)


def test_negative_array_size():
    src = "class M { static void main(String[] a) { int[] xs = new int[0-3]; } }"
    with pytest.raises(VMError, match="negative"):
        run_mj(src)


def test_array_of_arrays():
    src = """
    class M {
        static void main(String[] a) {
            int[][] grid = new int[3][];
            for (int i = 0; i < 3; i++) { grid[i] = new int[3]; }
            grid[1][2] = 9;
            Sys.println(grid[1][2] + "," + grid[0][0]);
        }
    }
    """
    assert stdout_of(src) == ["9,0"]


def test_object_arrays():
    src = """
    class P { int v; P(int v) { this.v = v; } }
    class M {
        static void main(String[] a) {
            P[] ps = new P[3];
            ps[0] = new P(1);
            ps[2] = new P(3);
            int total = ps[0].v + ps[2].v;
            Sys.println(total + "," + (ps[1] == null));
        }
    }
    """
    assert stdout_of(src) == ["4,1"]


# ------------------------------------------------------------------ recursion
def test_recursion_factorial_and_fib():
    src = """
    class M {
        static long fact(int n) { if (n <= 1) { return 1L; } return n * fact(n - 1); }
        static int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
        static void main(String[] a) {
            Sys.println(fact(20) + ":" + fib(15));
        }
    }
    """
    assert stdout_of(src) == ["2432902008176640000:610"]


def test_mutual_recursion():
    src = """
    class M {
        static boolean isEven(int n) { if (n == 0) { return true; } return isOdd(n - 1); }
        static boolean isOdd(int n) { if (n == 0) { return false; } return isEven(n - 1); }
        static void main(String[] a) { Sys.println(isEven(10) + "" + isOdd(7)); }
    }
    """
    assert stdout_of(src) == ["11"]


# ------------------------------------------------------------------ builtins
def test_string_builtins():
    src = """
    class M {
        static void main(String[] a) {
            String s = "hello world";
            Sys.println(s.length() + "," + s.indexOf("world") + ","
                        + s.substring(0, 5) + "," + s.charAt(4));
        }
    }
    """
    assert stdout_of(src) == ["11,6,hello,111"]


def test_string_equals_and_compare():
    src = """
    class M {
        static void main(String[] a) {
            String x = "abc";
            Sys.println(x.equals("abc") + "" + x.equals("abd") + ""
                        + x.compareTo("abd") + "" + "hello".hashCode());
        }
    }
    """
    assert stdout_of(src) == ["10-199162322"]  # Java's "hello".hashCode()


def test_vector_builtin():
    src = """
    class M {
        static void main(String[] a) {
            Vector v = new Vector();
            v.add(1); v.add(2); v.add(3);
            v.set(1, 9);
            int popped = (int) v.removeLast();
            Sys.println(v.size() + "," + (int) v.get(1) + "," + popped
                        + "," + v.contains(1));
        }
    }
    """
    assert stdout_of(src) == ["2,9,3,1"]


def test_vector_bounds():
    src = """
    class M { static void main(String[] a) {
        Vector v = new Vector(); v.get(0); } }
    """
    with pytest.raises(VMError, match="out of range"):
        run_mj(src)


def test_math_builtins():
    src = """
    class M {
        static void main(String[] a) {
            Sys.println(Math.sqrt(16.0) + "," + Math.imax(3, 7) + ","
                        + Math.iabs(0 - 5) + "," + Math.floor(2.9)
                        + "," + Math.pow(2.0, 10.0));
        }
    }
    """
    assert stdout_of(src) == ["4.0,7,5,2.0,1024.0"]


def test_random_deterministic():
    src = """
    class M {
        static void main(String[] a) {
            Random r1 = new Random(42L);
            Random r2 = new Random(42L);
            boolean same = true;
            for (int i = 0; i < 10; i++) {
                if (r1.nextInt(1000) != r2.nextInt(1000)) { same = false; }
            }
            Random r3 = new Random(43L);
            Sys.println(same + "," + (r1.nextInt(1000) == r3.nextInt(1000)));
        }
    }
    """
    out = stdout_of(src)
    assert out[0].startswith("1,")


def test_random_bounds():
    src = """
    class M {
        static void main(String[] a) {
            Random r = new Random(7L);
            boolean ok = true;
            for (int i = 0; i < 200; i++) {
                int v = r.nextInt(13);
                if (v < 0 || v >= 13) { ok = false; }
                float f = r.nextFloat();
                if (f < 0.0 || f >= 1.0) { ok = false; }
            }
            Sys.println(ok);
        }
    }
    """
    assert stdout_of(src) == ["1"]


def test_string_concat_of_all_types():
    src = """
    class A { }
    class M {
        static void main(String[] args) {
            String s = "v=" + 1 + "," + 1.5 + "," + true + "," + null;
            Sys.println(s);
        }
    }
    """
    assert stdout_of(src) == ["v=1,1.5,1,null"]


# ------------------------------------------------------------------ machine state
def test_cycles_and_steps_accumulate():
    m = run_mj("class M { static void main(String[] a) { int x = 0; for (int i=0;i<100;i++) { x += i; } } }")
    assert m.steps > 500
    assert m.cycles >= m.steps  # every op costs >= 1 cycle
    assert m.done


def test_missing_return_yields_default():
    src = """
    class M {
        static int f(boolean b) { if (b) { return 5; } }
        static void main(String[] a) { Sys.println(f(false) + "," + f(true)); }
    }
    """
    assert stdout_of(src) == ["0,5"]
