"""Differential tests for the compiled execution tier.

The third engine (:func:`repro.vm.jit.run_block_compiled` driven through
:meth:`Machine.drive`) layers superinstruction fusion, trace-compiled hot
blocks, loop regions and pure-leaf call inlining on top of the threaded
fast path — and must stay observationally identical to the per-step
reference oracle on every program: same ``cycles``, ``steps``, ``result``,
``stdout``, and the same fault text when the program faults.  These tests
pin that bit-identity on the bundled workloads, on hypothesis-driven
generated programs (including faulting and overcharge-injected ones), and
exercise the deopt and promotion machinery directly.
"""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

import pytest
from hypothesis import given, settings, strategies as st

from helpers import compile_mj

from repro.errors import VMError
from repro.testing.genprog import GenConfig, generate_source
from repro.vm.interpreter import Machine, forced_engine, run_sync
from repro.vm.jit import (
    Run,
    build_fused,
    jit_threshold,
    plan_runs,
    super_cache_size,
)
from repro.workloads import WORKLOADS


def _observe(loaded, engine):
    """(cycles, steps, result, stdout, error-text, machine) on one tier."""
    machine = Machine(loaded)
    machine.statics = loaded.fresh_statics()
    machine.call_bmethod(loaded.main_method(), None, [None])
    error = None
    with forced_engine(engine):
        try:
            run_sync(machine)
        except VMError as exc:
            error = str(exc)
    return (
        (machine.cycles, machine.steps, machine.result,
         tuple(machine.stdout), error),
        machine,
    )


def assert_tiers_agree(source: str):
    loaded = compile_mj(source)
    ref, _ = _observe(loaded, "reference")
    fast, _ = _observe(loaded, "fast")
    comp, _ = _observe(loaded, "compiled")
    assert fast == ref, f"fast tier diverged:\n{fast}\nvs\n{ref}"
    assert comp == ref, f"compiled tier diverged:\n{comp}\nvs\n{ref}"


# ------------------------------------------------------------------ workloads
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_workload_compiled_equals_reference(workload):
    """compiled ≡ step on (cycles, steps, result, stdout) for every
    bundled workload — warm code included (the FlatCode plan persists, so
    the second run executes promoted traces from the start)."""
    from repro.api.experiment import compile_workload

    loaded = compile_workload(workload, "test").loaded
    ref, _ = _observe(loaded, "reference")
    for _ in range(2):  # cold, then warm (promoted) plans
        comp, machine = _observe(loaded, "compiled")
        assert comp == ref
    stats = machine.jit_stats()
    assert stats["super_steps"] + stats["compiled_steps"] > 0


# ------------------------------------------------------------------ plan
def test_fused_plan_covers_syscall_free_runs():
    """Runs of >= 2 fusible instructions become Run entries; interior
    positions keep their plain handlers so deopt can resume anywhere."""
    loaded = compile_mj(
        """
        class Main {
            static void main(String[] a) {
                int s = 0;
                for (int i = 0; i < 50; i = i + 1) { s = s + i * 2; }
                Sys.println(s);
            }
        }
        """
    )
    flat = loaded.main_method().flat()
    runs = plan_runs(flat)
    assert runs, "the loop body must fuse"
    plan = flat.fused
    for run in runs:
        assert plan[run.start] is run
        assert run.n >= 2
        assert run.cost == sum(i.cost for i in run.instrs)
        assert run.prefix[0] == 0
        for j in range(run.start + 1, run.end):
            assert not isinstance(plan[j], Run)


def test_superinstruction_cache_is_shared_across_methods():
    """Identical opcode sequences (by interned ``opx``) share one compiled
    composite handler process-wide."""
    before = super_cache_size()
    loaded = compile_mj(
        """
        class Main {
            static int f(int x) { int y = x + 1; return y * 2; }
            static int g(int x) { int y = x + 1; return y * 2; }
            static void main(String[] a) {
                Sys.println(f(3) + g(4));
            }
        }
        """
    )
    fa = build_fused(loaded.lookup_method("Main", "f").flat())
    ga = build_fused(loaded.lookup_method("Main", "g").flat())
    fruns = [e for e in fa if isinstance(e, Run)]
    gruns = [e for e in ga if isinstance(e, Run)]
    assert fruns and gruns
    shared = {id(r.fn) for r in fruns} & {id(r.fn) for r in gruns}
    assert shared, "identical opx sequences must share a handler"
    assert super_cache_size() >= before


def test_hot_block_promotion_and_counters():
    """Below the threshold blocks stay fused; past it they are
    trace-compiled, and the machine's jit counters say so."""
    src = """
        class Main {
            static void main(String[] a) {
                int s = 0;
                for (int i = 0; i < 200; i = i + 1) { s = s + i; }
                Sys.println(s);
            }
        }
    """
    with jit_threshold(4):
        loaded = compile_mj(src)
        comp, machine = _observe(loaded, "compiled")
        ref, _ = _observe(loaded, "reference")
    assert comp == ref
    stats = machine.jit_stats()
    assert stats["promotions"] >= 1
    assert stats["compiled_steps"] > 0
    flat = loaded.main_method().flat()
    assert any(r.promoted and r.count >= 4 for r in plan_runs(flat))


def test_unreachable_threshold_means_no_promotion():
    src = """
        class Main {
            static void main(String[] a) {
                int s = 0;
                for (int i = 0; i < 50; i = i + 1) { s = s + i; }
                Sys.println(s);
            }
        }
    """
    with jit_threshold(10**9):
        loaded = compile_mj(src)
        comp, machine = _observe(loaded, "compiled")
        ref, _ = _observe(loaded, "reference")
    assert comp == ref
    assert machine.jit_stats()["promotions"] == 0
    assert machine.jit_stats()["super_steps"] > 0


# ------------------------------------------------------------------ deopt
def test_guard_deopt_charges_exactly():
    """A division that faults mid-trace deopts to the threaded tier and
    charges the identical cycle prefix the oracle charges."""
    src = """
        class Main {
            static void main(String[] a) {
                int s = 1;
                int z = 0;
                for (int i = 0; i < 40; i = i + 1) {
                    s = s + 7 / (20 - i + z * i);
                }
                Sys.println(s);
            }
        }
    """
    with jit_threshold(2):
        assert_tiers_agree(src)


def test_array_bounds_deopt_matches_oracle():
    src = """
        class Main {
            static void main(String[] a) {
                int[] xs = new int[8];
                int s = 0;
                for (int i = 0; i < 40; i = i + 1) {
                    xs[i] = i;
                    s = s + xs[i];
                }
                Sys.println(s);
            }
        }
    """
    with jit_threshold(2):
        assert_tiers_agree(src)


def test_inlined_leaf_call_region():
    """The region compiler inlines small pure callees (the crypt shape: a
    hot loop calling a straight-line getter) and stays bit-identical."""
    src = """
        class K {
            int a;
            int b;
            int get(int i) { return this.a * i + this.b; }
        }
        class Main {
            static void main(String[] a) {
                K k = new K();
                k.a = 3;
                k.b = 5;
                int s = 0;
                for (int i = 0; i < 100; i = i + 1) { s = s + k.get(i); }
                Sys.println(s);
            }
        }
    """
    with jit_threshold(2):
        loaded = compile_mj(src)
        ref, _ = _observe(loaded, "reference")
        comp, machine = _observe(loaded, "compiled")
    assert comp == ref
    assert machine.jit_stats()["promotions"] >= 1


# ------------------------------------------------------------- fault paths
def test_overcharge_injection_detected_identically(monkeypatch):
    """The PR-6 seeded accounting fault lives in the block engines only —
    the per-step oracle is the clean side of the differential.  The
    compiled tier must mis-charge *identically* to the fast tier (same
    overcharged cycle total), so the fuzz oracle keeps catching the fault
    as a ``vm.cycles`` divergence on both."""
    src = """
        class Main {
            static void main(String[] a) {
                int s = 0;
                for (int i = 0; i < 60; i = i + 1) { s = s + i; }
                Sys.println(s);
            }
        }
    """
    loaded = compile_mj(src)
    ref, _ = _observe(loaded, "reference")
    monkeypatch.setenv("REPRO_VM_INJECT_OVERCHARGE", "3")
    with jit_threshold(2):
        injected_ref, _ = _observe(loaded, "reference")
        fast, _ = _observe(loaded, "fast")
        comp, _ = _observe(loaded, "compiled")
    assert injected_ref == ref  # the oracle stays clean
    assert comp == fast  # block tiers mis-charge identically
    assert fast[0] > ref[0]  # and the fault is observable
    assert fast[1:] == ref[1:]  # cycles only: steps/result/stdout intact


# ---------------------------------------------------------------- hypothesis
@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    max_stmts=st.integers(min_value=1, max_value=6),
)
def test_random_flat_programs_compiled_equals_reference(seed, max_stmts):
    """Property: generated single-class programs — arithmetic with faulting
    division, branches, nested loops — behave identically on all three
    tiers, fault text included."""
    source = generate_source(
        GenConfig(seed=seed, n_classes=0, max_stmts=max_stmts,
                  allow_faults=True)
    )
    with jit_threshold(2):  # promote aggressively: exercise traces + deopts
        assert_tiers_agree(source)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n_classes=st.integers(min_value=1, max_value=3),
)
def test_random_rich_programs_compiled_equals_reference(seed, n_classes):
    """Property, multi-class: cross-class field/method access, arrays,
    bounded recursion, possible faults — identical on all three tiers."""
    source = generate_source(
        GenConfig(seed=seed, n_classes=n_classes, allow_faults=(seed % 2 == 0))
    )
    with jit_threshold(2):
        assert_tiers_agree(source)
