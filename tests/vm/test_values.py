"""Integer semantics (wrap-around, division, shifts) — unit + property tests
against Java's defined behavior."""

from hypothesis import given
from hypothesis import strategies as st

from repro.vm.values import (
    DependentRef,
    Ref,
    default_value,
    i32,
    i64,
    idiv,
    irem,
    iushr,
    type_char_of,
)

i32s = st.integers(min_value=-(2**31), max_value=2**31 - 1)
i64s = st.integers(min_value=-(2**63), max_value=2**63 - 1)


def test_i32_wraps():
    assert i32(2**31) == -(2**31)
    assert i32(2**31 - 1) == 2**31 - 1
    assert i32(-(2**31) - 1) == 2**31 - 1
    assert i32(2**32) == 0
    assert i32(0x7FFFFFFF + 1) == -0x80000000


def test_i64_wraps():
    assert i64(2**63) == -(2**63)
    assert i64(2**63 - 1) == 2**63 - 1
    assert i64(2**64 + 5) == 5


def test_java_division_truncates_toward_zero():
    assert idiv(7, 2) == 3
    assert idiv(-7, 2) == -3        # Python's // gives -4
    assert idiv(7, -2) == -3
    assert idiv(-7, -2) == 3


def test_java_remainder_sign_of_dividend():
    assert irem(7, 2) == 1
    assert irem(-7, 2) == -1        # Python's % gives 1
    assert irem(7, -2) == 1
    assert irem(-7, -2) == -1


def test_unsigned_shift():
    assert iushr(-1, 28) == 15
    assert iushr(-1, 0) == -1
    assert iushr(16, 2) == 4
    assert iushr(-1, 60, bits=64) == 15


def test_shift_amount_masked():
    assert iushr(8, 33) == 4        # 33 & 31 == 1
    assert iushr(8, 65, bits=64) == 4


@given(i32s, i32s)
def test_div_rem_identity(a, b):
    if b != 0:
        assert idiv(a, b) * b + irem(a, b) == a


@given(i32s)
def test_i32_idempotent(v):
    assert i32(i32(v)) == i32(v)
    assert -(2**31) <= i32(v) <= 2**31 - 1


@given(st.integers())
def test_i32_congruent_mod_2_32(v):
    assert (i32(v) - v) % (2**32) == 0


@given(st.integers())
def test_i64_congruent_mod_2_64(v):
    assert (i64(v) - v) % (2**64) == 0


@given(i32s, st.integers(min_value=0, max_value=31))
def test_iushr_nonnegative_matches_shift(a, n):
    if a >= 0:
        assert iushr(a, n) == a >> n


def test_refs_compare_by_identity_fields():
    assert Ref(3) == Ref(3)
    assert Ref(3) != Ref(4)
    assert hash(Ref(3)) == hash(Ref(3))
    assert DependentRef(1, 5, "A") == DependentRef(1, 5, "B")  # class not id
    assert DependentRef(1, 5, "A") != DependentRef(2, 5, "A")
    assert Ref(5) != DependentRef(0, 5, "A")


def test_default_values():
    assert default_value("I") == 0
    assert default_value("J") == 0
    assert default_value("F") == 0.0
    assert isinstance(default_value("F"), float)
    assert default_value("A") is None


def test_type_char_of():
    assert type_char_of(None) == "N"
    assert type_char_of(5) == "I"
    assert type_char_of(2**40) == "J"
    assert type_char_of(1.5) == "F"
    assert type_char_of("s") == "S"
    assert type_char_of(Ref(1)) == "R"
    assert type_char_of(DependentRef(0, 1, "A")) == "D"
    assert type_char_of([1, 2]) == "L"
