"""Heap accounting + class loader tests."""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

import pytest

from helpers import compile_mj, compile_mj_raw

from repro.errors import VMError
from repro.vm.heap import ARRAY_HEADER, FIELD_SLOT, Heap, OBJECT_HEADER
from repro.vm.values import Ref


def test_object_allocation_and_fields():
    heap = Heap()
    ref = heap.new_object("A", ["x", "f"], ["I", "F"])
    obj = heap.object(ref)
    assert obj.class_name == "A"
    assert obj.fields == {"x": 0, "f": 0.0}
    assert isinstance(obj.fields["f"], float)


def test_array_allocation_defaults():
    heap = Heap()
    ref = heap.new_array("I", 5)
    arr = heap.array(ref)
    assert arr.data == [0] * 5
    ref2 = heap.new_array("LBank;", 2)
    assert heap.array(ref2).data == [None, None]


def test_negative_array_rejected():
    with pytest.raises(VMError):
        Heap().new_array("I", -1)


def test_size_model():
    heap = Heap()
    obj = heap.object(heap.new_object("A", ["x", "y"], ["I", "I"]))
    assert obj.size_bytes() == OBJECT_HEADER + 2 * FIELD_SLOT
    arr = heap.array(heap.new_array("I", 10))
    assert arr.size_bytes() == ARRAY_HEADER + 4 * 10
    arr8 = heap.array(heap.new_array("F", 10))
    assert arr8.size_bytes() == ARRAY_HEADER + 8 * 10


def test_allocation_statistics():
    heap = Heap()
    heap.new_object("A", [], [])
    heap.new_array("I", 4)
    assert heap.allocated_objects == 2
    assert heap.allocated_bytes > 0
    assert heap.live_bytes == heap.allocated_bytes


def test_free_reduces_live_bytes():
    heap = Heap()
    ref = heap.new_object("A", ["x"], ["I"])
    before = heap.live_bytes
    heap.free(ref)
    assert heap.live_bytes < before
    with pytest.raises(VMError):
        heap.get(ref)


def test_alloc_hook_fires():
    heap = Heap()
    events = []
    heap.alloc_hook = lambda kind, size: events.append((kind, size))
    heap.new_object("Bank", [], [])
    heap.new_array("I", 3)
    assert events[0][0] == "Bank"
    assert events[1][0] == "I[]"


def test_dangling_and_type_confusion():
    heap = Heap()
    ref = heap.new_object("A", [], [])
    with pytest.raises(VMError, match="not an array"):
        heap.array(ref)
    arr = heap.new_array("I", 1)
    with pytest.raises(VMError, match="not an object"):
        heap.object(arr)
    with pytest.raises(VMError, match="null"):
        heap.get(None)


# ------------------------------------------------------------------ loader
def test_statics_default_initialized():
    loaded = compile_mj("class A { static int x; static float f; static String s; }"
                        "class M { static void main(String[] a) { } }")
    assert loaded.statics[("A", "x")] == 0
    assert loaded.statics[("A", "f")] == 0.0
    assert loaded.statics[("A", "s")] is None


def test_clinit_runs_at_load():
    loaded = compile_mj("class A { static int x = 6 * 7; }"
                        "class M { static void main(String[] a) { } }")
    assert loaded.statics[("A", "x")] == 42


def test_fresh_statics_isolated():
    loaded = compile_mj("class A { static int x = 1; }"
                        "class M { static void main(String[] a) { } }")
    s1 = loaded.fresh_statics()
    s2 = loaded.fresh_statics()
    s1[("A", "x")] = 99
    assert s2[("A", "x")] == 1
    assert loaded.statics[("A", "x")] == 1


def test_field_layout_includes_inherited():
    loaded = compile_mj(
        "class Base { int a; } class Child extends Base { float b; }"
        "class M { static void main(String[] x) { } }"
    )
    names, chars = loaded.instance_field_layout("Child")
    assert names == ["a", "b"]     # superclass fields first
    assert chars == ["I", "F"]


def test_layout_cached():
    loaded = compile_mj("class A { int x; } class M { static void main(String[] a) { } }")
    assert loaded.instance_field_layout("A") is loaded.instance_field_layout("A")


def test_main_method_lookup():
    loaded = compile_mj("class M { static void main(String[] a) { } }")
    assert loaded.main_method().qualified == "M.main"


def test_main_missing_raises():
    from repro.bytecode import compile_program
    from repro.lang import analyze, parse_program
    from repro.vm import load_program

    ast = parse_program("class A { void f() { } }")
    loaded = load_program(compile_program(ast, analyze(ast)))
    with pytest.raises(VMError, match="no static main"):
        loaded.main_method()
