"""Differential tests for the cost-batched fast path.

The threaded-code block engine (:meth:`Machine.run_block` driven through
:meth:`Machine.drive`) must be observationally identical to the per-step
reference oracle (:meth:`Machine.step`): same ``cycles``, ``steps``,
``result`` and ``stdout`` on every program — including randomly generated
ones (hypothesis) and programs that fault mid-block — and attaching a
profiler must transparently fall back to the per-step path with unchanged
``on_step`` semantics.
"""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

import pytest
from hypothesis import given, settings, strategies as st

from helpers import compile_mj

from repro.errors import VMError
from repro.profiler.base import BaselineProfiler, Profiler, attach
from repro.vm.interpreter import Machine, forced_slow_path, run_sync
from repro.workloads import WORKLOADS


def _run_path(loaded, slow, profiler=None, main_args=None):
    """One full run on the chosen engine; returns the finished machine (or
    raises the program's VMError after recording charged state)."""
    machine = Machine(loaded)
    machine.statics = loaded.fresh_statics()
    if profiler is not None:
        attach(machine, profiler)
    machine.call_bmethod(loaded.main_method(), None, [main_args])
    with forced_slow_path(slow):
        run_sync(machine)
    return machine


def _observe(loaded, slow):
    """(cycles, steps, result, stdout, error-text) of one run."""
    machine = Machine(loaded)
    machine.statics = loaded.fresh_statics()
    machine.call_bmethod(loaded.main_method(), None, [None])
    error = None
    with forced_slow_path(slow):
        try:
            run_sync(machine)
        except VMError as exc:
            error = str(exc)
    return (machine.cycles, machine.steps, machine.result,
            tuple(machine.stdout), error)


def assert_paths_agree(source: str):
    loaded = compile_mj(source)
    fast = _observe(loaded, slow=False)
    ref = _observe(loaded, slow=True)
    assert fast == ref, f"fast path diverged from oracle:\n{fast}\nvs\n{ref}"


# ------------------------------------------------------------------ workloads
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_workload_fast_equals_slow(workload):
    """run_block ≡ step on (cycles, steps, result, stdout) for every
    bundled workload."""
    from repro.api.experiment import compile_workload

    loaded = compile_workload(workload, "test").loaded
    fast = _run_path(loaded, slow=False)
    ref = _run_path(loaded, slow=True)
    assert fast.cycles == ref.cycles
    assert fast.steps == ref.steps
    assert fast.result == ref.result
    assert fast.stdout == ref.stdout


# ------------------------------------------------------------------ events
def test_fast_path_batches_cost_events():
    """The fast path surfaces one cost event per syscall-free span; the
    oracle surfaces one per instruction.  Totals must agree exactly."""
    loaded = compile_mj(
        """
        class M {
            static void main(String[] a) {
                int s = 0;
                for (int i = 0; i < 500; i++) { s = s + i * i; }
                Sys.println(s);
            }
        }
        """
    )

    def events(slow):
        machine = Machine(loaded)
        machine.statics = loaded.fresh_statics()
        machine.call_bmethod(loaded.main_method(), None, [None])
        with forced_slow_path(slow):
            out = [e for e in machine.run_gen() if e[0] == "cost"]
        return machine, out

    m_fast, ev_fast = events(False)
    m_ref, ev_ref = events(True)
    assert sum(e[1] for e in ev_fast) == sum(e[1] for e in ev_ref)
    assert m_fast.cycles == m_ref.cycles == 0  # run_gen alone charges nobody
    assert len(ev_ref) == m_ref.steps
    # a syscall-free program is one block: a single batched cost event
    assert len(ev_fast) == 1
    assert m_fast.stdout == m_ref.stdout


def test_sys_time_sees_in_flight_block_cycles():
    """Sys.time() reads the cycle counter mid-block; the fast path must
    show it the same value the per-step oracle would have charged by that
    instant — including the unflushed prefix of the current block."""
    assert_paths_agree(
        """
        class M {
            static void main(String[] args) {
                long t0 = Sys.time();
                int s = 0;
                for (int i = 0; i < 200000; i++) { s = s + i * i; }
                long t1 = Sys.time();
                Sys.println((t1 - t0) + ":" + s);
            }
        }
        """
    )
    # and the elapsed time must be nonzero, or the assertion is vacuous
    loaded = compile_mj(
        """
        class M {
            static void main(String[] args) {
                long t0 = Sys.time();
                int s = 0;
                for (int i = 0; i < 200000; i++) { s = s + i * i; }
                Sys.println(Sys.time() - t0);
            }
        }
        """
    )
    fast = _run_path(loaded, slow=False)
    assert int(fast.stdout[-1]) > 0


# ------------------------------------------------------------------ faults
@pytest.mark.parametrize(
    "body, match",
    [
        ("int d = 0; int x = 1 / d;", "division by zero"),
        ("int[] xs = new int[2]; xs[5] = 1;", "out of bounds"),
        ("int[] xs = new int[0-1];", "negative"),
        ("int x = a.length;", "null"),
    ],
)
def test_faulting_programs_charge_identically(body, match):
    """A mid-block fault must leave exactly the oracle's cycles/steps behind
    (the failing instruction's cost is never charged on either path)."""
    src = "class M { static void main(String[] a) { %s } }" % body
    loaded = compile_mj(src)
    fast = _observe(loaded, slow=False)
    ref = _observe(loaded, slow=True)
    assert fast == ref
    assert ref[4] is not None and match in ref[4]


# ------------------------------------------------------------------ profiler
class _CountingProfiler(Profiler):
    """Records every on_step call (per-instruction semantics check)."""

    name = "counting"

    def __init__(self):
        self.on_step_calls = 0
        self.cost_sum = 0
        self.invokes = 0

    def on_step(self, machine, cost):
        self.on_step_calls += 1
        self.cost_sum += cost
        return 0

    def on_invoke(self, machine, method):
        self.invokes += 1


def test_profiler_attach_falls_back_to_per_step_path():
    """Attaching a profiler transparently selects the per-step path:
    on_step fires once per executed instruction with the same per-step
    costs, and the run's observables match the fast path's."""
    loaded = compile_mj(
        """
        class M {
            static int f(int n) { if (n <= 1) { return 1; } return n * f(n - 1); }
            static void main(String[] a) { Sys.println(f(10)); }
        }
        """
    )
    bare = _run_path(loaded, slow=False)

    prof = _CountingProfiler()
    profiled = _run_path(loaded, slow=False, profiler=prof)

    assert prof.on_step_calls == profiled.steps == bare.steps
    assert prof.cost_sum == profiled.cycles == bare.cycles
    assert prof.invokes > 0
    assert profiled.stdout == bare.stdout
    assert profiled.result == bare.result


def test_baseline_profiler_charges_nothing():
    """The paper's baseline column: hooks installed, zero overhead — so the
    per-step fallback must reproduce the fast path's cycle count exactly."""
    loaded = compile_mj(
        "class M { static void main(String[] a) { "
        "int s = 0; for (int i = 0; i < 50; i++) { s += i; } Sys.println(s); } }"
    )
    bare = _run_path(loaded, slow=False)
    baseline = _run_path(loaded, slow=False, profiler=BaselineProfiler())
    assert baseline.cycles == bare.cycles
    assert baseline.steps == bare.steps
    assert baseline.stdout == bare.stdout


# ------------------------------------------------------------------ hypothesis
# Random-program generation lives in repro.testing.genprog (one generator
# to maintain — the fuzz CLI, the conformance oracle and this suite share
# it); hypothesis drives its seed/size space and shrinks over it.
from repro.testing.genprog import GenConfig, generate_source


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    max_stmts=st.integers(min_value=1, max_value=6),
)
def test_random_flat_programs_fast_equals_slow(seed, max_stmts):
    """Property (the old flat-fuzzer shape): for generated single-class int
    programs — arithmetic including faulting division/modulo, branches,
    nested bounded loops — the fast path and the per-step oracle agree on
    cycles, steps, result, stdout, and on the error text when the program
    faults."""
    source = generate_source(
        GenConfig(seed=seed, n_classes=0, max_stmts=max_stmts,
                  allow_faults=True)
    )
    assert_paths_agree(source)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n_classes=st.integers(min_value=1, max_value=3),
)
def test_random_rich_programs_fast_equals_slow(seed, n_classes):
    """Property, multi-class: generated programs with cross-class
    field/method access, arrays, bounded recursion and possible faults
    observe identical behavior on both VM engines."""
    source = generate_source(
        GenConfig(seed=seed, n_classes=n_classes, allow_faults=(seed % 2 == 0))
    )
    assert_paths_agree(source)
