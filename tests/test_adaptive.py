"""Adaptive repartitioning tests: measured weights beat static heuristics on
recursion-heavy code, refined plans still execute correctly, and — on
arbitrary generated scenarios — measured-weight repartitioning never
predicts a worse makespan than its own baseline."""

from hypothesis import given, settings, strategies as st

from repro.adaptive import adaptive_repartition, profile_program
from repro.bytecode import compile_program
from repro.distgen import rewrite_program
from repro.lang import analyze, parse_program
from repro.runtime.cluster import ClusterSpec, NodeSpec, ethernet_100m
from repro.runtime.executor import DistributedExecutor, run_sequential

# RecursiveKernel does the real work via deep recursion (invisible to the
# loop-depth heuristic: no backward branches); LoopyDecoy *looks* hot to the
# static model (nested loops) but runs a single short pass.
SRC = """
class RecursiveKernel {
    int work(int depth, int acc) {
        if (depth == 0) { return acc; }
        int a = work(depth - 1, acc * 3 % 10007 + 1);
        int b = work(depth - 1, acc * 7 % 10007 + 2);
        return (a + b) % 10007;
    }
}
class LoopyDecoy {
    int once() {
        int s = 0;
        int i;
        for (i = 0; i < 2; i++) {
            int j;
            for (j = 0; j < 2; j++) {
                int k;
                for (k = 0; k < 2; k++) { s = s + i * j + k; }
            }
        }
        return s;
    }
}
class M {
    static void main(String[] args) {
        RecursiveKernel kernel = new RecursiveKernel();
        LoopyDecoy decoy = new LoopyDecoy();
        int r = kernel.work(11, 1);
        int d = decoy.once();
        Sys.println(r + "," + d);
    }
}
"""


def program():
    ast = parse_program(SRC)
    table = analyze(ast)
    return compile_program(ast, table)


def test_profile_program_measures_classes():
    cycles, alloc = profile_program(program())
    assert cycles["RecursiveKernel"] > cycles["LoopyDecoy"]
    assert "RecursiveKernel" in alloc or "M" in alloc or alloc  # something allocated


def test_measured_weights_flip_placement():
    bp = program()
    result = adaptive_repartition(
        bp, 2, tpwgts=[0.68, 0.32], pin_main_to=1, force_distribution=True
    )
    # the static heuristic grossly underestimates the recursive kernel;
    # measurements dominate every static estimate
    static_kernel_weight = result.initial_plan
    refined = result.refined_plan
    # under measured weights the kernel must sit on the big partition (0)
    assert refined.class_home["RecursiveKernel"] == 0
    # measured cycles drove the choice
    assert result.measured_cycles["RecursiveKernel"] > 10_000


def test_refined_plan_executes_correctly():
    bp = program()
    seq = run_sequential(bp, NodeSpec("base", 1e9))
    result = adaptive_repartition(
        bp, 2, tpwgts=[0.68, 0.32], pin_main_to=1, force_distribution=True
    )
    rewritten, _ = rewrite_program(bp, result.refined_plan)
    cluster = ClusterSpec(
        nodes=[NodeSpec("fast", 1.7e9), NodeSpec("slow", 0.8e9)],
        link=ethernet_100m(),
    )
    dist = DistributedExecutor(rewritten, result.refined_plan, cluster).run()
    assert dist.stdout == seq.stdout


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n_classes=st.integers(min_value=1, max_value=3),
    heterogeneous=st.booleans(),
)
def test_refined_plan_never_predicts_worse_makespan(seed, n_classes,
                                                    heterogeneous):
    """Property: on generated multi-class scenarios, the measured-weight
    replan's predicted makespan is never worse than what it predicts for
    the static plan's placement under the same measured weights — the
    initial placement always rides along as a candidate."""
    from repro.testing.genprog import GenConfig, generate_source

    source = generate_source(
        GenConfig(seed=seed, n_classes=n_classes, allow_io=False)
    )
    ast = parse_program(source)
    bp = compile_program(ast, analyze(ast))
    tpwgts = [0.68, 0.32] if heterogeneous else None
    result = adaptive_repartition(bp, 2, tpwgts=tpwgts, pin_main_to=1)
    assert result.refined_cost <= result.initial_cost_measured + 1e-6, (
        f"seed={seed}: refined plan predicts {result.refined_cost}, "
        f"baseline placement predicts {result.initial_cost_measured}"
    )
    assert result.predicted_improvement >= -1e-9
    # and the bookkeeping the property rests on is present
    assert result.initial_plan.parts is not None
    assert result.refined_plan.est_cost == result.refined_cost


def test_adaptive_on_search_workload():
    """The paper's search benchmark is recursion-heavy: adaptive weights must
    keep the engine away from the pinned main on capacity grounds."""
    from repro.workloads import WORKLOADS

    ast = parse_program(WORKLOADS["search"].source("test"))
    table = analyze(ast)
    bp = compile_program(ast, table)
    result = adaptive_repartition(bp, 2, tpwgts=[0.68, 0.32], pin_main_to=1)
    assert result.measured_cycles.get("SearchEngine", 0) > 0
    refined = result.refined_plan
    if len(set(refined.class_home.values())) == 2:
        assert refined.class_home["SearchEngine"] == 0
