"""Workload correctness tests: each benchmark compiles, runs, validates its
own computation, and is deterministic."""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

import pytest

from helpers import compile_mj, run_mj

from repro.vm import run_main
from repro.workloads import TABLE1_ORDER, WORKLOADS, get


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_compiles_and_runs(name):
    machine = run_mj(WORKLOADS[name].source("test"))
    assert machine.stdout, name
    assert machine.done


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_deterministic(name):
    src = WORKLOADS[name].source("test")
    out1 = run_main(compile_mj(src)).stdout
    out2 = run_main(compile_mj(src)).stdout
    assert out1 == out2


def test_table1_order_is_the_papers():
    assert TABLE1_ORDER == (
        "create", "method", "crypt", "heapsort", "moldyn", "search",
        "compress", "db",
    )
    for name in TABLE1_ORDER:
        assert name in WORKLOADS


def test_get_unknown_raises():
    with pytest.raises(KeyError):
        get("quicksort")


def test_bank_assets_exact():
    out = run_mj(WORKLOADS["bank"].source("test")).stdout
    assert out == ["assets=6597100"]


def test_crypt_roundtrip_validates():
    out = run_mj(WORKLOADS["crypt"].source("test")).stdout[-1]
    assert out.startswith("crypt check=")
    assert "-" not in out.split("=")[1]  # no errors (negative = mismatches)


def test_heapsort_sorts():
    out = run_mj(WORKLOADS["heapsort"].source("test")).stdout[-1]
    assert out.startswith("heapsort check=")
    assert "FAILED" not in out


def test_compress_roundtrip_and_compression():
    out = run_mj(WORKLOADS["compress"].source("test")).stdout[-1]
    assert out.startswith("compress ok ratio=")
    ratio = int(out.split("=")[1])
    assert 0 < ratio < 100  # LZW actually compressed the skewed text


def test_search_visits_nodes():
    out = run_mj(WORKLOADS["search"].source("test")).stdout[-1]
    nodes = int(out.split("nodes=")[1])
    assert nodes > 50


def test_db_runs_operations():
    out = run_mj(WORKLOADS["db"].source("test")).stdout[-1]
    assert "size=" in out and "check=" in out
    size = int(out.split("size=")[1].split(" ")[0])
    assert size > 0
    found = int(out.split("found=")[1].split(" ")[0])
    assert found > 0  # some lookups hit


def test_moldyn_energy_finite():
    out = run_mj(WORKLOADS["moldyn"].source("test")).stdout[-1]
    check = int(out.split("=")[1])
    assert check != 0


def test_method_result_scales_with_reps():
    small = run_mj(WORKLOADS["method"].source("test")).stdout[-1]
    assert small.startswith("method result=")


def test_sizes_increase_workload():
    """'bench' must be a strictly bigger computation than 'test'."""
    for name in ("crypt", "heapsort", "method"):
        src_t = WORKLOADS[name].source("test")
        src_b = WORKLOADS[name].source("bench")
        mt = run_main(compile_mj(src_t))
        mb = run_main(compile_mj(src_b))
        assert mb.steps > 2 * mt.steps, name


def test_class_counts_in_table1_regime():
    """Table 1's benchmarks are small programs (a few to a few dozen
    classes); ours must be in the same regime."""
    from repro.harness.pipeline import compile_workload

    for name in TABLE1_ORDER:
        work = compile_workload(name, "test")
        assert 2 <= work.num_classes <= 40, name
        assert work.num_methods >= 5, name
        assert work.size_kb > 0, name
