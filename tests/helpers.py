"""Shared test helper functions (import via `from helpers import ...`)."""

from __future__ import annotations

from repro.bytecode import compile_program
from repro.lang import analyze, parse_program
from repro.vm import load_program, run_main
from repro.vm.interpreter import Machine, run_sync


def compile_mj(source: str):
    """MJ source -> LoadedProgram."""
    ast = parse_program(source)
    table = analyze(ast)
    return load_program(compile_program(ast, table))


def compile_mj_raw(source: str):
    """MJ source -> (BProgram, ClassTable) without loading."""
    ast = parse_program(source)
    table = analyze(ast)
    return compile_program(ast, table), table


def run_mj(source: str):
    """Compile + run main; returns the finished Machine."""
    return run_main(compile_mj(source))


def stdout_of(source: str):
    return run_mj(source).stdout


def eval_expr(expr: str, decls: str = "", ty: str = "int"):
    """Evaluate one MJ expression inside a synthesized main; returns the
    printed value text."""
    src = f"""
    class EvalHost {{
        {decls}
        static void main(String[] args) {{
            {ty} result = {expr};
            Sys.println("" + result);
        }}
    }}
    """
    out = stdout_of(src)
    return out[-1]
