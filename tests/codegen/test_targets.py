"""x86 / StrongARM back-end tests: every workload method compiles on both
targets; spot checks of the Figure 7 listings."""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

import pytest

from helpers import compile_mj_raw

from repro.codegen import StrongARMTarget, X86Target, method_to_trees, render_tree
from repro.quad import build_quads


FIG5 = """
public class Example {
    int ex(int b) {
        b = 4;
        if (b > 2) { b++; }
        return b;
    }
}
"""


def example_qm():
    bp, table = compile_mj_raw(FIG5)
    return build_quads(bp.classes["Example"].methods["ex"], table)


def test_x86_figure7_listing():
    asm = X86Target().emit_method(example_qm())
    assert "mov eax, 4" in asm
    assert "cmp 4, 2" in asm
    assert "jle BB4" in asm
    assert "ret eax" in asm
    assert asm.index("BB2:") < asm.index("BB3:") < asm.index("BB4:")


def test_arm_figure7_listing():
    asm = StrongARMTarget().emit_method(example_qm())
    assert "mov R1, #4" in asm
    assert "cmp #4, #2" in asm
    assert "ble .BB4" in asm
    assert "mov PC, R14" in asm


def test_arm_uses_three_operand_add():
    asm = StrongARMTarget().emit_method(example_qm())
    # one add instruction handles ADD dst, imm, imm — no mov needed
    assert "add R2, #4, #1" in asm


def test_x86_needs_two_instructions_for_add():
    asm = X86Target().emit_method(example_qm())
    lines = [l.strip() for l in asm.splitlines()]
    i = next(idx for idx, l in enumerate(lines) if l.startswith("add"))
    assert lines[i - 1].startswith("mov")


def test_tree_rendering_matches_figure6():
    qm = example_qm()
    trees = [t for _, ts in method_to_trees(qm) for t in ts]
    rendered = "\n".join(render_tree(t) for t in trees)
    assert "MOVE_I" in rendered
    assert "ICONST:4" in rendered
    assert "COND:LE" in rendered
    assert "TARGET:4" in rendered


@pytest.mark.parametrize("target_cls", [X86Target, StrongARMTarget])
def test_all_workload_methods_compile(target_cls):
    from repro.workloads import WORKLOADS

    target = target_cls()
    for name in ("bank", "crypt", "heapsort", "db"):
        bp, table = compile_mj_raw(WORKLOADS[name].source("test"))
        for bclass in bp.classes.values():
            for method in bclass.methods.values():
                qm = build_quads(method, table)
                asm = target.emit_method(qm)
                assert asm.startswith(f"; {target.name} code for")
                assert len(asm.splitlines()) >= 1


def test_calls_lower_to_call_or_bl():
    src = """
    class B { int g(int x) { return x; } }
    class A { int f(B b) { return b.g(7); } }
    """
    bp, table = compile_mj_raw(src)
    qm = build_quads(bp.classes["A"].methods["f"], table)
    x86 = X86Target().emit_method(qm)
    arm = StrongARMTarget().emit_method(qm)
    assert "call B.g" in x86
    assert "bl B.g" in arm


def test_field_access_addressing():
    src = "class A { int v; int f() { return v; } }"
    bp, table = compile_mj_raw(src)
    qm = build_quads(bp.classes["A"].methods["f"], table)
    x86 = X86Target().emit_method(qm)
    arm = StrongARMTarget().emit_method(qm)
    assert "[" in x86 and "A.v" in x86
    assert "ldr" in arm
