"""BURS engine tests: DP labeling, chain rules, minimum-cost derivations."""

import pytest

from repro.codegen.burs import BURS, Rule, aux
from repro.codegen.tree import TreeNode
from repro.errors import CodegenError


def leaf(op, value=None):
    return TreeNode(op, value=value)


def make_engine(record):
    """A toy ISA with two ways to add: reg+imm (cheap) and reg+reg
    (requires materializing the immediate first — expensive path)."""
    rules = [
        Rule("reg", ("REG",), 0, lambda ctx, n, k: f"r{n.value}"),
        Rule("imm", ("ICONST",), 0, lambda ctx, n, k: n.value),
        Rule("reg", "imm", 2,
             lambda ctx, n, k: (record.append(f"mov t,{k[0]}"), "t")[-1]),
        Rule("stmt", ("ADD", "reg", "reg", "imm"), 1,
             lambda ctx, n, k: record.append(f"addi {k[0]},{k[1]},{k[2]}")),
        Rule("stmt", ("ADD", "reg", "reg", "reg"), 1,
             lambda ctx, n, k: record.append(f"addr {k[0]},{k[1]},{k[2]}")),
    ]
    return BURS(rules)


def test_min_cost_derivation_prefers_immediate_form():
    record = []
    engine = make_engine(record)
    tree = TreeNode("ADD", kids=[leaf("REG", 1), leaf("REG", 2), leaf("ICONST", 7)])
    engine.generate(tree, "stmt", None)
    assert record == ["addi r1,r2,7"]  # not the mov+addr path


def test_chain_rule_used_when_needed():
    record = []
    rules = [
        Rule("reg", ("REG",), 0, lambda ctx, n, k: f"r{n.value}"),
        Rule("imm", ("ICONST",), 0, lambda ctx, n, k: n.value),
        Rule("reg", "imm", 2,
             lambda ctx, n, k: (record.append(f"mov t,{k[0]}"), "t")[-1]),
        # ONLY a reg,reg form exists: the immediate must be materialized
        Rule("stmt", ("ADD", "reg", "reg", "reg"), 1,
             lambda ctx, n, k: record.append(f"addr {k[0]},{k[1]},{k[2]}")),
    ]
    engine = BURS(rules)
    tree = TreeNode("ADD", kids=[leaf("REG", 1), leaf("REG", 2), leaf("ICONST", 7)])
    engine.generate(tree, "stmt", None)
    assert record == ["mov t,7", "addr r1,r2,t"]


def test_labeling_computes_costs():
    record = []
    engine = make_engine(record)
    tree = TreeNode("ADD", kids=[leaf("REG", 1), leaf("REG", 2), leaf("ICONST", 7)])
    engine.label(tree)
    assert tree.state is not None
    cost, rule = tree.state["stmt"]
    assert cost == 1  # addi directly


def test_no_derivation_raises():
    record = []
    engine = make_engine(record)
    tree = TreeNode("MUL", kids=[leaf("REG", 1), leaf("REG", 2), leaf("REG", 3)])
    engine.label(tree)
    with pytest.raises(CodegenError, match="no derivation"):
        engine.reduce(tree, "stmt", None)


def test_aux_leaves_not_matched_but_accessible():
    record = []
    rules = [
        Rule("imm", ("ICONST",), 0, lambda ctx, n, k: n.value),
        Rule("stmt", ("JUMP",), 1,
             lambda ctx, n, k: record.append(f"jmp BB{aux(n, 'TARGET')}")),
    ]
    engine = BURS(rules)
    tree = TreeNode("JUMP", kids=[TreeNode("TARGET", value=4)])
    engine.generate(tree, "stmt", None)
    assert record == ["jmp BB4"]


def test_aux_missing_raises():
    tree = TreeNode("JUMP", kids=[])
    with pytest.raises(CodegenError, match="no TARGET"):
        aux(tree, "TARGET")
