"""BURS engine tests: DP labeling, chain rules, minimum-cost derivations."""

import pytest

from repro.codegen.burs import BURS, Rule, aux
from repro.codegen.tree import TreeNode
from repro.errors import CodegenError


def leaf(op, value=None):
    return TreeNode(op, value=value)


def make_engine(record):
    """A toy ISA with two ways to add: reg+imm (cheap) and reg+reg
    (requires materializing the immediate first — expensive path)."""
    rules = [
        Rule("reg", ("REG",), 0, lambda ctx, n, k: f"r{n.value}"),
        Rule("imm", ("ICONST",), 0, lambda ctx, n, k: n.value),
        Rule("reg", "imm", 2,
             lambda ctx, n, k: (record.append(f"mov t,{k[0]}"), "t")[-1]),
        Rule("stmt", ("ADD", "reg", "reg", "imm"), 1,
             lambda ctx, n, k: record.append(f"addi {k[0]},{k[1]},{k[2]}")),
        Rule("stmt", ("ADD", "reg", "reg", "reg"), 1,
             lambda ctx, n, k: record.append(f"addr {k[0]},{k[1]},{k[2]}")),
    ]
    return BURS(rules)


def test_min_cost_derivation_prefers_immediate_form():
    record = []
    engine = make_engine(record)
    tree = TreeNode("ADD", kids=[leaf("REG", 1), leaf("REG", 2), leaf("ICONST", 7)])
    engine.generate(tree, "stmt", None)
    assert record == ["addi r1,r2,7"]  # not the mov+addr path


def test_chain_rule_used_when_needed():
    record = []
    rules = [
        Rule("reg", ("REG",), 0, lambda ctx, n, k: f"r{n.value}"),
        Rule("imm", ("ICONST",), 0, lambda ctx, n, k: n.value),
        Rule("reg", "imm", 2,
             lambda ctx, n, k: (record.append(f"mov t,{k[0]}"), "t")[-1]),
        # ONLY a reg,reg form exists: the immediate must be materialized
        Rule("stmt", ("ADD", "reg", "reg", "reg"), 1,
             lambda ctx, n, k: record.append(f"addr {k[0]},{k[1]},{k[2]}")),
    ]
    engine = BURS(rules)
    tree = TreeNode("ADD", kids=[leaf("REG", 1), leaf("REG", 2), leaf("ICONST", 7)])
    engine.generate(tree, "stmt", None)
    assert record == ["mov t,7", "addr r1,r2,t"]


def test_labeling_computes_costs():
    record = []
    engine = make_engine(record)
    tree = TreeNode("ADD", kids=[leaf("REG", 1), leaf("REG", 2), leaf("ICONST", 7)])
    engine.label(tree)
    assert tree.state is not None
    cost, rule = tree.state["stmt"]
    assert cost == 1  # addi directly


def test_no_derivation_raises():
    record = []
    engine = make_engine(record)
    tree = TreeNode("MUL", kids=[leaf("REG", 1), leaf("REG", 2), leaf("REG", 3)])
    engine.label(tree)
    with pytest.raises(CodegenError, match="no derivation"):
        engine.reduce(tree, "stmt", None)


def test_aux_leaves_not_matched_but_accessible():
    record = []
    rules = [
        Rule("imm", ("ICONST",), 0, lambda ctx, n, k: n.value),
        Rule("stmt", ("JUMP",), 1,
             lambda ctx, n, k: record.append(f"jmp BB{aux(n, 'TARGET')}")),
    ]
    engine = BURS(rules)
    tree = TreeNode("JUMP", kids=[TreeNode("TARGET", value=4)])
    engine.generate(tree, "stmt", None)
    assert record == ["jmp BB4"]


def test_aux_missing_raises():
    tree = TreeNode("JUMP", kids=[])
    with pytest.raises(CodegenError, match="no TARGET"):
        aux(tree, "TARGET")


# ---------------------------------------------------------------------------
# the Python target (repro.codegen.pytarget): the rule set the trace
# compiler reduces hot-block operator trees against
# ---------------------------------------------------------------------------
from repro.codegen.pytarget import PY_BURS, fold_const, lower_py
from repro.vm.values import i32, i64, iushr


def _bin(root, a, b):
    return TreeNode(root, kids=[a, b])


def test_pytarget_lowers_local_arithmetic():
    tree = _bin("ADD_I", TreeNode("LOCAL", value=2), TreeNode("ICONST", value=7))
    expr = lower_py(tree)
    assert eval(expr, {"i32": i32}, {"L": [0, 0, 35]}) == 42


def test_pytarget_folds_constant_subtrees():
    tree = _bin(
        "MUL_I",
        _bin("ADD_I", TreeNode("ICONST", value=2), TreeNode("ICONST", value=3)),
        TreeNode("ICONST", value=4),
    )
    assert fold_const(tree) == 20
    # the folded constant also feeds the py goal as a plain literal
    assert eval(lower_py(tree), {"i32": i32}, {}) == 20


def test_pytarget_folding_wraps_exactly_like_the_vm():
    big = TreeNode("ICONST", value=2**31 - 1)
    one = TreeNode("ICONST", value=1)
    assert fold_const(_bin("ADD_I", big, one)) == i32(2**31) == -(2**31)
    lbig = TreeNode("LCONST", value=2**63 - 1)
    assert fold_const(_bin("ADD_L", lbig, TreeNode("LCONST", value=1))) == -(2**63)


def test_pytarget_shift_immediate_form_masks_at_compile_time():
    tree = _bin("SHL_I", TreeNode("LOCAL", value=0), TreeNode("ICONST", value=33))
    expr = lower_py(tree)
    assert "<< 1" in expr  # 33 & 31 applied by the labeler, not at runtime
    assert eval(expr, {"i32": i32}, {"L": [3]}) == 6


def test_pytarget_ushr_matches_vm_semantics():
    tree = _bin("USHR_I", TreeNode("ICONST", value=-8), TreeNode("ICONST", value=1))
    assert fold_const(tree) == iushr(-8, 1, 32)


def test_pytarget_mixed_tree_lowers_once_per_node():
    # (L[0] + 1) * (L[1] - 2) — labeling is a single bottom-up pass
    tree = _bin(
        "MUL_I",
        _bin("ADD_I", TreeNode("LOCAL", value=0), TreeNode("ICONST", value=1)),
        _bin("SUB_I", TreeNode("LOCAL", value=1), TreeNode("ICONST", value=2)),
    )
    expr = lower_py(tree)
    assert eval(expr, {"i32": i32}, {"L": [5, 9]}) == 42


def test_pytarget_fold_const_refuses_runtime_leaves():
    tree = _bin("ADD_I", TreeNode("LOCAL", value=0), TreeNode("ICONST", value=1))
    with pytest.raises(CodegenError):
        fold_const(tree)


def test_pytarget_conversions_fold():
    assert fold_const(TreeNode("I2L", kids=[TreeNode("ICONST", value=-1)])) == -1
    assert (
        fold_const(TreeNode("L2I", kids=[TreeNode("LCONST", value=2**32 + 5)])) == 5
    )
    assert fold_const(TreeNode("F2I", kids=[TreeNode("FCONST", value=2.9)])) == 2
