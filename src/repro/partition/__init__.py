"""Graph partitioning — the from-scratch Metis stand-in.

The paper partitions the object dependence graph with Metis'
multi-objective, multi-constraint multilevel algorithms (its §3); this
package implements the same algorithmic family:

* :mod:`repro.partition.coarsen`   — heavy-edge-matching coarsening
* :mod:`repro.partition.initial`   — greedy graph-growing initial bisection
* :mod:`repro.partition.refine`    — FM boundary refinement (multi-constraint)
* :mod:`repro.partition.multilevel`— the V-cycle + recursive k-way bisection
* :mod:`repro.partition.kl`        — Kernighan–Lin baseline
* :mod:`repro.partition.spectral`  — spectral (Fiedler) baseline
* :mod:`repro.partition.api`       — ``part_graph``, the Metis-like entry point
"""

from repro.partition.api import PartitionResult, part_graph

__all__ = ["part_graph", "PartitionResult"]
