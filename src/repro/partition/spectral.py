"""Spectral bisection baseline (Fiedler vector).

Splits at the weighted median of the second-smallest eigenvector of the
graph Laplacian.  Uses dense numpy for small graphs and
``scipy.sparse.linalg.eigsh`` beyond that.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import PartitionError
from repro.graph.wgraph import WeightedGraph

_DENSE_LIMIT = 600


def fiedler_vector(graph: WeightedGraph) -> np.ndarray:
    n = graph.num_nodes
    if n < 2:
        raise PartitionError("spectral bisection needs >= 2 nodes")
    if n <= _DENSE_LIMIT:
        lap = np.zeros((n, n))
        for u, v, w in graph.edges():
            lap[u, v] -= w
            lap[v, u] -= w
            lap[u, u] += w
            lap[v, v] += w
        vals, vecs = np.linalg.eigh(lap)
        return vecs[:, 1]
    import scipy.sparse as sp
    import scipy.sparse.linalg as spla

    rows, cols, data = [], [], []
    deg = np.zeros(n)
    for u, v, w in graph.edges():
        rows += [u, v]
        cols += [v, u]
        data += [-w, -w]
        deg[u] += w
        deg[v] += w
    rows += list(range(n))
    cols += list(range(n))
    data += deg.tolist()
    lap = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
    vals, vecs = spla.eigsh(lap, k=2, sigma=-1e-6, which="LM")
    order = np.argsort(vals)
    return vecs[:, order[1]]


def spectral_bisect(graph: WeightedGraph) -> List[int]:
    """0/1 bisection at the weight-balanced median of the Fiedler vector."""
    fiedler = fiedler_vector(graph)
    scalar = graph.vwgts().sum(axis=1)
    order = np.argsort(fiedler)
    half = scalar.sum() / 2.0
    parts = [1] * graph.num_nodes
    acc = 0.0
    for u in order:
        if acc >= half:
            break
        parts[int(u)] = 0
        acc += scalar[int(u)]
    return parts
