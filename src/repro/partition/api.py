"""``part_graph`` — the Metis-like public entry point.

The paper wraps Metis behind a ~10 kLoC Java wrapper ("jMetis"); this module
is our equivalent surface: one call that takes a
:class:`~repro.graph.wgraph.WeightedGraph`, the number of partitions, a
method name and a balance tolerance, and returns a
:class:`PartitionResult` with the assignment, edgecut and imbalance.

Methods:

* ``multilevel`` — the full multilevel multi-constraint scheme (default);
* ``kl``         — Kernighan–Lin baseline (bisection; k-way via recursion);
* ``spectral``   — Fiedler-vector baseline;
* ``roundrobin`` — the "suboptimal naive partitioning" the paper's §7.2
  mentions (node *i* to partition ``i mod k``);
* ``random``     — uniform random assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.api.registry import Registry
from repro.errors import PartitionError
from repro.graph.metrics import edgecut, imbalance
from repro.graph.wgraph import WeightedGraph
from repro.partition.kl import kernighan_lin
from repro.partition.multilevel import multilevel_bisect, recursive_kway
from repro.partition.spectral import spectral_bisect

#: a partitioner takes (graph, nparts, rng, ubfactor, tpwgts) and returns the
#: per-node partition vector; ``part_graph`` handles the degenerate cases
#: (k == 1, empty graph, k >= n) before dispatching
Partitioner = Callable[
    [WeightedGraph, int, np.random.Generator, float, Optional[List[float]]],
    List[int],
]

#: the unified plugin registry partition methods are selected through
PARTITIONERS: Registry = Registry("partition method")


def _kway_from_bisector(graph: WeightedGraph, nparts: int, bisector) -> List[int]:
    parts = [0] * graph.num_nodes

    def split(node_ids: List[int], k: int, base: int) -> None:
        if k == 1 or len(node_ids) <= 1:
            for u in node_ids:
                parts[u] = base
            return
        sub, mapping = graph.subgraph(node_ids)
        bis = bisector(sub)
        left = [mapping[i] for i, p in enumerate(bis) if p == 0]
        right = [mapping[i] for i, p in enumerate(bis) if p == 1]
        if not left or not right:
            mid = max(1, len(node_ids) // 2)
            left, right = node_ids[:mid], node_ids[mid:]
        k_left = k // 2
        split(left, k_left, base)
        split(right, k - k_left, base + k_left)

    split(list(range(graph.num_nodes)), nparts, 0)
    return parts


@PARTITIONERS.register("multilevel")
def _part_multilevel(graph, nparts, rng, ubfactor, tpwgts) -> List[int]:
    return recursive_kway(
        graph, nparts, rng, ubfactor,
        tpwgts=list(tpwgts) if tpwgts is not None else None,
    )


@PARTITIONERS.register("kl")
def _part_kl(graph, nparts, rng, ubfactor, tpwgts) -> List[int]:
    return _kway_from_bisector(graph, nparts, lambda sub: kernighan_lin(sub, rng))


@PARTITIONERS.register("spectral")
def _part_spectral(graph, nparts, rng, ubfactor, tpwgts) -> List[int]:
    return _kway_from_bisector(
        graph,
        nparts,
        lambda sub: spectral_bisect(sub)
        if sub.num_nodes >= 2
        else [0] * sub.num_nodes,
    )


@PARTITIONERS.register("roundrobin")
def _part_roundrobin(graph, nparts, rng, ubfactor, tpwgts) -> List[int]:
    return [i % nparts for i in range(graph.num_nodes)]


@PARTITIONERS.register("random")
def _part_random(graph, nparts, rng, ubfactor, tpwgts) -> List[int]:
    return [int(rng.integers(nparts)) for _ in range(graph.num_nodes)]


#: canonical method tuple (registry names in historical order) — kept for
#: existing importers; prefer ``PARTITIONERS.names()``
METHODS = ("multilevel", "kl", "spectral", "roundrobin", "random")


def part_config_key(
    nparts: int,
    method: str = "multilevel",
    ubfactor: float = 1.10,
    seed: int = 17,
    tpwgts: Optional[Sequence[float]] = None,
) -> dict:
    """Canonical, JSON-stable encoding of a ``part_graph`` configuration.

    This is the downstream half of the harness stage-cache keys: two calls
    with equal keys (over the same graph) return equal partitions, and any
    field change must produce a different key."""
    return {
        "nparts": int(nparts),
        "method": str(method),
        "ubfactor": float(ubfactor),
        "seed": int(seed),
        "tpwgts": [float(t) for t in tpwgts] if tpwgts is not None else None,
    }


@dataclass
class PartitionResult:
    """Outcome of one partitioning call."""

    parts: List[int]
    nparts: int
    method: str
    edgecut: float
    imbalance: List[float] = field(default_factory=list)

    def part_of(self, node: int) -> int:
        return self.parts[node]

    def groups(self) -> List[List[int]]:
        out: List[List[int]] = [[] for _ in range(self.nparts)]
        for node, p in enumerate(self.parts):
            out[p].append(node)
        return out

    def validate(self, graph: WeightedGraph) -> None:
        """Recompute the quality metrics from ``graph`` and raise
        :class:`PartitionError` if the stored ones disagree or any vertex
        lacks a valid assignment — the differential check the property
        suite runs against every partitioner."""
        if len(self.parts) != graph.num_nodes:
            raise PartitionError(
                f"parts vector has {len(self.parts)} entries for "
                f"{graph.num_nodes} vertices"
            )
        for node, p in enumerate(self.parts):
            if not 0 <= p < self.nparts:
                raise PartitionError(f"vertex {node} assigned to part {p}")
        cut = edgecut(graph, self.parts)
        if abs(cut - self.edgecut) > 1e-6 * max(1.0, abs(cut)):
            raise PartitionError(
                f"stored edgecut {self.edgecut} != recomputed {cut}"
            )
        if graph.num_nodes:
            imb = imbalance(graph, self.parts, self.nparts)
            stored = np.asarray(self.imbalance, dtype=float)
            if stored.shape != imb.shape or not np.allclose(stored, imb):
                raise PartitionError(
                    f"stored imbalance {self.imbalance} != recomputed {list(imb)}"
                )


def part_graph(
    graph: WeightedGraph,
    nparts: int,
    method: str = "multilevel",
    ubfactor: float = 1.10,
    seed: int = 17,
    tpwgts: Optional[Sequence[float]] = None,
) -> PartitionResult:
    """Partition ``graph`` into ``nparts`` parts.  See module docstring.

    ``tpwgts`` sets per-partition target weight fractions (heterogeneous
    node capacities); multilevel only — baselines ignore it."""
    if nparts < 1:
        raise PartitionError(f"nparts must be >= 1, got {nparts}")
    partitioner = PARTITIONERS.get(method)  # UnknownPluginError on bad names
    if tpwgts is not None and len(tpwgts) != nparts:
        raise PartitionError("tpwgts length must equal nparts")
    n = graph.num_nodes
    rng = np.random.default_rng(seed)

    if nparts == 1 or n == 0:
        parts: List[int] = [0] * n
    elif nparts >= n:
        parts = list(range(n))  # one node per part; extra parts stay empty
    else:
        parts = partitioner(
            graph, nparts, rng, ubfactor,
            list(tpwgts) if tpwgts is not None else None,
        )

    return PartitionResult(
        parts=parts,
        nparts=nparts,
        method=method,
        edgecut=edgecut(graph, parts),
        imbalance=list(imbalance(graph, parts, nparts)) if n else [],
    )
