"""Kernighan–Lin bisection — the classic 1970 heuristic, kept as a baseline
(the paper cites KL via Dutt's faster variants as the pre-multilevel state
of the art).

Standard formulation: start from a weight-balanced bisection, compute
``D(v) = E(v) - I(v)``, greedily select swap pairs maximizing
``g = D(a)+D(b)-2w(a,b)``, and apply the best prefix of the swap sequence;
repeat passes until no positive prefix exists.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.graph.wgraph import WeightedGraph


def kernighan_lin(
    graph: WeightedGraph,
    rng: Optional[np.random.Generator] = None,
    max_passes: int = 10,
) -> List[int]:
    n = graph.num_nodes
    if n == 0:
        return []
    rng = rng or np.random.default_rng(0)
    # initial balanced split by scalar weight
    scalar = graph.vwgts().sum(axis=1)
    order = list(rng.permutation(n))
    half = scalar.sum() / 2.0
    parts = [1] * n
    acc = 0.0
    for u in order:
        if acc < half:
            parts[u] = 0
            acc += scalar[u]

    def dvals() -> List[float]:
        d = [0.0] * n
        for u in range(n):
            for v, w in graph.adj[u].items():
                d[u] += w if parts[v] != parts[u] else -w
        return d

    for _ in range(max_passes):
        d = dvals()
        locked = [False] * n
        gains: List[float] = []
        pairs: List[tuple] = []
        a_side = [u for u in range(n) if parts[u] == 0]
        b_side = [u for u in range(n) if parts[u] == 1]
        steps = min(len(a_side), len(b_side))
        for _step in range(steps):
            best = None
            best_g = -float("inf")
            for a in a_side:
                if locked[a]:
                    continue
                for b in b_side:
                    if locked[b]:
                        continue
                    g = d[a] + d[b] - 2 * graph.adj[a].get(b, 0.0)
                    if g > best_g:
                        best_g = g
                        best = (a, b)
            if best is None:
                break
            a, b = best
            locked[a] = locked[b] = True
            gains.append(best_g)
            pairs.append(best)
            # update D values as if a and b were swapped
            for x in range(n):
                if locked[x]:
                    continue
                wxa = graph.adj[x].get(a, 0.0)
                wxb = graph.adj[x].get(b, 0.0)
                if parts[x] == 0:
                    d[x] += 2 * wxa - 2 * wxb
                else:
                    d[x] += 2 * wxb - 2 * wxa
        # best prefix
        best_k, best_sum, run = 0, 0.0, 0.0
        for k, g in enumerate(gains, start=1):
            run += g
            if run > best_sum + 1e-12:
                best_sum = run
                best_k = k
        if best_k == 0:
            break
        for a, b in pairs[:best_k]:
            parts[a], parts[b] = 1, 0
    return parts
