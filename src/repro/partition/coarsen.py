"""Heavy-edge-matching (HEM) coarsening.

Vertices are visited in random order and matched to the unmatched neighbor
connected by the heaviest edge (Karypis/Kumar's HEM).  Matched pairs collapse
into one coarse vertex whose weight vector is the sum of its constituents;
parallel edges accumulate.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.graph.wgraph import WeightedGraph


def heavy_edge_matching(
    graph: WeightedGraph, rng: np.random.Generator
) -> Tuple[WeightedGraph, List[int]]:
    """One coarsening step.  Returns (coarse_graph, fine_to_coarse_map)."""
    n = graph.num_nodes
    match = [-1] * n
    order = rng.permutation(n)
    for u in order:
        if match[u] != -1:
            continue
        best, best_w = -1, -1.0
        for v, w in graph.adj[u].items():
            if match[v] == -1 and w > best_w:
                best, best_w = v, w
        if best != -1:
            match[u] = best
            match[best] = u
        else:
            match[u] = u  # unmatched: maps to itself

    coarse_of = [-1] * n
    coarse = WeightedGraph(graph.ncon)
    vw = graph.vwgts()
    for u in range(n):
        if coarse_of[u] != -1:
            continue
        v = match[u]
        if v == u or v < u:
            continue  # handled from the lower endpoint
        idx = coarse.add_node(None, (vw[u] + vw[v]).tolist())
        coarse_of[u] = idx
        coarse_of[v] = idx
    for u in range(n):
        if coarse_of[u] == -1:  # self-matched
            coarse_of[u] = coarse.add_node(None, vw[u].tolist())
    for u, v, w in graph.edges():
        cu, cv = coarse_of[u], coarse_of[v]
        if cu != cv:
            coarse.add_edge(cu, cv, w)
    return coarse, coarse_of


def coarsen_to(
    graph: WeightedGraph,
    target_size: int,
    rng: np.random.Generator,
    max_levels: int = 40,
) -> List[Tuple[WeightedGraph, List[int]]]:
    """Coarsen until at most ``target_size`` vertices (or shrinkage stalls).

    Returns the hierarchy as a list of (coarse_graph, fine_to_coarse_map)
    pairs, finest first; an empty list means no coarsening happened.
    """
    levels: List[Tuple[WeightedGraph, List[int]]] = []
    current = graph
    for _ in range(max_levels):
        if current.num_nodes <= target_size:
            break
        coarse, cmap = heavy_edge_matching(current, rng)
        if coarse.num_nodes >= current.num_nodes * 0.95:
            break  # diminishing returns (e.g. star graphs)
        levels.append((coarse, cmap))
        current = coarse
    return levels
