"""Fiduccia–Mattheyses boundary refinement for bisections, multi-constraint.

Classic FM with rollback: repeatedly move the highest-gain movable boundary
vertex to the other side (locking it), remember the best prefix of the move
sequence, and roll back to it at the end of the pass.  A move is *admissible*
if the destination side stays within ``ub × target`` in **every** weight
dimension — this is the multi-constraint balance rule of the paper's §3.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.graph.wgraph import WeightedGraph


def _gains(graph: WeightedGraph, parts: Sequence[int]) -> List[float]:
    gains = [0.0] * graph.num_nodes
    for u in range(graph.num_nodes):
        internal = external = 0.0
        for v, w in graph.adj[u].items():
            if parts[v] == parts[u]:
                internal += w
            else:
                external += w
        gains[u] = external - internal
    return gains


def fm_refine(
    graph: WeightedGraph,
    parts: List[int],
    frac: float = 0.5,
    ub: float = 1.10,
    max_passes: int = 6,
) -> List[int]:
    """Refine a 0/1 bisection in place (also returned)."""
    n = graph.num_nodes
    if n == 0:
        return parts
    vw = graph.vwgts()
    total = vw.sum(axis=0)
    targets = np.array([total * frac, total * (1.0 - frac)])  # per side
    limits = targets * ub + 1e-9

    side_w = np.zeros((2, graph.ncon))
    for u in range(n):
        side_w[parts[u]] += vw[u]

    for _ in range(max_passes):
        gains = _gains(graph, parts)
        locked = [False] * n
        sequence: List[int] = []
        cum = 0.0
        best_cum = 0.0
        best_len = 0
        sim_side = side_w.copy()
        sim_parts = list(parts)
        for _step in range(n):
            best_u = -1
            best_gain = -float("inf")
            for u in range(n):
                if locked[u]:
                    continue
                src = sim_parts[u]
                dst = 1 - src
                if np.any(sim_side[dst] + vw[u] > limits[dst]):
                    continue
                if gains[u] > best_gain:
                    best_gain = gains[u]
                    best_u = u
            if best_u == -1:
                break
            u = best_u
            src = sim_parts[u]
            dst = 1 - src
            locked[u] = True
            sim_parts[u] = dst
            sim_side[src] -= vw[u]
            sim_side[dst] += vw[u]
            cum += gains[u]
            sequence.append(u)
            # incremental gain update for neighbors
            for v, w in graph.adj[u].items():
                if locked[v]:
                    continue
                if sim_parts[v] == dst:
                    gains[v] -= 2 * w
                else:
                    gains[v] += 2 * w
            gains[u] = -gains[u]
            if cum > best_cum + 1e-12:
                best_cum = cum
                best_len = len(sequence)
            # early exit: no point dragging a long bad tail on big graphs
            if len(sequence) - best_len > 50:
                break
        if best_len == 0:
            break
        for u in sequence[:best_len]:
            src = parts[u]
            dst = 1 - src
            parts[u] = dst
            side_w[src] -= vw[u]
            side_w[dst] += vw[u]
    return parts
