"""Multilevel k-way partitioning by recursive bisection.

One bisection is a V-cycle: HEM coarsening to ~64 vertices, greedy
graph-growing initial partition at the coarsest level, then FM refinement
while projecting back up the hierarchy (Hendrickson/Leland's multilevel
scheme, the one the paper cites as state of the art).  k-way partitions are
built by recursive bisection with proportional weight splits, so non-power-
of-two ``nparts`` work naturally.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.graph.wgraph import WeightedGraph
from repro.partition.coarsen import coarsen_to
from repro.partition.initial import grow_bisection
from repro.partition.refine import fm_refine

COARSEN_TARGET = 64

#: below this size a bisection is solved exactly by enumeration — program
#: dependence graphs (CRG/ODG) are tiny, so the "Metis" quality floor for
#: them is the true optimum
EXHAUSTIVE_LIMIT = 15


def exhaustive_bisect(graph: WeightedGraph, frac: float, ub: float) -> List[int]:
    """Optimal bisection by enumeration: minimize edgecut subject to both
    sides staying within ``ub`` × their target weights (per constraint);
    when no assignment is feasible, minimize overload first."""
    n = graph.num_nodes
    vw = graph.vwgts()
    total = vw.sum(axis=0)
    targets = np.array([total * frac, total * (1.0 - frac)]) + 1e-12
    edges = list(graph.edges())
    best_key = None
    best_parts: List[int] = [0] * n
    for mask in range(1, (1 << n) - 1):
        sides = [(mask >> i) & 1 for i in range(n)]
        w = np.zeros((2, graph.ncon))
        for i, s in enumerate(sides):
            w[s] += vw[i]
        overload = float(np.max(w / (targets * ub)))
        feasible = 0 if overload <= 1.0 + 1e-9 else 1
        cut = sum(wgt for u, v, wgt in edges if sides[u] != sides[v])
        key = (feasible, cut if feasible == 0 else overload, cut)
        if best_key is None or key < best_key:
            best_key = key
            best_parts = sides
    return best_parts


def multilevel_bisect(
    graph: WeightedGraph,
    frac: float,
    rng: np.random.Generator,
    ub: float = 1.10,
) -> List[int]:
    """Bisect ``graph`` with ~``frac`` of the weight in part 0."""
    n = graph.num_nodes
    if n == 0:
        return []
    if n == 1:
        return [0]
    if n <= EXHAUSTIVE_LIMIT:
        return exhaustive_bisect(graph, frac, ub)
    hierarchy = coarsen_to(graph, COARSEN_TARGET, rng)
    coarsest = hierarchy[-1][0] if hierarchy else graph
    parts = grow_bisection(coarsest, frac, rng)
    parts = fm_refine(coarsest, parts, frac, ub)
    # project back up, refining at every level; hierarchy[idx] holds the
    # coarse graph and the fine->coarse map whose fine side is
    # hierarchy[idx-1] (or the input graph at idx == 0)
    for idx in range(len(hierarchy) - 1, -1, -1):
        _, cmap = hierarchy[idx]
        fine_graph = graph if idx == 0 else hierarchy[idx - 1][0]
        fine_parts = [parts[cmap[u]] for u in range(fine_graph.num_nodes)]
        parts = fm_refine(fine_graph, fine_parts, frac, ub)
    return parts


def recursive_kway(
    graph: WeightedGraph,
    nparts: int,
    rng: np.random.Generator,
    ub: float = 1.10,
    tpwgts: Optional[List[float]] = None,
) -> List[int]:
    """k-way partition via recursive bisection; returns parts in 0..nparts-1.

    ``tpwgts`` gives the target weight *fraction* per partition (Metis'
    heterogeneous-capacity feature; the paper's §3 models exactly this:
    "account for the resource constraints of each partition").  Defaults to
    uniform."""
    n = graph.num_nodes
    parts = [0] * n
    if nparts <= 1 or n == 0:
        return parts
    if tpwgts is None:
        tpwgts = [1.0 / nparts] * nparts
    total_frac = sum(tpwgts)
    tpwgts = [max(t, 1e-9) / total_frac for t in tpwgts]

    def split(node_ids: List[int], fracs: List[float], base: int) -> None:
        k = len(fracs)
        if k == 1 or len(node_ids) <= 1:
            for u in node_ids:
                parts[u] = base
            return
        k_left = k // 2
        frac_left = sum(fracs[:k_left]) / sum(fracs)
        sub, mapping = graph.subgraph(node_ids)
        bisection = multilevel_bisect(sub, frac_left, rng, ub)
        left = [mapping[i] for i, p in enumerate(bisection) if p == 0]
        right = [mapping[i] for i, p in enumerate(bisection) if p == 1]
        if not left or not right:
            # a degenerate bisection (tiny graphs): fall back to halving
            mid = max(1, int(round(len(node_ids) * frac_left)))
            mid = min(mid, len(node_ids) - 1)
            left, right = node_ids[:mid], node_ids[mid:]
        split(left, fracs[:k_left], base)
        split(right, fracs[k_left:], base + k_left)

    split(list(range(n)), list(tpwgts), 0)
    return parts
