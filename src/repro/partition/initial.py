"""Greedy graph-growing initial bisection (GGP).

Grow a region breadth-first from a random seed, preferring frontier vertices
with the highest gain (most edges into the region), until the region reaches
the target weight fraction in every constraint dimension.  Several trials
are run and the best cut kept — this is Metis' GGGP strategy in its simplest
form.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

import numpy as np

from repro.graph.metrics import edgecut
from repro.graph.wgraph import WeightedGraph


def grow_bisection(
    graph: WeightedGraph,
    frac: float,
    rng: np.random.Generator,
    ntrials: int = 8,
) -> List[int]:
    """Bisect ``graph`` so part 0 holds ~``frac`` of total weight.  Returns
    the 0/1 parts vector with the smallest cut over ``ntrials`` seeds."""
    n = graph.num_nodes
    if n == 0:
        return []
    vw = graph.vwgts()
    total = vw.sum(axis=0)
    target = total * frac
    best_parts: Optional[List[int]] = None
    best_cut = float("inf")
    for _ in range(max(1, ntrials)):
        seed = int(rng.integers(n))
        parts = [1] * n
        region = np.zeros(graph.ncon)
        # max-heap of (-gain, tiebreak, node)
        heap: List = [(0.0, int(rng.integers(1 << 30)), seed)]
        in_heap = {seed}
        added = 0
        while heap and added < n - 1:
            # stop when every dimension reached its target (scalar graphs:
            # the common case — one comparison)
            if np.all(region >= target):
                break
            _, _, u = heapq.heappop(heap)
            if parts[u] == 0:
                continue
            # skip nodes that would badly overshoot a dimension
            if np.any(region + vw[u] > target * 1.6 + 1e-9) and added > 0:
                continue
            parts[u] = 0
            region += vw[u]
            added += 1
            for v, _w in graph.adj[u].items():
                if parts[v] == 1 and v not in in_heap:
                    gain = sum(
                        w2 for nb, w2 in graph.adj[v].items() if parts[nb] == 0
                    )
                    heapq.heappush(
                        heap, (-gain, int(rng.integers(1 << 30)), v)
                    )
                    in_heap.add(v)
        cut = edgecut(graph, parts)
        if cut < best_cut and 0 < sum(1 for p in parts if p == 0) < n:
            best_cut = cut
            best_parts = parts
    if best_parts is None:
        # degenerate fallback: split by index at the weight median
        order = list(range(n))
        acc = np.zeros(graph.ncon)
        best_parts = [1] * n
        for u in order:
            if np.all(acc >= target):
                break
            best_parts[u] = 0
            acc += vw[u]
    return best_parts
