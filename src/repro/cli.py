"""Command-line interface: ``python -m repro <command>``.

A thin consumer of :mod:`repro.api` — every stage runs through the typed
:class:`~repro.api.experiment.Experiment` façade.  Commands mirror the
infrastructure's phases:

* ``run <workload>``        — execute a workload; ``--backend seq`` (default)
  is the centralized baseline, ``--backend {sim,thread,process}`` runs the
  distributed plan on that runtime backend (program output on stdout,
  byte-identical across backends; diagnostics on stderr)
* ``analyze <workload>``    — CRG/ODG summary (+ ``--vcg DIR`` to dump Figure 3/4 files)
* ``distribute <workload>`` — plan, rewrite and execute on the paper's
  2-node testbed (``--nodes N`` for more, ``--backend`` to pick the
  runtime), printing the Figure 11 numbers
* ``tables``                — regenerate Tables 1/2/3 and Figure 11 to stdout
* ``sweep``                 — batch-run a (workload × partitioner × cluster
  × network × backend) grid through the stage-cached pipeline, optionally
  across a process pool (``--workers N``), printing one result table +
  cache stats
* ``fuzz``                  — differential conformance fuzzing: seeded
  generated programs × generated worlds through the cross-backend oracle
  (:mod:`repro.testing`), with minimized counterexamples and golden-corpus
  save/replay (``--replay tests/corpus`` is the CI regression gate)
* ``codegen``               — the Figure 5/6/7 tour

``run``, ``distribute`` and ``sweep`` accept ``--json``: instead of the
human-readable rendering, stdout carries one structured
:class:`~repro.api.report.Report` serialization (the machine-readable
bench-trajectory format).  Unknown workload/partitioner/backend/network
names exit with code 2 and a one-line ``error:`` message (including a
did-you-mean suggestion) instead of a traceback.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.workloads import WORKLOADS


def _experiment(args: argparse.Namespace, backend: str):
    from repro.api import Experiment

    replication = getattr(args, "replication", 1)
    faults = None
    crash = getattr(args, "crash", None)
    if crash:
        from repro.runtime.faults import FaultPlan

        try:
            node_s, _, cycle_s = crash.partition(":")
            faults = FaultPlan(crashes=((int(node_s), int(cycle_s)),))
        except ValueError:
            raise SystemExit(f"error: --crash must be NODE:CYCLE, got {crash!r}")
    recovery = None
    if getattr(args, "recovery", False):
        from repro.runtime.checkpoint import RecoveryPlan

        recovery = RecoveryPlan(
            interval=getattr(args, "recovery_interval", 60_000)
        )
    roster_s = getattr(args, "roster", "") or ""
    roster = (
        tuple(entry.strip() for entry in roster_s.split(","))
        if roster_s else None
    )
    return Experiment.from_options(
        args.workload,
        size=args.size,
        nparts=getattr(args, "nodes", 2),
        backend=backend,
        replication=replication,
        faults=faults,
        recovery=recovery,
        engine=getattr(args, "vm_engine", "default"),
        roster=roster,
        force_distribution=getattr(args, "serve", False),
        # replicas need somewhere to live: give each extra copy its own
        # (otherwise idle) machine beyond the nparts the plan uses
        nodes=(
            getattr(args, "nodes", 2) + replication - 1
            if replication > 1 else None
        ),
    )


def _cmd_run(args: argparse.Namespace) -> int:
    if args.backend == "seq":
        from repro.api import Experiment

        # the centralized baseline always runs on the paper's 800 MHz
        # machine (the slowest paper-testbed node); --nodes only shapes
        # distributed runs
        exp = Experiment.from_options(
            args.workload, size=args.size,
            engine=getattr(args, "vm_engine", "default"),
        )
        seq = exp.baseline()
        if args.json:
            print(exp.report().to_json(indent=2))
            return 0
        for line in seq.stdout:
            print(line)
        print(f"[{args.workload}] {seq.cycles} cycles, "
              f"{seq.exec_time_s * 1e3:.3f} virtual ms on the 800 MHz baseline",
              file=sys.stderr)
        return 0
    # distributed run on a real backend; program output goes to stdout so it
    # is byte-comparable across backends, diagnostics go to stderr
    exp = _experiment(args, args.backend)
    res = exp.run()
    if args.json:
        print(res.report.to_json(indent=2))
        return 0
    for line in res.stdout:
        print(line)
    unit = "virtual ms" if args.backend == "sim" else "wall ms"
    print(f"[{args.workload}] backend={args.backend} k={res.plan.nparts} "
          f"{res.distributed_s * 1e3:.3f} {unit}, "
          f"{res.messages} messages ({res.bytes} bytes)",
          file=sys.stderr)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    exp = _experiment(args, "sim")
    work = exp.compile()
    a = exp.analyze()
    print(f"classes={work.num_classes} methods={work.num_methods} "
          f"size={work.size_kb:.1f}KB")
    print(f"CRG: {a.crg.num_nodes} nodes, {a.crg.num_edges} edges, "
          f"2-way edgecut {a.crg_partition.edgecut:.0f}")
    print(f"ODG: {a.odg.num_nodes} objects, {a.odg.num_edges} relations, "
          f"2-way edgecut {a.odg_partition.edgecut:.0f}")
    for obj in a.odg.objects:
        print(f"  {obj.label:18s} {obj.uid}")
    if args.vcg:
        out = pathlib.Path(args.vcg)
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{args.workload}_crg.vcg").write_text(
            a.crg.to_vcg(f"{args.workload} CRG")
        )
        graph, order = a.odg.partition_graph()
        from repro.graph.vcg import vcg_digraph

        nodes = [(uid, a.odg.nodes[uid]) for uid in order]
        edges = [
            (e.src, e.dst, e.kind) for e in a.odg.edges() if e.kind != "reference"
        ]
        (out / f"{args.workload}_odg.vcg").write_text(
            vcg_digraph(f"{args.workload} ODG", nodes, edges)
        )
        print(f"VCG files written to {out}/")
    return 0


def _cmd_distribute(args: argparse.Namespace) -> int:
    exp = _experiment(args, args.backend)
    res = exp.run()
    if args.json:
        print(res.report.to_json(indent=2))
        return 0
    # non-sim backends compare wall against wall (commensurable units)
    unit = "virtual ms" if args.backend == "sim" else "wall ms"
    print(f"sequential : {res.sequential_s * 1e3:10.3f} {unit}")
    print(f"distributed: {res.distributed_s * 1e3:10.3f} {unit} "
          f"on {args.nodes} nodes ({args.backend} backend)")
    print(f"messages   : {res.messages}  ({res.bytes} bytes)")
    print(f"rewrites   : {res.rewrite_stats.total}  "
          f"(plan edgecut {res.plan.edgecut:.0f})")
    print(f"speedup    : {res.speedup_pct:.1f}%  (paper range: 79.2%..175.2%)")
    if res.report.replication > 1 and res.report.availability is not None:
        print(f"replication: {res.report.replication} copies/safe class, "
              f"modeled availability {res.report.availability:.3f}")
    if res.report.faults:
        verdict = (
            "degraded" if res.report.degraded
            else "masked" if res.report.recovered
            else "survived"
        )
        print(f"faults     : {len(res.report.faults)} record(s), run {verdict}")
    if res.report.recovered:
        nodes = sorted({r['node'] for r in res.report.recovered})
        print(f"recovery   : masked crash of node(s) {nodes} — "
              f"{res.report.checkpoint_overhead_cycles} checkpoint cycles, "
              f"{res.report.recovery_cycles} recovery cycles")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.harness.tables import figure11, table1, table2, table3

    for fn, kwargs in (
        (table1, {"size": args.size}),
        (table2, {"size": args.size}),
        (table3, {"size": args.size}),
        (figure11, {"size": "bench" if args.size == "test" else args.size}),
    ):
        _, text = fn(**kwargs)
        print(text)
        print()
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.harness.sweep import SweepRunner, sweep_grid

    try:
        configs = sweep_grid(
            workloads=args.workloads.split(",") if args.workloads else None,
            methods=tuple(args.methods.split(",")),
            cluster_sizes=tuple(int(n) for n in args.nodes.split(",")),
            networks=tuple(args.networks.split(",")),
            size=args.size,
            backends=tuple(args.backends.split(",")),
            crash=args.crash,
            recovery_intervals=tuple(
                int(n) for n in args.recovery_intervals.split(",")
            ),
            serve=args.serve,
            roster=args.roster,
        )
    except ValueError as exc:  # e.g. non-integer --nodes
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = SweepRunner(configs, workers=args.workers).run()
    if args.json:
        print(result.to_json(indent=2))
        return 0
    text = result.table()
    print(text)
    print()
    print(result.summary())
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + "\n")
        print(f"table written to {out}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness.bench import (
        check_regression,
        load_bench,
        render_bench,
        run_bench,
        write_bench,
    )

    # read the committed baseline up front: a bad --check path must fail
    # before minutes of measurement, and before --out (which defaults to
    # the baseline's own path in the documented gate invocation
    # `repro bench --quick --check BENCH_vm.json`) overwrites it
    committed = load_bench(args.check) if args.check else None
    workloads = args.workloads.split(",") if args.workloads else None
    engines = None if args.engine == "all" else [args.engine]
    doc = run_bench(workloads, quick=args.quick, engines=engines)
    print(render_bench(doc))
    if args.out:
        out = pathlib.Path(args.out)
        if out.parent != pathlib.Path():
            out.parent.mkdir(parents=True, exist_ok=True)
        write_bench(doc, out)
        print(f"bench written to {out}", file=sys.stderr)
    if committed is not None:
        failures = check_regression(doc, committed, tolerance=args.tolerance)
        if failures:
            for f in failures:
                print(f"regression: {f}", file=sys.stderr)
            return 1
        print(
            f"bench within {args.tolerance:.0%} of committed {args.check}",
            file=sys.stderr,
        )
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json

    from repro.testing import corpus as corpus_mod
    from repro.testing import oracle
    from repro.testing.seeds import base_seed, describe

    if args.replay:
        cache = None
        failures = 0
        entries = corpus_mod.load_corpus(args.replay)
        for path, entry in entries:
            divs = corpus_mod.replay_entry(entry, cache=cache, deep=args.deep)
            status = "ok" if not divs else "DIVERGED"
            print(f"replay {entry.name} [{entry.kind}]: {status}",
                  file=sys.stderr)
            for d in divs:
                failures += 1
                print(f"  {d.check}: {d.message}", file=sys.stderr)
                print(f"    expected: {d.expected!r}", file=sys.stderr)
                print(f"    actual:   {d.actual!r}", file=sys.stderr)
        print(f"replayed {len(entries)} corpus entries, "
              f"{failures} divergences", file=sys.stderr)
        return 1 if failures else 0

    seed = args.seed if args.seed is not None else base_seed(default=0)
    print(f"fuzzing: seed={seed} budget={args.budget} ({describe()} overrides "
          f"the default seed)", file=sys.stderr)
    report, golden = oracle.run_fuzz(
        seed=seed,
        budget=args.budget,
        include_thread=not args.no_thread,
        include_process=args.include_process,
        include_tcp=args.include_tcp,
        include_faults=args.faults or args.recovery,
        include_recovery=args.recovery,
        deep=args.deep,
        shrink_budget=args.max_shrink,
        collect_golden=bool(args.save_corpus),
        log=lambda msg: print(msg, file=sys.stderr),
    )
    if args.save_corpus:
        out = pathlib.Path(args.save_corpus)
        for scenario, outcome in golden:
            entry = corpus_mod.entry_from_outcome(
                scenario, outcome,
                meta={"gen_seed": scenario.gen_seed, "fuzz_seed": seed},
            )
            entry.save(out)
        print(f"saved {len(golden)} golden entries to {out}/", file=sys.stderr)
    for ce in report.failures:
        out = pathlib.Path(args.save_corpus or args.failures_dir)
        path = corpus_mod.entry_from_counterexample(ce).save(out)
        print(f"counterexample minimized and saved: {path}", file=sys.stderr)
        print(f"  replay with: repro fuzz --replay {path}", file=sys.stderr)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _cmd_codegen(args: argparse.Namespace) -> int:
    from repro.harness.figures import fig5, fig6, fig7

    print("Quad IR (Figure 5):")
    print(fig5())
    print("\nTrees (Figure 6):")
    print(fig6())
    print("\nMachine code (Figure 7):")
    listings = fig7()
    print(listings["x86"])
    print()
    print(listings["StrongARM"])
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Automatic program distribution infrastructure "
        "(Diaconescu et al., IPPS 2005 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    # workload/backend names are validated against the plugin registries at
    # execution time (clean UnknownPluginError with a did-you-mean), not by
    # argparse choices= — so plugins registered later are first-class
    workload_help = f"workload name ({', '.join(sorted(WORKLOADS))})"

    p = sub.add_parser("run", help="execute a workload (centralized or on a backend)")
    p.add_argument("workload", metavar="workload", help=workload_help)
    p.add_argument("--size", default="test", choices=("test", "bench", "large"))
    p.add_argument(
        "--backend", default="seq", metavar="NAME",
        help="seq = centralized baseline; sim/thread/process/tcp = "
        "distributed execution on that runtime backend",
    )
    p.add_argument("--nodes", type=int, default=2,
                   help="partitions for non-seq backends")
    p.add_argument(
        "--serve", action="store_true",
        help="service deployment: force a genuine multi-node placement so "
        "request/reply traffic (throughput, latency percentiles) is real "
        "instead of co-located away",
    )
    p.add_argument(
        "--roster", default="", metavar="HOST:PORT,...",
        help="tcp backend only: comma-separated host:port listen endpoints, "
        "one per node (default: 127.0.0.1 with ephemeral ports)",
    )
    p.add_argument("--vm-engine", default="default", metavar="TIER",
                   choices=("default", "reference", "fast", "compiled"),
                   help="force the VM execution tier on every machine "
                   "(default = ambient REPRO_VM_ENGINE)")
    p.add_argument("--json", action="store_true",
                   help="emit the structured Report as JSON on stdout "
                   "(seq runs report distributed_s: null)")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("analyze", help="dependence analysis summary")
    p.add_argument("workload", metavar="workload", help=workload_help)
    p.add_argument("--size", default="test", choices=("test", "bench", "large"))
    p.add_argument("--vcg", help="directory for Figure 3/4 VCG files")
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser("distribute", help="distributed execution (Figure 11)")
    p.add_argument("workload", metavar="workload", help=workload_help)
    p.add_argument("--size", default="bench", choices=("test", "bench", "large"))
    p.add_argument("--nodes", type=int, default=2)
    p.add_argument("--backend", default="sim", metavar="NAME",
                   help="runtime backend (sim, thread, process, tcp)")
    p.add_argument(
        "--serve", action="store_true",
        help="service deployment: force a genuine multi-node placement so "
        "request/reply traffic (throughput, latency percentiles) is real "
        "instead of co-located away",
    )
    p.add_argument(
        "--roster", default="", metavar="HOST:PORT,...",
        help="tcp backend only: comma-separated host:port listen endpoints, "
        "one per node (default: 127.0.0.1 with ephemeral ports)",
    )
    p.add_argument(
        "--replication", type=int, default=1, metavar="N",
        help="quorum-replicate safe remote classes over N copies "
        "(adds N-1 extra nodes to host them; default 1 = off)",
    )
    p.add_argument(
        "--crash", metavar="NODE:CYCLE",
        help="inject a planned node crash, e.g. --crash 0:20000",
    )
    p.add_argument(
        "--recovery", action="store_true",
        help="enable the recovery tier (checkpoints + heartbeat leases + "
        "object migration): a --crash of a non-main node is then masked "
        "with byte-identical output instead of degrading",
    )
    p.add_argument(
        "--recovery-interval", type=int, default=60_000, metavar="CYCLES",
        help="checkpoint cadence in cycles for --recovery (default 60000)",
    )
    p.add_argument("--vm-engine", default="default", metavar="TIER",
                   choices=("default", "reference", "fast", "compiled"),
                   help="force the VM execution tier on every machine "
                   "(default = ambient REPRO_VM_ENGINE)")
    p.add_argument("--json", action="store_true",
                   help="emit the structured Report as JSON on stdout")
    p.set_defaults(fn=_cmd_distribute)

    p = sub.add_parser("tables", help="regenerate Tables 1-3 + Figure 11")
    p.add_argument("--size", default="test", choices=("test", "bench", "large"))
    p.set_defaults(fn=_cmd_tables)

    p = sub.add_parser(
        "sweep", help="batch-run a config grid through the cached pipeline"
    )
    p.add_argument(
        "--workloads",
        help="comma-separated workload names (default: the Table 1 set)",
    )
    p.add_argument(
        "--methods", default="multilevel",
        help="comma-separated partitioners (multilevel,kl,spectral,roundrobin)",
    )
    p.add_argument(
        "--nodes", default="2",
        help="comma-separated cluster sizes, e.g. 2,3,4",
    )
    p.add_argument(
        "--networks", default="ethernet_100m",
        help="comma-separated network presets "
        "(ethernet_100m,ethernet_1g,wireless_80211b)",
    )
    p.add_argument(
        "--backends", default="sim",
        help="comma-separated runtime backends (sim,thread,process,tcp)",
    )
    p.add_argument(
        "--serve", action="store_true",
        help="service deployment for every grid point: force a genuine "
        "multi-node placement so the throughput/latency columns carry "
        "real request/reply traffic",
    )
    p.add_argument(
        "--roster", default="", metavar="HOST:PORT,...",
        help="tcp backend only: comma-separated host:port listen endpoints "
        "applied to every grid point (default: ephemeral localhost ports)",
    )
    p.add_argument("--size", default="test", choices=("test", "bench", "large"))
    p.add_argument(
        "--crash", default="", metavar="NODE:CYCLE",
        help="inject a planned crash into every grid point (pairs with "
        "--recovery-intervals to measure masking cost)",
    )
    p.add_argument(
        "--recovery-intervals", default="0", metavar="CYCLES,...",
        help="comma-separated checkpoint intervals as a sweep axis "
        "(0 = recovery off; default 0)",
    )
    p.add_argument(
        "--workers", type=int, default=0,
        help="process-pool width; <=1 runs serially in-process",
    )
    p.add_argument("--out", help="also write the result table to this file")
    p.add_argument("--json", action="store_true",
                   help="emit one JSON object on stdout whose 'records' "
                   "array holds one Report per grid point")
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser(
        "bench",
        help="measure interpreter + simulator throughput (BENCH_vm.json)",
    )
    p.add_argument(
        "--workloads",
        help="comma-separated workload names (default: heapsort,crypt)",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="small 'test' workload size — the CI smoke configuration",
    )
    p.add_argument(
        "--engine", default="all",
        choices=("reference", "fast", "compiled", "all"),
        help="execution tier(s) to measure (default: all three, with "
        "bit-identity asserted across them)",
    )
    p.add_argument(
        "--out", default="BENCH_vm.json",
        help="write the JSON bench document here ('' to skip)",
    )
    p.add_argument(
        "--check", metavar="FILE",
        help="compare against a committed BENCH_vm.json; exit 1 if the "
        "relative metrics regress beyond --tolerance",
    )
    p.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional regression for --check (default 0.30)",
    )
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser(
        "fuzz",
        help="differential conformance fuzzing (repro.testing): generated "
        "programs x generated worlds through the cross-backend oracle",
    )
    p.add_argument(
        "--seed", type=int, default=None,
        help="fuzz seed (default: $REPRO_TEST_SEED, else 0)",
    )
    p.add_argument(
        "--budget", type=int, default=50,
        help="number of generated scenarios to check (default 50)",
    )
    p.add_argument(
        "--replay", metavar="PATH",
        help="replay a corpus entry file or directory (e.g. tests/corpus) "
        "instead of generating new scenarios",
    )
    p.add_argument(
        "--save-corpus", metavar="DIR",
        help="save every passing scenario as a golden corpus entry (and "
        "counterexamples) under DIR",
    )
    p.add_argument(
        "--failures-dir", default="fuzz-failures", metavar="DIR",
        help="where minimized counterexamples are written (default "
        "fuzz-failures/)",
    )
    p.add_argument(
        "--deep", action="store_true",
        help="also assert byte-identical fast-vs-reference cluster "
        "execution on the simulator (slower)",
    )
    p.add_argument(
        "--no-thread", action="store_true",
        help="restrict worlds to the deterministic simulator backend",
    )
    p.add_argument(
        "--include-process", action="store_true",
        help="let worlds include the multiprocessing backend (slow)",
    )
    p.add_argument(
        "--include-tcp", action="store_true",
        help="let worlds include the real-socket tcp backend on localhost "
        "(slow; gated off by default so existing corpora replay unchanged)",
    )
    p.add_argument(
        "--faults", action="store_true",
        help="let worlds carry seeded FaultPlans (message loss, node "
        "crashes) and quorum replication; crashes must degrade to "
        "structured fault reports, transient loss must be masked",
    )
    p.add_argument(
        "--recovery", action="store_true",
        help="(with --faults) let crash worlds carry RecoveryPlans: the "
        "oracle then hunts recovered-vs-fault-free divergence — masked "
        "crashes must reproduce byte-identical output with RECOVERED "
        "evidence",
    )
    p.add_argument(
        "--max-shrink", type=int, default=120,
        help="shrinking budget (oracle evaluations) per counterexample",
    )
    p.add_argument("--json", action="store_true",
                   help="emit the structured ConformanceReport as JSON")
    p.set_defaults(fn=_cmd_fuzz)

    p = sub.add_parser("codegen", help="Figure 5/6/7 tour")
    p.set_defaults(fn=_cmd_codegen)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.errors import ReproError

    try:
        return args.fn(args)
    except ReproError as exc:
        # infrastructure failures (unknown plugin names, bad configs,
        # diverged runs) surface as one clean line, not a traceback;
        # genuine Python bugs still get their stack trace
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
