"""StrongARM BURS rule set (paper Figure 7, right column).

ARM's three-operand data processing lets ``ADD_I R1, IConst 4, IConst 1``
reduce to the single ``add R1, #4, #1``-style instruction the figure shows
(``add R1, 4, 4`` in the paper's rendering), where x86 needed a mov+add —
the per-target cost tables drive the BURS to different derivations.
"""

from __future__ import annotations

from typing import List

from repro.codegen.burs import BURS, Rule, aux
from repro.codegen.emitter import EmitCtx, assemble_method
from repro.quad.quads import QuadMethod

_BCC = {"EQ": "beq", "NE": "bne", "LT": "blt", "LE": "ble", "GT": "bgt", "GE": "bge"}
_ARITH = {
    "ADD": "add", "SUB": "sub", "MUL": "mul", "DIV": "sdiv", "REM": "srem",
    "AND": "and", "OR": "orr", "XOR": "eor", "SHL": "lsl", "SHR": "asr",
    "USHR": "lsr",
}
_SUFFIXES = ("I", "L", "F")


def _imm(v) -> str:
    return f"#{v}" if isinstance(v, (int, float)) else str(v)


def _rules() -> List[Rule]:
    rules: List[Rule] = []
    rules.append(Rule("reg", ("REG",), 0, lambda ctx, n, k: ctx.phys(n.value)))
    for leaf in ("ICONST", "LCONST", "FCONST"):
        rules.append(Rule("imm", (leaf,), 0, lambda ctx, n, k: n.value))
    rules.append(Rule("imm", ("SCONST",), 0, lambda ctx, n, k: f'="{n.value}"'))
    rules.append(Rule("imm", ("NULL",), 0, lambda ctx, n, k: 0))
    rules.append(Rule("val", "reg", 0, lambda ctx, n, k: k[0]))
    rules.append(Rule("val", "imm", 0, lambda ctx, n, k: _imm(k[0])))

    def mat_imm(ctx, n, k):
        r = ctx.fresh()
        ctx.emit(f"mov {r}, {_imm(k[0])}")
        return r

    rules.append(Rule("reg", "imm", 1, mat_imm))

    def emit_move(ctx, n, k):
        dst, src = k
        if str(dst) != str(src):
            ctx.emit(f"mov {dst}, {src if str(src).startswith(('R', '#', '=')) else _imm(src)}")
        return None

    for sfx in _SUFFIXES + ("A",):
        rules.append(Rule("stmt", (f"MOVE_{sfx}", "reg", "val"), 1, emit_move))

    # three-operand data processing: one instruction regardless of operands
    def make_arith(mn):
        def emit(ctx, n, k):
            dst, a, b = k
            ctx.emit(f"{mn} {dst}, {a}, {b}")
            return None

        return emit

    for base, mn in _ARITH.items():
        for sfx in _SUFFIXES:
            rules.append(
                Rule("stmt", (f"{base}_{sfx}", "reg", "val", "val"), 1, make_arith(mn))
            )
    for sfx in _SUFFIXES:
        rules.append(
            Rule("stmt", (f"NEG_{sfx}", "reg", "val"), 1,
                 lambda ctx, n, k: ctx.emit(f"rsb {k[0]}, {k[1]}, #0"))
        )
    for conv in ("I2L", "I2F", "L2I", "L2F", "F2I", "F2L"):
        rules.append(
            Rule("stmt", (conv, "reg", "val"), 1,
                 lambda ctx, n, k, _c=conv: ctx.emit(f"mov {k[0]}, {k[1]}", comment=_c.lower()))
        )

    def emit_ifcmp(ctx, n, k):
        ctx.emit(f"cmp {k[0]}, {k[1]}")
        ctx.emit(f"{_BCC[aux(n, 'COND')]} .BB{aux(n, 'TARGET')}")
        return None

    for sfx in ("I", "L", "F", "A"):
        rules.append(Rule("stmt", (f"IFCMP_{sfx}", "val", "val"), 2, emit_ifcmp))
    rules.append(
        Rule("stmt", ("GOTO",), 1, lambda ctx, n, k: ctx.emit(f"b .BB{aux(n, 'TARGET')}"))
    )

    # returns: result in R0, return by mov PC, R14 (Figure 7)
    def emit_ret_val(ctx, n, k):
        if str(k[0]) != "R0":
            ctx.emit(f"mov R0, {k[0]}")
        ctx.emit("mov PC, R14")
        return None

    for sfx in ("I", "L", "F", "A"):
        rules.append(Rule("stmt", (f"RETURN_{sfx}", "val"), 2, emit_ret_val))
    rules.append(Rule("stmt", ("RETURN",), 1, lambda ctx, n, k: ctx.emit("mov PC, R14")))

    def emit_invoke(ctx, n, k, has_dst):
        kids = list(k)
        dst = kids.pop(0) if has_dst else None
        for i, arg in enumerate(kids):
            ctx.emit(f"mov a{i + 1}, {arg}")
        ctx.emit(f"bl {aux(n, 'MEMBER')}")
        if dst is not None and str(dst) != "R0":
            ctx.emit(f"mov {dst}, R0")
        return None

    for mnem in ("INVOKEVIRTUAL", "INVOKESPECIAL", "INVOKESTATIC"):
        for nargs in range(0, 9):
            args = ["val"] * nargs
            rules.append(
                Rule("stmt", (mnem, *args), 3 + nargs,
                     lambda ctx, n, k: emit_invoke(ctx, n, k, False))
            )
            for sfx in ("I", "L", "F", "A"):
                rules.append(
                    Rule("stmt", (f"{mnem}_{sfx}", "reg", *args), 3 + nargs,
                         lambda ctx, n, k: emit_invoke(ctx, n, k, True))
                )

    rules.append(
        Rule("stmt", ("NEW_A", "reg"), 3,
             lambda ctx, n, k: (ctx.emit(f"bl new {aux(n, 'MEMBER')}"),
                                ctx.emit(f"mov {k[0]}, R0"))[-1])
    )
    rules.append(
        Rule("stmt", ("NEWARRAY_A", "reg", "val"), 3,
             lambda ctx, n, k: (ctx.emit(f"mov a1, {k[1]}"),
                                ctx.emit(f"bl newarray {aux(n, 'MEMBER')}"),
                                ctx.emit(f"mov {k[0]}, R0"))[-1])
    )
    for sfx in ("I", "L", "F", "A"):
        rules.append(
            Rule("stmt", (f"GETFIELD_{sfx}", "reg", "val"), 1,
                 lambda ctx, n, k: ctx.emit(f"ldr {k[0]}, [{k[1]}, {aux(n, 'MEMBER')}]"))
        )
        rules.append(
            Rule("stmt", (f"PUTFIELD_{sfx}", "val", "val"), 1,
                 lambda ctx, n, k: ctx.emit(f"str {k[1]}, [{k[0]}, {aux(n, 'MEMBER')}]"))
        )
        rules.append(
            Rule("stmt", (f"GETSTATIC_{sfx}", "reg"), 1,
                 lambda ctx, n, k: ctx.emit(f"ldr {k[0]}, ={aux(n, 'MEMBER')}"))
        )
        rules.append(
            Rule("stmt", (f"PUTSTATIC_{sfx}", "val"), 1,
                 lambda ctx, n, k: ctx.emit(f"str {k[0]}, ={aux(n, 'MEMBER')}"))
        )
        rules.append(
            Rule("stmt", (f"ALOAD_{sfx}", "reg", "val", "val"), 1,
                 lambda ctx, n, k: ctx.emit(f"ldr {k[0]}, [{k[1]}, {k[2]}, lsl #3]"))
        )
        rules.append(
            Rule("stmt", (f"ASTORE_{sfx}", "val", "val", "val"), 1,
                 lambda ctx, n, k: ctx.emit(f"str {k[2]}, [{k[0]}, {k[1]}, lsl #3]"))
        )
    rules.append(
        Rule("stmt", ("ARRAYLENGTH_I", "reg", "val"), 1,
             lambda ctx, n, k: ctx.emit(f"ldr {k[0]}, [{k[1]}, #-8]"))
    )
    rules.append(
        Rule("stmt", ("CHECKCAST_A", "reg", "val"), 3,
             lambda ctx, n, k: (ctx.emit(f"mov a1, {k[1]}"),
                                ctx.emit(f"bl checkcast {aux(n, 'MEMBER')}"),
                                ctx.emit(f"mov {k[0]}, R0"))[-1])
    )
    rules.append(
        Rule("stmt", ("INSTANCEOF_I", "reg", "val"), 3,
             lambda ctx, n, k: (ctx.emit(f"mov a1, {k[1]}"),
                                ctx.emit(f"bl instanceof {aux(n, 'MEMBER')}"),
                                ctx.emit(f"mov {k[0]}, R0"))[-1])
    )
    for nargs in range(0, 9):
        rules.append(
            Rule("stmt", ("PACK_A", "reg", *["val"] * nargs), 3 + nargs,
                 lambda ctx, n, k: (
                     [ctx.emit(f"mov a{i + 1}, {a}") for i, a in enumerate(k[1:])],
                     ctx.emit("bl pack"),
                     ctx.emit(f"mov {k[0]}, R0"),
                 )[-1])
        )
    return rules


class StrongARMTarget:
    """Figure 7 right column: the StrongARM back-end."""

    name = "StrongARM"
    phys = [f"R{i}" for i in range(1, 11)]

    def __init__(self) -> None:
        self.burs = BURS(_rules())

    def new_ctx(self) -> EmitCtx:
        return EmitCtx(self.phys, tmp_prefix="R1")

    def block_label(self, bid: int) -> str:
        return f".BB{bid}"

    def emit_method(self, qm: QuadMethod) -> str:
        return assemble_method(self, qm)
