"""Retargetable code generation (paper §4.1).

Quads become operator trees (:mod:`repro.codegen.tree`, the ANTLR-built AST
of Figure 6), which a BURS engine (:mod:`repro.codegen.burs`, the JBurg
stand-in) labels bottom-up with dynamic programming and reduces top-down to
target instructions.  Two rule sets ship, matching the paper's Figure 7
targets: :mod:`repro.codegen.x86` and :mod:`repro.codegen.strongarm`.
"""

from repro.codegen.burs import BURS, Rule
from repro.codegen.strongarm import StrongARMTarget
from repro.codegen.tree import TreeNode, method_to_trees, quad_to_tree, render_tree
from repro.codegen.x86 import X86Target

__all__ = [
    "BURS",
    "Rule",
    "TreeNode",
    "quad_to_tree",
    "method_to_trees",
    "render_tree",
    "X86Target",
    "StrongARMTarget",
]
