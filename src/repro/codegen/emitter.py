"""Shared emission context for the BURS back-ends: physical-register
allocation (first-use order, so the Figure 7 listings come out with ``eax``
/ ``R1`` first) and the output line buffer."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.quad.quads import QuadMethod, Reg


class EmitCtx:
    """Per-method emission state."""

    def __init__(self, phys_names: List[str], tmp_prefix: str = "t") -> None:
        self.lines: List[str] = []
        self.phys_names = phys_names
        self.tmp_prefix = tmp_prefix
        self.regmap: Dict[int, str] = {}
        self._next_phys = 0
        self._next_tmp = 0

    def phys(self, vreg: Reg) -> str:
        """Physical name for a virtual register (allocated on first use)."""
        name = self.regmap.get(vreg.index)
        if name is None:
            if self._next_phys < len(self.phys_names):
                name = self.phys_names[self._next_phys]
                self._next_phys += 1
            else:
                name = f"{self.tmp_prefix}{self._next_tmp}"
                self._next_tmp += 1
            self.regmap[vreg.index] = name
        return name

    def fresh(self) -> str:
        """A scratch register for materialized immediates."""
        if self._next_phys < len(self.phys_names):
            name = self.phys_names[self._next_phys]
            self._next_phys += 1
            return name
        name = f"{self.tmp_prefix}{self._next_tmp}"
        self._next_tmp += 1
        return name

    def emit(self, text: str, comment: Optional[str] = None) -> None:
        if comment:
            text = f"{text:<28}; {comment}"
        self.lines.append(text)


def operand(value) -> str:
    """Render a rule result (register name or immediate) as an operand."""
    return str(value)


def assemble_method(target, qm: QuadMethod) -> str:
    """Drive a target's BURS over every block of ``qm``; returns the listing."""
    ctx = target.new_ctx()
    out: List[str] = [f"; {target.name} code for {qm.qualified}"]
    from repro.codegen.tree import quad_to_tree

    for block in qm.block_order():
        if block.bid in (0, 1) and not block.quads:
            continue
        out.append(target.block_label(block.bid))
        start = len(ctx.lines)
        for quad in block.quads:
            tree = quad_to_tree(quad)
            target.burs.generate(tree, "stmt", ctx)
        out.extend("    " + line for line in ctx.lines[start:])
    return "\n".join(out)
