"""Operator trees over quads — the code generator's AST (paper Figure 6).

"The AST is structured such that each instruction acts as a root node, with
instruction parameters represented as child leaves."  Register operands
become ``REG`` leaves, constants ``ICONST``/``FCONST``/... leaves, and
IFCMP's condition/target become ``COND``/``TARGET`` leaves, exactly as in
the figure (where ``LE`` and ``BB4`` are children of ``IFCMP_I``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.quad.quads import Const, Quad, QuadMethod, Reg


class TreeNode:
    """One AST node: an operator label with children; leaves carry values."""

    __slots__ = ("op", "value", "kids", "ty", "state")

    def __init__(self, op: str, value=None, kids: Optional[List["TreeNode"]] = None,
                 ty: str = "V") -> None:
        self.op = op
        self.value = value
        self.kids = kids or []
        self.ty = ty
        self.state = None  # BURS labeler scratch: {nonterminal: (cost, rule)}

    def is_leaf(self) -> bool:
        return not self.kids

    def __repr__(self) -> str:  # pragma: no cover
        if self.is_leaf():
            return f"{self.op}({self.value})" if self.value is not None else self.op
        return f"{self.op}({', '.join(repr(k) for k in self.kids)})"


_CONST_OP = {"I": "ICONST", "J": "LCONST", "F": "FCONST", "S": "SCONST", "N": "NULL"}


def _operand_node(operand) -> TreeNode:
    if isinstance(operand, Reg):
        return TreeNode("REG", value=operand, ty=operand.ty)
    assert isinstance(operand, Const)
    return TreeNode(_CONST_OP.get(operand.ty, "ICONST"), value=operand.value,
                    ty=operand.ty)


def quad_to_tree(quad: Quad) -> TreeNode:
    """Lift one quad to its tree: the mnemonic is the root, the destination
    register (if any) the first child, then source operands, then
    operator-specific leaves."""
    kids: List[TreeNode] = []
    if quad.dst is not None:
        kids.append(TreeNode("REG", value=quad.dst, ty=quad.dst.ty))
    kids.extend(_operand_node(s) for s in quad.srcs)
    if quad.op == "IFCMP":
        cond, target = quad.extra
        kids.append(TreeNode("COND", value=cond))
        kids.append(TreeNode("TARGET", value=target))
    elif quad.op == "GOTO":
        kids.append(TreeNode("TARGET", value=quad.extra[0]))
    elif quad.op in ("GETFIELD", "PUTFIELD", "GETSTATIC", "PUTSTATIC"):
        kids.append(TreeNode("MEMBER", value=".".join(quad.extra)))
    elif quad.op.startswith("INVOKE"):
        kids.append(TreeNode("MEMBER", value=".".join(quad.extra[:2])))
    elif quad.op in ("NEW", "NEWARRAY", "CHECKCAST", "INSTANCEOF"):
        kids.append(TreeNode("MEMBER", value=str(quad.extra[0])))
    return TreeNode(quad.mnemonic, kids=kids, ty=quad.ty)


def method_to_trees(qm: QuadMethod) -> List[Tuple[int, List[TreeNode]]]:
    """Per basic block (bid, [trees]) in the method's display order."""
    out: List[Tuple[int, List[TreeNode]]] = []
    for block in qm.block_order():
        out.append((block.bid, [quad_to_tree(q) for q in block.quads]))
    return out


def render_tree(node: TreeNode, indent: int = 0) -> str:
    """ASCII rendering of a tree (the Figure 6 bench prints these)."""
    pad = "  " * indent
    if node.is_leaf():
        label = node.op if node.value is None else f"{node.op}:{node.value}"
        return pad + label
    lines = [pad + node.op]
    for kid in node.kids:
        lines.append(render_tree(kid, indent + 1))
    return "\n".join(lines)
