"""BURS rules lowering operator trees to Python expressions.

This is the target the trace compiler (:mod:`repro.vm.jit`) reduces hot
basic blocks against: the generic BURS engine (:mod:`repro.codegen.burs`)
labels each :class:`~repro.codegen.tree.TreeNode` with the cheapest
derivation, and the emitters here produce Python *expression strings* that
``exec``-compiled block closures evaluate directly on frame locals.

Two nonterminals:

* ``imm`` — a compile-time constant (the raw Python value).  Constant
  leaves reduce to ``imm``, and folding rules (cost 0) reduce whole
  constant subtrees to ``imm`` using the exact wrap-around semantics of
  :mod:`repro.vm.values`, so folded results feed further folds.
* ``py`` — a Python expression string.  The ``imm -> py`` chain rule
  reprs the constant; operator rules parenthesize operands, so emitted
  expressions compose safely.

Rule costs make the labeler prefer folded constants and immediate-shift
forms (the shift mask is applied at compile time) over the generic
runtime forms — the same minimum-cost-traversal scheme the paper's JBurg
stage uses for its real target.
"""

from __future__ import annotations

from typing import List

from repro.codegen.burs import BURS, Rule
from repro.codegen.tree import TreeNode
from repro.vm.values import i32, i64, idiv, irem, iushr

__all__ = ["PY_RULES", "PY_BURS", "lower_py", "fold_const"]


def _paren(e: object) -> str:
    return f"({e})"


def _rules() -> List[Rule]:
    rules: List[Rule] = []
    add = rules.append

    # ---- constant leaves -> imm; imm -> py via repr
    for leaf in ("ICONST", "LCONST", "FCONST", "SCONST", "NULL"):
        add(Rule("imm", (leaf,), 0, lambda ctx, n, k: n.value, name=f"imm.{leaf}"))
    add(Rule("py", "imm", 1, lambda ctx, n, k: repr(k[0]), name="py.imm"))

    # ---- value leaves
    add(Rule("py", ("LOCAL",), 1, lambda ctx, n, k: f"L[{n.value}]", name="py.local"))
    add(Rule("py", ("TEMP",), 0, lambda ctx, n, k: str(n.value), name="py.temp"))

    # ---- wrapped integer arithmetic (32/64-bit), with constant folding
    for suffix, wrap, wname in (("I", i32, "i32"), ("L", i64, "i64")):
        for opname, sym in (
            ("ADD", "+"), ("SUB", "-"), ("MUL", "*"),
            ("AND", "&"), ("OR", "|"), ("XOR", "^"),
        ):
            root = f"{opname}_{suffix}"
            add(Rule(
                "py", (root, "py", "py"), 2,
                (lambda wn, s: lambda ctx, n, k: f"{wn}({_paren(k[0])} {s} {_paren(k[1])})")(wname, sym),
                name=f"py.{root}",
            ))
            add(Rule(
                "imm", (root, "imm", "imm"), 0,
                (lambda w, s: lambda ctx, n, k: w(_FOLD_BIN[s](k[0], k[1])))(wrap, sym),
                name=f"fold.{root}",
            ))
        bits = 31 if suffix == "I" else 63
        for opname, sym in (("SHL", "<<"), ("SHR", ">>")):
            root = f"{opname}_{suffix}"
            add(Rule(
                "py", (root, "py", "imm"), 1,
                (lambda wn, s, b: lambda ctx, n, k: f"{wn}({_paren(k[0])} {s} {int(k[1]) & b})")(wname, sym, bits),
                name=f"py.{root}.imm",
            ))
            add(Rule(
                "py", (root, "py", "py"), 2,
                (lambda wn, s, b: lambda ctx, n, k: f"{wn}({_paren(k[0])} {s} ({_paren(k[1])} & {b}))")(wname, sym, bits),
                name=f"py.{root}",
            ))
            add(Rule(
                "imm", (root, "imm", "imm"), 0,
                (lambda w, s, b: lambda ctx, n, k: w(_FOLD_BIN[s](k[0], int(k[1]) & b)))(wrap, sym, bits),
                name=f"fold.{root}",
            ))
        nbits = 32 if suffix == "I" else 64
        root = f"USHR_{suffix}"
        add(Rule(
            "py", (root, "py", "py"), 2,
            (lambda nb: lambda ctx, n, k: f"iushr({_paren(k[0])}, {_paren(k[1])}, {nb})")(nbits),
            name=f"py.{root}",
        ))
        add(Rule(
            "imm", (root, "imm", "imm"), 0,
            (lambda nb: lambda ctx, n, k: iushr(k[0], k[1], nb))(nbits),
            name=f"fold.{root}",
        ))
        # division / remainder: operands are runtime-guarded against zero by
        # the trace compiler before these trees are built, so the emitted
        # expression never faults
        wn = wname
        add(Rule(
            "py", (f"DIV_{suffix}", "py", "py"), 3,
            (lambda wn: lambda ctx, n, k: f"{wn}(idiv({_paren(k[0])}, {_paren(k[1])}))")(wn),
            name=f"py.DIV_{suffix}",
        ))
        add(Rule(
            "py", (f"REM_{suffix}", "py", "py"), 3,
            (lambda wn: lambda ctx, n, k: f"{wn}(irem({_paren(k[0])}, {_paren(k[1])}))")(wn),
            name=f"py.REM_{suffix}",
        ))
        add(Rule(
            "py", (f"NEG_{suffix}", "py"), 1,
            (lambda wn: lambda ctx, n, k: f"{wn}(-{_paren(k[0])})")(wn),
            name=f"py.NEG_{suffix}",
        ))
        add(Rule(
            "imm", (f"NEG_{suffix}", "imm"), 0,
            (lambda w: lambda ctx, n, k: w(-k[0]))(wrap),
            name=f"fold.NEG_{suffix}",
        ))

    # ---- float arithmetic (Python floats are the F domain; no wrapping)
    for opname, sym in (("ADD", "+"), ("SUB", "-"), ("MUL", "*")):
        root = f"{opname}_F"
        add(Rule(
            "py", (root, "py", "py"), 2,
            (lambda s: lambda ctx, n, k: f"({_paren(k[0])} {s} {_paren(k[1])})")(sym),
            name=f"py.{root}",
        ))
        add(Rule(
            "imm", (root, "imm", "imm"), 0,
            (lambda s: lambda ctx, n, k: _FOLD_BIN[s](k[0], k[1]))(sym),
            name=f"fold.{root}",
        ))
    add(Rule("py", ("DIV_F", "py", "py"), 3,
             lambda ctx, n, k: f"({_paren(k[0])} / {_paren(k[1])})", name="py.DIV_F"))
    # Java-style float remainder: a - b * int(a / b); operands appear twice,
    # so the trace compiler only feeds this rule pre-materialized temps
    add(Rule("py", ("REM_F", "py", "py"), 3,
             lambda ctx, n, k:
             f"({_paren(k[0])} - {_paren(k[1])} * int({_paren(k[0])} / {_paren(k[1])}))",
             name="py.REM_F"))
    add(Rule("py", ("NEG_F", "py"), 1,
             lambda ctx, n, k: f"(-{_paren(k[0])})", name="py.NEG_F"))
    add(Rule("imm", ("NEG_F", "imm"), 0,
             lambda ctx, n, k: -k[0], name="fold.NEG_F"))

    # ---- conversions
    for root, wn, fold in (
        ("I2L", "i64", i64),
        ("L2I", "i32", i32),
        ("I2F", "float", float),
        ("L2F", "float", float),
    ):
        add(Rule("py", (root, "py"), 1,
                 (lambda wn: lambda ctx, n, k: f"{wn}({k[0]})")(wn),
                 name=f"py.{root}"))
        add(Rule("imm", (root, "imm"), 0,
                 (lambda f: lambda ctx, n, k: f(k[0]))(fold),
                 name=f"fold.{root}"))
    for root, wn, fold in (("F2I", "i32", lambda v: i32(int(v))),
                           ("F2L", "i64", lambda v: i64(int(v)))):
        add(Rule("py", (root, "py"), 1,
                 (lambda wn: lambda ctx, n, k: f"{wn}(int({k[0]}))")(wn),
                 name=f"py.{root}"))
        add(Rule("imm", (root, "imm"), 0,
                 (lambda f: lambda ctx, n, k: f(k[0]))(fold),
                 name=f"fold.{root}"))

    return rules


_FOLD_BIN = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
}

#: the rule set, and one shared engine instance (the engine is stateless
#: between trees apart from per-node ``state`` scratch)
PY_RULES = _rules()
PY_BURS = BURS(PY_RULES)


def lower_py(tree: TreeNode, ctx=None) -> str:
    """Reduce ``tree`` to a Python expression string (goal ``py``)."""
    return PY_BURS.generate(tree, "py", ctx)


def fold_const(tree: TreeNode, ctx=None):
    """Reduce ``tree`` all the way to a compile-time constant (goal
    ``imm``); raises :class:`~repro.errors.CodegenError` if any leaf is
    not a constant."""
    return PY_BURS.generate(tree, "imm", ctx)
