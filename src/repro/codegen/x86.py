"""x86 BURS rule set (paper Figure 7, left column).

The instruction selection demonstrates the BURS win on the paper's example:
``MOVE_I R1, IConst 4`` derives directly to ``mov eax, 4`` (cost 1) instead
of materializing the immediate first (cost 2) — the dynamic programming
labeler picks the cheaper derivation.
"""

from __future__ import annotations

from typing import List

from repro.codegen.burs import BURS, Rule, aux
from repro.codegen.emitter import EmitCtx, assemble_method
from repro.quad.quads import QuadMethod

_JCC = {"EQ": "je", "NE": "jne", "LT": "jl", "LE": "jle", "GT": "jg", "GE": "jge"}
_ARITH = {
    "ADD": "add", "SUB": "sub", "MUL": "imul", "DIV": "idiv", "REM": "irem",
    "AND": "and", "OR": "or", "XOR": "xor", "SHL": "shl", "SHR": "sar",
    "USHR": "shr",
}
_SUFFIXES = ("I", "L", "F")


def _rules() -> List[Rule]:
    rules: List[Rule] = []

    # ----- leaves / chains
    rules.append(Rule("reg", ("REG",), 0, lambda ctx, n, k: ctx.phys(n.value)))
    for leaf in ("ICONST", "LCONST", "FCONST"):
        rules.append(Rule("imm", (leaf,), 0, lambda ctx, n, k: n.value))
    rules.append(Rule("imm", ("SCONST",), 0, lambda ctx, n, k: f'offset "{n.value}"'))
    rules.append(Rule("imm", ("NULL",), 0, lambda ctx, n, k: 0))
    rules.append(Rule("val", "reg", 0, lambda ctx, n, k: k[0]))
    rules.append(Rule("val", "imm", 0, lambda ctx, n, k: k[0]))

    def mat_imm(ctx: EmitCtx, n, k):
        r = ctx.fresh()
        ctx.emit(f"mov {r}, {k[0]}")
        return r

    rules.append(Rule("reg", "imm", 1, mat_imm, name="materialize-imm"))

    # ----- moves
    def emit_move(ctx, n, k):
        dst, src = k
        if dst != src:
            ctx.emit(f"mov {dst}, {src}")
        return None

    for sfx in _SUFFIXES:
        rules.append(Rule("stmt", (f"MOVE_{sfx}", "reg", "val"), 1, emit_move))
        rules.append(Rule("stmt", (f"MOVE_A", "reg", "val"), 1, emit_move))

    # ----- arithmetic: dst = a OP b
    def make_arith(mn: str):
        def emit(ctx, n, k):
            dst, a, b = k
            if str(dst) != str(a):
                ctx.emit(f"mov {dst}, {a}")
            ctx.emit(f"{mn} {dst}, {b}")
            return None

        return emit

    for base, mn in _ARITH.items():
        for sfx in _SUFFIXES:
            rules.append(
                Rule("stmt", (f"{base}_{sfx}", "reg", "val", "val"), 2, make_arith(mn))
            )

    def emit_neg(ctx, n, k):
        dst, a = k
        if str(dst) != str(a):
            ctx.emit(f"mov {dst}, {a}")
        ctx.emit(f"neg {dst}")
        return None

    for sfx in _SUFFIXES:
        rules.append(Rule("stmt", (f"NEG_{sfx}", "reg", "val"), 2, emit_neg))

    # ----- conversions (pseudo: x86 widening moves)
    for conv in ("I2L", "I2F", "L2I", "L2F", "F2I", "F2L"):
        def emit_conv(ctx, n, k, _c=conv):
            dst, a = k
            ctx.emit(f"mov {dst}, {a}", comment=_c.lower())
            return None

        rules.append(Rule("stmt", (conv, "reg", "val"), 1, emit_conv))

    # ----- control flow
    def emit_ifcmp(ctx, n, k):
        a, b = k
        ctx.emit(f"cmp {a}, {b}")
        ctx.emit(f"{_JCC[aux(n, 'COND')]} BB{aux(n, 'TARGET')}")
        return None

    for sfx in ("I", "L", "F", "A"):
        rules.append(Rule("stmt", (f"IFCMP_{sfx}", "val", "val"), 2, emit_ifcmp))
    rules.append(
        Rule("stmt", ("GOTO",), 1, lambda ctx, n, k: ctx.emit(f"jmp BB{aux(n, 'TARGET')}"))
    )

    # ----- returns (the paper's pseudo-x86 spells `ret eax`)
    def emit_ret_val(ctx, n, k):
        val = k[0]
        if str(val) != "eax":
            ctx.emit(f"mov eax, {val}")
        ctx.emit("ret eax")
        return None

    for sfx in ("I", "L", "F", "A"):
        rules.append(Rule("stmt", (f"RETURN_{sfx}", "val"), 2, emit_ret_val))
    rules.append(Rule("stmt", ("RETURN",), 1, lambda ctx, n, k: ctx.emit("ret")))

    # ----- object / array operations lower to runtime calls & addressing
    def emit_invoke(ctx, n, k, has_dst: bool):
        kids = list(k)
        dst = kids.pop(0) if has_dst else None
        for i, arg in enumerate(kids):
            ctx.emit(f"mov arg{i}, {arg}")
        ctx.emit(f"call {aux(n, 'MEMBER')}")
        if dst is not None and str(dst) != "eax":
            ctx.emit(f"mov {dst}, eax")
        return None

    for mnem in ("INVOKEVIRTUAL", "INVOKESPECIAL", "INVOKESTATIC"):
        for nargs in range(0, 9):
            args = ["val"] * nargs
            rules.append(
                Rule("stmt", (mnem, *args), 3 + nargs,
                     lambda ctx, n, k: emit_invoke(ctx, n, k, False))
            )
            for sfx in ("I", "L", "F", "A"):
                rules.append(
                    Rule("stmt", (f"{mnem}_{sfx}", "reg", *args), 3 + nargs,
                         lambda ctx, n, k: emit_invoke(ctx, n, k, True))
                )

    def emit_new(ctx, n, k):
        ctx.emit(f"call new {aux(n, 'MEMBER')}")
        if str(k[0]) != "eax":
            ctx.emit(f"mov {k[0]}, eax")
        return None

    rules.append(Rule("stmt", ("NEW_A", "reg"), 3, emit_new))
    rules.append(
        Rule("stmt", ("NEWARRAY_A", "reg", "val"), 3,
             lambda ctx, n, k: (ctx.emit(f"mov arg0, {k[1]}"), emit_new(ctx, n, k))[-1])
    )

    def emit_getfield(ctx, n, k):
        ctx.emit(f"mov {k[0]}, [{k[1]}+{aux(n, 'MEMBER')}]")
        return None

    def emit_putfield(ctx, n, k):
        ctx.emit(f"mov [{k[0]}+{aux(n, 'MEMBER')}], {k[1]}")
        return None

    for sfx in ("I", "L", "F", "A"):
        rules.append(Rule("stmt", (f"GETFIELD_{sfx}", "reg", "val"), 2, emit_getfield))
        rules.append(Rule("stmt", (f"PUTFIELD_{sfx}", "val", "val"), 2, emit_putfield))
        rules.append(
            Rule("stmt", (f"GETSTATIC_{sfx}", "reg"), 2,
                 lambda ctx, n, k: ctx.emit(f"mov {k[0]}, [{aux(n, 'MEMBER')}]"))
        )
        rules.append(
            Rule("stmt", (f"PUTSTATIC_{sfx}", "val"), 2,
                 lambda ctx, n, k: ctx.emit(f"mov [{aux(n, 'MEMBER')}], {k[0]}"))
        )
        rules.append(
            Rule("stmt", (f"ALOAD_{sfx}", "reg", "val", "val"), 2,
                 lambda ctx, n, k: ctx.emit(f"mov {k[0]}, [{k[1]}+{k[2]}*8]"))
        )
        rules.append(
            Rule("stmt", (f"ASTORE_{sfx}", "val", "val", "val"), 2,
                 lambda ctx, n, k: ctx.emit(f"mov [{k[0]}+{k[1]}*8], {k[2]}"))
        )
    rules.append(
        Rule("stmt", ("ARRAYLENGTH_I", "reg", "val"), 2,
             lambda ctx, n, k: ctx.emit(f"mov {k[0]}, [{k[1]}-8]"))
    )
    rules.append(
        Rule("stmt", ("CHECKCAST_A", "reg", "val"), 3,
             lambda ctx, n, k: (ctx.emit(f"mov arg0, {k[1]}"),
                                ctx.emit(f"call checkcast {aux(n, 'MEMBER')}"),
                                ctx.emit(f"mov {k[0]}, eax"))[-1])
    )
    rules.append(
        Rule("stmt", ("INSTANCEOF_I", "reg", "val"), 3,
             lambda ctx, n, k: (ctx.emit(f"mov arg0, {k[1]}"),
                                ctx.emit(f"call instanceof {aux(n, 'MEMBER')}"),
                                ctx.emit(f"mov {k[0]}, eax"))[-1])
    )
    for nargs in range(0, 9):
        rules.append(
            Rule("stmt", ("PACK_A", "reg", *["val"] * nargs), 3 + nargs,
                 lambda ctx, n, k: (
                     [ctx.emit(f"mov arg{i}, {a}") for i, a in enumerate(k[1:])],
                     ctx.emit("call pack"),
                     ctx.emit(f"mov {k[0]}, eax"),
                 )[-1])
        )
    return rules


class X86Target:
    """Figure 7 left column: the x86 back-end."""

    name = "x86"
    phys = ["eax", "ebx", "ecx", "edx", "esi", "edi"]

    def __init__(self) -> None:
        self.burs = BURS(_rules())

    def new_ctx(self) -> EmitCtx:
        return EmitCtx(self.phys, tmp_prefix="t")

    def block_label(self, bid: int) -> str:
        return f"BB{bid}:"

    def emit_method(self, qm: QuadMethod) -> str:
        return assemble_method(self, qm)
