"""A generic BURS (bottom-up rewrite system) engine — the JBurg stand-in.

Two passes over each tree, per the paper: "an initial pass to find a
minimum-cost traversal, followed by a second pass that emits code based on
the instructions represented in each node", with dynamic-programming pattern
matching.

A :class:`Rule` rewrites a *pattern* to a *nonterminal*:

* pattern = ``("ADD_I", "reg", "imm")`` — an operator whose children must be
  reducible to the listed nonterminals (extra leaf children like COND/
  TARGET/MEMBER are bound automatically and passed to the emitter);
* pattern = ``"imm"`` (a bare string) — a **chain rule** nonterminal→
  nonterminal;
* pattern = ``("ICONST",)`` — a leaf operator.

The labeler computes, for every node, the cheapest rule deriving each
nonterminal (including chain-rule closure); the reducer walks the chosen
derivation and calls each rule's ``emit(ctx, node, kids)`` bottom-up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import CodegenError
from repro.codegen.tree import TreeNode

#: leaf operators that are bound as auxiliary operands, not matched
AUX_LEAVES = frozenset({"COND", "TARGET", "MEMBER"})

Pattern = Union[str, Tuple]


@dataclass
class Rule:
    """nonterminal <- pattern, with a cost and an emitter.

    ``emit(ctx, node, kids)`` receives the reduction context, the matched
    node and the list of already-reduced child results; it returns the
    rule's result (e.g. a register name for ``reg`` rules).
    """

    nt: str
    pattern: Pattern
    cost: int
    emit: Callable
    name: str = ""

    def is_chain(self) -> bool:
        return isinstance(self.pattern, str)


class BURS:
    """The engine: label + reduce against a rule set."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        self.rules = list(rules)
        self.by_op: Dict[str, List[Rule]] = {}
        self.chains: List[Rule] = []
        for rule in self.rules:
            if rule.is_chain():
                self.chains.append(rule)
            else:
                self.by_op.setdefault(rule.pattern[0], []).append(rule)

    # ------------------------------------------------------------------ label
    def label(self, node: TreeNode) -> None:
        """Bottom-up DP: node.state[nt] = (cost, rule) minimal."""
        matchable = [k for k in node.kids if k.op not in AUX_LEAVES]
        for kid in matchable:
            self.label(kid)
        state: Dict[str, Tuple[int, Optional[Rule]]] = {}
        for rule in self.by_op.get(node.op, []):
            want = rule.pattern[1:]
            if len(want) != len(matchable):
                continue
            total = rule.cost
            feasible = True
            for nt, kid in zip(want, matchable):
                kid_state = kid.state or {}
                if nt not in kid_state:
                    feasible = False
                    break
                total += kid_state[nt][0]
            if feasible and (node.op, total) and (
                rule.nt not in state or total < state[rule.nt][0]
            ):
                state[rule.nt] = (total, rule)
        # chain-rule closure to fixpoint
        changed = True
        while changed:
            changed = False
            for chain in self.chains:
                src = chain.pattern
                if src in state:
                    cost = state[src][0] + chain.cost
                    if chain.nt not in state or cost < state[chain.nt][0]:
                        state[chain.nt] = (cost, chain)
                        changed = True
        node.state = state

    # ----------------------------------------------------------------- reduce
    def reduce(self, node: TreeNode, goal: str, ctx) -> object:
        state = node.state or {}
        if goal not in state:
            raise CodegenError(
                f"no derivation of {goal!r} for node {node.op} "
                f"(have {sorted(state)})"
            )
        _, rule = state[goal]
        assert rule is not None
        if rule.is_chain():
            inner = self.reduce(node, rule.pattern, ctx)
            return rule.emit(ctx, node, [inner])
        matchable = [k for k in node.kids if k.op not in AUX_LEAVES]
        kids = [
            self.reduce(kid, nt, ctx)
            for nt, kid in zip(rule.pattern[1:], matchable)
        ]
        return rule.emit(ctx, node, kids)

    def generate(self, node: TreeNode, goal: str, ctx) -> object:
        """Label then reduce one statement tree."""
        self.label(node)
        return self.reduce(node, goal, ctx)


def aux(node: TreeNode, op: str):
    """Fetch the value of an auxiliary leaf (COND/TARGET/MEMBER) of ``node``."""
    for kid in node.kids:
        if kid.op == op:
            return kid.value
    raise CodegenError(f"node {node.op} has no {op} leaf")
