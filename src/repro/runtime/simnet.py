"""Discrete-event simulated cluster (the substitution for the paper's real
two-machine testbed; see DESIGN.md §2).

Each :class:`SimNode` owns a steppable VM machine and a generator (its
"process").  The scheduler always advances the runnable node with the
smallest virtual clock, which makes execution deterministic.  Generators
yield events:

* ``('cost', cycles)`` — CPU work: the node's clock advances by
  ``cycles / cpu_hz`` and the machine's cycle counter by ``cycles``;
* ``('wait',)``       — the node is blocked on message arrival; the
  scheduler fast-forwards its clock to the earliest in-flight arrival, or
  parks it until a sender posts one.

The fast VM path batches the cost of whole syscall-to-syscall spans into
one event, so the scheduler advances a node's clock by whole blocks between
communication boundaries instead of per instruction — an order of magnitude
fewer events for the same virtual timeline.  To keep the timeline *exactly*
the same either way, a node's clock is always derived from its integer
cycle total since the last fast-forward (``base + cycles/hz``) rather than
accumulated float-by-float: one big charge and a thousand small ones land
on the same clock value, bit for bit.

Message timing models a store-and-forward link with per-pair FIFO:
``arrival = max(sender_clock + latency, link_busy_until) + size/bandwidth``.
FIFO per (src, dst) pair preserves the ordering guarantees the message
exchange protocol relies on (e.g. asynchronous field writes followed by a
synchronous read).
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import RuntimeServiceError
from repro.runtime.backend import (
    BackendNode,
    BackendRun,
    RunPolicy,
    RuntimeBackend,
    Transport,
    collect_latencies,
    finalize_recovery,
    provision,
    register_backend,
    summarize_recovery,
)
from repro.runtime.cluster import ClusterSpec, NodeSpec
from repro.runtime.faults import FaultError, NodeCrashed
from repro.runtime.message import FAULT_NOTICE, Message, MessageKind


class SimNode(BackendNode):
    """One simulated machine: VM + virtual clock + arrival-ordered inbox."""

    def __init__(self, node_id: int, spec: NodeSpec) -> None:
        super().__init__(node_id, spec)
        self.inbox: List[Tuple[float, int, Message]] = []  # heap by arrival
        self.parked = False                  # blocked with empty inbox
        # clock derivation base: virtual time and cycle total at the last
        # fast-forward; clock = base + (charged - base_cycles) / hz
        self._base_clock = 0.0
        self._base_cycles = 0

    def charge(self, cycles: int) -> None:
        """Advance the virtual clock by ``cycles`` of CPU work.  Derived
        from the integer cycle total so per-block and per-step charging
        produce bit-identical clocks."""
        super().charge(cycles)
        self.clock = self._base_clock + (
            (self.charged_cycles - self._base_cycles) / self.spec.cpu_hz
        )

    def now(self) -> float:
        """Virtual time: latency samples on the simulator are functions of
        the modeled timeline, hence deterministic across VM engines."""
        return self.clock

    def fast_forward(self, t: float) -> None:
        """Jump the clock forward to ``t`` (a message arrival) and reset
        the cycle-derivation base there."""
        if t > self.clock:
            self.clock = t
        self._base_clock = self.clock
        self._base_cycles = self.charged_cycles

    def earliest_arrival(self) -> Optional[float]:
        return self.inbox[0][0] if self.inbox else None

    def earliest_future_arrival(self) -> Optional[float]:
        future = [a for a, _, _ in self.inbox if a > self.clock + 1e-15]
        return min(future) if future else None

    def take_matching(
        self, match: Callable[[Message], bool]
    ) -> Optional[Message]:
        """Pop the earliest message with arrival <= clock satisfying
        ``match`` (non-matching messages stay queued)."""
        eligible = [
            (arrival, seq)
            for arrival, seq, msg in self.inbox
            if arrival <= self.clock + 1e-15 and match(msg)
        ]
        if not eligible:
            return None
        arrival, seq = min(eligible)
        for i, (a, s, m) in enumerate(self.inbox):
            if s == seq:
                self.inbox.pop(i)
                heapq.heapify(self.inbox)
                self.msgs_received += 1
                return m
        raise RuntimeServiceError("inbox invariant violated")  # pragma: no cover

    def iprobe(self, match: Callable[[Message], bool]) -> bool:
        return any(
            arrival <= self.clock + 1e-15 and match(m)
            for arrival, _, m in self.inbox
        )


class SimCluster(Transport):
    """The networked system: nodes + link + the event scheduler."""

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        self.nodes = [SimNode(i, ns) for i, ns in enumerate(spec.nodes)]
        self._seq = count()
        self._link_busy: Dict[Tuple[int, int], float] = {}
        self.total_messages = 0
        self.total_bytes = 0
        #: scheduler events processed by the last :meth:`run` — the
        #: event-count metric ``repro bench`` tracks (cost batching shrinks
        #: it by an order of magnitude at identical virtual timing)
        self.events_processed = 0

    @property
    def nnodes(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------ network
    def post(self, src: int, dst: int, msg: Message) -> None:
        """Inject a message; called by the sender's MPI service after it
        charged its serialization cost."""
        if not 0 <= dst < len(self.nodes):
            raise RuntimeServiceError(f"message to unknown node {dst}")
        sender = self.nodes[src]
        link = self.spec.link
        key = (src, dst)
        depart = max(sender.clock + link.latency_s, self._link_busy.get(key, 0.0))
        arrival = depart + msg.size / link.bandwidth_Bps
        self._link_busy[key] = arrival
        receiver = self.nodes[dst]
        sender.msgs_sent += 1
        sender.bytes_sent += msg.size
        self.total_messages += 1
        self.total_bytes += msg.size
        # injected duplicates occupy the link and the counters above but are
        # discarded at intake — the request/reply protocol must see each
        # uniquely-identified frame once
        if receiver.injector is not None and not receiver.accept_frame(msg):
            return
        heapq.heappush(receiver.inbox, (arrival, next(self._seq), msg))
        receiver.parked = False

    # ------------------------------------------------------------------ scheduler
    def run(self, max_events: int = 200_000_000) -> None:
        """Drive all node generators to completion."""
        events = 0
        self.events_processed = 0
        try:
            while True:
                runnable = [
                    n for n in self.nodes if not n.done and not n.parked
                ]
                if not runnable:
                    # a parked node has, by construction, examined every
                    # message whose arrival is <= its clock; only *future*
                    # arrivals can unblock it
                    blocked = [
                        (a, n)
                        for n in self.nodes
                        if not n.done
                        for a in [n.earliest_future_arrival()]
                        if a is not None
                    ]
                    if not blocked:
                        if all(n.done for n in self.nodes):
                            return
                        raise RuntimeServiceError(
                            "distributed deadlock: all nodes blocked with "
                            "no messages in flight"
                        )
                    arrival, node = min(
                        blocked, key=lambda t: (t[0], t[1].node_id)
                    )
                    node.fast_forward(arrival)
                    node.parked = False
                    continue
                node = min(runnable, key=lambda n: (n.clock, n.node_id))
                events += 1
                if events > max_events:
                    raise RuntimeServiceError(
                        "simulation exceeded event budget"
                    )
                try:
                    event = next(node.gen)
                except StopIteration:
                    node.done = True
                    continue
                except FaultError as exc:
                    self._fault_stop(node, exc)
                    continue
                kind = event[0]
                if kind == "cost":
                    node.charge(event[1])
                    if node.injector is not None and node.injector.crash_due(
                        node.charged_cycles
                    ):
                        self._fault_stop(
                            node,
                            NodeCrashed(
                                f"node {node.node_id} crashed at cycle "
                                f"{node.charged_cycles} (planned)"
                            ),
                        )
                elif kind == "wait":
                    # the node just failed to find a matching message among
                    # the arrivals <= clock; only a *future* arrival can
                    # change that
                    future = node.earliest_future_arrival()
                    if future is None:
                        node.parked = True
                    else:
                        node.fast_forward(future)
                else:  # pragma: no cover
                    raise RuntimeServiceError(f"unknown event {event!r}")
        finally:
            self.events_processed = events

    def _fault_stop(self, node: SimNode, exc: FaultError) -> None:
        """Degrade instead of raising: record the fault, retire the node and
        tell every live peer (an emergency SHUTDOWN with the FAULT_NOTICE
        req id) so nobody waits forever on a reply that cannot come."""
        node.record_fault(exc)
        node.done = True
        node.parked = False
        if node.gen is not None:
            node.gen.close()
        for peer in self.nodes:
            if peer.node_id == node.node_id or peer.done:
                continue
            self.post(
                node.node_id,
                peer.node_id,
                Message(
                    MessageKind.SHUTDOWN,
                    node.node_id,
                    peer.node_id,
                    FAULT_NOTICE,
                ),
            )

    @property
    def makespan(self) -> float:
        return max(n.clock for n in self.nodes)


@register_backend
class SimBackend(SimCluster, RuntimeBackend):
    """The discrete-event simulator as a pluggable runtime backend: virtual
    clocks, deterministic scheduling, modeled network timing."""

    name = "sim"

    def execute(self, program, loaded, policy: RunPolicy) -> BackendRun:
        starter = provision(self, loaded, policy)
        self.run(max_events=policy.max_events)
        stats = [n.snapshot_stats() for n in self.nodes]
        recovered, ckpt_cycles, rec_cycles = finalize_recovery(
            self.nodes, stats
        )
        stdout = [line for s in stats for line in s.stdout]
        faults = [f for n in self.nodes for f in n.faults]
        return BackendRun(
            result=starter.result,
            makespan_s=self.makespan,
            total_messages=self.total_messages,
            total_bytes=self.total_bytes,
            node_stats=stats,
            stdout=stdout,
            faults=faults,
            degraded=summarize_recovery(
                faults,
                recovered,
                recovering=policy.recovery is not None
                and policy.recovery.enabled,
                main_partition=policy.main_partition,
            ),
            recovered=recovered,
            checkpoint_overhead_cycles=ckpt_cycles,
            recovery_cycles=rec_cycles,
            latency_s=collect_latencies(self.nodes),
        )
