"""Pluggable runtime backends: the transport/lifecycle contract the
distributed executor needs, independent of *how* nodes actually run.

The paper's runtime targets real machines; our first reproduction hard-wired
everything to the discrete-event simulator.  This module is the seam that
makes the runtime layered:

* :class:`Transport` — message routing: ``post(src, dst, msg)`` with
  per-(src, dst) FIFO ordering, plus the cluster size.  The MPI service and
  MessageExchange talk to nodes and a transport only — never to a concrete
  cluster class.
* :class:`BackendNode` — one node's runtime identity: VM machine, services,
  clock (virtual or wall), message intake and per-node statistics.  All
  stats leave a node through :meth:`BackendNode.snapshot_stats`, the one
  code path shared by every backend (and by the sequential baseline via
  :func:`snapshot_machine`).
* :class:`RuntimeBackend` — node lifecycle + execution: takes a rewritten
  program, provisions one VM per node, drives every node's generator to
  completion and returns a :class:`BackendRun`.

Implementations register themselves under a name (``sim``, ``thread``,
``process``) via :func:`register_backend`; the executor, harness, sweep and
CLI select one through :func:`create_backend` — the only sanctioned route to
a concrete backend class.
"""

from __future__ import annotations

import math
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Dict, List, Optional, Set, Tuple, Type

from repro.api.registry import Registry
from repro.errors import RuntimeServiceError
from repro.runtime.checkpoint import NodeRecovery, RecoveryPlan
from repro.runtime.cluster import ClusterSpec, NodeSpec
from repro.runtime.faults import FaultInjector, FaultPlan, FaultRecord
from repro.runtime.message import Message


# ------------------------------------------------------------------- policy
@dataclass
class RunPolicy:
    """Everything a backend needs to know about *how* to run a rewritten
    program — one bag instead of a growing positional argument list.

    ``faults`` is the seeded :class:`~repro.runtime.faults.FaultPlan` to
    inject (None = fault-free).  ``replicas`` maps a dependent class name to
    the ordered tuple of node ids holding its copies (primary first); the
    message exchange routes creates/accesses of those classes through the
    quorum protocol.  ``recovery`` is the
    :class:`~repro.runtime.checkpoint.RecoveryPlan` controlling the
    checkpoint/heartbeat/takeover tier (None or disabled = PR-6 degrade-only
    semantics); ``nparts`` is how many partitions the plan actually uses —
    recovery-home placement prefers the idle nodes beyond it."""

    main_partition: int = 0
    async_writes: bool = False
    max_events: int = 200_000_000
    faults: Optional[FaultPlan] = None
    replicas: Optional[Dict[str, Tuple[int, ...]]] = None
    recovery: Optional["RecoveryPlan"] = None
    nparts: int = 0


# ---------------------------------------------------------------------- stats
def percentile(sorted_samples: List[float], q: float) -> float:
    """Nearest-rank percentile of an already *sorted* sample list (0 when
    empty).  Deterministic — no interpolation, so virtual-time latency
    summaries are byte-identical across VM engines and repeated runs."""
    if not sorted_samples:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_samples)))
    return sorted_samples[rank - 1]


def latency_summary(latencies_s: Optional[List[float]]) -> Dict[str, float]:
    """count + p50/p95/p99 (milliseconds) of a per-request latency sample
    set — the service-workload metrics NodeStats and Report carry."""
    samples = sorted(latencies_s or [])
    return {
        "latency_count": len(samples),
        "latency_p50_ms": percentile(samples, 0.50) * 1e3,
        "latency_p95_ms": percentile(samples, 0.95) * 1e3,
        "latency_p99_ms": percentile(samples, 0.99) * 1e3,
    }


@dataclass
class NodeStats:
    """Per-node counters every backend reports through the same schema."""

    name: str
    clock_s: float
    busy_s: float
    messages_sent: int
    bytes_sent: int
    requests_served: int
    heap_objects: int
    heap_bytes: int
    stdout: List[str] = field(default_factory=list)
    #: structured fault evidence (FaultRecord dicts) — empty on clean runs
    faults: List[dict] = field(default_factory=list)
    #: requests this node *issued* through its MessageExchange (clients of
    #: a service workload; servers count requests_served instead)
    requests_sent: int = 0
    #: per-request latency distribution observed at this node's exchange:
    #: count + nearest-rank percentiles in ms.  Virtual (deterministic)
    #: time on the simulator, wall time on real backends — like clock_s.
    latency_count: int = 0
    latency_p50_ms: float = 0.0
    latency_p95_ms: float = 0.0
    latency_p99_ms: float = 0.0


def aggregate_node_stats(stats: List[NodeStats]) -> Dict[str, float]:
    """Cluster-wide rollup of per-node counters — what the sweep table
    reports per configuration: totals plus the busy fraction of the
    makespan (a utilization measure across heterogeneous nodes)."""
    clock = max((s.clock_s for s in stats), default=0.0)
    busy = sum(s.busy_s for s in stats)
    return {
        "nodes": float(len(stats)),
        "busy_s": busy,
        "busy_frac": busy / (clock * len(stats)) if clock and stats else 0.0,
        "messages_sent": float(sum(s.messages_sent for s in stats)),
        "bytes_sent": float(sum(s.bytes_sent for s in stats)),
        "requests_served": float(sum(s.requests_served for s in stats)),
        "requests_sent": float(sum(s.requests_sent for s in stats)),
        "heap_objects": float(sum(s.heap_objects for s in stats)),
        "heap_bytes": float(sum(s.heap_bytes for s in stats)),
        #: cluster-wide service throughput: served requests per second of
        #: makespan (virtual on the simulator, wall on real backends)
        "throughput_rps": (
            sum(s.requests_served for s in stats) / clock if clock else 0.0
        ),
    }


def snapshot_machine(
    name: str,
    machine,
    *,
    clock_s: float = 0.0,
    busy_s: float = 0.0,
    messages_sent: int = 0,
    bytes_sent: int = 0,
    requests_served: int = 0,
    faults: Optional[List[dict]] = None,
    requests_sent: int = 0,
    latencies_s: Optional[List[float]] = None,
) -> NodeStats:
    """The single stats code path: turn a finished VM machine (plus the
    caller's transport counters) into a :class:`NodeStats` record.  Both
    the sequential baseline and every backend node report through here, so
    nothing else reaches into VM internals for heap sizes or stdout."""
    heap = machine.heap
    lat = latency_summary(latencies_s)
    return NodeStats(
        name=name,
        clock_s=clock_s,
        busy_s=busy_s,
        messages_sent=messages_sent,
        bytes_sent=bytes_sent,
        requests_served=requests_served,
        heap_objects=heap.allocated_objects,
        heap_bytes=heap.allocated_bytes,
        stdout=list(machine.stdout),
        faults=list(faults) if faults else [],
        requests_sent=requests_sent,
        latency_count=lat["latency_count"],
        latency_p50_ms=lat["latency_p50_ms"],
        latency_p95_ms=lat["latency_p95_ms"],
        latency_p99_ms=lat["latency_p99_ms"],
    )


# ------------------------------------------------------------------ transport
class Transport(ABC):
    """Message routing between nodes.  Implementations must preserve FIFO
    ordering per (src, dst) pair — the message-exchange protocol's
    async-write-then-sync-read consistency depends on it."""

    @property
    @abstractmethod
    def nnodes(self) -> int:
        """Number of addressable nodes (MPI COMM_WORLD size)."""

    @abstractmethod
    def post(self, src: int, dst: int, msg: Message) -> None:
        """Hand one message to the transport for delivery to ``dst``."""


# ----------------------------------------------------------------------- node
class BackendNode:
    """One node's runtime state, common to all backends.

    Concrete backends supply the message intake (``take_matching`` /
    ``iprobe``): the simulator gates on virtual arrival times, wall-clock
    backends on what has physically arrived.
    """

    def __init__(self, node_id: int, spec: NodeSpec) -> None:
        self.node_id = node_id
        self.spec = spec
        self.clock = 0.0                     # seconds, virtual or wall
        self.gen = None                      # the node's process generator
        self.done = False
        self.machine = None                  # repro.vm.interpreter.Machine
        self.exchange = None                 # services.MessageExchange
        self.mpi = None                      # mpi.MPIService
        # statistics
        self.msgs_sent = 0
        self.bytes_sent = 0
        self.msgs_received = 0
        #: total ``('cost', n)`` cycles charged to this node.  Kept as an
        #: integer so ``busy_s`` is one exact division — byte-identical
        #: whether the VM charged per instruction or per batched block.
        self.charged_cycles = 0
        # fault tolerance (see repro.runtime.faults)
        self.injector: Optional[FaultInjector] = None
        self.main_partition = 0
        self.dead_peers: Set[int] = set()
        self.faults: List[FaultRecord] = []
        #: (primary_node, primary_oid) -> local oid of this node's replica
        self.replica_dir: Dict[Tuple[int, int], int] = {}
        self._seen_frames: Set[Tuple[int, int, int]] = set()
        #: recovery tier engine (see repro.runtime.checkpoint); None when
        #: the run policy carries no enabled RecoveryPlan
        self.recovery: Optional[NodeRecovery] = None

    @property
    def busy_s(self) -> float:
        """CPU time actually charged, derived from the integer cycle total
        (identical for per-step and per-block charging)."""
        return self.charged_cycles / self.spec.cpu_hz

    def now(self) -> float:
        """The clock per-request latency is measured on: wall time on real
        backends; the simulator overrides this with the node's virtual
        clock, which makes its latency percentiles deterministic."""
        return time.perf_counter()

    def charge(self, cycles: int) -> None:
        """Account one ``('cost', n)`` event: node busy time plus the VM's
        cycle counter.  The driver calls this once per event — whole blocks
        on the fast path, single instructions on the reference path."""
        self.charged_cycles += cycles
        if self.machine is not None:
            self.machine.cycles += cycles

    def take_matching(
        self, match: Callable[[Message], bool]
    ) -> Optional[Message]:
        """Pop the earliest delivered message satisfying ``match`` (others
        stay queued); ``None`` when nothing eligible has arrived."""
        raise NotImplementedError

    def iprobe(self, match: Callable[[Message], bool]) -> bool:
        """Non-blocking arrival check."""
        raise NotImplementedError

    def accept_frame(self, msg: Message) -> bool:
        """Receiver-side dedup for injected duplication: uniquely-identified
        frames (``req_id > 0`` — requests and their replies) are accepted
        once; control frames (SHUTDOWN, fault notices, fire-and-forget
        posts) are idempotent and always pass."""
        if msg.req_id <= 0:
            return True
        key = (msg.src, msg.kind.value, msg.req_id)
        if key in self._seen_frames:
            return False
        self._seen_frames.add(key)
        return True

    def record_fault(self, exc, kind: Optional[str] = None) -> FaultRecord:
        """Convert a fault-family exception into this node's structured
        evidence."""
        rec = FaultRecord(
            node=self.node_id,
            kind=kind if kind is not None else getattr(exc, "kind", "fault"),
            detail=str(exc),
            at_cycle=self.charged_cycles,
            time_s=self.clock,
        )
        self.faults.append(rec)
        return rec

    def snapshot_stats(self) -> NodeStats:
        exchange = self.exchange
        return snapshot_machine(
            self.spec.name,
            self.machine,
            clock_s=self.clock,
            busy_s=self.busy_s,
            messages_sent=self.msgs_sent,
            bytes_sent=self.bytes_sent,
            requests_served=(
                exchange.requests_served if exchange is not None else 0
            ),
            faults=[f.to_dict() for f in self.faults],
            requests_sent=(
                exchange.requests_sent if exchange is not None else 0
            ),
            latencies_s=(
                exchange.latencies_s if exchange is not None else None
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<{type(self).__name__} {self.node_id} {self.spec.name} "
            f"t={self.clock:.6f}>"
        )


# ------------------------------------------------------------------- backend
@dataclass
class BackendRun:
    """What one distributed execution produced, backend-agnostic."""

    result: object
    makespan_s: float
    total_messages: int
    total_bytes: int
    node_stats: List[NodeStats]
    stdout: List[str] = field(default_factory=list)
    #: structured fault evidence across all nodes (empty on clean runs)
    faults: List[FaultRecord] = field(default_factory=list)
    #: True when the run survived one or more faults — results may be
    #: partial (e.g. the main program completed but a replica died)
    degraded: bool = False
    #: RECOVERED evidence: one record per crash the recovery tier masked
    #: (kind "recovered"); such crashes do NOT degrade the run
    recovered: List[FaultRecord] = field(default_factory=list)
    #: cycles spent producing checkpoints, summed over all nodes
    checkpoint_overhead_cycles: int = 0
    #: cycles spent restoring state and replaying lost work
    recovery_cycles: int = 0
    #: per-request latency samples merged across every node's exchange and
    #: sorted ascending (seconds; virtual on the simulator, wall elsewhere)
    latency_s: List[float] = field(default_factory=list)


def collect_latencies(nodes) -> List[float]:
    """Merge every in-process node's per-request latency samples into one
    sorted list (the cluster-wide distribution Report summarizes)."""
    samples: List[float] = []
    for node in nodes:
        exchange = getattr(node, "exchange", None)
        if exchange is not None:
            samples.extend(exchange.latencies_s)
    samples.sort()
    return samples


#: fault kinds that are evidence of a *masked* crash when the crashed node
#: appears in the recovered set — they must not degrade the run by
#: themselves.  "torn_checkpoint" never degrades: it only means recovery
#: fell back one epoch (or the run finished without needing the blob).
_MASKABLE_KINDS = frozenset({"crash", "worker_lost", "lease_expired"})
_BENIGN_KINDS = frozenset({"torn_checkpoint"})


def summarize_recovery(
    faults: List[FaultRecord],
    recovered: List[FaultRecord],
    recovering: bool = False,
    main_partition: int = -1,
) -> bool:
    """Recompute ``BackendRun.degraded`` in the presence of recovery: a run
    is degraded only by fault evidence the recovery tier did not mask.

    With an active recovery plan (``recovering``), a crash is harmful only
    through its *consequences* — a client that hit the dead node and could
    not be re-routed (``peer_lost``), an exhausted retry budget, an aborted
    takeover.  Every one of those leaves its own non-maskable record, so a
    crash/worker_lost/lease_expired record with no such evidence anywhere
    describes a death nobody was hurt by (an idle node, or a server whose
    objects were never needed again).  Those are masked *vacuously*: a
    synthetic RECOVERED record is appended for each (mutating ``recovered``
    in place) so reports and oracles still see one piece of recovery
    evidence per masked death."""
    masked_nodes = {r.node for r in recovered}
    degraded = False
    for rec in faults:
        if rec.kind in _BENIGN_KINDS:
            continue
        if rec.kind in _MASKABLE_KINDS and rec.node != main_partition:
            if rec.node in masked_nodes:
                continue
            if recovering:
                continue  # maskable alone never degrades; judged below
        # the main partition's own death is never maskable: its stack IS
        # the computation, and no checkpoint of remote objects restores it
        degraded = True
    if degraded or not recovering:
        return degraded
    for rec in faults:
        if (
            rec.kind in ("crash", "worker_lost")
            and rec.node != main_partition
            and rec.node not in masked_nodes
        ):
            masked_nodes.add(rec.node)
            recovered.append(
                FaultRecord(
                    node=rec.node,
                    kind="recovered",
                    detail=(
                        f"crash of node {rec.node} had no post-crash "
                        f"consequences; nothing to re-home"
                    ),
                    at_cycle=rec.at_cycle,
                    time_s=rec.time_s,
                )
            )
    return False


def finalize_recovery(nodes, stats: List[NodeStats]):
    """Fold the recovery tier's evidence out of the in-process nodes after a
    run: collects every RECOVERED record and the overhead counters, and
    replaces a recovered node's reported stdout with the reconstructed
    stream its takeover node adopted (checkpointed prefix + re-executed
    suffix) — that is what makes a fully-masked run's aggregate stdout
    byte-identical to the fault-free one.  Returns ``(recovered_records,
    checkpoint_overhead_cycles, recovery_cycles)``."""
    recovered: List[FaultRecord] = []
    overhead = 0
    spent = 0
    for node in nodes:
        r = getattr(node, "recovery", None)
        if r is None:
            continue
        overhead += r.checkpoint_overhead_cycles
        spent += r.recovery_cycles
        recovered.extend(r.recovered_records)
        for dead, lines in r.adopted.items():
            if dead in r.recovered and 0 <= dead < len(stats):
                stats[dead].stdout = list(lines)
    return recovered, overhead, spent


class RuntimeBackend(ABC):
    """Node lifecycle + execution driver for one cluster specification."""

    #: registry key; subclasses set it and decorate with register_backend
    name: ClassVar[str] = "?"

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec

    @property
    def nnodes(self) -> int:
        return self.spec.size

    @abstractmethod
    def execute(self, program, loaded, policy: RunPolicy) -> BackendRun:
        """Run ``program`` (already communication-rewritten) under
        ``policy``: ``main`` starts on ``policy.main_partition`` with
        service loops everywhere else; drive all nodes to completion and
        report the run.  ``loaded`` is the in-process loaded image
        (out-of-process backends reload from ``program`` instead).
        ``policy.max_events`` bounds scheduler/driver events (globally for
        the simulator, per node for wall-clock backends)."""


# --------------------------------------------------------------- provisioning
def provision_node(node: BackendNode, transport: Transport, loaded,
                   policy: RunPolicy):
    """Wire one node: fresh VM machine (own heap, own statics — per-JVM
    semantics), MPI service, MessageExchange and the DependentObject
    syscall; install the node's process generator and (when the policy
    carries a fault plan) the node's :class:`FaultInjector`.  Returns the
    :class:`~repro.runtime.services.ExecutionStarter` for the main node,
    ``None`` otherwise."""
    from repro.runtime.mpi import MPIService
    from repro.runtime.services import (
        ExecutionStarter,
        MessageExchange,
        make_node_syscall,
    )
    from repro.vm.heap import Heap
    from repro.vm.interpreter import Machine

    machine = Machine(loaded, heap=Heap(), node_id=node.node_id)
    machine.statics = loaded.fresh_statics()
    node.machine = machine
    node.main_partition = policy.main_partition
    if policy.faults is not None:
        node.injector = FaultInjector(policy.faults, node.node_id)
    node.mpi = MPIService(node, transport)
    node.exchange = MessageExchange(node)
    if (
        policy.recovery is not None
        and policy.recovery.enabled
        and transport.nnodes > 1
    ):
        node.recovery = NodeRecovery(
            node, policy.recovery, policy.nparts or transport.nnodes
        )
    machine.syscall = make_node_syscall(
        node,
        async_writes=policy.async_writes,
        replicas=policy.replicas,
    )
    if node.node_id == policy.main_partition:
        starter = ExecutionStarter(node, loaded.main_method())
        node.gen = starter.run()
        return starter
    node.gen = node.exchange.serve_forever()
    return None


def provision(backend, loaded, policy: RunPolicy):
    """Provision every node of an in-process backend (one that is also its
    own :class:`Transport`); returns the main node's starter."""
    starter = None
    for node in backend.nodes:
        s = provision_node(node, backend, loaded, policy)
        if s is not None:
            starter = s
    if starter is None:
        raise RuntimeServiceError(
            f"main partition {policy.main_partition} has no node"
        )
    return starter


# ------------------------------------------------------------------- registry
def _load_builtins() -> None:
    # the implementations self-register on import
    import repro.runtime.proc  # noqa: F401
    import repro.runtime.simnet  # noqa: F401
    import repro.runtime.tcp  # noqa: F401
    import repro.runtime.threads  # noqa: F401


#: the unified plugin registry runtime backends are selected through; the
#: builtin implementations are imported (and so self-registered) lazily on
#: the first lookup
BACKENDS: Registry = Registry("runtime backend")
BACKENDS.set_loader(_load_builtins)


def register_backend(cls: Type[RuntimeBackend]) -> Type[RuntimeBackend]:
    """Class decorator: make ``cls`` selectable by its ``name``."""
    if cls.name == "?":
        raise RuntimeServiceError(f"{cls.__name__} has no backend name")
    BACKENDS.register(cls.name, cls, override=True)
    return cls


def backend_names() -> List[str]:
    return BACKENDS.names()


def create_backend(name: str, spec: ClusterSpec) -> RuntimeBackend:
    """Instantiate a registered backend for ``spec`` — the one sanctioned
    route from a backend name to a concrete cluster implementation."""
    return BACKENDS.get(name)(spec)
