"""Real-socket TCP backend: one OS process per node, frames over TCP.

The cluster becomes a set of genuinely independent network peers: the
parent pre-binds one listening socket per node (roster-pinned ``host:port``
endpoints, or localhost ephemeral ports), forks the workers, and each
worker runs an asyncio socket hub on a daemon thread while its main thread
drives the node generator exactly like the process backend.

Wire protocol — the same 24-byte crc32 :class:`Message` frames every other
backend accounts for, over a byte *stream*:

* connection topology: node ``j`` dials every peer ``i < j`` (one duplex
  connection per unordered pair).  Because the parent bound and listened
  before forking, a dial always completes at the TCP level even if the
  acceptor's server is not up yet — the kernel backlog holds it.
* a 4-byte little-endian hello carrying the dialer's node id opens each
  connection, so the acceptor knows which peer the stream belongs to.
* frames are length-prefixed by their own header (``plen``); readers
  reassemble with :meth:`Message.decode_stream`, which handles torn reads
  and back-to-back frames and raises :class:`FrameError` on garbage.
* sends are batched per peer: the transport appends serialized frames to a
  per-destination outbox and wakes one flusher, which hands the whole
  batch to ``writer.writelines`` — zero copies, one syscall — so replies
  and acks queued during a scheduling quantum coalesce onto the wire.

TCP guarantees per-connection FIFO, which is exactly the per-(src, dst)
ordering guarantee the message exchange protocol needs.  Fault injection
(dedup at intake, crash plans) and recovery (heartbeats, checkpoints) ride
the same transport unchanged: they are just frames.
"""

from __future__ import annotations

import asyncio
import socket
import struct
import threading
import time
from typing import Callable, Dict, List, Optional

from repro.errors import RuntimeServiceError
from repro.runtime.backend import (
    BackendNode,
    BackendRun,
    RunPolicy,
    RuntimeBackend,
    Transport,
    register_backend,
)
from repro.runtime.cluster import ClusterSpec, NodeSpec
from repro.runtime.faults import PeerLost
from repro.runtime.message import FrameError, Message, MessageKind
from repro.runtime.proc import _mp_context
from repro.runtime.worker import (
    assemble_run,
    collect_reports,
    reap_workers,
    worker_report,
)

#: the connection-opening hello: the dialer's node id
_HELLO = struct.Struct("<i")

#: read chunk size for the stream reassembler
_READ_CHUNK = 1 << 16


class TcpNode(BackendNode):
    """Worker-side node: a locked FIFO inbox fed by the socket hub (and by
    the parent's control pipe), same discipline as the thread backend."""

    def __init__(self, node_id: int, spec: NodeSpec, cluster_size: int) -> None:
        super().__init__(node_id, spec)
        self._cond = threading.Condition()
        self._queue: List[Message] = []
        self._version = 0
        self._seen = 0
        self._cluster_size = cluster_size
        #: peers whose connection is gone (EOF / reset / garbage stream)
        self.gone_peers: set = set()

    def deliver(self, msg: Message) -> None:
        with self._cond:
            self._queue.append(msg)
            self._version += 1
            self._cond.notify_all()

    def peer_gone(self, peer: int) -> None:
        """The hub lost ``peer``'s connection: wake any waiter so it can
        re-evaluate instead of riding out its timeout."""
        with self._cond:
            self.gone_peers.add(peer)
            self._version += 1
            self._cond.notify_all()

    def take_matching(
        self, match: Callable[[Message], bool]
    ) -> Optional[Message]:
        with self._cond:
            for i, m in enumerate(self._queue):
                if match(m):
                    self.msgs_received += 1
                    return self._queue.pop(i)
            self._seen = self._version
            return None

    def iprobe(self, match: Callable[[Message], bool]) -> bool:
        with self._cond:
            return any(match(m) for m in self._queue)

    def wait_for_message(self, timeout_s: float) -> None:
        # short-circuit: when every peer's connection is gone or the peer
        # is already known dead, no application frame can ever arrive
        if self._cluster_size > 1 and all(
            p in self.dead_peers or p in self.gone_peers
            for p in range(self._cluster_size)
            if p != self.node_id
        ):
            raise PeerLost(
                f"node {self.node_id} is waiting for messages but every "
                f"peer is already dead"
            )
        with self._cond:
            deadline = time.monotonic() + timeout_s
            while self._version == self._seen:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RuntimeServiceError(
                        f"tcp backend: node {self.node_id} blocked "
                        f"{timeout_s:.0f}s with no incoming messages "
                        "(distributed deadlock?)"
                    )
                self._cond.wait(remaining)


class _SocketHub:
    """A worker's network engine: an asyncio loop on a daemon thread that
    owns every peer connection — accepting, dialing, stream reassembly,
    and batched writes.  The node's main thread talks to it only through
    thread-safe entry points (:meth:`send`, :meth:`broadcast`)."""

    def __init__(self, node: TcpNode, listen_sock: socket.socket,
                 endpoints: List[tuple]) -> None:
        self.node = node
        self.node_id = node.node_id
        self._listen_sock = listen_sock
        self._endpoints = endpoints
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name=f"repro-tcp-hub-{self.node_id}",
            daemon=True,
        )
        # peer id -> StreamWriter, filled by dials (peers below us) and
        # accepts (peers above us); a waiter exists per peer so sends
        # queued before the connection is up flush as soon as it is
        self._writers: Dict[int, asyncio.StreamWriter] = {}
        self._connected: Dict[int, asyncio.Event] = {}
        self._outbox: Dict[int, List[bytes]] = {}
        self._flushing: Dict[int, bool] = {}
        self._server: Optional[asyncio.base_events.Server] = None

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        n = len(self._endpoints)
        for peer in range(n):
            if peer == self.node_id:
                continue
            self._connected[peer] = asyncio.Event()
            self._outbox[peer] = []
            self._flushing[peer] = False
        self._thread.start()
        fut = asyncio.run_coroutine_threadsafe(self._startup(), self._loop)
        fut.result(timeout=30.0)

    async def _startup(self) -> None:
        self._server = await asyncio.start_server(
            self._accepted, sock=self._listen_sock
        )
        for peer in range(self.node_id):
            asyncio.ensure_future(self._dial(peer))

    def stop(self) -> None:
        def _deliverable_pending() -> bool:
            # frames queued for a connected, live peer are still on their
            # way to the wire; frames for a never-connected or gone peer
            # can never be delivered and must not hold shutdown up
            return any(
                (self._outbox[dst] or self._flushing[dst])
                and self._connected[dst].is_set()
                and dst not in self.node.gone_peers
                for dst in self._outbox
            )

        async def _shutdown() -> None:
            # the final SHUTDOWN/fault-notice broadcast was enqueued via
            # call_soon_threadsafe just before stop(); give its flushers
            # loop time to hand every frame to the kernel, otherwise peers
            # see a bare EOF and degrade a clean run to PeerLost
            deadline = self._loop.time() + 5.0
            while _deliverable_pending() and self._loop.time() < deadline:
                await asyncio.sleep(0.005)
            if self._server is not None:
                self._server.close()
            for w in self._writers.values():
                try:
                    w.close()
                except Exception:
                    pass
            self._loop.stop()

        try:
            asyncio.run_coroutine_threadsafe(_shutdown(), self._loop)
            self._thread.join(timeout=10.0)
        except RuntimeError:  # pragma: no cover - loop already gone
            pass

    # ----------------------------------------------------------- connections
    async def _dial(self, peer: int) -> None:
        host, port = self._endpoints[peer]
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError:
            self.node.peer_gone(peer)
            return
        writer.write(_HELLO.pack(self.node_id))
        await writer.drain()
        self._attach(peer, reader, writer)

    async def _accepted(self, reader: asyncio.StreamReader,
                        writer: asyncio.StreamWriter) -> None:
        try:
            hello = await reader.readexactly(_HELLO.size)
        except (asyncio.IncompleteReadError, OSError):
            writer.close()
            return
        (peer,) = _HELLO.unpack(hello)
        if not 0 <= peer < len(self._endpoints) or peer == self.node_id:
            writer.close()
            return
        self._attach(peer, reader, writer)

    def _attach(self, peer: int, reader: asyncio.StreamReader,
                writer: asyncio.StreamWriter) -> None:
        self._writers[peer] = writer
        self._connected[peer].set()
        asyncio.ensure_future(self._read_loop(peer, reader))

    async def _read_loop(self, peer: int,
                         reader: asyncio.StreamReader) -> None:
        """Reassemble frames from the byte stream and deliver them.  A torn
        frame just waits for more bytes; a stream that can never frame
        again (garbage prefix, checksum mismatch) drops the connection."""
        buf = bytearray()
        node = self.node
        while True:
            try:
                chunk = await reader.read(_READ_CHUNK)
            except (OSError, asyncio.CancelledError):
                break
            if not chunk:
                break  # peer closed: everything it sent is already framed
            buf.extend(chunk)
            offset = 0
            try:
                while True:
                    decoded = Message.decode_stream(buf, offset)
                    if decoded is None:
                        break
                    msg, consumed = decoded
                    offset += consumed
                    # injected duplicates are dropped at intake so the
                    # request/reply protocol sees each frame once
                    if node.injector is not None and not node.accept_frame(msg):
                        continue
                    node.deliver(msg)
            except FrameError:
                break  # unrecoverable stream: treat the peer as gone
            if offset:
                del buf[:offset]
        self._writers.pop(peer, None)
        node.peer_gone(peer)

    # ----------------------------------------------------------------- sends
    def send(self, dst: int, frame: bytes) -> None:
        """Thread-safe: queue one serialized frame for ``dst`` and make
        sure a flusher is scheduled.  Raises :class:`PeerLost` when the
        connection is already known gone."""
        if dst in self.node.gone_peers:
            raise PeerLost(
                f"node {dst} unreachable from node {self.node_id} "
                f"(connection closed)"
            )
        self._loop.call_soon_threadsafe(self._enqueue, dst, frame)

    def broadcast(self, req_id: int) -> None:
        """Best-effort SHUTDOWN (plain or fault-notice) to every peer."""
        for dst in self._connected:
            if dst in self.node.gone_peers:
                continue
            frame = Message(
                MessageKind.SHUTDOWN, self.node_id, dst, req_id
            ).serialize()
            try:
                self._loop.call_soon_threadsafe(self._enqueue, dst, frame)
            except RuntimeError:  # pragma: no cover - loop already gone
                pass

    def _enqueue(self, dst: int, frame: bytes) -> None:
        self._outbox[dst].append(frame)
        if not self._flushing[dst]:
            self._flushing[dst] = True
            asyncio.ensure_future(self._flush(dst))

    async def _flush(self, dst: int) -> None:
        """Single flusher per destination (FIFO): hand every queued frame
        to ``writelines`` in one batch, drain, repeat while more arrived
        during the drain — sends coalesce instead of one syscall each."""
        try:
            await self._connected[dst].wait()
            while self._outbox[dst]:
                writer = self._writers.get(dst)
                if writer is None:
                    self.node.peer_gone(dst)
                    self._outbox[dst].clear()
                    return
                batch, self._outbox[dst] = self._outbox[dst], []
                try:
                    writer.writelines(batch)
                    await writer.drain()
                except (OSError, ConnectionError):
                    self._writers.pop(dst, None)
                    self.node.peer_gone(dst)
                    self._outbox[dst].clear()
                    return
        finally:
            self._flushing[dst] = False
            # lost wakeup guard: frames enqueued between the loop check and
            # the flag reset get a fresh flusher
            if self._outbox[dst] and not self._flushing[dst]:
                self._flushing[dst] = True
                asyncio.ensure_future(self._flush(dst))


class _TcpTransport(Transport):
    """Worker-side message routing: serialize and hand to the hub."""

    def __init__(self, nnodes: int, node: TcpNode, hub: _SocketHub) -> None:
        self._nnodes = nnodes
        self._node = node
        self._hub = hub

    @property
    def nnodes(self) -> int:
        return self._nnodes

    def post(self, src: int, dst: int, msg: Message) -> None:
        if not 0 <= dst < self._nnodes or dst == self._node.node_id:
            raise RuntimeServiceError(f"message to unknown node {dst}")
        self._hub.send(dst, msg.serialize())
        self._node.msgs_sent += 1
        self._node.bytes_sent += msg.size


def _ctrl_loop(node: TcpNode, ctrl_conn) -> None:
    """Forward the parent's control-pipe frames (fault notices about lost
    workers) into the node inbox."""
    while True:
        try:
            frame = ctrl_conn.recv_bytes()
        except (EOFError, OSError):
            return
        try:
            node.deliver(Message.deserialize(frame))
        except FrameError:  # pragma: no cover - parent sends valid frames
            continue


def _worker_main(
    node_id: int,
    node_spec: NodeSpec,
    nnodes: int,
    program,
    policy: RunPolicy,
    listen_socks: List[socket.socket],
    endpoints: List[tuple],
    ctrl_conn,
    results,
) -> None:
    """One cluster node, start to finish, inside its own process."""
    # fork hands every worker all the listening sockets; keep only ours
    for i, s in enumerate(listen_socks):
        if i != node_id:
            try:
                s.close()
            except OSError:  # pragma: no cover
                pass

    node = TcpNode(node_id, node_spec, nnodes)
    hub = _SocketHub(node, listen_socks[node_id], endpoints)
    hub.start()
    threading.Thread(
        target=_ctrl_loop, args=(node, ctrl_conn),
        name=f"repro-tcp-ctrl-{node_id}", daemon=True,
    ).start()
    transport = _TcpTransport(nnodes, node, hub)
    try:
        results.put(
            worker_report(node, transport, program, policy, hub.broadcast)
        )
    finally:
        hub.stop()


@register_backend
class TcpBackend(RuntimeBackend):
    """One worker process per node over real TCP sockets — the cluster as
    network peers.  With a roster of ``host:port`` endpoints the same
    protocol spans machines; without one it runs on localhost ephemeral
    ports."""

    name = "tcp"

    def post(self, src: int, dst: int, msg: Message) -> None:
        raise RuntimeServiceError(
            "tcp backend routes messages inside its workers"
        )

    def _bind_all(self) -> List[socket.socket]:
        """Pre-bind every node's listening socket in the parent, before the
        fork: dials never race the acceptor (the kernel backlog holds
        them), and a taken port fails the run up front with a structured
        error instead of a worker crash."""
        endpoints = self.spec.endpoints()
        socks: List[socket.socket] = []
        for i, (host, port) in enumerate(endpoints):
            s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            try:
                s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                s.bind((host, port))
                s.listen(max(self.nnodes, 8))
            except OSError as exc:
                s.close()
                for prior in socks:
                    prior.close()
                raise RuntimeServiceError(
                    f"tcp backend: cannot bind node {i} to "
                    f"{host}:{port}: {exc}"
                ) from exc
            socks.append(s)
        return socks

    def execute(self, program, loaded, policy: RunPolicy) -> BackendRun:
        ctx = _mp_context()
        n = self.nnodes
        listen_socks = self._bind_all()
        # resolved endpoints (port 0 became a real port at bind time)
        endpoints = [s.getsockname()[:2] for s in listen_socks]
        # one parent->worker control pipe each: when a worker vanishes
        # without reporting, the parent injects fault-notice frames here so
        # survivors fail fast instead of riding out the full wait timeout
        ctrl_readers: Dict[int, object] = {}
        ctrl_writers: Dict[int, object] = {}
        for i in range(n):
            r, w = ctx.Pipe(duplex=False)
            ctrl_readers[i] = r
            ctrl_writers[i] = w
        results = ctx.Queue()
        procs = [
            ctx.Process(
                target=_worker_main,
                args=(
                    i, self.spec.nodes[i], n, program, policy,
                    listen_socks, endpoints, ctrl_readers[i], results,
                ),
                name=f"repro-tcp-node-{i}",
                daemon=True,
            )
            for i in range(n)
        ]
        names = [ns.name for ns in self.spec.nodes]
        try:
            for p in procs:
                p.start()
            # the workers own the sockets and the ctrl read ends now
            for s in listen_socks:
                s.close()
            for r in ctrl_readers.values():
                r.close()
            reports = collect_reports(procs, results, names, ctrl_writers)
        finally:
            reap_workers(procs, ctrl_writers)
        return assemble_run(reports, policy)
