"""Cluster descriptions: node resources and link characteristics.

The paper's testbed (§7): "a service node, 1.7GHz Pentium III machine (512MB
RAM), and another computation node, a 800MHz Pentium III (384MB RAM) ...
connected via 100M Ethernet".  :func:`paper_testbed` reproduces exactly that
configuration for the Figure 11 experiment; other topologies (more nodes,
heterogeneous speeds, resource-constrained devices) are first-class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import RuntimeServiceError

MB = 1 << 20


@dataclass(frozen=True)
class NodeSpec:
    """One machine in the networked system."""

    name: str
    cpu_hz: float                 # abstract cycles per second
    mem_bytes: int = 512 * MB
    battery_j: float = float("inf")  # resource-constrained devices are finite


@dataclass(frozen=True)
class LinkSpec:
    """Uniform interconnect: one-way latency plus serialization bandwidth."""

    latency_s: float
    bandwidth_Bps: float


def ethernet_100m() -> LinkSpec:
    """100 Mb/s switched Ethernet: ~120 µs one-way small-message latency
    (typical for 2005-era stacks), 12.5 MB/s payload bandwidth."""
    return LinkSpec(latency_s=120e-6, bandwidth_Bps=12.5e6)


def ethernet_1g() -> LinkSpec:
    return LinkSpec(latency_s=40e-6, bandwidth_Bps=125e6)


def wireless_80211b() -> LinkSpec:
    """For the pervasive/mobile-device scenarios the paper motivates."""
    return LinkSpec(latency_s=2e-3, bandwidth_Bps=700e3)


def _network_registry():
    from repro.api.registry import Registry

    reg: "Registry" = Registry("network preset")
    reg.register("ethernet_100m", ethernet_100m)
    reg.register("ethernet_1g", ethernet_1g)
    reg.register("wireless_80211b", wireless_80211b)
    return reg


#: name -> LinkSpec factory; the registry every config/sweep network lookup
#: goes through
NETWORKS = _network_registry()


@dataclass
class ClusterSpec:
    """A set of nodes and the (uniform) link between them."""

    nodes: List[NodeSpec] = field(default_factory=list)
    link: LinkSpec = field(default_factory=ethernet_100m)
    #: optional ``host:port`` endpoint per node for socket transports (the
    #: tcp backend).  ``None`` means localhost with ephemeral ports; a
    #: ``:0`` port also asks the OS to pick one.
    roster: Optional[List[str]] = None

    def __post_init__(self) -> None:
        if not self.nodes:
            raise RuntimeServiceError("cluster needs at least one node")
        if self.roster is not None:
            if len(self.roster) != len(self.nodes):
                raise RuntimeServiceError(
                    f"roster names {len(self.roster)} endpoints for "
                    f"{len(self.nodes)} nodes"
                )
            for entry in self.roster:
                host, sep, port = str(entry).rpartition(":")
                if not sep or not host or not port.isdigit():
                    raise RuntimeServiceError(
                        f"roster entry {entry!r} is not host:port"
                    )

    def endpoints(self) -> List[tuple]:
        """Resolved ``(host, port)`` per node; port 0 = OS-assigned."""
        if self.roster is None:
            return [("127.0.0.1", 0) for _ in self.nodes]
        out = []
        for entry in self.roster:
            host, _, port = str(entry).rpartition(":")
            out.append((host, int(port)))
        return out

    @property
    def size(self) -> int:
        return len(self.nodes)


def paper_testbed() -> ClusterSpec:
    """The exact two-node configuration of the paper's §7."""
    return ClusterSpec(
        nodes=[
            NodeSpec("service-p3-1700", 1.7e9, mem_bytes=512 * MB),
            NodeSpec("compute-p3-800", 800e6, mem_bytes=384 * MB),
        ],
        link=ethernet_100m(),
    )


def homogeneous(n: int, cpu_hz: float = 1e9, link: LinkSpec | None = None) -> ClusterSpec:
    return ClusterSpec(
        nodes=[NodeSpec(f"node{i}", cpu_hz) for i in range(n)],
        link=link or ethernet_100m(),
    )
