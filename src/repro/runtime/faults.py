"""Seeded fault injection: the typed failure axis of the runtime.

The paper's runtime targets pervasive clusters whose nodes can disappear
mid-run, yet every backend used to assume all peers survive.  This module
makes failure a first-class, *reproducible* input:

* :class:`FaultPlan` — a frozen, hashable description of what goes wrong:
  node crashes at a given cycle count, independent per-message drop /
  duplication / delay, and permanently partitioned links.  It round-trips
  through dicts/JSON like every other typed config, so it can ride inside
  :class:`~repro.api.config.ClusterConfig` and key the stage cache.
* :class:`FaultInjector` — the per-node decision engine.  Every decision is
  a pure function of ``(plan.seed, src, dst, per-pair send counter)``, so
  the deterministic simulator replays the exact same fault schedule run
  after run, and the wall-clock backends inject the same *decisions* even
  though their timing varies.
* :class:`FaultRecord` — the structured evidence a degraded run reports
  instead of hanging or raising: one record per observed fault, attached to
  ``NodeStats`` / ``BackendRun`` / ``Report``.
* the fault exception family (:class:`NodeCrashed`, :class:`PeerLost`,
  :class:`RetriesExhausted`, :class:`QuorumLost`) — what the runtime raises
  internally; backends convert these into records, never into hangs.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigError, RuntimeServiceError

__all__ = [
    "FaultPlan",
    "FaultRecord",
    "FaultInjector",
    "SendVerdict",
    "FaultError",
    "NodeCrashed",
    "PeerLost",
    "RetriesExhausted",
    "QuorumLost",
    "RecoveryAborted",
]


# ---------------------------------------------------------------------------
# the fault exception family
# ---------------------------------------------------------------------------
class FaultError(RuntimeServiceError):
    """Base of the injected-fault family.  Backends catch this (and only
    this) to degrade gracefully: the node is marked dead, a structured
    :class:`FaultRecord` is emitted, peers are notified — the run still
    returns.  Everything else keeps today's raise behavior."""

    #: short machine-readable tag recorded in :class:`FaultRecord.kind`
    kind = "fault"


class NodeCrashed(FaultError):
    """An injected node crash (``FaultPlan.crashes``) fired."""

    kind = "crash"


class PeerLost(FaultError):
    """A request was addressed to (or awaited from) a node known to be
    dead."""

    kind = "peer_lost"


class RetriesExhausted(FaultError):
    """A send was dropped more times than ``FaultPlan.max_retries``
    allows (or the link is partitioned)."""

    kind = "retries_exhausted"


class QuorumLost(FaultError):
    """A replicated-object operation could not reach its read/write
    quorum, or the read quorum disagreed."""

    kind = "quorum_lost"


class RecoveryAborted(FaultError):
    """Recovery of a crashed node could not be completed soundly (e.g. a
    replayed operation needed outbound traffic, or replay logs arrived
    from more than one client) — the run degrades instead of masking."""

    kind = "recovery_aborted"


# ---------------------------------------------------------------------------
# the typed plan
# ---------------------------------------------------------------------------
def _pair_tuple(value) -> Tuple[Tuple[int, int], ...]:
    return tuple(tuple(int(x) for x in pair) for pair in value)


@dataclass(frozen=True)
class FaultPlan:
    """What goes wrong, described up front and seeded.

    ``crashes`` lists ``(node, at_cycle)`` pairs: the node dies the first
    time its charged cycle total reaches ``at_cycle``.  ``drop_pct`` /
    ``dup_pct`` are independent per-message probabilities; ``delay_s``
    bounds a uniform extra sender-side stall per message.  ``partitions``
    lists ``(src, dst)`` links that never deliver.  Transient loss is
    masked by bounded retry: up to ``max_retries`` resends with exponential
    backoff starting at ``backoff_cycles``.
    """

    crashes: Tuple[Tuple[int, int], ...] = ()
    drop_pct: float = 0.0
    dup_pct: float = 0.0
    delay_s: float = 0.0
    partitions: Tuple[Tuple[int, int], ...] = ()
    seed: int = 0
    max_retries: int = 8
    backoff_cycles: int = 2_000

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", _pair_tuple(self.crashes))
        object.__setattr__(self, "partitions", _pair_tuple(self.partitions))
        for name in ("drop_pct", "dup_pct"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ConfigError(f"FaultPlan.{name} must be in [0, 1], got {v}")
        if self.delay_s < 0.0:
            raise ConfigError(f"FaultPlan.delay_s must be >= 0, got {self.delay_s}")
        if self.max_retries < 0:
            raise ConfigError(
                f"FaultPlan.max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_cycles < 1:
            raise ConfigError(
                f"FaultPlan.backoff_cycles must be >= 1, got {self.backoff_cycles}"
            )
        for node, cycle in self.crashes:
            if node < 0 or cycle < 0:
                raise ConfigError(f"bad crash entry ({node}, {cycle})")
        seen_nodes = set()
        for node, _cycle in self.crashes:
            if node in seen_nodes:
                raise ValueError(
                    f"FaultPlan.crashes lists node {node} more than once; "
                    "a node dies at most once — merge the entries"
                )
            seen_nodes.add(node)

    @property
    def transient_only(self) -> bool:
        """True when every configured fault is maskable by retry (no
        crashes, no partitioned links) — such a plan must not change what
        the program computes, only what it costs."""
        return not self.crashes and not self.partitions

    def crash_cycle(self, node_id: int) -> Optional[int]:
        """The cycle count at which ``node_id`` dies, or None."""
        hits = [c for n, c in self.crashes if n == node_id]
        return min(hits) if hits else None

    # ----------------------------------------------------------- round trip
    def to_dict(self) -> Dict[str, Any]:
        d = asdict(self)
        d["crashes"] = [list(c) for c in self.crashes]
        d["partitions"] = [list(p) for p in self.partitions]
        return d

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ConfigError(
                f"FaultPlan.from_dict needs a dict, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown FaultPlan field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        return cls(**data)


# ---------------------------------------------------------------------------
# structured fault evidence
# ---------------------------------------------------------------------------
@dataclass
class FaultRecord:
    """One observed fault — the structured report a degraded run carries
    instead of a hang or a bare traceback."""

    node: int
    kind: str           # FaultError.kind, or "worker_lost" for vanished procs
    detail: str
    at_cycle: int = 0
    time_s: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultRecord":
        return cls(**data)


# ---------------------------------------------------------------------------
# the decision engine
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SendVerdict:
    """What the injector decided for one send attempt."""

    deliver: bool
    copies: int = 1
    delay_s: float = 0.0


class FaultInjector:
    """Per-node fault decisions, deterministic per (seed, src, dst, attempt).

    One injector per node: the per-destination attempt counters are only
    ever touched by that node's own driver (thread/process safe without
    locks), and the decision stream for a (src, dst) pair is identical
    across backends and across fast/reference VM engines."""

    def __init__(self, plan: FaultPlan, node_id: int) -> None:
        self.plan = plan
        self.node_id = node_id
        self._attempts: Dict[int, int] = {}
        self._partitioned = frozenset(plan.partitions)
        self._crash_cycle = plan.crash_cycle(node_id)
        self._crashed = False

    # -------------------------------------------------------------- crashes
    def crash_due(self, charged_cycles: int) -> bool:
        """True exactly once: the first time this node's cycle total
        reaches its planned crash point."""
        if self._crashed or self._crash_cycle is None:
            return False
        if charged_cycles >= self._crash_cycle:
            self._crashed = True
            return True
        return False

    # ---------------------------------------------------------------- sends
    def on_send(self, dst: int, req_id: int) -> SendVerdict:
        """Decide one send attempt from this node to ``dst``.  Duplication
        only applies to uniquely-identified frames (``req_id > 0``), which
        receivers can dedup; fire-and-forget posts and control frames are
        never duplicated."""
        attempt = self._attempts.get(dst, 0)
        self._attempts[dst] = attempt + 1
        plan = self.plan
        if (self.node_id, dst) in self._partitioned:
            return SendVerdict(deliver=False)
        if plan.drop_pct == 0.0 and plan.dup_pct == 0.0 and plan.delay_s == 0.0:
            return SendVerdict(deliver=True)
        rng = random.Random(
            (plan.seed * 1_000_003) ^ (self.node_id * 8_191) ^ (dst * 131)
            ^ attempt
        )
        if plan.drop_pct and rng.random() < plan.drop_pct:
            return SendVerdict(deliver=False)
        copies = 1
        if plan.dup_pct and req_id > 0 and rng.random() < plan.dup_pct:
            copies = 2
        delay = rng.uniform(0.0, plan.delay_s) if plan.delay_s else 0.0
        return SendVerdict(deliver=True, copies=copies, delay_s=delay)

    def backoff(self, attempt: int) -> int:
        """Cycles to stall before resend ``attempt`` (1-based), capped
        exponential."""
        return self.plan.backoff_cycles << min(attempt - 1, 10)
