"""Distributed runtime: pluggable backends, MPI service, message exchange.

Mirrors Section 5 of the paper.  Each node runs three services —
``MPIService``, ``ExecutionStarter`` and ``MessageExchange`` — on top of a
pluggable transport/backend layer (:mod:`repro.runtime.backend`): the
discrete-event simulator (:mod:`repro.runtime.simnet`), one thread per node
(:mod:`repro.runtime.threads`), or one OS process per node over
multiprocessing pipes (:mod:`repro.runtime.proc`).  Messages use the
streamed format of :mod:`repro.runtime.serial` and the ``NEW`` /
``DEPENDENCE`` kinds of :mod:`repro.runtime.message`.

Submodules are imported lazily to keep ``repro.vm`` usable standalone.
"""

_EXPORTS = {
    "RuntimeBackend": "repro.runtime.backend",
    "Transport": "repro.runtime.backend",
    "backend_names": "repro.runtime.backend",
    "create_backend": "repro.runtime.backend",
    "ClusterSpec": "repro.runtime.cluster",
    "NodeSpec": "repro.runtime.cluster",
    "ethernet_100m": "repro.runtime.cluster",
    "DistributedExecutor": "repro.runtime.executor",
    "DistributedResult": "repro.runtime.executor",
    "run_distributed": "repro.runtime.executor",
    "Message": "repro.runtime.message",
    "MessageKind": "repro.runtime.message",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    target = _EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)
