"""Multiprocessing backend: one OS process per plan node.

The first wall-clock (non-simulated) distributed execution path: the parent
builds a full mesh of one-way :func:`multiprocessing.Pipe` links (one per
ordered (src, dst) pair, so per-pair FIFO is the kernel's pipe ordering),
forks one worker per cluster node, and collects a final report per node
over a result queue.  Each worker reloads the rewritten program into its
own interpreter (a real separate heap — per-JVM semantics by construction),
wires the standard services, and drives its node generator exactly like the
other backends: ``cost`` events charge accounting, ``wait`` events block in
:func:`multiprocessing.connection.wait` until a peer's frame arrives.

Messages travel as :meth:`~repro.runtime.message.Message.serialize` frames,
so the bytes a pipe moves equal the bytes the simulated network charges for
the same message.
"""

from __future__ import annotations

import multiprocessing
import queue as _queue
import time
from multiprocessing import connection as mp_connection
from typing import Callable, Dict, List, Optional

from repro.errors import RuntimeServiceError, VMError
from repro.runtime.backend import (
    BackendNode,
    BackendRun,
    NodeStats,
    RunPolicy,
    RuntimeBackend,
    Transport,
    provision_node,
    register_backend,
    summarize_recovery,
)
from repro.runtime.cluster import ClusterSpec, NodeSpec
from repro.runtime.faults import FaultError, FaultRecord, NodeCrashed, PeerLost
from repro.runtime.message import FAULT_NOTICE, Message, MessageKind

#: safety net for protocol bugs; real waits return on frame arrival
WAIT_TIMEOUT_S = 60.0

#: the parent's control pipe appears in a worker's receive map under this
#: pseudo source id (no node has a negative id)
PARENT_CTRL = -1


def _mp_context():
    """Fork keeps worker start cheap and avoids pickling the program; fall
    back to spawn where fork does not exist."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-posix platforms
        return multiprocessing.get_context("spawn")


class ProcNode(BackendNode):
    """Worker-side node: drains pipe frames into a FIFO inbox."""

    def __init__(self, node_id: int, spec: NodeSpec, recv_conns: Dict[int, object]) -> None:
        super().__init__(node_id, spec)
        self._conns = dict(recv_conns)       # src -> read Connection
        self._queue: List[Message] = []

    def _drain(self, conns) -> None:
        for conn in conns:
            while True:
                try:
                    if not conn.poll(0):
                        break
                    frame = conn.recv_bytes()
                except (EOFError, OSError):
                    # peer exited; anything it sent was drained before EOF
                    self._conns = {
                        s: c for s, c in self._conns.items() if c is not conn
                    }
                    break
                msg = Message.deserialize(frame)
                # injected duplicates are dropped at intake so the
                # request/reply protocol sees each frame once
                if self.injector is not None and not self.accept_frame(msg):
                    continue
                self._queue.append(msg)

    def take_matching(
        self, match: Callable[[Message], bool]
    ) -> Optional[Message]:
        self._drain(list(self._conns.values()))
        for i, m in enumerate(self._queue):
            if match(m):
                self.msgs_received += 1
                return self._queue.pop(i)
        return None

    def iprobe(self, match: Callable[[Message], bool]) -> bool:
        self._drain(list(self._conns.values()))
        return any(match(m) for m in self._queue)

    def wait_for_message(self, timeout_s: float) -> None:
        if not self._conns:
            raise RuntimeServiceError(
                f"process backend: node {self.node_id} blocked with every "
                "peer disconnected"
            )
        # short-circuit: when every peer is disconnected or already marked
        # dead, no application frame can ever arrive — degrade immediately
        # instead of riding out the full wall-clock timeout
        if not any(
            src != PARENT_CTRL and src not in self.dead_peers
            for src in self._conns
        ):
            raise PeerLost(
                f"node {self.node_id} is waiting for messages but every "
                f"peer is already dead"
            )
        ready = mp_connection.wait(list(self._conns.values()), timeout_s)
        if not ready:
            raise RuntimeServiceError(
                f"process backend: node {self.node_id} blocked "
                f"{timeout_s:.0f}s with no incoming messages "
                "(distributed deadlock?)"
            )
        self._drain(ready)


class _WorkerTransport(Transport):
    """Worker-side message routing: serialize and push down the pipe."""

    def __init__(self, nnodes: int, node: ProcNode, send_conns: Dict[int, object]) -> None:
        self._nnodes = nnodes
        self._node = node
        self._send = send_conns              # dst -> write Connection

    @property
    def nnodes(self) -> int:
        return self._nnodes

    def post(self, src: int, dst: int, msg: Message) -> None:
        conn = self._send.get(dst)
        if conn is None:
            raise RuntimeServiceError(f"message to unknown node {dst}")
        try:
            conn.send_bytes(msg.serialize())
        except OSError as exc:
            # the peer's read end is gone: it died.  Surface that as a
            # fault-family error so the caller degrades instead of crashing.
            raise PeerLost(
                f"node {dst} unreachable from node {src} (pipe closed)"
            ) from exc
        self._node.msgs_sent += 1
        self._node.bytes_sent += msg.size


def _broadcast(send_conns: Dict[int, object], node_id: int, req_id: int) -> None:
    """Best-effort SHUTDOWN (plain or fault-notice) to every peer."""
    for dst, conn in send_conns.items():
        try:
            conn.send_bytes(
                Message(MessageKind.SHUTDOWN, node_id, dst, req_id).serialize()
            )
        except (OSError, ValueError):
            pass


def _worker_main(
    node_id: int,
    node_spec: NodeSpec,
    nnodes: int,
    program,
    policy: RunPolicy,
    recv_conns: Dict[int, object],
    send_conns: Dict[int, object],
    all_conns,
    results,
) -> None:
    """One cluster node, start to finish, inside its own process."""
    from repro.runtime.serial import encode_value
    from repro.vm.loader import load_program

    # fork hands every worker the whole pipe mesh; close the ends that
    # belong to other nodes, otherwise a dead peer's pipe never reaches EOF
    # (an open write end somewhere keeps it alive)
    owned = set(map(id, recv_conns.values())) | set(map(id, send_conns.values()))
    for conn in all_conns:
        if id(conn) not in owned:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    report = {"node_id": node_id, "name": node_spec.name, "error": None,
              "faults": []}
    node = ProcNode(node_id, node_spec, recv_conns)
    try:
        transport = _WorkerTransport(nnodes, node, send_conns)
        loaded = load_program(program)
        starter = provision_node(node, transport, loaded, policy)
        t0 = time.perf_counter()
        events = 0
        try:
            for event in node.gen:
                events += 1
                if events > policy.max_events:
                    raise RuntimeServiceError("execution exceeded event budget")
                kind = event[0]
                if kind == "cost":
                    node.charge(event[1])
                    if node.injector is not None and (
                        node.injector.crash_due(node.charged_cycles)
                    ):
                        raise NodeCrashed(
                            f"node {node_id} crashed at cycle "
                            f"{node.charged_cycles} (planned)"
                        )
                elif kind == "wait":
                    node.wait_for_message(WAIT_TIMEOUT_S)
                else:  # pragma: no cover
                    raise RuntimeServiceError(f"unknown event {event!r}")
        except FaultError as exc:
            # injected/fault-family failure: degrade — structured record,
            # prompt notice to live peers, no error (the run continues)
            node.record_fault(exc)
            _broadcast(send_conns, node_id, FAULT_NOTICE)
        except BaseException as exc:
            report["error"] = {"type": type(exc).__name__, "message": str(exc)}
            _broadcast(send_conns, node_id, 0)
        node.clock = time.perf_counter() - t0
        stats = node.snapshot_stats()
        result_payload = None
        # evidence *about other nodes* (lease verdicts, torn blobs) does not
        # invalidate this node's own result — only its own failure does
        own_failure = any(f.node == node_id for f in node.faults)
        if starter is not None and report["error"] is None and not own_failure:
            try:
                result_payload = encode_value(
                    starter.result, node_id, node.machine.heap
                )
            except RuntimeServiceError:
                result_payload = None
        recovered: List[dict] = []
        adopted_stdout: Dict[int, List[str]] = {}
        ckpt_cycles = rec_cycles = 0
        if node.recovery is not None:
            r = node.recovery
            ckpt_cycles = r.checkpoint_overhead_cycles
            rec_cycles = r.recovery_cycles
            recovered = [x.to_dict() for x in r.recovered_records]
            adopted_stdout = {
                dead: list(lines)
                for dead, lines in r.adopted.items()
                if dead in r.recovered
            }
        report.update(
            clock_s=stats.clock_s,
            busy_s=stats.busy_s,
            messages_sent=stats.messages_sent,
            bytes_sent=stats.bytes_sent,
            requests_served=stats.requests_served,
            heap_objects=stats.heap_objects,
            heap_bytes=stats.heap_bytes,
            stdout=stats.stdout,
            faults=stats.faults,
            result=result_payload,
            recovered=recovered,
            adopted_stdout=adopted_stdout,
            checkpoint_overhead_cycles=ckpt_cycles,
            recovery_cycles=rec_cycles,
        )
    except BaseException as exc:  # provisioning/load failure
        report["error"] = {"type": type(exc).__name__, "message": str(exc)}
        _broadcast(send_conns, node_id, 0)
    results.put(report)


@register_backend
class ProcessBackend(RuntimeBackend):
    """One worker process per node over multiprocessing pipes."""

    name = "process"

    def post(self, src: int, dst: int, msg: Message) -> None:
        raise RuntimeServiceError(
            "process backend routes messages inside its workers"
        )

    @staticmethod
    def _lost_report(node_id: int, name: str, exitcode) -> dict:
        """Synthetic report for a worker that vanished before reporting
        (killed, OOM, segfault): zero stats plus a structured fault."""
        rec = FaultRecord(
            node=node_id,
            kind="worker_lost",
            detail=(
                f"worker process for node {node_id} exited with code "
                f"{exitcode} before reporting"
            ),
        )
        return {
            "node_id": node_id, "name": name, "error": None,
            "faults": [rec.to_dict()],
            "clock_s": 0.0, "busy_s": 0.0, "messages_sent": 0,
            "bytes_sent": 0, "requests_served": 0, "heap_objects": 0,
            "heap_bytes": 0, "stdout": [], "result": None,
            "recovered": [], "adopted_stdout": {},
            "checkpoint_overhead_cycles": 0, "recovery_cycles": 0,
        }

    def execute(self, program, loaded, policy: RunPolicy) -> BackendRun:
        from repro.runtime.serial import decode_value

        ctx = _mp_context()
        n = self.nnodes
        recv_conns: Dict[int, Dict[int, object]] = {i: {} for i in range(n)}
        send_conns: Dict[int, Dict[int, object]] = {i: {} for i in range(n)}
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    continue
                r, w = ctx.Pipe(duplex=False)
                recv_conns[dst][src] = r
                send_conns[src][dst] = w
        # one parent->worker control pipe each: when a worker vanishes
        # without reporting, the parent injects fault-notice frames here so
        # survivors fail fast instead of riding out the full wait timeout
        ctrl_writers: Dict[int, object] = {}
        for i in range(n):
            r, w = ctx.Pipe(duplex=False)
            recv_conns[i][PARENT_CTRL] = r
            ctrl_writers[i] = w

        all_conns = [
            conn
            for i in range(n)
            for conn in (*recv_conns[i].values(), *send_conns[i].values())
        ]
        # workers must close inherited control write ends too (the parent
        # keeps its own copies)
        worker_visible = all_conns + list(ctrl_writers.values())
        results = ctx.Queue()
        procs = [
            ctx.Process(
                target=_worker_main,
                args=(
                    i, self.spec.nodes[i], n, program, policy,
                    recv_conns[i], send_conns[i], worker_visible, results,
                ),
                name=f"repro-node-{i}",
                daemon=True,
            )
            for i in range(n)
        ]
        reports: Dict[int, dict] = {}
        try:
            for p in procs:
                p.start()
            # the workers own these pipe ends now (the parent keeps only
            # the control write ends)
            for conn in all_conns:
                conn.close()
            # progress-aware collection: wait as long as workers are alive
            # (blocking points inside them time out on their own); a worker
            # that vanished without reporting becomes a structured fault,
            # not a hang and not an exception
            pending = set(range(n))
            while pending:
                try:
                    rep = results.get(timeout=0.25)
                except _queue.Empty:
                    dead = [
                        i for i in pending if procs[i].exitcode is not None
                    ]
                    if not dead:
                        continue
                    # grace period: the report may still be in the queue
                    try:
                        rep = results.get(timeout=0.5)
                    except _queue.Empty:
                        for i in dead:
                            pending.discard(i)
                            reports[i] = self._lost_report(
                                i, self.spec.nodes[i].name, procs[i].exitcode
                            )
                            for j in pending:
                                try:
                                    ctrl_writers[j].send_bytes(
                                        Message(
                                            MessageKind.SHUTDOWN, i, j,
                                            FAULT_NOTICE,
                                        ).serialize()
                                    )
                                except (OSError, ValueError):
                                    pass
                        continue
                reports[rep["node_id"]] = rep
                pending.discard(rep["node_id"])
        finally:
            deadline = time.monotonic() + 10.0
            for p in procs:
                p.join(max(0.0, deadline - time.monotonic()))
            for p in procs:
                if p.is_alive():
                    p.terminate()
                    p.join(5.0)
            for w in ctrl_writers.values():
                try:
                    w.close()
                except OSError:  # pragma: no cover
                    pass

        failed = {i: rep["error"] for i, rep in reports.items() if rep["error"]}
        if failed:
            # a VMError is the application-level root cause (remote errors
            # propagate as ERR replies); teardown noise on other nodes —
            # SHUTDOWN-while-awaiting-reply, disconnects — is secondary
            for node_id, err in sorted(failed.items()):
                if err["type"] == "VMError":
                    raise VMError(err["message"])
            detail = "; ".join(
                f"node {i}: {err['type']}: {err['message']}"
                for i, err in sorted(failed.items())
            )
            raise RuntimeServiceError(f"process backend failed: {detail}")

        ordered = [reports[i] for i in sorted(reports)]
        stats = [
            NodeStats(
                name=rep["name"],
                clock_s=rep["clock_s"],
                busy_s=rep["busy_s"],
                messages_sent=rep["messages_sent"],
                bytes_sent=rep["bytes_sent"],
                requests_served=rep["requests_served"],
                heap_objects=rep["heap_objects"],
                heap_bytes=rep["heap_bytes"],
                stdout=list(rep["stdout"]),
                faults=list(rep.get("faults") or []),
            )
            for rep in ordered
        ]
        faults = [
            FaultRecord.from_dict(d)
            for rep in ordered
            for d in (rep.get("faults") or [])
        ]
        recovered = [
            FaultRecord.from_dict(d)
            for rep in ordered
            for d in (rep.get("recovered") or [])
        ]
        masked = {r.node for r in recovered}
        for rep in ordered:
            for dead, lines in (rep.get("adopted_stdout") or {}).items():
                dead = int(dead)
                if dead in masked and 0 <= dead < len(stats):
                    stats[dead].stdout = list(lines)
        main_rep = reports[policy.main_partition]
        result = (
            decode_value(main_rep["result"], policy.main_partition)
            if main_rep["result"] is not None
            else None
        )
        return BackendRun(
            result=result,
            makespan_s=max((s.clock_s for s in stats), default=0.0),
            total_messages=sum(s.messages_sent for s in stats),
            total_bytes=sum(s.bytes_sent for s in stats),
            node_stats=stats,
            stdout=[line for s in stats for line in s.stdout],
            faults=faults,
            degraded=summarize_recovery(
                faults,
                recovered,
                recovering=policy.recovery is not None
                and policy.recovery.enabled,
                main_partition=policy.main_partition,
            ),
            recovered=recovered,
            checkpoint_overhead_cycles=sum(
                rep.get("checkpoint_overhead_cycles", 0) for rep in ordered
            ),
            recovery_cycles=sum(
                rep.get("recovery_cycles", 0) for rep in ordered
            ),
        )
