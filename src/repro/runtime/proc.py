"""Multiprocessing backend: one OS process per plan node.

The first wall-clock (non-simulated) distributed execution path: the parent
builds a full mesh of one-way :func:`multiprocessing.Pipe` links (one per
ordered (src, dst) pair, so per-pair FIFO is the kernel's pipe ordering),
forks one worker per cluster node, and collects a final report per node
over a result queue.  Each worker reloads the rewritten program into its
own interpreter (a real separate heap — per-JVM semantics by construction),
wires the standard services, and drives its node generator exactly like the
other backends: ``cost`` events charge accounting, ``wait`` events block in
:func:`multiprocessing.connection.wait` until a peer's frame arrives.

Messages travel as :meth:`~repro.runtime.message.Message.serialize` frames,
so the bytes a pipe moves equal the bytes the simulated network charges for
the same message.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing import connection as mp_connection
from typing import Callable, Dict, List, Optional

from repro.errors import RuntimeServiceError
from repro.runtime.backend import (
    BackendNode,
    BackendRun,
    RunPolicy,
    RuntimeBackend,
    Transport,
    register_backend,
)
from repro.runtime.cluster import ClusterSpec, NodeSpec
from repro.runtime.faults import PeerLost
from repro.runtime.message import Message, MessageKind
from repro.runtime.worker import (
    PARENT_CTRL,
    WAIT_TIMEOUT_S,
    assemble_run,
    collect_reports,
    reap_workers,
    worker_report,
)


def _mp_context():
    """Fork keeps worker start cheap and avoids pickling the program; fall
    back to spawn where fork does not exist."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-posix platforms
        return multiprocessing.get_context("spawn")


class ProcNode(BackendNode):
    """Worker-side node: drains pipe frames into a FIFO inbox."""

    def __init__(self, node_id: int, spec: NodeSpec, recv_conns: Dict[int, object]) -> None:
        super().__init__(node_id, spec)
        self._conns = dict(recv_conns)       # src -> read Connection
        self._queue: List[Message] = []

    def _drain(self, conns) -> None:
        # one select()-style readiness pass over the whole mesh per sweep
        # (not a poll(0) syscall per pipe): an idle node makes exactly one
        # wait() call and stops, instead of spinning N-1 polls per probe
        pending = list(conns)
        while pending:
            ready = mp_connection.wait(pending, 0)
            if not ready:
                break
            for conn in ready:
                try:
                    frame = conn.recv_bytes()
                except (EOFError, OSError):
                    # peer exited; anything it sent was drained before EOF
                    self._conns = {
                        s: c for s, c in self._conns.items() if c is not conn
                    }
                    pending = [c for c in pending if c is not conn]
                    continue
                msg = Message.deserialize(frame)
                # injected duplicates are dropped at intake so the
                # request/reply protocol sees each frame once
                if self.injector is not None and not self.accept_frame(msg):
                    continue
                self._queue.append(msg)

    def take_matching(
        self, match: Callable[[Message], bool]
    ) -> Optional[Message]:
        self._drain(list(self._conns.values()))
        for i, m in enumerate(self._queue):
            if match(m):
                self.msgs_received += 1
                return self._queue.pop(i)
        return None

    def iprobe(self, match: Callable[[Message], bool]) -> bool:
        self._drain(list(self._conns.values()))
        return any(match(m) for m in self._queue)

    def wait_for_message(self, timeout_s: float) -> None:
        if not self._conns:
            raise RuntimeServiceError(
                f"process backend: node {self.node_id} blocked with every "
                "peer disconnected"
            )
        # short-circuit: when every peer is disconnected or already marked
        # dead, no application frame can ever arrive — degrade immediately
        # instead of riding out the full wall-clock timeout
        if not any(
            src != PARENT_CTRL and src not in self.dead_peers
            for src in self._conns
        ):
            raise PeerLost(
                f"node {self.node_id} is waiting for messages but every "
                f"peer is already dead"
            )
        ready = mp_connection.wait(list(self._conns.values()), timeout_s)
        if not ready:
            raise RuntimeServiceError(
                f"process backend: node {self.node_id} blocked "
                f"{timeout_s:.0f}s with no incoming messages "
                "(distributed deadlock?)"
            )
        self._drain(ready)


class _WorkerTransport(Transport):
    """Worker-side message routing: serialize and push down the pipe."""

    def __init__(self, nnodes: int, node: ProcNode, send_conns: Dict[int, object]) -> None:
        self._nnodes = nnodes
        self._node = node
        self._send = send_conns              # dst -> write Connection

    @property
    def nnodes(self) -> int:
        return self._nnodes

    def post(self, src: int, dst: int, msg: Message) -> None:
        conn = self._send.get(dst)
        if conn is None:
            raise RuntimeServiceError(f"message to unknown node {dst}")
        try:
            conn.send_bytes(msg.serialize())
        except OSError as exc:
            # the peer's read end is gone: it died.  Surface that as a
            # fault-family error so the caller degrades instead of crashing.
            raise PeerLost(
                f"node {dst} unreachable from node {src} (pipe closed)"
            ) from exc
        self._node.msgs_sent += 1
        self._node.bytes_sent += msg.size


def _broadcast(send_conns: Dict[int, object], node_id: int, req_id: int) -> None:
    """Best-effort SHUTDOWN (plain or fault-notice) to every peer."""
    for dst, conn in send_conns.items():
        try:
            conn.send_bytes(
                Message(MessageKind.SHUTDOWN, node_id, dst, req_id).serialize()
            )
        except (OSError, ValueError):
            pass


def _worker_main(
    node_id: int,
    node_spec: NodeSpec,
    nnodes: int,
    program,
    policy: RunPolicy,
    recv_conns: Dict[int, object],
    send_conns: Dict[int, object],
    all_conns,
    results,
) -> None:
    """One cluster node, start to finish, inside its own process."""
    # fork hands every worker the whole pipe mesh; close the ends that
    # belong to other nodes, otherwise a dead peer's pipe never reaches EOF
    # (an open write end somewhere keeps it alive)
    owned = set(map(id, recv_conns.values())) | set(map(id, send_conns.values()))
    for conn in all_conns:
        if id(conn) not in owned:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    node = ProcNode(node_id, node_spec, recv_conns)
    transport = _WorkerTransport(nnodes, node, send_conns)
    results.put(
        worker_report(
            node, transport, program, policy,
            lambda req_id: _broadcast(send_conns, node_id, req_id),
        )
    )


@register_backend
class ProcessBackend(RuntimeBackend):
    """One worker process per node over multiprocessing pipes."""

    name = "process"

    def post(self, src: int, dst: int, msg: Message) -> None:
        raise RuntimeServiceError(
            "process backend routes messages inside its workers"
        )

    def execute(self, program, loaded, policy: RunPolicy) -> BackendRun:
        ctx = _mp_context()
        n = self.nnodes
        recv_conns: Dict[int, Dict[int, object]] = {i: {} for i in range(n)}
        send_conns: Dict[int, Dict[int, object]] = {i: {} for i in range(n)}
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    continue
                r, w = ctx.Pipe(duplex=False)
                recv_conns[dst][src] = r
                send_conns[src][dst] = w
        # one parent->worker control pipe each: when a worker vanishes
        # without reporting, the parent injects fault-notice frames here so
        # survivors fail fast instead of riding out the full wait timeout
        ctrl_writers: Dict[int, object] = {}
        for i in range(n):
            r, w = ctx.Pipe(duplex=False)
            recv_conns[i][PARENT_CTRL] = r
            ctrl_writers[i] = w

        all_conns = [
            conn
            for i in range(n)
            for conn in (*recv_conns[i].values(), *send_conns[i].values())
        ]
        # workers must close inherited control write ends too (the parent
        # keeps its own copies)
        worker_visible = all_conns + list(ctrl_writers.values())
        results = ctx.Queue()
        procs = [
            ctx.Process(
                target=_worker_main,
                args=(
                    i, self.spec.nodes[i], n, program, policy,
                    recv_conns[i], send_conns[i], worker_visible, results,
                ),
                name=f"repro-node-{i}",
                daemon=True,
            )
            for i in range(n)
        ]
        names = [ns.name for ns in self.spec.nodes]
        try:
            for p in procs:
                p.start()
            # the workers own these pipe ends now (the parent keeps only
            # the control write ends)
            for conn in all_conns:
                conn.close()
            reports = collect_reports(procs, results, names, ctrl_writers)
        finally:
            reap_workers(procs, ctrl_writers)
        return assemble_run(reports, policy)
