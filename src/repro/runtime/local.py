"""Local dispatcher: DependentObject semantics without a network.

When a rewritten (communication-generating) program runs on a single node —
the 1-partition plan, or unit tests — every ``DependentObject.create`` /
``.access`` resolves locally.  This dispatcher implements exactly that, so
rewritten bytecode is runnable anywhere; the distributed MessageExchange
service (:mod:`repro.runtime.services`) reuses the same local paths for
objects that happen to live on the accessing node.
"""

from __future__ import annotations

from repro.errors import VMError
from repro.lang.symbols import (
    ARRAY_GET,
    ARRAY_LEN,
    ARRAY_SET,
    FIELD_GET,
    FIELD_SET,
    INVOKE_METHOD_HASRETURN,
    INVOKE_METHOD_VOID,
)
from repro.lang.types import VOID
from repro.runtime.invoke import call_and_run
from repro.vm.values import Ref


def create_local(machine, class_name: str, ctor_args):
    """Allocate ``class_name`` on ``machine`` and run its constructor.
    Generator; returns the new :class:`Ref`."""
    ref = machine._allocate(class_name)
    ctor = machine.program.lookup_method(class_name, "<init>")
    if ctor is not None:
        yield from call_and_run(machine, ctor, ref, list(ctor_args))
    else:
        from repro.vm.natives import find_native

        find_native(class_name, "<init>")(machine, ref, list(ctor_args))
    return ref


def access_local(machine, recv, access_type: int, member: str, args):
    """Perform one dependence access on a *local* receiver.  Generator;
    returns the access result (None for void/set accesses)."""
    if access_type in (INVOKE_METHOD_HASRETURN, INVOKE_METHOD_VOID):
        if isinstance(recv, Ref):
            entry = machine.heap.get(recv)
            runtime_cls = getattr(entry, "class_name", "Object")
        elif isinstance(recv, str):
            runtime_cls = "String"
        else:
            raise VMError(f"dependence access on {recv!r}")
        method = machine.program.lookup_method(runtime_cls, member)
        if method is not None:
            result = yield from call_and_run(machine, method, recv, list(args))
        else:
            from repro.vm.natives import find_native

            result = find_native(runtime_cls, member)(machine, recv, list(args))
            mi = machine.table.resolve_method(runtime_cls, member)
            if mi is not None and mi.ret is VOID:
                result = None
        return result
    if access_type in (ARRAY_GET, ARRAY_SET, ARRAY_LEN):
        arr = machine.heap.array(recv)
        if access_type == ARRAY_LEN:
            return len(arr.data)
        idx = args[0]
        if not 0 <= idx < len(arr.data):
            raise VMError(f"remote array index {idx} out of bounds")
        if access_type == ARRAY_GET:
            return arr.data[idx]
        arr.data[idx] = args[1]
        return None
    obj = machine.heap.object(recv)
    if access_type == FIELD_GET:
        try:
            return obj.fields[member]
        except KeyError:
            raise VMError(f"no field {obj.class_name}.{member}") from None
    if access_type == FIELD_SET:
        if member not in obj.fields:
            raise VMError(f"no field {obj.class_name}.{member}")
        obj.fields[member] = args[0]
        return None
    raise VMError(f"unknown access type {access_type}")


def local_dispatcher(machine):
    """Build a syscall handler resolving everything on ``machine``."""

    def syscall(kind: str, recv, args):
        if kind == "create":
            ctor_args, _location, class_name = args
            result = yield from create_local(machine, class_name, ctor_args or [])
            return result
        if kind == "access":
            call_args, access_type, member = args
            if recv is None:
                raise VMError("dependence access on null")
            result = yield from access_local(
                machine, recv, access_type, member, call_args or []
            )
            return result
        raise VMError(f"unknown syscall {kind}")  # pragma: no cover

    return syscall
