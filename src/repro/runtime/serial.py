"""The streamed message format (paper §5: "The Message Exchange service
passes objects between nodes using a streamed format").

A compact tagged binary encoding.  Primitives and strings travel by value;
LinkedLists (packed argument lists) by value, element-wise; heap references
travel as *remote reference descriptors* — (node, oid, class) triples — which
the receiver swizzles back: a descriptor naming the receiving node becomes a
local :class:`~repro.vm.values.Ref`, anything else a
:class:`~repro.vm.values.DependentRef`.  Encoded length is the byte volume
charged to the simulated network.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.errors import RuntimeServiceError
from repro.vm.values import DependentRef, Ref

_TAG_NULL = b"N"
_TAG_I32 = b"I"
_TAG_I64 = b"J"
_TAG_F64 = b"F"
_TAG_STR = b"S"
_TAG_REF = b"R"
_TAG_LIST = b"L"

ARRAY_CLASS = "<array>"


def _class_of_ref(heap, ref: Ref) -> str:
    entry = heap.get(ref)
    return getattr(entry, "class_name", ARRAY_CLASS)


def encode_value(value, node_id: int, heap) -> bytes:
    """Serialize one MJ value into the streamed format."""
    out = bytearray()
    _encode(value, node_id, heap, out)
    return bytes(out)


def _encode(value, node_id: int, heap, out: bytearray) -> None:
    if value is None:
        out += _TAG_NULL
    elif isinstance(value, bool):
        out += _TAG_I32
        out += struct.pack("<i", int(value))
    elif isinstance(value, int):
        if -0x80000000 <= value < 0x80000000:
            out += _TAG_I32
            out += struct.pack("<i", value)
        else:
            out += _TAG_I64
            out += struct.pack("<q", value)
    elif isinstance(value, float):
        out += _TAG_F64
        out += struct.pack("<d", value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += _TAG_STR
        out += struct.pack("<I", len(raw))
        out += raw
    elif isinstance(value, Ref):
        cls = _class_of_ref(heap, value).encode("utf-8")
        out += _TAG_REF
        out += struct.pack("<hI", node_id, value.oid)
        out += struct.pack("<H", len(cls))
        out += cls
    elif isinstance(value, DependentRef):
        cls = value.class_name.encode("utf-8")
        out += _TAG_REF
        out += struct.pack("<hI", value.node, value.oid)
        out += struct.pack("<H", len(cls))
        out += cls
    elif isinstance(value, list):
        out += _TAG_LIST
        out += struct.pack("<I", len(value))
        for item in value:
            _encode(item, node_id, heap, out)
    else:
        raise RuntimeServiceError(f"cannot stream value {value!r}")


def decode_value(data: bytes, node_id: int) -> object:
    """Deserialize; inverse of :func:`encode_value` from the view of node
    ``node_id`` (reference swizzling happens here)."""
    value, offset = _decode(data, 0, node_id)
    if offset != len(data):
        raise RuntimeServiceError(
            f"trailing bytes in message ({len(data) - offset})"
        )
    return value


def _decode(data: bytes, i: int, node_id: int) -> Tuple[object, int]:
    tag = data[i : i + 1]
    i += 1
    if tag == _TAG_NULL:
        return None, i
    if tag == _TAG_I32:
        return struct.unpack_from("<i", data, i)[0], i + 4
    if tag == _TAG_I64:
        return struct.unpack_from("<q", data, i)[0], i + 8
    if tag == _TAG_F64:
        return struct.unpack_from("<d", data, i)[0], i + 8
    if tag == _TAG_STR:
        (length,) = struct.unpack_from("<I", data, i)
        i += 4
        return data[i : i + length].decode("utf-8"), i + length
    if tag == _TAG_REF:
        node, oid = struct.unpack_from("<hI", data, i)
        i += 6
        (clen,) = struct.unpack_from("<H", data, i)
        i += 2
        cls = data[i : i + clen].decode("utf-8")
        i += clen
        if node == node_id:
            return Ref(oid), i
        return DependentRef(node, oid, cls), i
    if tag == _TAG_LIST:
        (count,) = struct.unpack_from("<I", data, i)
        i += 4
        items: List[object] = []
        for _ in range(count):
            item, i = _decode(data, i, node_id)
            items.append(item)
        return items, i
    raise RuntimeServiceError(f"bad stream tag {tag!r} at offset {i - 1}")
