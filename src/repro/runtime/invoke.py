"""Re-entrant method invocation on a steppable machine.

Both the local dispatcher and the MessageExchange service need to run one
method call to completion *inside* an already-running machine (the paper's
runtime does the same when a DEPENDENCE request arrives at an object's home
node).  ``call_and_run`` pushes a frame whose return value is captured
instead of being handed to a caller frame, then drives the machine until
that frame pops — delegating any nested syscalls, so remote calls may nest
arbitrarily.  Driving goes through :meth:`Machine.drive`, so service-side
execution gets the same cost-batched fast path (and the same per-step
profiler fallback) as top-level execution."""

from __future__ import annotations

from typing import Iterator

from repro.bytecode.model import BMethod


def call_and_run(machine, method: BMethod, receiver, args) -> Iterator:
    """Generator: runs ``method`` to completion on ``machine``; yields cost
    events; returns the method's return value."""
    captured = {}

    def on_return(value) -> None:
        captured["value"] = value

    machine.call_bmethod(method, receiver, args, on_return=on_return)
    # drive until the frame we just pushed has returned: its depth is the
    # current depth, so the stop condition is "depth fell below it"
    yield from machine.drive(len(machine.frames))
    return captured.get("value")
