"""Re-entrant method invocation on a steppable machine.

Both the local dispatcher and the MessageExchange service need to run one
method call to completion *inside* an already-running machine (the paper's
runtime does the same when a DEPENDENCE request arrives at an object's home
node).  ``call_and_run`` pushes a frame whose return value is captured
instead of being handed to a caller frame, then steps the machine until that
capture fires — delegating any nested syscalls, so remote calls may nest
arbitrarily."""

from __future__ import annotations

from typing import Iterator

from repro.bytecode.model import BMethod


def call_and_run(machine, method: BMethod, receiver, args) -> Iterator:
    """Generator: runs ``method`` to completion on ``machine``; yields cost
    events; returns the method's return value."""
    captured = {}

    def on_return(value) -> None:
        captured["value"] = value
        captured["done"] = True

    machine.call_bmethod(method, receiver, args, on_return=on_return)
    while "done" not in captured:
        r = machine.step()
        if isinstance(r, int):
            yield ("cost", r)
        else:
            _, gen, push, cost = r
            yield ("cost", cost)
            value = yield from gen
            if push and machine.frames:
                machine.frames[-1].push(value)
    return captured.get("value")
