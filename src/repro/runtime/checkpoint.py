"""The recovery tier: checkpointed object state, heartbeat leases and
object migration on top of the PR-6 fault machinery.

PR 6 made crashes *survivable* — a killed node degrades the run to a
structured fault report.  This module makes recoverable crashes *masked*:
for a :class:`RecoveryPlan`-enabled run, a crashed node's remote objects
are re-homed onto a surviving node and the run finishes with results and
stdout bit-identical to the fault-free execution (at a measurable cycle
cost).  Four cooperating mechanisms:

* **Checkpointing** — every serving node snapshots its heap (objects,
  allocation counter, per-client applied-request highwater marks, stdout)
  at deterministic cycle-interval barriers, evaluated only at protocol
  quiescence (the top of the serve loop, so a snapshot never captures a
  half-applied request).  The blob ships to the node's *recovery home* —
  chosen idle-node-first in exactly the preference order of
  :func:`repro.distgen.quorum.plan_replication` — framed with its own
  length + crc32 so a torn write is detected and the previous epoch is
  used instead.
* **Detection** — cycle-charged ``HEARTBEAT`` frames plus a lease: a peer
  that has been heard from but then stays silent for ``lease_cycles`` of
  the observer's own charged cycles is declared dead.  The backends'
  existing death notices (simulator fault-stop, thread fault notice, the
  process backend's exit-code polling) feed the same verdict and usually
  arrive first.
* **Takeover & replay** — clients retain every state-bearing frame they
  sent in a per-destination replay log, trimmed one epoch behind the
  destination's ``CHECKPOINT_ACK`` highwater (so a fallback to the
  previous epoch still finds every op it needs).  On a death verdict the
  recovery home restores the newest intact blob into its own heap —
  aliased through ``replica_dir`` under the dead node's identity, with a
  *virtual allocation counter* continuing the dead node's oid sequence so
  re-homed references stay bit-identical to the fault-free run — and
  clients re-issue their retained logs (epoch-keyed, filtered against the
  blob's highwater marks so nothing is applied twice).
* **Evidence** — each masked crash emits a ``RECOVERED`` record next to
  the crash's own :class:`~repro.runtime.faults.FaultRecord`; the dead
  node's stdout stream is reconstructed (checkpointed prefix + re-executed
  suffix) so the run's aggregate stdout matches the fault-free run.

Soundness guard: replayed operations must be confined to the dead node's
own objects.  A replayed op that needs outbound traffic, or replay logs
arriving from more than one client, abort the recovery and the run
degrades exactly as PR 6 — never silently diverges.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigError, VMError
from repro.runtime.faults import FaultError, FaultRecord, PeerLost, RecoveryAborted
from repro.runtime.local import access_local, create_local
from repro.runtime.message import Message, MessageKind
from repro.runtime.serial import decode_value
from repro.vm.values import DependentRef, Ref

__all__ = [
    "RecoveryPlan",
    "NodeRecovery",
    "recovery_homes",
    "encode_checkpoint",
    "decode_checkpoint",
]

#: abstract-cycle cost model for the recovery machinery (charged like any
#: other CPU work, so overhead is visible in clocks and speedups)
CHECKPOINT_BASE_CYCLES = 800
CHECKPOINT_CYCLES_PER_BYTE = 1
RESTORE_BASE_CYCLES = 600
RESTORE_CYCLES_PER_OBJECT = 120
HEARTBEAT_CYCLES_COST = 40

#: a lease verdict additionally needs this many consecutive unanswered
#: probes — one missed beat is a busy peer, several are a dead one
LEASE_MIN_PINGS = 3

#: the plan's cycle-denominated detection knobs are converted to virtual
#: seconds at this fixed reference speed, NOT each node's own CPU speed:
#: liveness is a property of the *network* (clocks are loosely synchronized
#: by message timestamps), so a 3.2 GHz observer must not run a 8x shorter
#: lease against a 400 MHz peer whose beat period is 8x longer
REFERENCE_HZ = 1.0e9

#: HEARTBEAT req_id discriminator: pings solicit an immediate pong (so a
#: probed peer answers within a round trip no matter how long its own beat
#: period is); pongs terminate the exchange
HEARTBEAT_PING = 0
HEARTBEAT_PONG = 1

#: blob frame: payload length + crc32 of the payload (torn-write detection)
_BLOB_HEADER = struct.Struct("<II")
#: replay frame prefix: dead node, client's last acked epoch, original
#: (signed) request id, original message kind (0 = takeover marker)
_REPLAY_HEADER = struct.Struct("<hiqB")


# ---------------------------------------------------------------------------
# the typed plan
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RecoveryPlan:
    """How a run checkpoints and recovers, described up front.

    ``interval`` is the cycle distance between checkpoint barriers
    (evaluated at protocol quiescence, so actual snapshots land on the
    first quiescent point after each crossing).  ``heartbeat_cycles`` /
    ``lease_cycles`` parameterize failure detection; ``copies`` is how
    many recovery homes each node ships its blobs to (placement follows
    the idle-node-first order of ``plan_replication``).  ``enabled``
    False keeps the plan inert (useful as a sweep axis endpoint).
    """

    interval: int = 60_000
    #: beat cadence, in cycles of the node's own CPU (150 us at 1 GHz).
    #: Beats fan out to every live peer per round, so this also bounds the
    #: liveness traffic: a much shorter period floods the virtual network
    #: with HEARTBEAT frames to no detection benefit, since a lease verdict
    #: additionally needs LEASE_MIN_PINGS unanswered probes
    heartbeat_cycles: int = 150_000
    lease_cycles: int = 600_000
    copies: int = 1
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ConfigError(
                f"RecoveryPlan.interval must be >= 1, got {self.interval}"
            )
        if self.heartbeat_cycles < 0:
            raise ConfigError(
                f"RecoveryPlan.heartbeat_cycles must be >= 0, "
                f"got {self.heartbeat_cycles}"
            )
        if self.heartbeat_cycles and self.lease_cycles < self.heartbeat_cycles:
            raise ConfigError(
                "RecoveryPlan.lease_cycles must be >= heartbeat_cycles "
                f"({self.lease_cycles} < {self.heartbeat_cycles})"
            )
        if self.copies < 1:
            raise ConfigError(
                f"RecoveryPlan.copies must be >= 1, got {self.copies}"
            )

    # ----------------------------------------------------------- round trip
    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RecoveryPlan":
        if not isinstance(data, dict):
            raise ConfigError(
                f"RecoveryPlan.from_dict needs a dict, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown RecoveryPlan field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        return cls(**data)


def recovery_homes(
    dead: int, cluster_size: int, nparts: int, copies: int = 1
) -> Tuple[int, ...]:
    """Where a node's checkpoints live and who takes over when it dies:
    idle nodes (beyond the plan's partitions) first, then id order — the
    exact preference order of :func:`repro.distgen.quorum.plan_replication`,
    so replica placement and recovery placement agree."""
    ranked = sorted(range(cluster_size), key=lambda n: (n < nparts, n))
    candidates = [n for n in ranked if n != dead]
    return tuple(candidates[: max(1, copies)])


# ---------------------------------------------------------------------------
# blob framing (torn-write detection)
# ---------------------------------------------------------------------------
def encode_checkpoint(blob: Dict[str, Any]) -> bytes:
    """Frame one checkpoint blob: length + crc32 + pickle.  The crc makes
    a torn write (killed mid-checkpoint) detectable, so recovery falls
    back to the previous epoch instead of loading a partial snapshot."""
    raw = pickle.dumps(blob, protocol=4)
    return _BLOB_HEADER.pack(len(raw), zlib.crc32(raw)) + raw


def decode_checkpoint(data: bytes) -> Optional[Dict[str, Any]]:
    """Inverse of :func:`encode_checkpoint`; ``None`` for a torn blob."""
    if len(data) < _BLOB_HEADER.size:
        return None
    length, crc = _BLOB_HEADER.unpack_from(data)
    raw = data[_BLOB_HEADER.size:]
    if len(raw) != length or zlib.crc32(raw) != crc:
        return None
    try:
        blob = pickle.loads(raw)
    except Exception:
        return None
    return blob if isinstance(blob, dict) else None


# ---------------------------------------------------------------------------
# the per-node recovery engine
# ---------------------------------------------------------------------------
class NodeRecovery:
    """One node's view of the recovery protocol: checkpoint producer,
    heartbeat/lease observer, replay-log keeper (as a client) and recovery
    home (as a survivor).  Installed on ``BackendNode.recovery`` by
    :func:`repro.runtime.backend.provision_node` when the run policy
    carries an enabled :class:`RecoveryPlan`."""

    #: message kinds a client must retain for replay (state can depend on
    #: them); mirrored by the server-side applied-highwater accounting
    LOGGED_KINDS = frozenset(
        (
            MessageKind.NEW.value,
            MessageKind.DEPENDENCE.value,
            MessageKind.REPLICA_NEW.value,
            MessageKind.REPLICA_DEP.value,
        )
    )

    def __init__(self, node, plan: RecoveryPlan, nparts: int) -> None:
        self.node = node
        self.plan = plan
        self.nparts = nparts
        # --- metrics
        self.checkpoint_overhead_cycles = 0
        self.recovery_cycles = 0
        # --- checkpoint producer (serving nodes)
        self.epoch = 0
        self._next_ckpt = plan.interval
        self._applied_highwater: Dict[int, int] = {}
        # --- detection: beats and leases run on *virtual time* (node.clock,
        # loosely synchronized across the cluster by message timestamps),
        # never on charged cycles.  Charged cycles advance with local work,
        # so an idle-but-alive node would legitimately stop beating and a
        # node in a long burst (a takeover replay, say) would race its
        # lease clock thousands of cycles ahead of its peers and declare
        # live nodes dead.  REFERENCE_HZ makes the periods identical on
        # every node regardless of its CPU speed.
        self._beat_period_s = plan.heartbeat_cycles / REFERENCE_HZ
        self._lease_s = plan.lease_cycles / REFERENCE_HZ
        self._next_beat_s = 0.0
        self._last_heard: Dict[int, float] = {}
        #: beats sent to a peer since we last heard from it (ping-ack)
        self._unanswered: Dict[int, int] = {}
        # --- client side (replay logs)
        self._replay_log: Dict[int, List[Tuple[int, int, bytes]]] = {}
        self._acks: Dict[int, List[Tuple[int, int]]] = {}
        self._flushed: set = set()
        # --- recovery home side
        self.blobs: Dict[int, Dict[int, Dict[str, Any]]] = {}
        self.recovered: Dict[int, int] = {}          # dead -> epoch used
        self.recovered_records: List[FaultRecord] = []
        self.adopted: Dict[int, List[str]] = {}      # dead -> stdout stream
        self.virtual_next: Dict[int, int] = {}       # dead -> next virtual oid
        self.aborted: Dict[int, str] = {}
        self._replay_filter: Dict[int, Dict[int, int]] = {}
        self._replay_src: Dict[int, int] = {}
        self._replaying = False

    # ------------------------------------------------------------ topology
    def home_of(self, dead: int) -> int:
        """The (static, cluster-wide agreed) takeover node for ``dead``."""
        return recovery_homes(dead, self.node.mpi.size, self.nparts, 1)[0]

    def can_recover(self, dead: int) -> bool:
        node = self.node
        if not self.plan.enabled or dead == node.main_partition:
            return False
        if dead in self.aborted:
            return False
        home = self.home_of(dead)
        return home == node.node_id or home not in node.dead_peers

    def responsible_for(self, peer: int) -> bool:
        """True when this node has taken over ``peer``'s objects."""
        return peer in self.recovered and peer not in self.aborted

    # ----------------------------------------------------------- liveness
    def note_frame(self, src: int) -> None:
        if src >= 0:
            self._last_heard[src] = self.node.clock
            self._unanswered.pop(src, None)

    def drain_heartbeats(self) -> List[int]:
        """Absorb every HEARTBEAT frame that has already arrived and return
        the peers whose frames were *pings* (they expect an answer).  Called
        before any liveness judgement: a beat sitting unprocessed in the
        inbox (the node was busy, or is a client whose recv only matches
        replies) must count as heard, or long local bursts turn into
        false ``lease_expired`` verdicts."""
        pinged = []
        while True:
            msg = self.node.take_matching(
                lambda m: m.kind is MessageKind.HEARTBEAT
            )
            if msg is None:
                return pinged
            self.note_frame(msg.src)
            if msg.req_id == HEARTBEAT_PING:
                pinged.append(msg.src)

    def pong(self, peer: int):
        """Generator: answer a ping immediately.  A peer's own beat period
        may be arbitrarily long (it is a *sending* schedule), so liveness
        probes are answered out of schedule — that is what lets an observer
        treat several unanswered pings as evidence of death."""
        node = self.node
        if peer == node.node_id or peer in node.dead_peers:
            return
        try:
            yield from node.mpi.isend(
                Message(
                    MessageKind.HEARTBEAT, node.node_id, peer, HEARTBEAT_PONG
                )
            )
        except FaultError:
            pass

    def note_applied(self, src: int, req_id: int) -> None:
        """Server side: remember the newest state-bearing request applied
        per client (the checkpoint highwater mark)."""
        if req_id == 0:
            return
        rid = abs(req_id)
        if rid > self._applied_highwater.get(src, 0):
            self._applied_highwater[src] = rid

    def tick(self, serving: bool):
        """Generator, called at protocol quiescence (top of the serve
        loop; before each outgoing request on client nodes): emit due
        heartbeats, evaluate leases, and — on serving nodes — take the
        checkpoint barrier when the cycle interval has been crossed."""
        node = self.node
        plan = self.plan
        for peer in self.drain_heartbeats():
            yield from self.pong(peer)
        if plan.heartbeat_cycles and node.clock >= self._next_beat_s:
            self._next_beat_s = node.clock + self._beat_period_s
            yield ("cost", HEARTBEAT_CYCLES_COST)
            for peer in range(node.mpi.size):
                if peer == node.node_id or peer in node.dead_peers:
                    continue
                self._unanswered[peer] = self._unanswered.get(peer, 0) + 1
                try:
                    yield from node.mpi.isend(
                        Message(
                            MessageKind.HEARTBEAT,
                            node.node_id,
                            peer,
                            HEARTBEAT_PING,
                        )
                    )
                except FaultError:
                    continue  # heartbeat loss is exactly what leases catch
        if plan.lease_cycles and node.injector is not None:
            for peer, heard_s in list(self._last_heard.items()):
                if peer == node.node_id or peer in node.dead_peers:
                    continue
                if peer == node.main_partition:
                    # the main partition is the *client*: it beats only at
                    # its own request points and owes nobody a response,
                    # so its silence proves nothing.  Its real death is
                    # detected by the backend (drive loop / sentinel) and
                    # ends the run outright.
                    continue
                if self._unanswered.get(peer, 0) < LEASE_MIN_PINGS:
                    # ping-ack discipline: a live serving node wakes on
                    # our beat and beats back within a round trip, so we
                    # only indict peers that ignored several probes
                    continue
                if node.clock - heard_s > self._lease_s:
                    node.dead_peers.add(peer)
                    node.faults.append(
                        FaultRecord(
                            node=peer,
                            kind="lease_expired",
                            detail=(
                                f"node {node.node_id} declared node {peer} "
                                f"dead: no heartbeat for "
                                f"{plan.lease_cycles} cycles "
                                f"({self._lease_s * 1e6:.0f} us) of "
                                f"virtual time"
                            ),
                            at_cycle=node.charged_cycles,
                            time_s=node.clock,
                        )
                    )
        if serving and node.charged_cycles >= self._next_ckpt:
            self._next_ckpt = (
                node.charged_cycles // plan.interval + 1
            ) * plan.interval
            yield from self.checkpoint()

    # ------------------------------------------------------ producer side
    def _snapshot_blob(self) -> Dict[str, Any]:
        node = self.node
        machine = node.machine
        heap = machine.heap
        objects: Dict[int, tuple] = {}
        for oid, entry in heap._store.items():
            if hasattr(entry, "class_name"):
                objects[oid] = (
                    "O", entry.class_name, dict(entry.fields), entry.native_state
                )
            else:
                objects[oid] = ("A", entry.elem_desc, list(entry.data))
        return {
            "node": node.node_id,
            "epoch": self.epoch,
            "next_oid": heap._next,
            "highwater": dict(self._applied_highwater),
            "stdout": list(machine.stdout),
            "objects": objects,
            "replica_dir": dict(node.replica_dir),
            "virtual_next": dict(self.virtual_next),
            "adopted": {d: list(s) for d, s in self.adopted.items()},
            "recovered": dict(self.recovered),
        }

    def checkpoint(self):
        """Generator: snapshot the heap, ship the blob to this node's
        recovery homes and ack every known client with the new epoch's
        highwater mark.  All of it is charged cycles."""
        node = self.node
        self.epoch += 1
        payload = encode_checkpoint(self._snapshot_blob())
        cost = CHECKPOINT_BASE_CYCLES + CHECKPOINT_CYCLES_PER_BYTE * len(payload)
        self.checkpoint_overhead_cycles += cost
        yield ("cost", cost)
        homes = recovery_homes(
            node.node_id, node.mpi.size, self.nparts, self.plan.copies
        )
        for home in homes:
            if home in node.dead_peers:
                continue
            try:
                yield from node.mpi.isend(
                    Message(
                        MessageKind.CHECKPOINT, node.node_id, home, 0, payload
                    )
                )
            except FaultError:
                continue
        from repro.runtime.serial import encode_value

        for src in sorted(self._applied_highwater):
            if src == node.node_id or src in node.dead_peers:
                continue
            ack = encode_value(
                [self.epoch, self._applied_highwater[src]],
                node.node_id,
                node.machine.heap,
            )
            try:
                yield from node.mpi.isend(
                    Message(
                        MessageKind.CHECKPOINT_ACK, node.node_id, src, 0, ack
                    )
                )
            except FaultError:
                continue

    # ------------------------------------------------------- client side
    def log_request(self, dst: int, req_id: int, kind: MessageKind,
                    payload: bytes) -> None:
        """Retain one sent state-bearing frame for possible replay."""
        if kind.value not in self.LOGGED_KINDS or dst == self.node.node_id:
            return
        self._replay_log.setdefault(dst, []).append(
            (req_id, kind.value, payload)
        )

    def unlog_request(self, dst: int, req_id: int) -> None:
        """Drop one frame from the replay log: the caller is about to
        re-issue that in-flight request itself, so replaying it too would
        apply it twice."""
        log = self._replay_log.get(dst)
        if log:
            self._replay_log[dst] = [e for e in log if e[0] != req_id]

    def note_ack(self, src: int, epoch: int, highwater: int) -> None:
        """A checkpoint ack from ``src``: trim the replay log one epoch
        behind (a torn newest blob falls back one epoch, and the log must
        still cover everything after the *previous* barrier)."""
        acks = self._acks.setdefault(src, [])
        acks.append((epoch, highwater))
        if len(acks) > 2:
            acks.pop(0)
        if len(acks) == 2:
            prev_hw = acks[0][1]
            log = self._replay_log.get(src)
            if log:
                self._replay_log[src] = [
                    e for e in log if abs(e[0]) > prev_hw
                ]

    def last_acked_epoch(self, dst: int) -> int:
        acks = self._acks.get(dst)
        return acks[-1][0] if acks else 0

    def flush_replay(self, dead: int):
        """Generator: once per dead peer, push this client's retained log
        to the recovery home (or apply it locally when this node *is* the
        home).  The leading marker frame doubles as the death verdict, so
        the home takes over before any rerouted operation arrives."""
        node = self.node
        if dead in self._flushed:
            return
        self._flushed.add(dead)
        home = self.home_of(dead)
        entries = self._replay_log.pop(dead, [])
        epoch = self.last_acked_epoch(dead)
        if home == node.node_id:
            yield from self.takeover(dead)
            for req_id, kind_value, payload in entries:
                yield from self.apply_replay(
                    dead, node.node_id, req_id, kind_value, payload
                )
            return
        frames = [(0, 0, b"")] + entries      # marker first
        for req_id, kind_value, payload in frames:
            head = _REPLAY_HEADER.pack(dead, epoch, req_id, kind_value)
            try:
                yield from node.mpi.isend(
                    Message(
                        MessageKind.REPLAY, node.node_id, home, 0,
                        head + payload,
                    )
                )
            except FaultError as exc:
                raise PeerLost(
                    f"replay log for node {dead} could not reach its "
                    f"recovery home {home}: {exc}"
                ) from exc

    # --------------------------------------------------------- home side
    def store_blob(self, src: int, payload: bytes) -> None:
        node = self.node
        blob = decode_checkpoint(payload)
        if blob is None:
            node.faults.append(
                FaultRecord(
                    node=src,
                    kind="torn_checkpoint",
                    detail=(
                        f"checkpoint blob from node {src} failed validation "
                        f"({len(payload)} bytes); keeping previous epoch"
                    ),
                    at_cycle=node.charged_cycles,
                    time_s=node.clock,
                )
            )
            return
        per = self.blobs.setdefault(src, {})
        per[int(blob["epoch"])] = blob
        while len(per) > 2:
            del per[min(per)]

    def _empty_blob(self, dead: int) -> Dict[str, Any]:
        return {
            "node": dead, "epoch": 0, "next_oid": 1, "highwater": {},
            "stdout": [], "objects": {}, "replica_dir": {},
            "virtual_next": {}, "adopted": {}, "recovered": {},
        }

    def takeover(self, dead: int):
        """Generator, idempotent: restore the newest intact blob for
        ``dead`` into this node's heap, aliased under the dead node's
        identity, and continue its allocation sequence virtually."""
        node = self.node
        if dead in self.recovered or dead in self.aborted:
            return
        node.dead_peers.add(dead)
        per = self.blobs.get(dead, {})
        blob = per[max(per)] if per else self._empty_blob(dead)
        machine = node.machine
        heap = machine.heap
        objects = blob["objects"]
        mapping: Dict[int, int] = {}
        entries: Dict[int, object] = {}
        from repro.vm.heap import HeapArray, HeapObject

        for oid in sorted(objects):
            shape = objects[oid]
            if shape[0] == "O":
                entry = HeapObject(shape[1], {k: None for k in shape[2]})
                ref = heap._insert(entry, shape[1])
            else:
                entry = HeapArray(shape[1], len(shape[2]))
                ref = heap._insert(entry, shape[1] + "[]")
            entries[oid] = entry
            mapping[oid] = ref.oid
        for oid in sorted(objects):
            shape = objects[oid]
            entry = entries[oid]
            if shape[0] == "O":
                for name, value in shape[2].items():
                    entry.fields[name] = self._remap(value, dead, mapping)
                entry.native_state = self._remap(shape[3], dead, mapping)
            else:
                entry.data[:] = [
                    self._remap(v, dead, mapping) for v in shape[2]
                ]
        for oid, local in mapping.items():
            node.replica_dir[(dead, oid)] = local
        for key, dead_local in blob["replica_dir"].items():
            if dead_local in mapping:
                node.replica_dir[tuple(key)] = mapping[dead_local]
        self.virtual_next[dead] = int(blob["next_oid"])
        for d2, nx in blob.get("virtual_next", {}).items():
            self.virtual_next.setdefault(d2, nx)
        self.adopted[dead] = list(blob["stdout"])
        for d2, lines in blob.get("adopted", {}).items():
            self.adopted.setdefault(d2, list(lines))
        self._replay_filter[dead] = dict(blob["highwater"])
        self.recovered[dead] = int(blob["epoch"])
        cost = RESTORE_BASE_CYCLES + RESTORE_CYCLES_PER_OBJECT * len(mapping)
        self.recovery_cycles += cost
        self.recovered_records.append(
            FaultRecord(
                node=dead,
                kind="recovered",
                detail=(
                    f"node {dead} re-homed to node {node.node_id} from "
                    f"checkpoint epoch {blob['epoch']} "
                    f"({len(mapping)} objects)"
                ),
                at_cycle=node.charged_cycles,
                time_s=node.clock,
            )
        )
        yield ("cost", cost)

    def abort(self, dead: int, detail: str) -> None:
        """Recovery for ``dead`` cannot be completed soundly: withdraw the
        takeover and let the run degrade (PR-6 semantics) instead of
        silently diverging."""
        node = self.node
        if dead in self.aborted:
            return
        self.aborted[dead] = detail
        self.recovered.pop(dead, None)
        self.adopted.pop(dead, None)
        self.recovered_records = [
            r for r in self.recovered_records if r.node != dead
        ]
        node.replica_dir = {
            k: v for k, v in node.replica_dir.items() if k[0] != dead
        }
        node.faults.append(
            FaultRecord(
                node=dead,
                kind="recovery_aborted",
                detail=detail,
                at_cycle=node.charged_cycles,
                time_s=node.clock,
            )
        )

    def apply_replay(self, dead: int, src: int, req_id: int,
                     kind_value: int, payload: bytes):
        """Generator: apply one replayed frame against the recovered state
        (epoch-aware: frames at or below the restored blob's highwater
        mark for ``src`` are already inside the snapshot and are skipped)."""
        yield from self.takeover(dead)
        if dead in self.aborted:
            return
        first = self._replay_src.setdefault(dead, src)
        if src != first:
            self.abort(
                dead,
                f"replay logs for node {dead} arrived from clients {first} "
                f"and {src}; cross-client replay order is undefined",
            )
            return
        if kind_value == 0:
            return  # takeover marker
        if abs(req_id) <= self._replay_filter.get(dead, {}).get(src, 0):
            return  # already inside the restored checkpoint
        body = decode_value(payload, self.node.node_id)
        self._replaying = True
        try:
            yield from self._apply_op(dead, MessageKind(kind_value), body)
        except VMError:
            pass  # the original op failed identically; state effects match
        except RecoveryAborted as exc:
            self.abort(dead, str(exc))
        finally:
            self._replaying = False

    def guard_outbound(self) -> None:
        """Called by the message exchange before any outgoing request: a
        *replayed* op that needs other nodes cannot be replayed soundly."""
        if self._replaying:
            raise RecoveryAborted(
                "replayed operation attempted outbound traffic"
            )

    def recovered_op(self, dead: int, kind: MessageKind, body):
        """Generator: one re-routed (post-recovery) operation addressed to
        the dead node, executed against the recovered state.  Raises
        :class:`PeerLost` when recovery was aborted, so callers degrade."""
        if dead in self.aborted:
            raise PeerLost(
                f"node {dead} is unrecoverable: {self.aborted[dead]}"
            )
        yield from self.takeover(dead)
        if dead in self.aborted:
            raise PeerLost(
                f"node {dead} is unrecoverable: {self.aborted[dead]}"
            )
        result = yield from self._apply_op(dead, kind, body)
        return result

    def _apply_op(self, dead: int, kind: MessageKind, body):
        """Generator: execute one operation that originally belonged to
        ``dead`` against this node's heap, with the dead node's stdout
        stream spliced out and its virtual allocation counter advanced."""
        node = self.node
        machine = node.machine
        heap = machine.heap
        n0 = len(machine.stdout)
        h0 = heap._next
        try:
            if kind is MessageKind.NEW:
                class_name, ctor_args = body
                root = self.virtual_next.get(dead, 1)
                ref = yield from create_local(
                    machine, class_name, ctor_args or []
                )
                # the constructor may allocate more than the object itself
                # (field arrays, nested locals): on the dead node those
                # took the oids right after ``root`` in the same
                # deterministic order, so alias the entire range — clients
                # hold refs into it (e.g. a field read of an array)
                for i in range(heap._next - h0):
                    node.replica_dir.setdefault((dead, root + i), h0 + i)
                node.replica_dir[(dead, root)] = ref.oid
                return DependentRef(dead, root, class_name)
            if kind is MessageKind.DEPENDENCE:
                oid, access_type, member, args = body
                local = node.replica_dir.get((dead, oid))
                if local is None:
                    raise VMError(
                        f"node {node.node_id} recovered no copy of object "
                        f"n{dead}#{oid}"
                    )
                result = yield from access_local(
                    machine, Ref(local), access_type, member, args or []
                )
                return result
            if kind is MessageKind.REPLICA_NEW:
                class_name, ctor_args, pnode, poid = body
                ref = yield from create_local(
                    machine, class_name, ctor_args or []
                )
                node.replica_dir[(pnode, poid)] = ref.oid
                return True
            if kind is MessageKind.REPLICA_DEP:
                pnode, poid, access_type, member, args = body
                if pnode == dead:
                    local = node.replica_dir.get((dead, poid))
                else:
                    local = node.replica_dir.get((pnode, poid))
                if local is None:
                    raise VMError(
                        f"node {node.node_id} recovered no copy of object "
                        f"n{pnode}#{poid}"
                    )
                result = yield from access_local(
                    machine, Ref(local), access_type, member, args or []
                )
                return result
            raise VMError(f"unexpected recovered op kind {kind!r}")
        finally:
            self.virtual_next[dead] = (
                self.virtual_next.get(dead, 1) + (heap._next - h0)
            )
            moved = machine.stdout[n0:]
            del machine.stdout[n0:]
            self.adopted.setdefault(dead, []).extend(moved)

    # ---------------------------------------------------------- restore
    def _remap(self, value, dead: int, mapping: Dict[int, int]):
        """Swizzle a checkpointed value into this node's heap: the dead
        node's local references follow the restore mapping; references to
        other nodes travel unchanged."""
        if isinstance(value, Ref):
            return Ref(mapping.get(value.oid, value.oid))
        if isinstance(value, DependentRef):
            if value.node == dead and value.oid in mapping:
                return Ref(mapping[value.oid])
            return value
        if isinstance(value, list):
            return [self._remap(v, dead, mapping) for v in value]
        if isinstance(value, tuple):
            return tuple(self._remap(v, dead, mapping) for v in value)
        return value

    # ---------------------------------------------------------- summary
    def parse_replay_frame(self, payload: bytes):
        """Split one REPLAY frame into (dead, epoch, req_id, kind_value,
        original payload)."""
        dead, epoch, req_id, kind_value = _REPLAY_HEADER.unpack_from(payload)
        return dead, epoch, req_id, kind_value, payload[_REPLAY_HEADER.size:]
