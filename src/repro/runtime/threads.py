"""In-process thread backend: real concurrency, shared interpreter.

One OS thread per plan node drives that node's process generator.  ``cost``
events only charge accounting (wall time is what it is); ``wait`` events
block on a condition variable until a new message is delivered.  Delivery
appends to a locked per-node FIFO queue, so per-(src, dst) ordering is the
sender's program order — the same guarantee the simulated network provides.

Clocks are wall clocks: a node's ``clock_s`` is the wall time from backend
start to its thread finishing, the makespan is the wall time until the last
thread finishes, and ``busy_s`` converts charged cycles at the node's
nominal speed (so utilization stays comparable across backends).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional

from repro.errors import RuntimeServiceError, VMError
from repro.runtime.backend import (
    BackendNode,
    BackendRun,
    RunPolicy,
    RuntimeBackend,
    Transport,
    collect_latencies,
    finalize_recovery,
    provision,
    register_backend,
    summarize_recovery,
)
from repro.runtime.cluster import ClusterSpec, NodeSpec
from repro.runtime.faults import FaultError, NodeCrashed, PeerLost
from repro.runtime.message import FAULT_NOTICE, Message, MessageKind


class ThreadNode(BackendNode):
    """One node run by a dedicated thread: locked FIFO inbox + wakeup."""

    def __init__(self, node_id: int, spec: NodeSpec) -> None:
        super().__init__(node_id, spec)
        self._cond = threading.Condition()
        self._queue: List[Message] = []
        # delivery counter vs what the node has examined: a failed
        # take_matching records the version it saw, so a wait only blocks
        # while nothing new has been delivered since that scan
        self._version = 0
        self._seen = 0
        self._cluster_size = 0  # set by the backend at construction

    def deliver(self, msg: Message) -> None:
        with self._cond:
            self._queue.append(msg)
            self._version += 1
            self._cond.notify_all()

    def take_matching(
        self, match: Callable[[Message], bool]
    ) -> Optional[Message]:
        with self._cond:
            for i, m in enumerate(self._queue):
                if match(m):
                    self.msgs_received += 1
                    return self._queue.pop(i)
            self._seen = self._version
            return None

    def iprobe(self, match: Callable[[Message], bool]) -> bool:
        with self._cond:
            return any(match(m) for m in self._queue)

    def wait_for_message(self, timeout_s: float) -> None:
        # short-circuit: only this node's own thread mutates dead_peers, so
        # if every peer is already known dead *now*, nothing can ever be
        # delivered — waiting out the full timeout would just stall the run
        if self._cluster_size > 1 and all(
            p in self.dead_peers
            for p in range(self._cluster_size)
            if p != self.node_id
        ):
            raise PeerLost(
                f"node {self.node_id} is waiting for messages but every "
                f"peer is already dead"
            )
        with self._cond:
            deadline = time.monotonic() + timeout_s
            while self._version == self._seen:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RuntimeServiceError(
                        f"thread backend: node {self.node_id} blocked "
                        f"{timeout_s:.0f}s with no incoming messages "
                        "(distributed deadlock?)"
                    )
                self._cond.wait(remaining)


@register_backend
class ThreadBackend(RuntimeBackend, Transport):
    """One thread per node over a shared interpreter."""

    name = "thread"
    #: safety net for protocol bugs; real waits are notified immediately
    WAIT_TIMEOUT_S = 60.0

    def __init__(self, spec: ClusterSpec) -> None:
        super().__init__(spec)
        self.nodes = [ThreadNode(i, ns) for i, ns in enumerate(spec.nodes)]
        for node in self.nodes:
            node._cluster_size = len(self.nodes)
        self._totals_lock = threading.Lock()
        self.total_messages = 0
        self.total_bytes = 0

    # ---------------------------------------------------------------- transport
    def post(self, src: int, dst: int, msg: Message) -> None:
        if not 0 <= dst < len(self.nodes):
            raise RuntimeServiceError(f"message to unknown node {dst}")
        sender = self.nodes[src]
        sender.msgs_sent += 1           # sender's own thread is the caller
        sender.bytes_sent += msg.size
        with self._totals_lock:
            self.total_messages += 1
            self.total_bytes += msg.size
        receiver = self.nodes[dst]
        # injected duplicates are counted (they were sent) but dropped at
        # intake so the request/reply protocol sees each frame once
        if receiver.injector is not None and not receiver.accept_frame(msg):
            return
        receiver.deliver(msg)

    # ---------------------------------------------------------------- execution
    def execute(self, program, loaded, policy: RunPolicy) -> BackendRun:
        starter = provision(self, loaded, policy)
        errors: List[BaseException] = []
        t0 = time.perf_counter()

        def drive(node: ThreadNode) -> None:
            events = 0
            try:
                for event in node.gen:
                    events += 1
                    if events > policy.max_events:
                        raise RuntimeServiceError(
                            "execution exceeded event budget"
                        )
                    kind = event[0]
                    if kind == "cost":
                        node.charge(event[1])
                        if node.injector is not None and (
                            node.injector.crash_due(node.charged_cycles)
                        ):
                            raise NodeCrashed(
                                f"node {node.node_id} crashed at cycle "
                                f"{node.charged_cycles} (planned)"
                            )
                    elif kind == "wait":
                        node.wait_for_message(self.WAIT_TIMEOUT_S)
                    else:  # pragma: no cover
                        raise RuntimeServiceError(f"unknown event {event!r}")
            except FaultError as exc:
                # injected/fault-family failure: degrade, do not abort the
                # run — record the evidence and tell live peers promptly
                node.record_fault(exc)
                self._fault_notice(node.node_id)
            except BaseException as exc:
                errors.append(exc)
                self._emergency_shutdown(node.node_id)
            finally:
                node.done = True
                node.clock = time.perf_counter() - t0

        threads = [
            threading.Thread(
                target=drive, args=(node,), name=f"repro-node-{node.node_id}",
                daemon=True,
            )
            for node in self.nodes
        ]
        for t in threads:
            t.start()
        # every blocking point has its own safety net (wait_for_message
        # times out, cost events are budgeted), so a plain join cannot hang
        # — and long computations get as much wall time as they need
        for t in threads:
            t.join()
        if errors:
            # a VMError is the application-level root cause; teardown
            # errors on other nodes are secondary
            raise next(
                (e for e in errors if isinstance(e, VMError)), errors[0]
            )

        makespan = time.perf_counter() - t0
        stats = [n.snapshot_stats() for n in self.nodes]
        recovered, ckpt_cycles, rec_cycles = finalize_recovery(
            self.nodes, stats
        )
        stdout = [line for s in stats for line in s.stdout]
        faults = [f for n in self.nodes for f in n.faults]
        return BackendRun(
            result=starter.result,
            makespan_s=makespan,
            total_messages=self.total_messages,
            total_bytes=self.total_bytes,
            node_stats=stats,
            stdout=stdout,
            faults=faults,
            degraded=summarize_recovery(
                faults,
                recovered,
                recovering=policy.recovery is not None
                and policy.recovery.enabled,
                main_partition=policy.main_partition,
            ),
            recovered=recovered,
            checkpoint_overhead_cycles=ckpt_cycles,
            recovery_cycles=rec_cycles,
            latency_s=collect_latencies(self.nodes),
        )

    def _fault_notice(self, src: int) -> None:
        """Node ``src`` died of an injected fault: notify every live peer
        with an emergency SHUTDOWN carrying the FAULT_NOTICE req id, so
        replicated runs can keep serving while direct requesters fail
        fast."""
        for node in self.nodes:
            if node.node_id != src and not node.done:
                node.deliver(
                    Message(MessageKind.SHUTDOWN, src, node.node_id, FAULT_NOTICE)
                )

    def _emergency_shutdown(self, src: int) -> None:
        """A node died with an exception: release every peer's service loop
        so the join cannot hang (bypasses transport counters on purpose)."""
        for node in self.nodes:
            if node.node_id != src and not node.done:
                node.deliver(Message(MessageKind.SHUTDOWN, src, node.node_id, 0))
