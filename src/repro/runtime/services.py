"""Runtime services (paper §5, Figure 10): ExecutionStarter and
MessageExchange, plus the DependentObject syscall dispatcher that connects
the VM to them.

"The core of this MPI-aware runtime support is the Message Exchange service.
This service processes all the send and receive MPI communication generated
from the object dependence information."

Protocol (all request/reply, with nested requests served while waiting —
remote calls may call back into the requester):

* ``NEW  [class_name, ctor_args]``          → reply ``[status, ref]``
* ``DEPENDENCE [oid, access_type, member, args]`` → reply ``[status, value]``
* ``REPLICA_NEW [class_name, ctor_args, primary_node, primary_oid]`` →
  reply ``[status, True]`` — create a replica copy aliased to the primary
  object's identity
* ``REPLICA_DEP [primary_node, primary_oid, access_type, member, args]`` →
  reply ``[status, value]`` — a dependence access addressed to whichever
  local copy aliases that identity
* ``REPLY [status, value]`` — status 0 = ok, 1 = remote error (message
  text), 2 = recovery failure (the peer is unrecoverable; the requester
  degrades via :class:`~repro.runtime.faults.PeerLost`)
* ``SHUTDOWN`` — ends a node's serve loop; with ``req_id == FAULT_NOTICE``
  it is instead an emergency notice that ``src`` died (receivers mark the
  peer dead and keep serving unless the dead node ran ``main``).

The recovery tier (``repro.runtime.checkpoint``) adds HEARTBEAT /
CHECKPOINT / CHECKPOINT_ACK / REPLAY / RECOVER_NEW frames.  Its hooks live
here, at protocol quiescence: the top of the serve loop and the entry of
each outgoing request call ``NodeRecovery.tick`` (heartbeats, leases,
checkpoint barriers), clients retain state-bearing frames in a replay log,
and requests addressed to a recoverably-dead peer are transparently
re-routed to that peer's recovery home.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.errors import RuntimeServiceError, VMError
from repro.runtime.faults import FaultError, PeerLost, QuorumLost, RetriesExhausted
from repro.runtime.invoke import call_and_run
from repro.runtime.local import access_local, create_local
from repro.runtime.message import FAULT_NOTICE, Message, MessageKind
from repro.runtime.backend import BackendNode
from repro.runtime.serial import decode_value, encode_value
from repro.vm.values import DependentRef, Ref

OK = 0
ERR = 1
#: reply status: the request touched an unrecoverable dead peer — the
#: requester raises PeerLost (degrade), not VMError (program error)
RECOVERY_ERR = 2

#: cycles charged for dispatching one incoming request (scheduling + lookup)
DISPATCH_CYCLES = 250

#: req_id marking a fire-and-forget request (no reply expected).  Under an
#: enabled RecoveryPlan, posts instead carry *negative* unique ids (same
#: counter as requests) so checkpoint highwater marks cover them; any
#: ``req_id <= NO_REPLY`` means "do not reply".
NO_REPLY = 0

#: request kinds the recovery tier can transparently re-route to a dead
#: peer's recovery home (replicated-object traffic keeps its own quorum
#: fallback instead)
_RECOVERABLE_KINDS = (MessageKind.NEW, MessageKind.DEPENDENCE)


class MessageExchange:
    """Per-node request/reply engine over the MPI service."""

    def __init__(self, node: BackendNode) -> None:
        self.node = node
        self.requests_served = 0
        self.requests_sent = 0
        #: per-request latency samples in seconds (send to reply-decoded);
        #: the simulator's virtual clock makes these deterministic, real
        #: backends record wall time
        self.latencies_s: List[float] = []

    # ------------------------------------------------------------------ client
    def request(self, dst: int, kind: MessageKind, payload_obj) -> Iterator:
        """Generator: send a request and wait for its reply, serving any
        incoming requests in the meantime (nested remote calls).  Each
        completed round-trip contributes one latency sample."""
        t0 = self.node.now()
        result = yield from self._request_inner(dst, kind, payload_obj)
        self.latencies_s.append(self.node.now() - t0)
        return result

    def _request_inner(self, dst: int, kind: MessageKind,
                       payload_obj) -> Iterator:
        node = self.node
        if dst == node.node_id:
            raise RuntimeServiceError("request addressed to self")
        recovery = node.recovery
        if recovery is not None:
            recovery.guard_outbound()
            yield from recovery.tick(serving=False)
        if dst in node.dead_peers:
            if (
                recovery is not None
                and kind in _RECOVERABLE_KINDS
                and recovery.can_recover(dst)
            ):
                result = yield from self._recover_request(dst, kind, payload_obj)
                return result
            raise PeerLost(
                f"node {node.node_id} requested {kind.name} from node {dst}, "
                f"which already failed"
            )
        req_id = node.mpi.next_req_id()
        payload = encode_value(payload_obj, node.node_id, node.machine.heap)
        msg = Message(kind, node.node_id, dst, req_id, payload)
        if recovery is not None:
            recovery.log_request(dst, req_id, kind, payload)
        self.requests_sent += 1
        try:
            yield from node.mpi.send(msg)
        except PeerLost:
            # transport-level death notice (e.g. the process backend's pipe
            # closed under the write): the frame never left this node, so it
            # is safe to drop from the replay log and re-issue against the
            # recovered state — same reasoning as the FAULT_NOTICE path below
            node.dead_peers.add(dst)
            if (
                recovery is not None
                and kind in _RECOVERABLE_KINDS
                and recovery.can_recover(dst)
            ):
                recovery.unlog_request(dst, req_id)
                result = yield from self._recover_request(dst, kind, payload_obj)
                return result
            raise
        return (
            yield from self._await_reply(req_id, dst, kind=kind,
                                         payload_obj=payload_obj)
        )

    def post(self, dst: int, kind: MessageKind, payload_obj) -> Iterator:
        """Fire-and-forget request (the asynchronous point-to-point style
        the paper argues message exchange enables over RPC).  Per-link FIFO
        ordering keeps later synchronous reads consistent.  Remote errors
        are lost — only safe for idempotent state writes."""
        node = self.node
        if dst == node.node_id:
            raise RuntimeServiceError("post addressed to self")
        recovery = node.recovery
        req_id = NO_REPLY
        if recovery is not None:
            recovery.guard_outbound()
            if (
                dst in node.dead_peers
                and kind is MessageKind.DEPENDENCE
                and recovery.can_recover(dst)
            ):
                # re-route the write to the dead peer's recovery home
                yield from recovery.flush_replay(dst)
                home = recovery.home_of(dst)
                oid, access_type, member, args = payload_obj
                routed = [dst, oid, access_type, member, args]
                if home == node.node_id:
                    yield from recovery.recovered_op(
                        dst, MessageKind.DEPENDENCE, payload_obj
                    )
                else:
                    yield from self.post(home, MessageKind.REPLICA_DEP, routed)
                return None
            # unique negative ids keep fire-and-forget posts inside the
            # checkpoint highwater accounting without soliciting replies
            req_id = -node.mpi.next_req_id()
        payload = encode_value(payload_obj, node.node_id, node.machine.heap)
        msg = Message(kind, node.node_id, dst, req_id, payload)
        if recovery is not None:
            recovery.log_request(dst, req_id, kind, payload)
        self.requests_sent += 1
        try:
            yield from node.mpi.isend(msg)
        except PeerLost:
            # the pipe closed under the write: the frame never left, so
            # unlog it and re-enter — the dead-peer branch at the top now
            # owns the re-route
            node.dead_peers.add(dst)
            if (
                recovery is not None
                and kind is MessageKind.DEPENDENCE
                and recovery.can_recover(dst)
            ):
                recovery.unlog_request(dst, req_id)
                result = yield from self.post(dst, kind, payload_obj)
                return result
            raise
        return None

    def _await_reply(
        self,
        req_id: int,
        dst: Optional[int] = None,
        kind: Optional[MessageKind] = None,
        payload_obj=None,
    ) -> Iterator:
        node = self.node

        def match(m: Message) -> bool:
            # take our reply; serve any other request kind while waiting;
            # SHUTDOWN while a reply is pending is a peer's teardown or a
            # fault notice — accept it so the requester fails fast instead
            # of stalling out its wait timeout
            if m.kind is MessageKind.REPLY:
                return m.req_id == req_id
            return True

        while True:
            msg = yield from node.mpi.recv(match)
            if msg.kind is MessageKind.REPLY:
                status, value = decode_value(msg.payload, node.node_id)
                if status == ERR:
                    raise VMError(f"remote error from node {msg.src}: {value}")
                if status == RECOVERY_ERR:
                    raise PeerLost(
                        f"recovery failed behind node {msg.src}: {value}"
                    )
                return value
            if msg.kind is MessageKind.SHUTDOWN:
                if msg.req_id == FAULT_NOTICE:
                    node.dead_peers.add(msg.src)
                    if msg.src == dst:
                        recovery = node.recovery
                        if (
                            recovery is not None
                            and kind in _RECOVERABLE_KINDS
                            and recovery.can_recover(dst)
                        ):
                            # the in-flight request died with the peer: it
                            # was never applied (FIFO: its reply would have
                            # preceded any checkpoint ack), so drop it from
                            # the replay log and re-issue it against the
                            # recovered state
                            recovery.unlog_request(dst, req_id)
                            result = yield from self._recover_request(
                                dst, kind, payload_obj
                            )
                            return result
                    if msg.src == dst or msg.src == node.main_partition:
                        raise PeerLost(
                            f"node {msg.src} died while node {node.node_id} "
                            f"awaited a reply from node {dst}"
                        )
                    continue  # someone else died — keep waiting
                raise RuntimeServiceError(
                    f"node {msg.src} shut down while node {node.node_id} "
                    f"awaited a reply (peer failure)"
                )
            yield from self.handle_request(msg)

    def _recover_request(self, dead: int, kind: MessageKind,
                         payload_obj) -> Iterator:
        """Generator: transparently satisfy a request whose destination
        died recoverably — flush this client's replay log (the leading
        marker frame is the home's death verdict), then execute against
        the recovered state, locally when this node *is* the home."""
        node = self.node
        recovery = node.recovery
        yield from recovery.flush_replay(dead)
        home = recovery.home_of(dead)
        if home == node.node_id:
            result = yield from recovery.recovered_op(dead, kind, payload_obj)
            return result
        if kind is MessageKind.NEW:
            class_name, ctor_args = payload_obj
            result = yield from self.request(
                home, MessageKind.RECOVER_NEW, [dead, class_name, ctor_args]
            )
            return result
        oid, access_type, member, args = payload_obj
        result = yield from self.request(
            home, MessageKind.REPLICA_DEP, [dead, oid, access_type, member, args]
        )
        return result

    # ------------------------------------------------------------------ server
    def handle_request(self, msg: Message) -> Iterator:
        node = self.node
        machine = node.machine
        recovery = node.recovery
        if recovery is not None:
            recovery.note_frame(msg.src)
            if msg.kind is MessageKind.HEARTBEAT:
                from repro.runtime.checkpoint import HEARTBEAT_PING

                if msg.req_id == HEARTBEAT_PING:
                    yield from recovery.pong(msg.src)
                return None
            if msg.kind is MessageKind.CHECKPOINT:
                recovery.store_blob(msg.src, msg.payload)
                return None
            if msg.kind is MessageKind.CHECKPOINT_ACK:
                epoch, highwater = decode_value(msg.payload, node.node_id)
                recovery.note_ack(msg.src, epoch, highwater)
                return None
            if msg.kind is MessageKind.REPLAY:
                dead, _epoch, orig_req, kind_value, inner = (
                    recovery.parse_replay_frame(msg.payload)
                )
                yield ("cost", DISPATCH_CYCLES)
                yield from recovery.apply_replay(
                    dead, msg.src, orig_req, kind_value, inner
                )
                return None
        self.requests_served += 1
        yield ("cost", DISPATCH_CYCLES)
        try:
            body = decode_value(msg.payload, node.node_id)
            if recovery is not None and msg.kind in (
                MessageKind.NEW,
                MessageKind.DEPENDENCE,
                MessageKind.REPLICA_NEW,
                MessageKind.REPLICA_DEP,
            ):
                recovery.note_applied(msg.src, msg.req_id)
            if msg.kind is MessageKind.RECOVER_NEW and recovery is not None:
                dead, class_name, ctor_args = body
                try:
                    value = yield from recovery.recovered_op(
                        dead, MessageKind.NEW, [class_name, ctor_args or []]
                    )
                    result: List = [OK, value]
                except FaultError as exc:
                    result = [RECOVERY_ERR, str(exc)]
            elif msg.kind is MessageKind.NEW:
                class_name, ctor_args = body
                ref = yield from create_local(machine, class_name, ctor_args or [])
                result: List = [OK, ref]
            elif msg.kind is MessageKind.DEPENDENCE:
                oid, access_type, member, args = body
                recv = Ref(oid)
                value = yield from access_local(
                    machine, recv, access_type, member, args or []
                )
                result = [OK, value]
            elif msg.kind is MessageKind.REPLICA_NEW:
                class_name, ctor_args, pnode, poid = body
                ref = yield from create_local(machine, class_name, ctor_args or [])
                node.replica_dir[(pnode, poid)] = ref.oid
                result = [OK, True]
            elif msg.kind is MessageKind.REPLICA_DEP:
                pnode, poid, access_type, member, args = body
                if recovery is not None and (
                    recovery.responsible_for(pnode)
                    or (pnode in recovery.aborted)
                    or (
                        pnode != node.node_id
                        and pnode in node.dead_peers
                        and (pnode, poid) not in node.replica_dir
                        and recovery.home_of(pnode) == node.node_id
                    )
                ):
                    # an access re-routed to us as the dead primary's
                    # recovery home (the takeover is lazy: the replay
                    # marker normally precedes this, but a never-acked
                    # client may lead with the access itself)
                    try:
                        value = yield from recovery.recovered_op(
                            pnode, MessageKind.REPLICA_DEP, body
                        )
                        result = [OK, value]
                    except FaultError as exc:
                        result = [RECOVERY_ERR, str(exc)]
                elif pnode == node.node_id:
                    oid = poid
                    value = yield from access_local(
                        machine, Ref(oid), access_type, member, args or []
                    )
                    result = [OK, value]
                else:
                    oid = node.replica_dir.get((pnode, poid))
                    if oid is None:
                        raise VMError(
                            f"node {node.node_id} holds no replica of "
                            f"object n{pnode}#{poid}"
                        )
                    value = yield from access_local(
                        machine, Ref(oid), access_type, member, args or []
                    )
                    result = [OK, value]
            else:
                raise RuntimeServiceError(f"unexpected request {msg!r}")
        except VMError as exc:
            result = [ERR, str(exc)]
        if msg.req_id <= NO_REPLY:
            return None  # asynchronous request: nobody is waiting
        payload = encode_value(result, node.node_id, machine.heap)
        yield from node.mpi.send(node.mpi.reply_to(msg, payload))

    def serve_forever(self) -> Iterator:
        """The service loop for non-initiating nodes: handle requests until
        SHUTDOWN.  A fault notice about a non-main peer is recorded and
        served *through* — that is what lets a replicated run outlive a
        minority of its replicas."""
        node = self.node
        while True:
            if node.recovery is not None:
                # protocol quiescence: no request is half-applied here, so
                # this is where heartbeats, leases and checkpoint barriers
                # are evaluated
                yield from node.recovery.tick(serving=True)
            msg = yield from node.mpi.recv_any()
            if msg.kind is MessageKind.SHUTDOWN:
                if msg.req_id == FAULT_NOTICE:
                    node.dead_peers.add(msg.src)
                    if msg.src == node.main_partition:
                        return None  # the initiator died: nothing left to serve
                    continue
                return None
            yield from self.handle_request(msg)


def make_node_syscall(node: BackendNode, async_writes: bool = False,
                      replicas=None):
    """The DependentObject dispatcher for a cluster node: resolves create/
    access locally when possible, otherwise exchanges NEW / DEPENDENCE
    messages with the object's home node.

    ``async_writes`` enables the communication optimization of paper §4.2:
    remote field/array *writes* go fire-and-forget instead of waiting for a
    reply (FIFO links keep read-after-write consistent).

    ``replicas`` maps class names to the ordered node tuple holding their
    copies (primary first).  Creates of a replicated class allocate on every
    replica (aliased to the primary copy's identity) and must reach a write
    majority; reads need ⌈n/2⌉ agreeing replicas; writes and invocations go
    to every live replica and must reach a write majority — the MCS quorum
    discipline, so any read quorum intersects any write quorum."""
    from repro.distgen.quorum import read_quorum, write_quorum
    from repro.lang.symbols import (
        ARRAY_GET,
        ARRAY_LEN,
        ARRAY_SET,
        FIELD_GET,
        FIELD_SET,
    )

    replicas = dict(replicas or {})
    read_types = (FIELD_GET, ARRAY_GET, ARRAY_LEN)

    def _local_replica_oid(pnode: int, poid: int):
        """This node's local oid for a replicated identity, or None."""
        if pnode == node.node_id:
            return poid
        return node.replica_dir.get((pnode, poid))

    def _create_replicated(class_name: str, ctor_args, rset) -> Iterator:
        """Allocate on every replica; the primary copy's (node, oid) is the
        object's identity, the others alias it via REPLICA_NEW."""
        machine = node.machine
        primary = rset[0]
        try:
            if primary == node.node_id:
                ref = yield from create_local(machine, class_name, ctor_args)
                primary_oid = ref.oid
            else:
                ref = yield from node.exchange.request(
                    primary, MessageKind.NEW, [class_name, ctor_args]
                )
                primary_oid = ref.oid
        except FaultError as exc:
            raise QuorumLost(
                f"primary replica (node {primary}) of {class_name} "
                f"unreachable: {exc}"
            ) from exc
        acks = 1
        for replica in rset[1:]:
            try:
                if replica == node.node_id:
                    local = yield from create_local(machine, class_name, ctor_args)
                    node.replica_dir[(primary, primary_oid)] = local.oid
                else:
                    yield from node.exchange.request(
                        replica,
                        MessageKind.REPLICA_NEW,
                        [class_name, ctor_args, primary, primary_oid],
                    )
                acks += 1
            except (PeerLost, RetriesExhausted, VMError):
                continue  # a minority of replicas may be gone
        if acks < write_quorum(len(rset)):
            raise QuorumLost(
                f"created only {acks}/{len(rset)} replicas of {class_name} "
                f"(write quorum {write_quorum(len(rset))})"
            )
        # always a DependentRef — even when the primary is local — so every
        # later access routes back through this dispatcher's quorum path
        return DependentRef(primary, primary_oid, class_name)

    def _access_replicated(recv: DependentRef, access_type: int, member: str,
                           call_args) -> Iterator:
        rset = replicas[recv.class_name]
        machine = node.machine
        n = len(rset)
        if access_type in read_types:
            needed, values = read_quorum(n), []
            for replica in rset:
                if len(values) >= needed:
                    break
                try:
                    if replica == node.node_id:
                        oid = _local_replica_oid(recv.node, recv.oid)
                        if oid is None:
                            continue
                        value = yield from access_local(
                            machine, Ref(oid), access_type, member, call_args
                        )
                    else:
                        value = yield from node.exchange.request(
                            replica,
                            MessageKind.REPLICA_DEP,
                            [recv.node, recv.oid, access_type, member, call_args],
                        )
                    values.append(value)
                except (PeerLost, RetriesExhausted, VMError):
                    continue
            if len(values) < needed:
                raise QuorumLost(
                    f"read quorum on {recv!r}.{member}: {len(values)}/{needed} "
                    f"replicas reachable"
                )
            if any(v != values[0] for v in values[1:]):
                raise QuorumLost(
                    f"read quorum on {recv!r}.{member} disagreed: {values!r}"
                )
            return values[0]
        # writes and invocations: apply on every live replica, majority must
        # succeed; the primary's result (or the first success) is returned
        acks, result, have_result = 0, None, False
        for replica in rset:
            try:
                if replica == node.node_id:
                    oid = _local_replica_oid(recv.node, recv.oid)
                    if oid is None:
                        continue
                    value = yield from access_local(
                        machine, Ref(oid), access_type, member, call_args
                    )
                else:
                    value = yield from node.exchange.request(
                        replica,
                        MessageKind.REPLICA_DEP,
                        [recv.node, recv.oid, access_type, member, call_args],
                    )
                acks += 1
                if not have_result or replica == recv.node:
                    result, have_result = value, True
            except (PeerLost, RetriesExhausted, VMError):
                continue
        if acks < write_quorum(n):
            raise QuorumLost(
                f"write quorum on {recv!r}.{member}: {acks}/{n} replicas "
                f"acknowledged (need {write_quorum(n)})"
            )
        return result

    def syscall(kind: str, recv, args) -> Iterator:
        machine = node.machine
        if kind == "create":
            ctor_args, location, class_name = args
            rset = replicas.get(class_name)
            if rset is not None and len(rset) > 1:
                result = yield from _create_replicated(
                    class_name, ctor_args or [], rset
                )
                return result
            if location == node.node_id:
                result = yield from create_local(machine, class_name, ctor_args or [])
                return result
            result = yield from node.exchange.request(
                location, MessageKind.NEW, [class_name, ctor_args or []]
            )
            return result
        if kind == "access":
            call_args, access_type, member = args
            if isinstance(recv, DependentRef):
                rset = replicas.get(recv.class_name)
                if rset is not None and len(rset) > 1:
                    result = yield from _access_replicated(
                        recv, access_type, member, call_args or []
                    )
                    return result
                if recv.node == node.node_id:
                    recv = Ref(recv.oid)
                elif async_writes and access_type in (FIELD_SET, ARRAY_SET):
                    yield from node.exchange.post(
                        recv.node,
                        MessageKind.DEPENDENCE,
                        [recv.oid, access_type, member, call_args or []],
                    )
                    return None
                else:
                    result = yield from node.exchange.request(
                        recv.node,
                        MessageKind.DEPENDENCE,
                        [recv.oid, access_type, member, call_args or []],
                    )
                    return result
            if recv is None:
                raise VMError("dependence access on null")
            result = yield from access_local(
                machine, recv, access_type, member, call_args or []
            )
            return result
        raise RuntimeServiceError(f"unknown syscall {kind!r}")  # pragma: no cover

    return syscall


class ExecutionStarter:
    """Starts the application (paper: "The Execution Starter service starts
    the application by invoking the main() method ... Only one copy needs to
    be active on the processor node where the user initiates the
    application.")."""

    def __init__(self, node: BackendNode, main_method) -> None:
        self.node = node
        self.main_method = main_method
        self.result = None

    def run(self) -> Iterator:
        node = self.node
        self.result = yield from call_and_run(
            node.machine, self.main_method, None, [None]
        )
        # application finished: stop every other node's service loop.  Dead
        # peers are skipped, and a fault on the farewell itself must not
        # turn a completed run into a failed one.
        for other in range(node.mpi.size):
            if other == node.node_id or other in node.dead_peers:
                continue
            try:
                yield from node.mpi.send(
                    Message(MessageKind.SHUTDOWN, node.node_id, other, 0)
                )
            except FaultError:
                continue
        return self.result
