"""Runtime services (paper §5, Figure 10): ExecutionStarter and
MessageExchange, plus the DependentObject syscall dispatcher that connects
the VM to them.

"The core of this MPI-aware runtime support is the Message Exchange service.
This service processes all the send and receive MPI communication generated
from the object dependence information."

Protocol (all request/reply, with nested requests served while waiting —
remote calls may call back into the requester):

* ``NEW  [class_name, ctor_args]``          → reply ``[status, ref]``
* ``DEPENDENCE [oid, access_type, member, args]`` → reply ``[status, value]``
* ``REPLY [status, value]`` — status 0 = ok, 1 = remote error (message text)
* ``SHUTDOWN`` — ends a node's serve loop.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import RuntimeServiceError, VMError
from repro.runtime.invoke import call_and_run
from repro.runtime.local import access_local, create_local
from repro.runtime.message import Message, MessageKind
from repro.runtime.backend import BackendNode
from repro.runtime.serial import decode_value, encode_value
from repro.vm.values import DependentRef, Ref

OK = 0
ERR = 1

#: cycles charged for dispatching one incoming request (scheduling + lookup)
DISPATCH_CYCLES = 250

#: req_id marking a fire-and-forget request (no reply expected)
NO_REPLY = 0


class MessageExchange:
    """Per-node request/reply engine over the MPI service."""

    def __init__(self, node: BackendNode) -> None:
        self.node = node
        self.requests_served = 0
        self.requests_sent = 0

    # ------------------------------------------------------------------ client
    def request(self, dst: int, kind: MessageKind, payload_obj) -> Iterator:
        """Generator: send a request and wait for its reply, serving any
        incoming requests in the meantime (nested remote calls)."""
        node = self.node
        if dst == node.node_id:
            raise RuntimeServiceError("request addressed to self")
        req_id = node.mpi.next_req_id()
        payload = encode_value(payload_obj, node.node_id, node.machine.heap)
        msg = Message(kind, node.node_id, dst, req_id, payload)
        self.requests_sent += 1
        yield from node.mpi.send(msg)
        return (yield from self._await_reply(req_id))

    def post(self, dst: int, kind: MessageKind, payload_obj) -> Iterator:
        """Fire-and-forget request (the asynchronous point-to-point style
        the paper argues message exchange enables over RPC).  Per-link FIFO
        ordering keeps later synchronous reads consistent.  Remote errors
        are lost — only safe for idempotent state writes."""
        node = self.node
        if dst == node.node_id:
            raise RuntimeServiceError("post addressed to self")
        payload = encode_value(payload_obj, node.node_id, node.machine.heap)
        msg = Message(kind, node.node_id, dst, NO_REPLY, payload)
        self.requests_sent += 1
        yield from node.mpi.isend(msg)
        return None

    def _await_reply(self, req_id: int) -> Iterator:
        node = self.node

        def match(m: Message) -> bool:
            if m.kind is MessageKind.REPLY:
                return m.req_id == req_id
            # SHUTDOWN while a reply is pending can only be a peer's
            # emergency teardown — accept it so the requester fails fast
            # instead of stalling out its wait timeout
            return m.kind in (
                MessageKind.NEW, MessageKind.DEPENDENCE, MessageKind.SHUTDOWN
            )

        while True:
            msg = yield from node.mpi.recv(match)
            if msg.kind is MessageKind.REPLY:
                status, value = decode_value(msg.payload, node.node_id)
                if status == ERR:
                    raise VMError(f"remote error from node {msg.src}: {value}")
                return value
            if msg.kind is MessageKind.SHUTDOWN:
                raise RuntimeServiceError(
                    f"node {msg.src} shut down while node {node.node_id} "
                    f"awaited a reply (peer failure)"
                )
            yield from self.handle_request(msg)

    # ------------------------------------------------------------------ server
    def handle_request(self, msg: Message) -> Iterator:
        node = self.node
        machine = node.machine
        self.requests_served += 1
        yield ("cost", DISPATCH_CYCLES)
        try:
            body = decode_value(msg.payload, node.node_id)
            if msg.kind is MessageKind.NEW:
                class_name, ctor_args = body
                ref = yield from create_local(machine, class_name, ctor_args or [])
                result: List = [OK, ref]
            elif msg.kind is MessageKind.DEPENDENCE:
                oid, access_type, member, args = body
                recv = Ref(oid)
                value = yield from access_local(
                    machine, recv, access_type, member, args or []
                )
                result = [OK, value]
            else:
                raise RuntimeServiceError(f"unexpected request {msg!r}")
        except VMError as exc:
            result = [ERR, str(exc)]
        if msg.req_id == NO_REPLY:
            return None  # asynchronous request: nobody is waiting
        payload = encode_value(result, node.node_id, machine.heap)
        yield from node.mpi.send(node.mpi.reply_to(msg, payload))

    def serve_forever(self) -> Iterator:
        """The service loop for non-initiating nodes: handle requests until
        SHUTDOWN."""
        node = self.node
        while True:
            msg = yield from node.mpi.recv_any()
            if msg.kind is MessageKind.SHUTDOWN:
                return None
            yield from self.handle_request(msg)


def make_node_syscall(node: BackendNode, async_writes: bool = False):
    """The DependentObject dispatcher for a cluster node: resolves create/
    access locally when possible, otherwise exchanges NEW / DEPENDENCE
    messages with the object's home node.

    ``async_writes`` enables the communication optimization of paper §4.2:
    remote field/array *writes* go fire-and-forget instead of waiting for a
    reply (FIFO links keep read-after-write consistent)."""
    from repro.lang.symbols import ARRAY_SET, FIELD_SET

    def syscall(kind: str, recv, args) -> Iterator:
        machine = node.machine
        if kind == "create":
            ctor_args, location, class_name = args
            if location == node.node_id:
                result = yield from create_local(machine, class_name, ctor_args or [])
                return result
            result = yield from node.exchange.request(
                location, MessageKind.NEW, [class_name, ctor_args or []]
            )
            return result
        if kind == "access":
            call_args, access_type, member = args
            if isinstance(recv, DependentRef):
                if recv.node == node.node_id:
                    recv = Ref(recv.oid)
                elif async_writes and access_type in (FIELD_SET, ARRAY_SET):
                    yield from node.exchange.post(
                        recv.node,
                        MessageKind.DEPENDENCE,
                        [recv.oid, access_type, member, call_args or []],
                    )
                    return None
                else:
                    result = yield from node.exchange.request(
                        recv.node,
                        MessageKind.DEPENDENCE,
                        [recv.oid, access_type, member, call_args or []],
                    )
                    return result
            if recv is None:
                raise VMError("dependence access on null")
            result = yield from access_local(
                machine, recv, access_type, member, call_args or []
            )
            return result
        raise RuntimeServiceError(f"unknown syscall {kind!r}")  # pragma: no cover

    return syscall


class ExecutionStarter:
    """Starts the application (paper: "The Execution Starter service starts
    the application by invoking the main() method ... Only one copy needs to
    be active on the processor node where the user initiates the
    application.")."""

    def __init__(self, node: BackendNode, main_method) -> None:
        self.node = node
        self.main_method = main_method
        self.result = None

    def run(self) -> Iterator:
        node = self.node
        self.result = yield from call_and_run(
            node.machine, self.main_method, None, [None]
        )
        # application finished: stop every other node's service loop
        for other in range(node.mpi.size):
            if other == node.node_id:
                continue
            yield from node.mpi.send(
                Message(MessageKind.SHUTDOWN, node.node_id, other, 0)
            )
        return self.result
