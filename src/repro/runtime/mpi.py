"""The MPI service (paper §5, Figure 10).

"The MPI service sets up the necessary MPI working environment — such as
groups, communicators, and the communication context."  The API follows
mpi4py's lowercase, pickle-style object methods (``send``/``recv``/
``isend``/``iprobe``) but all methods that can block are generators driven
by the runtime backend's node driver (the discrete-event scheduler, a
worker thread, or a worker process), and serialization uses the streamed
format of :mod:`repro.runtime.serial`.

Send/receive CPU costs model marshalling: a fixed per-call overhead plus a
per-byte copy cost, charged to the calling node's clock.
"""

from __future__ import annotations

from itertools import count
from typing import Callable, Iterator, Optional

from repro.runtime.backend import BackendNode, Transport
from repro.runtime.faults import RetriesExhausted
from repro.runtime.message import Message, MessageKind

#: marshalling cost model (abstract cycles)
SEND_BASE_CYCLES = 400
RECV_BASE_CYCLES = 300
CYCLES_PER_BYTE = 2


class Communicator:
    """A communication context over a subset of ranks (COMM_WORLD default)."""

    def __init__(self, transport: Transport, ranks: Optional[list] = None) -> None:
        self.transport = transport
        self.ranks = ranks if ranks is not None else list(range(transport.nnodes))

    @property
    def size(self) -> int:
        return len(self.ranks)


class MPIService:
    """Per-node endpoint: rank, communicator, typed send/recv."""

    def __init__(self, node: BackendNode, transport: Transport) -> None:
        self.node = node
        self.transport = transport
        self.comm_world = Communicator(transport)
        self._req_ids = count(node.node_id * 1_000_000 + 1)

    @property
    def rank(self) -> int:
        return self.node.node_id

    @property
    def size(self) -> int:
        return self.comm_world.size

    def next_req_id(self) -> int:
        return next(self._req_ids)

    # ------------------------------------------------------------------ send
    def send(self, msg: Message) -> Iterator:
        """Generator: charge marshalling cost, then post to the network.

        When the node carries a :class:`~repro.runtime.faults.FaultInjector`
        each post is a seeded decision: dropped sends are masked by bounded
        retry with exponential backoff (charged as cycles, so the cost model
        sees the loss); injected delay is an extra sender-side stall; a
        duplicated frame is simply posted twice (receivers dedup by req id).
        A link that never delivers (partition, or more consecutive drops
        than ``max_retries``) raises :class:`RetriesExhausted`."""
        yield ("cost", SEND_BASE_CYCLES + CYCLES_PER_BYTE * len(msg.payload))
        inj = self.node.injector
        if inj is None:
            self.transport.post(self.node.node_id, msg.dst, msg)
            return None
        attempt = 0
        while True:
            verdict = inj.on_send(msg.dst, msg.req_id)
            if verdict.deliver:
                if verdict.delay_s:
                    yield ("cost", int(verdict.delay_s * self.node.spec.cpu_hz))
                for _ in range(verdict.copies):
                    self.transport.post(self.node.node_id, msg.dst, msg)
                return None
            attempt += 1
            if attempt > inj.plan.max_retries:
                raise RetriesExhausted(
                    f"send {self.node.node_id}->{msg.dst} "
                    f"({msg.kind.name} req={msg.req_id}) lost after "
                    f"{attempt} attempts"
                )
            yield ("cost", inj.backoff(attempt))

    def isend(self, msg: Message) -> Iterator:
        """Fire-and-forget send (the asynchronous point-to-point style the
        paper argues for over RPC); same cost, no completion handle needed
        in the simulated world."""
        return self.send(msg)

    # ------------------------------------------------------------------ recv
    def recv(self, match: Callable[[Message], bool]) -> Iterator:
        """Generator: blocks (yields ``('wait',)``) until a message matching
        ``match`` has *arrived*; returns it after charging unmarshalling
        cost."""
        while True:
            msg = self.node.take_matching(match)
            if msg is not None:
                # heartbeats are absorbed for free: their cost lives on the
                # sender.  Charging receipt would let idle nodes push each
                # other past their next heartbeat threshold — a
                # self-sustaining storm that races clocks ahead of the
                # nodes doing real work (and false-fires liveness leases).
                if msg.kind is not MessageKind.HEARTBEAT:
                    yield (
                        "cost",
                        RECV_BASE_CYCLES + CYCLES_PER_BYTE * len(msg.payload),
                    )
                return msg
            yield ("wait",)

    def recv_any(self) -> Iterator:
        return self.recv(lambda m: True)

    def iprobe(self, match: Callable[[Message], bool]) -> bool:
        """Non-blocking arrival check."""
        return self.node.iprobe(match)

    # ------------------------------------------------------------------ helpers
    def reply_to(self, request: Message, payload: bytes) -> Message:
        return Message(
            MessageKind.REPLY,
            src=self.node.node_id,
            dst=request.src,
            req_id=request.req_id,
            payload=payload,
        )
