"""Shared out-of-process worker machinery for the wall-clock backends.

Both multi-process transports — kernel pipes (``process``) and real TCP
sockets (``tcp``) — run the same worker lifecycle: fork one OS process per
cluster node, reload the rewritten program into a private interpreter,
drive the node generator (``cost`` charges accounting, ``wait`` blocks on
the transport), and ship a plain-dict report to the parent over a result
queue.  Everything in that lifecycle except the byte transport itself is
transport-agnostic and lives here: the drive loop, the report schema, the
synthetic report for a worker that vanished without reporting, the
progress-aware parent collection loop, and the BackendRun assembly.
"""

from __future__ import annotations

import queue as _queue
import time
from typing import Callable, Dict, List

from repro.errors import RuntimeServiceError, VMError
from repro.runtime.backend import (
    BackendNode,
    BackendRun,
    NodeStats,
    RunPolicy,
    Transport,
    latency_summary,
    provision_node,
    summarize_recovery,
)
from repro.runtime.faults import FaultError, FaultRecord, NodeCrashed
from repro.runtime.message import FAULT_NOTICE, Message, MessageKind

#: safety net for protocol bugs; real waits return on frame arrival
WAIT_TIMEOUT_S = 60.0

#: the parent's control channel appears in a worker's receive map under
#: this pseudo source id (no node has a negative id)
PARENT_CTRL = -1


# --------------------------------------------------------------- worker side
def worker_report(
    node: BackendNode,
    transport: Transport,
    program,
    policy: RunPolicy,
    broadcast: Callable[[int], None],
) -> dict:
    """Run one cluster node start to finish inside its worker process and
    return the report dict the parent assembles stats from.

    ``broadcast(req_id)`` must best-effort a SHUTDOWN frame with that
    req_id to every peer (0 = teardown, FAULT_NOTICE = this node died).
    """
    from repro.runtime.serial import encode_value
    from repro.vm.loader import load_program

    node_id = node.node_id
    report = {"node_id": node_id, "name": node.spec.name, "error": None,
              "faults": []}
    try:
        loaded = load_program(program)
        starter = provision_node(node, transport, loaded, policy)
        t0 = time.perf_counter()
        events = 0
        try:
            for event in node.gen:
                events += 1
                if events > policy.max_events:
                    raise RuntimeServiceError("execution exceeded event budget")
                kind = event[0]
                if kind == "cost":
                    node.charge(event[1])
                    if node.injector is not None and (
                        node.injector.crash_due(node.charged_cycles)
                    ):
                        raise NodeCrashed(
                            f"node {node_id} crashed at cycle "
                            f"{node.charged_cycles} (planned)"
                        )
                elif kind == "wait":
                    node.wait_for_message(WAIT_TIMEOUT_S)
                else:  # pragma: no cover
                    raise RuntimeServiceError(f"unknown event {event!r}")
        except FaultError as exc:
            # injected/fault-family failure: degrade — structured record,
            # prompt notice to live peers, no error (the run continues)
            node.record_fault(exc)
            broadcast(FAULT_NOTICE)
        except BaseException as exc:
            report["error"] = {"type": type(exc).__name__, "message": str(exc)}
            broadcast(0)
        node.clock = time.perf_counter() - t0
        stats = node.snapshot_stats()
        result_payload = None
        # evidence *about other nodes* (lease verdicts, torn blobs) does not
        # invalidate this node's own result — only its own failure does
        own_failure = any(f.node == node_id for f in node.faults)
        if starter is not None and report["error"] is None and not own_failure:
            try:
                result_payload = encode_value(
                    starter.result, node_id, node.machine.heap
                )
            except RuntimeServiceError:
                result_payload = None
        recovered: List[dict] = []
        adopted_stdout: Dict[int, List[str]] = {}
        ckpt_cycles = rec_cycles = 0
        if node.recovery is not None:
            r = node.recovery
            ckpt_cycles = r.checkpoint_overhead_cycles
            rec_cycles = r.recovery_cycles
            recovered = [x.to_dict() for x in r.recovered_records]
            adopted_stdout = {
                dead: list(lines)
                for dead, lines in r.adopted.items()
                if dead in r.recovered
            }
        report.update(
            clock_s=stats.clock_s,
            busy_s=stats.busy_s,
            messages_sent=stats.messages_sent,
            bytes_sent=stats.bytes_sent,
            requests_served=stats.requests_served,
            requests_sent=stats.requests_sent,
            heap_objects=stats.heap_objects,
            heap_bytes=stats.heap_bytes,
            stdout=stats.stdout,
            faults=stats.faults,
            result=result_payload,
            recovered=recovered,
            adopted_stdout=adopted_stdout,
            checkpoint_overhead_cycles=ckpt_cycles,
            recovery_cycles=rec_cycles,
            latencies_s=(
                list(node.exchange.latencies_s)
                if node.exchange is not None
                else []
            ),
        )
    except BaseException as exc:  # provisioning/load failure
        report["error"] = {"type": type(exc).__name__, "message": str(exc)}
        broadcast(0)
    return report


# --------------------------------------------------------------- parent side
def lost_report(node_id: int, name: str, exitcode) -> dict:
    """Synthetic report for a worker that vanished before reporting
    (killed, OOM, segfault): zero stats plus a structured fault."""
    rec = FaultRecord(
        node=node_id,
        kind="worker_lost",
        detail=(
            f"worker process for node {node_id} exited with code "
            f"{exitcode} before reporting"
        ),
    )
    return {
        "node_id": node_id, "name": name, "error": None,
        "faults": [rec.to_dict()],
        "clock_s": 0.0, "busy_s": 0.0, "messages_sent": 0,
        "bytes_sent": 0, "requests_served": 0, "requests_sent": 0,
        "heap_objects": 0, "heap_bytes": 0, "stdout": [], "result": None,
        "recovered": [], "adopted_stdout": {},
        "checkpoint_overhead_cycles": 0, "recovery_cycles": 0,
        "latencies_s": [],
    }


def collect_reports(procs, results, node_names, ctrl_writers) -> Dict[int, dict]:
    """Progress-aware collection: wait as long as workers are alive
    (blocking points inside them time out on their own); a worker that
    vanished without reporting becomes a structured fault, not a hang and
    not an exception.  The parent injects fault-notice frames down each
    survivor's control channel so they fail fast instead of riding out
    the full wait timeout."""
    n = len(procs)
    reports: Dict[int, dict] = {}
    pending = set(range(n))
    while pending:
        try:
            rep = results.get(timeout=0.25)
        except _queue.Empty:
            dead = [i for i in pending if procs[i].exitcode is not None]
            if not dead:
                continue
            # grace period: the report may still be in the queue
            try:
                rep = results.get(timeout=0.5)
            except _queue.Empty:
                for i in dead:
                    pending.discard(i)
                    reports[i] = lost_report(
                        i, node_names[i], procs[i].exitcode
                    )
                    for j in pending:
                        try:
                            ctrl_writers[j].send_bytes(
                                Message(
                                    MessageKind.SHUTDOWN, i, j, FAULT_NOTICE
                                ).serialize()
                            )
                        except (OSError, ValueError):
                            pass
                continue
        reports[rep["node_id"]] = rep
        pending.discard(rep["node_id"])
    return reports


def reap_workers(procs, ctrl_writers) -> None:
    """Teardown: bounded joins, then terminate stragglers, then close the
    parent's control write ends."""
    deadline = time.monotonic() + 10.0
    for p in procs:
        p.join(max(0.0, deadline - time.monotonic()))
    for p in procs:
        if p.is_alive():
            p.terminate()
            p.join(5.0)
    for w in ctrl_writers.values():
        try:
            w.close()
        except OSError:  # pragma: no cover
            pass


def assemble_run(reports: Dict[int, dict], policy: RunPolicy) -> BackendRun:
    """Turn per-worker report dicts into the BackendRun every backend
    returns (error precedence, stats, recovery splicing, latency merge)."""
    from repro.runtime.serial import decode_value

    failed = {i: rep["error"] for i, rep in reports.items() if rep["error"]}
    if failed:
        # a VMError is the application-level root cause (remote errors
        # propagate as ERR replies); teardown noise on other nodes —
        # SHUTDOWN-while-awaiting-reply, disconnects — is secondary
        for node_id, err in sorted(failed.items()):
            if err["type"] == "VMError":
                raise VMError(err["message"])
        detail = "; ".join(
            f"node {i}: {err['type']}: {err['message']}"
            for i, err in sorted(failed.items())
        )
        raise RuntimeServiceError(f"worker backend failed: {detail}")

    ordered = [reports[i] for i in sorted(reports)]
    stats = []
    for rep in ordered:
        lat = latency_summary(rep.get("latencies_s") or [])
        stats.append(
            NodeStats(
                name=rep["name"],
                clock_s=rep["clock_s"],
                busy_s=rep["busy_s"],
                messages_sent=rep["messages_sent"],
                bytes_sent=rep["bytes_sent"],
                requests_served=rep["requests_served"],
                heap_objects=rep["heap_objects"],
                heap_bytes=rep["heap_bytes"],
                stdout=list(rep["stdout"]),
                faults=list(rep.get("faults") or []),
                requests_sent=rep.get("requests_sent", 0),
                **lat,
            )
        )
    faults = [
        FaultRecord.from_dict(d)
        for rep in ordered
        for d in (rep.get("faults") or [])
    ]
    recovered = [
        FaultRecord.from_dict(d)
        for rep in ordered
        for d in (rep.get("recovered") or [])
    ]
    masked = {r.node for r in recovered}
    for rep in ordered:
        for dead, lines in (rep.get("adopted_stdout") or {}).items():
            dead = int(dead)
            if dead in masked and 0 <= dead < len(stats):
                stats[dead].stdout = list(lines)
    main_rep = reports[policy.main_partition]
    result = (
        decode_value(main_rep["result"], policy.main_partition)
        if main_rep["result"] is not None
        else None
    )
    merged: List[float] = []
    for rep in ordered:
        merged.extend(rep.get("latencies_s") or [])
    merged.sort()
    return BackendRun(
        result=result,
        makespan_s=max((s.clock_s for s in stats), default=0.0),
        total_messages=sum(s.messages_sent for s in stats),
        total_bytes=sum(s.bytes_sent for s in stats),
        node_stats=stats,
        stdout=[line for s in stats for line in s.stdout],
        faults=faults,
        degraded=summarize_recovery(
            faults,
            recovered,
            recovering=policy.recovery is not None and policy.recovery.enabled,
            main_partition=policy.main_partition,
        ),
        recovered=recovered,
        checkpoint_overhead_cycles=sum(
            rep.get("checkpoint_overhead_cycles", 0) for rep in ordered
        ),
        recovery_cycles=sum(rep.get("recovery_cycles", 0) for rep in ordered),
        latency_s=merged,
    )
