"""Message structure (paper §5).

"We currently identify two types of messages: NEW and DEPENDENCE for object
instantiation and data dependence."  REPLY carries responses back (the
paper's receive half of each send/receive pair) and SHUTDOWN ends the
per-node service loops after ``main`` returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

#: fixed per-message header bytes charged to the network (kind, src, dst,
#: req id, length)
HEADER_BYTES = 24


class MessageKind(Enum):
    NEW = 1
    DEPENDENCE = 2
    REPLY = 3
    SHUTDOWN = 4


@dataclass
class Message:
    """One wire message.  ``payload`` is already in the streamed format;
    ``req_id`` ties a REPLY to its request."""

    kind: MessageKind
    src: int
    dst: int
    req_id: int
    payload: bytes = b""

    @property
    def size(self) -> int:
        return HEADER_BYTES + len(self.payload)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<{self.kind.name} {self.src}->{self.dst} req={self.req_id} "
            f"{len(self.payload)}B>"
        )
