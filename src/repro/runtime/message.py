"""Message structure (paper §5).

"We currently identify two types of messages: NEW and DEPENDENCE for object
instantiation and data dependence."  REPLY carries responses back (the
paper's receive half of each send/receive pair) and SHUTDOWN ends the
per-node service loops after ``main`` returns.  REPLICA_NEW / REPLICA_DEP
carry quorum-replication traffic: a replica creation (aliased to the
primary copy's identity) and an access addressed to a replica by that
alias.

A SHUTDOWN frame whose ``req_id`` is :data:`FAULT_NOTICE` is an emergency
notice that ``src`` died: receivers mark the peer dead and — unless the
dead node was the main partition — keep serving, so replicated runs
survive minority replica loss.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

from repro.errors import RuntimeServiceError


class FrameError(RuntimeServiceError):
    """A wire frame failed validation (bad magic/version, length mismatch,
    checksum).  Carries the machine-readable ``reason`` so stream readers
    can distinguish a torn stream from a corrupted one."""

    def __init__(self, reason: str, detail: str) -> None:
        super().__init__(f"{reason}: {detail}")
        self.reason = reason
        self.detail = detail

#: fixed per-message header bytes charged to the network (kind, src, dst,
#: req id, length) — exactly the size of the wire header below, so simnet
#: byte accounting and real transports agree
HEADER_BYTES = 24

#: wire header: magic, version, kind, src, dst, req_id, payload len, crc32
WIRE_MAGIC = b"RW"
WIRE_VERSION = 1
_WIRE = struct.Struct("<2sBBhhqII")
assert _WIRE.size == HEADER_BYTES

#: plausibility ceiling on the header's payload-length field.  A corrupted
#: header claiming gigabytes would otherwise park a stream reassembler
#: forever "waiting for the rest"; past this bound the frame is garbage.
MAX_PAYLOAD_BYTES = 1 << 30


class MessageKind(Enum):
    NEW = 1
    DEPENDENCE = 2
    REPLY = 3
    SHUTDOWN = 4
    REPLICA_NEW = 5
    REPLICA_DEP = 6
    # recovery tier (see repro.runtime.checkpoint)
    HEARTBEAT = 7        # cycle-charged liveness frame (no reply)
    CHECKPOINT = 8       # epoch snapshot blob shipped to a checkpoint home
    CHECKPOINT_ACK = 9   # [epoch, highwater] back to a client: trim replay log
    REPLAY = 10          # re-issued post-checkpoint frame (epoch-keyed)
    RECOVER_NEW = 11     # create re-homed to a dead node's recovery home


#: req_id of an emergency SHUTDOWN frame announcing that ``src`` died (the
#: wire req_id field is a signed int64, so -1 travels unchanged)
FAULT_NOTICE = -1


@dataclass
class Message:
    """One wire message.  ``payload`` is already in the streamed format;
    ``req_id`` ties a REPLY to its request."""

    kind: MessageKind
    src: int
    dst: int
    req_id: int
    payload: bytes = b""

    @property
    def size(self) -> int:
        return HEADER_BYTES + len(self.payload)

    # ------------------------------------------------------------------ wire
    def serialize(self) -> bytes:
        """Stable wire format: a 24-byte header (magic, version, kind,
        endpoints, request id, payload length, payload crc32) followed by
        the payload.  ``len(serialize()) == size``, so the byte volume a
        real transport moves equals what the simulated network charges."""
        return _WIRE.pack(
            WIRE_MAGIC,
            WIRE_VERSION,
            self.kind.value,
            self.src,
            self.dst,
            self.req_id,
            len(self.payload),
            zlib.crc32(self.payload),
        ) + self.payload

    @classmethod
    def _validate_header(
        cls, data, offset: int
    ) -> Tuple[int, int, int, int, int, int]:
        """Unpack and validate the fixed header at ``offset``.  The caller
        guarantees ``HEADER_BYTES`` are available."""
        magic, version, kind, src, dst, req_id, plen, crc = _WIRE.unpack_from(
            data, offset
        )
        if magic != WIRE_MAGIC:
            raise FrameError("bad magic", f"{magic!r} at offset {offset}")
        if version != WIRE_VERSION:
            raise FrameError("unsupported wire version", str(version))
        if plen > MAX_PAYLOAD_BYTES:
            raise FrameError(
                "implausible payload length", f"header claims {plen} bytes"
            )
        return kind, src, dst, req_id, plen, crc

    @classmethod
    def _finish(cls, data, offset, kind, src, dst, req_id, plen, crc):
        payload = bytes(data[offset + HEADER_BYTES:offset + HEADER_BYTES + plen])
        if zlib.crc32(payload) != crc:
            raise FrameError(
                "payload checksum mismatch",
                f"frame {src}->{dst} req={req_id}",
            )
        try:
            mkind = MessageKind(kind)
        except ValueError:
            raise FrameError("unknown message kind", str(kind)) from None
        return cls(mkind, src, dst, req_id, payload)

    @classmethod
    def deserialize(cls, data: bytes) -> "Message":
        """Inverse of :meth:`serialize` for a complete, exact frame (one
        datagram): validates framing, length and checksum."""
        if len(data) < HEADER_BYTES:
            raise FrameError(
                "truncated message frame", f"{len(data)} bytes"
            )
        kind, src, dst, req_id, plen, crc = cls._validate_header(data, 0)
        if len(data) - HEADER_BYTES != plen:
            raise FrameError(
                "message length mismatch",
                f"header {plen}, got {len(data) - HEADER_BYTES}",
            )
        return cls._finish(data, 0, kind, src, dst, req_id, plen, crc)

    @classmethod
    def decode_stream(
        cls, buffer, offset: int = 0
    ) -> Optional[Tuple["Message", int]]:
        """Extract the first complete frame from a byte *stream*.

        Frames are self-delimiting: the header's ``plen`` field says where
        this frame ends and the next begins, so back-to-back frames in one
        buffer reassemble correctly.  Returns ``(message, bytes_consumed)``,
        or ``None`` when the buffer holds only a frame prefix (torn read —
        wait for more bytes).  Raises :class:`FrameError` when the bytes at
        ``offset`` can never become a valid frame (garbage prefix, foreign
        version, implausible length, checksum mismatch).
        """
        avail = len(buffer) - offset
        if avail < HEADER_BYTES:
            return None
        kind, src, dst, req_id, plen, crc = cls._validate_header(buffer, offset)
        if avail < HEADER_BYTES + plen:
            return None  # torn frame: payload still in flight
        msg = cls._finish(buffer, offset, kind, src, dst, req_id, plen, crc)
        return msg, HEADER_BYTES + plen

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<{self.kind.name} {self.src}->{self.dst} req={self.req_id} "
            f"{len(self.payload)}B>"
        )
