"""Message structure (paper §5).

"We currently identify two types of messages: NEW and DEPENDENCE for object
instantiation and data dependence."  REPLY carries responses back (the
paper's receive half of each send/receive pair) and SHUTDOWN ends the
per-node service loops after ``main`` returns.  REPLICA_NEW / REPLICA_DEP
carry quorum-replication traffic: a replica creation (aliased to the
primary copy's identity) and an access addressed to a replica by that
alias.

A SHUTDOWN frame whose ``req_id`` is :data:`FAULT_NOTICE` is an emergency
notice that ``src`` died: receivers mark the peer dead and — unless the
dead node was the main partition — keep serving, so replicated runs
survive minority replica loss.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from enum import Enum

from repro.errors import RuntimeServiceError

#: fixed per-message header bytes charged to the network (kind, src, dst,
#: req id, length) — exactly the size of the wire header below, so simnet
#: byte accounting and real transports agree
HEADER_BYTES = 24

#: wire header: magic, version, kind, src, dst, req_id, payload len, crc32
WIRE_MAGIC = b"RW"
WIRE_VERSION = 1
_WIRE = struct.Struct("<2sBBhhqII")
assert _WIRE.size == HEADER_BYTES


class MessageKind(Enum):
    NEW = 1
    DEPENDENCE = 2
    REPLY = 3
    SHUTDOWN = 4
    REPLICA_NEW = 5
    REPLICA_DEP = 6
    # recovery tier (see repro.runtime.checkpoint)
    HEARTBEAT = 7        # cycle-charged liveness frame (no reply)
    CHECKPOINT = 8       # epoch snapshot blob shipped to a checkpoint home
    CHECKPOINT_ACK = 9   # [epoch, highwater] back to a client: trim replay log
    REPLAY = 10          # re-issued post-checkpoint frame (epoch-keyed)
    RECOVER_NEW = 11     # create re-homed to a dead node's recovery home


#: req_id of an emergency SHUTDOWN frame announcing that ``src`` died (the
#: wire req_id field is a signed int64, so -1 travels unchanged)
FAULT_NOTICE = -1


@dataclass
class Message:
    """One wire message.  ``payload`` is already in the streamed format;
    ``req_id`` ties a REPLY to its request."""

    kind: MessageKind
    src: int
    dst: int
    req_id: int
    payload: bytes = b""

    @property
    def size(self) -> int:
        return HEADER_BYTES + len(self.payload)

    # ------------------------------------------------------------------ wire
    def serialize(self) -> bytes:
        """Stable wire format: a 24-byte header (magic, version, kind,
        endpoints, request id, payload length, payload crc32) followed by
        the payload.  ``len(serialize()) == size``, so the byte volume a
        real transport moves equals what the simulated network charges."""
        return _WIRE.pack(
            WIRE_MAGIC,
            WIRE_VERSION,
            self.kind.value,
            self.src,
            self.dst,
            self.req_id,
            len(self.payload),
            zlib.crc32(self.payload),
        ) + self.payload

    @classmethod
    def deserialize(cls, data: bytes) -> "Message":
        """Inverse of :meth:`serialize`; validates framing and checksum."""
        if len(data) < HEADER_BYTES:
            raise RuntimeServiceError(
                f"truncated message frame ({len(data)} bytes)"
            )
        magic, version, kind, src, dst, req_id, plen, crc = _WIRE.unpack_from(data)
        if magic != WIRE_MAGIC:
            raise RuntimeServiceError(f"bad message magic {magic!r}")
        if version != WIRE_VERSION:
            raise RuntimeServiceError(f"unsupported wire version {version}")
        payload = bytes(data[HEADER_BYTES:])
        if len(payload) != plen:
            raise RuntimeServiceError(
                f"message length mismatch (header {plen}, got {len(payload)})"
            )
        if zlib.crc32(payload) != crc:
            raise RuntimeServiceError("message payload checksum mismatch")
        return cls(MessageKind(kind), src, dst, req_id, payload)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<{self.kind.name} {self.src}->{self.dst} req={self.req_id} "
            f"{len(self.payload)}B>"
        )
