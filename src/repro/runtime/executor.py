"""Distributed execution driver (paper §5 + §7.2).

``DistributedExecutor`` wires a rewritten program and a distribution plan
onto a simulated cluster: one VM machine per node (own heap, own statics —
per-JVM semantics), the three services per node, ``main`` started on the
plan's main partition, service loops elsewhere; then runs the discrete-event
scheduler to completion.

``run_sequential`` executes the *original* program on one node spec — the
centralized baseline of Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bytecode.model import BProgram
from repro.distgen.plan import DistributionPlan
from repro.errors import RuntimeServiceError
from repro.runtime.cluster import ClusterSpec, NodeSpec
from repro.runtime.services import ExecutionStarter, MessageExchange, make_node_syscall
from repro.runtime.simnet import SimCluster
from repro.runtime.mpi import MPIService
from repro.vm.heap import Heap
from repro.vm.interpreter import Machine, run_sync
from repro.vm.loader import LoadedProgram, load_program


@dataclass
class NodeStats:
    name: str
    clock_s: float
    busy_s: float
    messages_sent: int
    bytes_sent: int
    requests_served: int
    heap_objects: int
    heap_bytes: int
    stdout: List[str] = field(default_factory=list)


def aggregate_node_stats(stats: List[NodeStats]) -> Dict[str, float]:
    """Cluster-wide rollup of per-node counters — what the sweep table
    reports per configuration: totals plus the busy fraction of the
    makespan (a utilization measure across heterogeneous nodes)."""
    clock = max((s.clock_s for s in stats), default=0.0)
    busy = sum(s.busy_s for s in stats)
    return {
        "nodes": float(len(stats)),
        "busy_s": busy,
        "busy_frac": busy / (clock * len(stats)) if clock and stats else 0.0,
        "messages_sent": float(sum(s.messages_sent for s in stats)),
        "bytes_sent": float(sum(s.bytes_sent for s in stats)),
        "requests_served": float(sum(s.requests_served for s in stats)),
        "heap_objects": float(sum(s.heap_objects for s in stats)),
        "heap_bytes": float(sum(s.heap_bytes for s in stats)),
    }


@dataclass
class DistributedResult:
    """Everything the Figure 11 harness needs."""

    result: object
    makespan_s: float
    total_messages: int
    total_bytes: int
    node_stats: List[NodeStats]
    stdout: List[str] = field(default_factory=list)

    @property
    def exec_time_s(self) -> float:
        return self.makespan_s

    def aggregate(self) -> Dict[str, float]:
        return aggregate_node_stats(self.node_stats)


@dataclass
class SequentialResult:
    result: object
    exec_time_s: float
    cycles: int
    stdout: List[str] = field(default_factory=list)


class DistributedExecutor:
    def __init__(
        self,
        program: BProgram,
        plan: DistributionPlan,
        cluster_spec: ClusterSpec,
        loaded: Optional[LoadedProgram] = None,
        async_writes: bool = False,
    ) -> None:
        if plan.nparts > cluster_spec.size:
            raise RuntimeServiceError(
                f"plan needs {plan.nparts} nodes, cluster has {cluster_spec.size}"
            )
        self.program = program
        self.plan = plan
        self.cluster_spec = cluster_spec
        self.loaded = loaded if loaded is not None else load_program(program)
        #: paper §4.2 communication optimization: fire-and-forget remote
        #: writes (FIFO links keep read-after-write consistent)
        self.async_writes = async_writes

    def run(self, max_events: int = 200_000_000) -> DistributedResult:
        cluster = SimCluster(self.cluster_spec)
        main_partition = self.plan.main_partition
        if not 0 <= main_partition < cluster_spec_size(self.cluster_spec):
            main_partition = 0

        starter: Optional[ExecutionStarter] = None
        for node in cluster.nodes:
            machine = Machine(self.loaded, heap=Heap(), node_id=node.node_id)
            machine.statics = self.loaded.fresh_statics()
            node.machine = machine
            node.mpi = MPIService(node, cluster)
            node.exchange = MessageExchange(node)
            machine.syscall = make_node_syscall(node, async_writes=self.async_writes)
            if node.node_id == main_partition:
                starter = ExecutionStarter(node, self.loaded.main_method())
                node.gen = starter.run()
            else:
                node.gen = node.exchange.serve_forever()

        assert starter is not None
        cluster.run(max_events=max_events)

        stats = [
            NodeStats(
                name=n.spec.name,
                clock_s=n.clock,
                busy_s=n.busy_s,
                messages_sent=n.msgs_sent,
                bytes_sent=n.bytes_sent,
                requests_served=n.exchange.requests_served,
                heap_objects=n.machine.heap.allocated_objects,
                heap_bytes=n.machine.heap.allocated_bytes,
                stdout=list(n.machine.stdout),
            )
            for n in cluster.nodes
        ]
        stdout: List[str] = []
        for n in cluster.nodes:
            stdout.extend(n.machine.stdout)
        return DistributedResult(
            result=starter.result,
            makespan_s=cluster.makespan,
            total_messages=cluster.total_messages,
            total_bytes=cluster.total_bytes,
            node_stats=stats,
            stdout=stdout,
        )


def cluster_spec_size(spec: ClusterSpec) -> int:
    return spec.size


def run_sequential(
    program: BProgram,
    node: NodeSpec,
    loaded: Optional[LoadedProgram] = None,
) -> SequentialResult:
    """Centralized baseline: the original program on one machine."""
    loaded = loaded if loaded is not None else load_program(program)
    machine = Machine(loaded)
    machine.statics = loaded.fresh_statics()
    machine.call_bmethod(loaded.main_method(), None, [None])
    run_sync(machine)
    return SequentialResult(
        result=machine.result,
        exec_time_s=machine.cycles / node.cpu_hz,
        cycles=machine.cycles,
        stdout=list(machine.stdout),
    )


def run_distributed(
    program: BProgram,
    plan: DistributionPlan,
    cluster_spec: ClusterSpec,
) -> DistributedResult:
    """Convenience wrapper: rewrite for ``plan``, then execute."""
    from repro.distgen.rewriter import rewrite_program

    rewritten, _stats = rewrite_program(program, plan)
    return DistributedExecutor(rewritten, plan, cluster_spec).run()
