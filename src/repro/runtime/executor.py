"""Distributed execution driver (paper §5 + §7.2).

``DistributedExecutor`` wires a rewritten program and a distribution plan
onto a runtime backend selected by name from the backend registry
(:mod:`repro.runtime.backend`): the deterministic discrete-event simulator
(``sim``, the default), one thread per node (``thread``), or one OS process
per node over multiprocessing pipes (``process``).  Every backend provisions
one VM machine per node (own heap, own statics — per-JVM semantics), the
three services per node, starts ``main`` on the plan's main partition and
service loops elsewhere, then drives all node generators to completion.

``run_sequential`` executes the *original* program on one node spec — the
centralized baseline of Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bytecode.model import BProgram
from repro.distgen.plan import DistributionPlan
from repro.errors import RuntimeServiceError
from repro.runtime.backend import (  # noqa: F401  (re-exported for consumers)
    NodeStats,
    RunPolicy,
    aggregate_node_stats,
    backend_names,
    create_backend,
    snapshot_machine,
)
from repro.runtime.checkpoint import RecoveryPlan
from repro.runtime.cluster import ClusterSpec, NodeSpec
from repro.runtime.faults import FaultPlan, FaultRecord
from repro.vm.interpreter import Machine, forced_engine, run_sync
from repro.vm.loader import LoadedProgram, load_program


@dataclass
class DistributedResult:
    """Everything the Figure 11 harness needs."""

    result: object
    makespan_s: float
    total_messages: int
    total_bytes: int
    node_stats: List[NodeStats]
    stdout: List[str] = field(default_factory=list)
    #: structured fault evidence (see repro.runtime.faults); empty when the
    #: run was clean
    faults: List[FaultRecord] = field(default_factory=list)
    #: True when the run survived one or more faults
    degraded: bool = False
    #: RECOVERED evidence: crashes the recovery tier masked (such a run is
    #: NOT degraded — its result/stdout match the fault-free execution)
    recovered: List[FaultRecord] = field(default_factory=list)
    #: cycles spent producing checkpoints across the cluster
    checkpoint_overhead_cycles: int = 0
    #: cycles spent restoring checkpoints and replaying lost work
    recovery_cycles: int = 0
    #: cluster-wide JIT counters (see Machine.jit_stats); empty when the
    #: backend exposes no machines
    jit: Dict[str, int] = field(default_factory=dict)
    #: sorted per-request latency samples merged across the cluster
    #: (seconds; virtual on the simulator, wall elsewhere)
    latency_s: List[float] = field(default_factory=list)

    @property
    def exec_time_s(self) -> float:
        return self.makespan_s

    def aggregate(self) -> Dict[str, float]:
        return aggregate_node_stats(self.node_stats)


@dataclass
class SequentialResult:
    result: object
    exec_time_s: float
    cycles: int
    stdout: List[str] = field(default_factory=list)
    node_stats: List[NodeStats] = field(default_factory=list)
    #: measured wall time of the interpreter run — the commensurable
    #: baseline for wall-clock backends (exec_time_s is *virtual*)
    wall_time_s: float = 0.0
    #: JIT counters of the baseline machine (see Machine.jit_stats)
    jit: Dict[str, int] = field(default_factory=dict)


class DistributedExecutor:
    def __init__(
        self,
        program: BProgram,
        plan: DistributionPlan,
        cluster_spec: ClusterSpec,
        loaded: Optional[LoadedProgram] = None,
        async_writes: bool = False,
        backend: str = "sim",
        faults: Optional[FaultPlan] = None,
        replicas: Optional[Dict[str, tuple]] = None,
        engine: str = "default",
        recovery: Optional[RecoveryPlan] = None,
    ) -> None:
        if plan.nparts > cluster_spec.size:
            raise RuntimeServiceError(
                f"plan needs {plan.nparts} nodes, cluster has {cluster_spec.size}"
            )
        self.program = program
        self.plan = plan
        self.cluster_spec = cluster_spec
        self.loaded = loaded if loaded is not None else load_program(program)
        #: paper §4.2 communication optimization: fire-and-forget remote
        #: writes (FIFO links keep read-after-write consistent)
        self.async_writes = async_writes
        #: registry name of the runtime backend to execute on
        self.backend = backend
        #: seeded fault plan to inject, or None for a fault-free run
        self.faults = faults
        #: class -> replica node tuple (primary first) for quorum replication
        self.replicas = replicas
        #: VM execution tier for every node machine ("default" = ambient)
        self.engine = engine
        #: recovery plan (checkpoint/heartbeat/takeover tier), or None
        self.recovery = recovery

    def run(self, max_events: int = 200_000_000) -> DistributedResult:
        backend = create_backend(self.backend, self.cluster_spec)
        main_partition = self.plan.main_partition
        if not 0 <= main_partition < self.cluster_spec.size:
            main_partition = 0
        policy = RunPolicy(
            main_partition=main_partition,
            async_writes=self.async_writes,
            max_events=max_events,
            faults=self.faults,
            replicas=self.replicas,
            recovery=self.recovery,
            nparts=self.plan.nparts,
        )
        if self.engine != "default":
            with forced_engine(self.engine):
                run = backend.execute(self.program, self.loaded, policy)
        else:
            run = backend.execute(self.program, self.loaded, policy)
        jit: Dict[str, int] = {}
        for node in getattr(backend, "nodes", []) or []:
            machine = getattr(node, "machine", None)
            if machine is None:
                continue
            for key, value in machine.jit_stats().items():
                jit[key] = jit.get(key, 0) + value
        return DistributedResult(
            result=run.result,
            makespan_s=run.makespan_s,
            total_messages=run.total_messages,
            total_bytes=run.total_bytes,
            node_stats=run.node_stats,
            stdout=run.stdout,
            faults=run.faults,
            degraded=run.degraded,
            recovered=run.recovered,
            checkpoint_overhead_cycles=run.checkpoint_overhead_cycles,
            recovery_cycles=run.recovery_cycles,
            jit=jit,
            latency_s=run.latency_s,
        )


def run_sequential(
    program: BProgram,
    node: NodeSpec,
    loaded: Optional[LoadedProgram] = None,
    engine: str = "default",
) -> SequentialResult:
    """Centralized baseline: the original program on one machine.  Stats
    flow through the same :func:`snapshot_machine` path the backends use."""
    import time

    loaded = loaded if loaded is not None else load_program(program)
    machine = Machine(loaded)
    machine.statics = loaded.fresh_statics()
    machine.call_bmethod(loaded.main_method(), None, [None])
    t0 = time.perf_counter()
    if engine != "default":
        with forced_engine(engine):
            run_sync(machine)
    else:
        run_sync(machine)
    wall_time_s = time.perf_counter() - t0
    exec_time_s = machine.cycles / node.cpu_hz
    stats = snapshot_machine(
        node.name, machine, clock_s=exec_time_s, busy_s=exec_time_s
    )
    return SequentialResult(
        result=machine.result,
        exec_time_s=stats.clock_s,
        cycles=machine.cycles,
        stdout=stats.stdout,
        node_stats=[stats],
        wall_time_s=wall_time_s,
        jit=machine.jit_stats(),
    )


def run_distributed(
    program: BProgram,
    plan: DistributionPlan,
    cluster_spec: ClusterSpec,
    backend: str = "sim",
) -> DistributedResult:
    """Convenience wrapper: rewrite for ``plan``, then execute."""
    from repro.distgen.rewriter import rewrite_program

    rewritten, _stats = rewrite_program(program, plan)
    return DistributedExecutor(
        rewritten, plan, cluster_spec, backend=backend
    ).run()
