"""Adaptive repartitioning — the paper's stated next design iteration.

§6/§9 of the paper: "use this information [profiles] to gain insight into
static partitioning ... eventually, be able to redistribute the program
according to the actual access patterns and resource requirements."  The
paper's Table 2 argument is that the dynamic phases (ODG construction,
partitioning ~10 ms, incremental rewriting) are cheap enough to re-run.

This module closes the loop **offline** (live migration stays out of scope,
as in the paper):

1. run the program once with the method-duration and memory profilers;
2. convert measurements into per-class resource weights
   (:func:`repro.profiler.report.to_resource_inputs`);
3. rebuild the distribution plan with measured CPU weights driving both the
   partitioner's node weights and the makespan cost model;
4. report the predicted improvement.

Static loop-depth heuristics systematically mis-estimate recursion-heavy
code (no backward branches!), which is exactly where the measured weights
change placements — see ``tests/test_adaptive.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bytecode.model import BProgram
from repro.distgen.plan import DistributionPlan, build_plan, placement_cost
from repro.profiler import MemoryProfiler, MethodDurationProfiler, attach
from repro.profiler.report import to_resource_inputs
from repro.vm.heap import Heap
from repro.vm.interpreter import Machine, run_sync
from repro.vm.loader import LoadedProgram, load_program


@dataclass
class AdaptiveResult:
    initial_plan: DistributionPlan
    refined_plan: DistributionPlan
    measured_cycles: Dict[str, float]
    measured_bytes: Dict[str, float]
    #: predicted makespan of the *initial* placement under measured weights
    initial_cost_measured: float = 0.0
    #: predicted makespan of the refined placement (``refined_plan.est_cost``)
    refined_cost: float = 0.0

    @property
    def placement_changed(self) -> bool:
        return self.initial_plan.class_home != self.refined_plan.class_home

    @property
    def predicted_improvement(self) -> float:
        """Fraction of the baseline's predicted makespan the refinement
        saves; >= 0 by construction (the initial placement is always a
        candidate of the refined plan)."""
        if self.initial_cost_measured <= 0:
            return 0.0
        return 1.0 - self.refined_cost / self.initial_cost_measured


def profile_program(
    program: BProgram, loaded: Optional[LoadedProgram] = None
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """One profiling run: (per-class cycles, per-class allocated bytes)."""
    loaded = loaded if loaded is not None else load_program(program)

    def run(profiler):
        machine = Machine(loaded, heap=Heap())
        machine.statics = loaded.fresh_statics()
        attach(machine, profiler)
        machine.call_bmethod(loaded.main_method(), None, [None])
        run_sync(machine)
        return profiler.report()

    duration_report = run(MethodDurationProfiler())
    memory_report = run(MemoryProfiler())
    return to_resource_inputs(duration_report, memory_report)


def adaptive_repartition(
    program: BProgram,
    nparts: int,
    tpwgts: Optional[List[float]] = None,
    pin_main_to: Optional[int] = None,
    loaded: Optional[LoadedProgram] = None,
    **plan_kwargs,
) -> AdaptiveResult:
    """Static plan → profile → measured plan.  Returns both plans plus the
    measurements, so callers can compare edgecut/placement or re-execute."""
    initial = build_plan(
        program, nparts, tpwgts=tpwgts, pin_main_to=pin_main_to, **plan_kwargs
    )
    cycles, alloc_bytes = profile_program(program, loaded)
    # the initial placement rides along as an explicit candidate, so the
    # refined plan can never predict a makespan worse than its own baseline
    # under the measured weights (the adaptive-repartitioning contract the
    # property suite checks on generated scenarios)
    refined = build_plan(
        program,
        nparts,
        tpwgts=tpwgts,
        pin_main_to=pin_main_to,
        measured_cpu=cycles,
        extra_candidates=(
            [initial.parts] if initial.parts is not None else None
        ),
        **plan_kwargs,
    )
    # the refined build already scored the baseline placement on its own
    # measured-weight graph; fall back to an explicit re-score only when
    # that bookkeeping is absent (e.g. object granularity)
    if refined.baseline_cost is not None:
        initial_cost = refined.baseline_cost
    elif initial.parts is not None:
        initial_cost = placement_cost(
            program, initial.parts, nparts, tpwgts=tpwgts, measured_cpu=cycles
        )
    else:
        initial_cost = 0.0
    return AdaptiveResult(
        initial_plan=initial,
        refined_plan=refined,
        measured_cycles=cycles,
        measured_bytes=alloc_bytes,
        initial_cost_measured=initial_cost,
        refined_cost=refined.est_cost,
    )
