"""Common exception hierarchy for the repro infrastructure.

Every layer (front-end, bytecode, VM, analysis, partitioner, runtime) raises a
subclass of :class:`ReproError` so callers can catch infrastructure failures
without masking genuine Python bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro infrastructure."""


class SourcePosition:
    """A (line, column) position inside an MJ source file."""

    __slots__ = ("line", "col")

    def __init__(self, line: int, col: int) -> None:
        self.line = line
        self.col = col

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{self.line}:{self.col}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SourcePosition)
            and other.line == self.line
            and other.col == self.col
        )

    def __hash__(self) -> int:
        return hash((self.line, self.col))


class LexerError(ReproError):
    """Raised on malformed input characters or literals."""

    def __init__(self, message: str, pos: SourcePosition) -> None:
        super().__init__(f"lex error at {pos}: {message}")
        self.pos = pos


class ParseError(ReproError):
    """Raised when the token stream does not match the MJ grammar."""

    def __init__(self, message: str, pos: SourcePosition) -> None:
        super().__init__(f"parse error at {pos}: {message}")
        self.pos = pos


class SemanticError(ReproError):
    """Raised by the type checker / resolver."""

    def __init__(self, message: str, pos: SourcePosition | None = None) -> None:
        where = f" at {pos}" if pos is not None else ""
        super().__init__(f"semantic error{where}: {message}")
        self.pos = pos


class CompileError(ReproError):
    """Raised by the bytecode compiler for unsupported constructs."""


class VMError(ReproError):
    """Raised by the interpreter for runtime faults (the MJ analogue of
    JVM exceptions: null dereference, bad cast, index out of bounds...)."""


class PartitionError(ReproError):
    """Raised by the graph partitioner for invalid inputs."""


class UnknownPluginError(ReproError, KeyError):
    """An unknown name was looked up in a plugin :class:`~repro.api.registry.Registry`.

    One failure mode for every pluggable axis — partitioners, runtime
    backends, workloads, network presets — with the available names and a
    did-you-mean suggestion attached.  Subclasses :class:`KeyError` so
    mapping-style consumers (``WORKLOADS[name]``) keep their contract.
    """

    def __init__(
        self,
        kind: str,
        name: str,
        available: "list[str]",
        suggestion: "str | None" = None,
    ) -> None:
        message = f"unknown {kind} {name!r}; available: {', '.join(available)}"
        if suggestion:
            message += f" (did you mean {suggestion!r}?)"
        super().__init__(message)
        self.kind = kind
        self.name = name
        self.available = list(available)
        self.suggestion = suggestion

    def __str__(self) -> str:
        # KeyError.__str__ repr-quotes the message; show it verbatim instead
        return self.args[0]


class ConfigError(ReproError):
    """Raised by the typed experiment configs for invalid field values."""


class ExperimentError(ReproError):
    """Raised by the Experiment API for failed runs (e.g. a distributed
    execution whose output diverges from the centralized baseline)."""


class AnalysisError(ReproError):
    """Raised by the static analysis framework."""


class RuntimeServiceError(ReproError):
    """Raised by the distributed runtime services."""


class CodegenError(ReproError):
    """Raised by the BURS code generator."""
