"""Memory allocation metric (paper §6): "implemented by directly modifying
the internal Java virtual machine system code ... by overloading some of the
methods that implement memory allocation, we can estimate the memory profile
of the application without performing instrumentation."

Our VM analogue is the heap allocation hook.  The charge per allocation is
what makes allocation-heavy workloads (the Create benchmarks — see Table 3's
CreateBench(Custom[]) going 10.7 s → 51.4 s) show the largest overhead under
this metric."""

from __future__ import annotations

from typing import Dict

from repro.profiler.base import Profiler
from repro.profiler.report import ProfileReport

#: cycles per intercepted allocation (size classification + counters)
ALLOC_EVENT_CYCLES = 180


class MemoryProfiler(Profiler):
    name = "memory-usage"

    def __init__(self) -> None:
        self.bytes_by_kind: Dict[str, int] = {}
        self.count_by_kind: Dict[str, int] = {}
        self.total_bytes = 0
        self.total_allocations = 0

    def on_alloc(self, machine, kind: str, size: int) -> None:
        machine.pending_extra += ALLOC_EVENT_CYCLES
        self.bytes_by_kind[kind] = self.bytes_by_kind.get(kind, 0) + size
        self.count_by_kind[kind] = self.count_by_kind.get(kind, 0) + 1
        self.total_bytes += size
        self.total_allocations += 1

    def report(self) -> ProfileReport:
        return ProfileReport(
            self.name,
            {
                "bytes_by_kind": dict(self.bytes_by_kind),
                "count_by_kind": dict(self.count_by_kind),
                "total_bytes": self.total_bytes,
                "total_allocations": self.total_allocations,
            },
        )
