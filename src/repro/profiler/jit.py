"""Compiled-tier hotness observability (the JIT's answer to Table 3).

Unlike the §6 profilers, this surface costs nothing at run time: the
counters already exist — every fused :class:`~repro.vm.jit.Run` counts its
executions on the way to the promotion threshold, and the machine keeps
engine-level totals (:meth:`~repro.vm.interpreter.Machine.jit_stats`).
``jit_profile`` merely reads them back after a run, so attaching it never
perturbs cycle accounting (profilers that hook ``on_step`` force the
reference path; this one doesn't attach at all).

Typical use::

    machine = Machine(loaded)
    ...run under the compiled engine...
    report = jit_profile(machine)
    print(report.format())
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.profiler.report import ProfileReport
from repro.vm.jit import plan_runs

__all__ = ["hot_blocks", "jit_profile"]


def _flat_methods(program) -> Iterator[Tuple[str, object]]:
    """(label, BMethod) for every method of a loaded (or raw) program."""
    bprogram = getattr(program, "bprogram", program)
    for bclass in bprogram.classes.values():
        for method in bclass.methods.values():
            yield f"{bclass.name}.{method.name}", method


def hot_blocks(program, limit: int = 0) -> List[Dict[str, object]]:
    """Per-run hotness counters across every method of ``program``,
    hottest first.  Each entry carries the method label, the run's
    ``[start, end)`` pc window, its execution count, and how far up the
    tier ladder it got (``fused`` -> ``compiled`` -> ``region``).

    Only methods whose flat code was actually materialized are inspected —
    asking for the profile never forces compilation of cold methods.
    ``limit`` truncates the list (0 = everything).
    """
    rows: List[Dict[str, object]] = []
    for label, method in _flat_methods(program):
        flat = getattr(method, "_flat", None)
        if flat is None or flat.fused is None:
            continue
        for run in plan_runs(flat):
            tier = "fused"
            if run.region:
                tier = "region"
            elif run.compiled:
                tier = "compiled"
            rows.append({
                "method": label,
                "start": run.start,
                "end": run.end,
                "count": run.count,
                "tier": tier,
            })
    rows.sort(key=lambda r: (-r["count"], r["method"], r["start"]))
    return rows[:limit] if limit else rows


def jit_profile(machine, k: int = 10) -> ProfileReport:
    """A :class:`~repro.profiler.report.ProfileReport` of the machine's
    compiled-tier activity: engine totals (superinstruction/compiled steps
    and cycles, promotions, deopts) plus the ``k`` hottest runs."""
    data: Dict[str, object] = dict(machine.jit_stats())
    blocks = hot_blocks(machine.program, limit=k)
    data["hot_blocks"] = {
        f"{b['method']}[{b['start']}:{b['end']}]{{{b['tier']}}}": b["count"]
        for b in blocks
    }
    return ProfileReport("jit", data)
