"""Profile reports and the feedback path to the resource model.

``to_resource_inputs`` converts measured per-method durations and per-class
allocation volumes into the per-class (cycles, bytes) maps that
:func:`repro.analysis.resources.from_profile` consumes — the concrete hook
for the paper's planned adaptive repartitioning ("use this information to
gain insight into static partitioning ... perform adaptive repartitioning").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass
class ProfileReport:
    metric: str
    data: Dict[str, object] = field(default_factory=dict)

    def top(self, key: str, k: int = 10):
        table = self.data.get(key, {})
        if not isinstance(table, dict):
            return []
        return sorted(table.items(), key=lambda kv: -kv[1])[:k]

    def format(self, k: int = 10) -> str:
        lines = [f"== profile: {self.metric} =="]
        for key, value in self.data.items():
            if isinstance(value, dict):
                lines.append(f"  {key}:")
                for name, count in self.top(key, k):
                    lines.append(f"    {name}: {count}")
            else:
                lines.append(f"  {key}: {value}")
        return "\n".join(lines)


def to_resource_inputs(
    duration_report: ProfileReport, memory_report: ProfileReport
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """(per-class cycles, per-class bytes) from a duration + memory run."""
    cycles: Dict[str, float] = {}
    durations = duration_report.data.get("durations_cycles", {})
    if isinstance(durations, dict):
        for qualified, cyc in durations.items():
            cls = qualified.rsplit(".", 1)[0]
            cycles[cls] = cycles.get(cls, 0.0) + float(cyc)
    bytes_by: Dict[str, float] = {}
    per_kind = memory_report.data.get("bytes_by_kind", {})
    if isinstance(per_kind, dict):
        for kind, total in per_kind.items():
            cls = kind.replace("[]", "")
            bytes_by[cls] = bytes_by.get(cls, 0.0) + float(total)
    return cycles, bytes_by
