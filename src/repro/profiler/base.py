"""Profiler protocol and attachment to a VM machine.

The interpreter calls ``on_step`` before executing each instruction (the
return value is extra overhead cycles) and ``on_invoke`` / ``on_return``
when frames push/pop (these charge overhead via ``machine.pending_extra``).
The heap's ``alloc_hook`` routes allocations to ``on_alloc``.

Attaching any profiler automatically switches the machine from the
cost-batched fast path to the per-step reference path
(:meth:`~repro.vm.interpreter.Machine.step`), so ``on_step`` keeps firing
once per executed instruction with that instruction's cost — profiling
semantics are unchanged by the block engine, at the price of running at
oracle speed while attached.  Detaching restores the fast path.

The *baseline* profiler mirrors the paper's baseline column: "the execution
times with all the profiling code compiled in but not enabled" — the hooks
are installed but charge nothing and record nothing.
"""

from __future__ import annotations

from typing import Optional


class Profiler:
    """Base class; subclasses override the hooks they need."""

    name = "profiler"

    def on_invoke(self, machine, method) -> None:  # pragma: no cover - override
        pass

    def on_return(self, machine, method) -> None:  # pragma: no cover - override
        pass

    def on_step(self, machine, cost: int) -> int:
        return 0

    def on_alloc(self, machine, kind: str, size: int) -> None:  # pragma: no cover
        pass

    def report(self):
        from repro.profiler.report import ProfileReport

        return ProfileReport(self.name, {})


class BaselineProfiler(Profiler):
    """Profiling code present but disabled — zero overhead, zero data."""

    name = "baseline"


def attach(machine, profiler: Optional[Profiler]) -> None:
    """Install ``profiler`` on ``machine`` (and its heap)."""
    machine.profiler = profiler
    if profiler is None:
        machine.heap.alloc_hook = None
    else:
        machine.heap.alloc_hook = lambda kind, size: profiler.on_alloc(
            machine, kind, size
        )


def detach(machine) -> None:
    attach(machine, None)
