"""Sampling-based metrics (paper §6).

The paper samples at the thread scheduler's time quantum via Joeq's
interrupter threads; our deterministic analogue fires whenever a machine
crosses a virtual-cycle quantum boundary.  Hot methods read only the top
stack frame (cheapest); hot paths and the dynamic call graph walk the whole
stack (cost proportional to depth).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.profiler.base import Profiler
from repro.profiler.report import ProfileReport

#: default sampling quantum: every 20k cycles (~20 µs at 1 GHz, a thread
#: scheduling quantum's order of magnitude scaled to simulated runs)
DEFAULT_QUANTUM = 2_000

#: cost of handling one sampling interrupt (register save + profiler entry)
SAMPLE_BASE_CYCLES = 50
#: additional cost per stack frame walked
SAMPLE_FRAME_CYCLES = 45


class _SamplingProfiler(Profiler):
    def __init__(self, quantum: int = DEFAULT_QUANTUM) -> None:
        self.quantum = quantum
        self._accum = 0
        self.samples_taken = 0

    def on_step(self, machine, cost: int) -> int:
        self._accum += cost
        if self._accum < self.quantum:
            return 0
        self._accum -= self.quantum
        self.samples_taken += 1
        return self._sample(machine)

    def _sample(self, machine) -> int:  # pragma: no cover - override
        return 0


class HotMethodsProfiler(_SamplingProfiler):
    """Top-of-stack sampling: "simply pass control from the interrupter
    thread to the profiler at each scheduling time quantum ... recording the
    top stack frame"."""

    name = "hot-methods"

    def __init__(self, quantum: int = DEFAULT_QUANTUM) -> None:
        super().__init__(quantum)
        self.counts: Dict[str, int] = {}

    def _sample(self, machine) -> int:
        if machine.frames:
            q = machine.frames[-1].method.qualified
            self.counts[q] = self.counts.get(q, 0) + 1
        return SAMPLE_BASE_CYCLES + SAMPLE_FRAME_CYCLES

    def report(self) -> ProfileReport:
        return ProfileReport(
            self.name, {"counts": dict(self.counts), "samples": self.samples_taken}
        )


class HotPathsProfiler(_SamplingProfiler):
    """Whole-call-stack sampling: "we sample the entire call stack instead
    of sampling only the top stack frame"."""

    name = "hot-paths"

    def __init__(self, quantum: int = DEFAULT_QUANTUM) -> None:
        super().__init__(quantum)
        self.paths: Dict[Tuple[str, ...], int] = {}

    def _sample(self, machine) -> int:
        path = tuple(f.method.qualified for f in machine.frames)
        self.paths[path] = self.paths.get(path, 0) + 1
        return SAMPLE_BASE_CYCLES + SAMPLE_FRAME_CYCLES * max(len(path), 1)

    def hottest(self, k: int = 5):
        return sorted(self.paths.items(), key=lambda kv: -kv[1])[:k]

    def report(self) -> ProfileReport:
        return ProfileReport(
            self.name,
            {
                "paths": {" > ".join(p): c for p, c in self.paths.items()},
                "samples": self.samples_taken,
            },
        )


class DynamicCallGraphProfiler(_SamplingProfiler):
    """Caller→callee edges actually observed, from sampled stacks ("makes
    use of similar data as the hot paths metric, but processes the data in a
    different manner")."""

    name = "dynamic-call-graph"

    def __init__(self, quantum: int = DEFAULT_QUANTUM) -> None:
        super().__init__(quantum)
        self.edges: Dict[Tuple[str, str], int] = {}
        self.nodes: Dict[str, int] = {}

    def _sample(self, machine) -> int:
        frames = [f.method.qualified for f in machine.frames]
        for name in frames:
            self.nodes[name] = self.nodes.get(name, 0) + 1
        for caller, callee in zip(frames, frames[1:]):
            self.edges[(caller, callee)] = self.edges.get((caller, callee), 0) + 1
        # edge bookkeeping costs a little more per frame than plain paths
        return SAMPLE_BASE_CYCLES + (SAMPLE_FRAME_CYCLES + 12) * max(len(frames), 1)

    def report(self) -> ProfileReport:
        return ProfileReport(
            self.name,
            {
                "edges": {f"{a} -> {b}": c for (a, b), c in self.edges.items()},
                "methods": dict(self.nodes),
                "samples": self.samples_taken,
            },
        )
