"""Mixed instrumentation / sampling profiler (paper §6).

Six metrics over four resource categories (CPU, memory, battery,
communication):

====================  ==============  ===========================================
metric                technique       module
====================  ==============  ===========================================
method duration       instrumentation :class:`repro.profiler.instrument.MethodDurationProfiler`
method frequency      instrumentation :class:`repro.profiler.instrument.MethodFrequencyProfiler`
hot methods           sampling        :class:`repro.profiler.sampling.HotMethodsProfiler`
hot paths             sampling        :class:`repro.profiler.sampling.HotPathsProfiler`
dynamic call graph    sampling        :class:`repro.profiler.sampling.DynamicCallGraphProfiler`
memory allocation     VM hooks        :class:`repro.profiler.memory.MemoryProfiler`
====================  ==============  ===========================================

Each profiler charges a realistic overhead in abstract cycles, so the
Table 3 experiment (overhead of each metric vs an instrumented-but-disabled
baseline) reproduces: instrumented metrics cost notably more than sampled
ones, hot-methods sampling is cheapest.
"""

from repro.profiler.base import BaselineProfiler, Profiler, attach, detach
from repro.profiler.instrument import MethodDurationProfiler, MethodFrequencyProfiler
from repro.profiler.jit import hot_blocks, jit_profile
from repro.profiler.memory import MemoryProfiler
from repro.profiler.report import ProfileReport, to_resource_inputs
from repro.profiler.sampling import (
    DynamicCallGraphProfiler,
    HotMethodsProfiler,
    HotPathsProfiler,
)

ALL_METRICS = (
    "baseline",
    "hot-paths",
    "dynamic-call-graph",
    "hot-methods",
    "method-duration",
    "method-frequency",
    "memory-usage",
)


def make_profiler(metric: str, **kwargs) -> Profiler:
    """Factory by Table 3 column name."""
    table = {
        "baseline": BaselineProfiler,
        "hot-paths": HotPathsProfiler,
        "dynamic-call-graph": DynamicCallGraphProfiler,
        "hot-methods": HotMethodsProfiler,
        "method-duration": MethodDurationProfiler,
        "method-frequency": MethodFrequencyProfiler,
        "memory-usage": MemoryProfiler,
    }
    try:
        return table[metric](**kwargs)
    except KeyError:
        raise ValueError(f"unknown metric {metric!r}; pick one of {ALL_METRICS}") from None


__all__ = [
    "Profiler",
    "BaselineProfiler",
    "MethodDurationProfiler",
    "MethodFrequencyProfiler",
    "HotMethodsProfiler",
    "HotPathsProfiler",
    "DynamicCallGraphProfiler",
    "MemoryProfiler",
    "ProfileReport",
    "to_resource_inputs",
    "attach",
    "detach",
    "make_profiler",
    "ALL_METRICS",
    "hot_blocks",
    "jit_profile",
]
