"""Instrumentation-based metrics (paper §6).

Method duration and method frequency hook every method entry/exit.  The
paper measured these with (source-level) instrumentation and found them the
most expensive metrics (49.3% and 26.1% average overhead); the cycle charges
below model the timestamp read + record write per event.
"""

from __future__ import annotations

from typing import Dict, List

from repro.profiler.base import Profiler
from repro.profiler.report import ProfileReport

#: cycles per entry/exit timestamp + record (duration metric)
DURATION_EVENT_CYCLES = 28
#: cycles per counter bump (frequency metric)
FREQUENCY_EVENT_CYCLES = 30


class MethodDurationProfiler(Profiler):
    """Wall (virtual) time spent in each method, inclusive of callees.

    Records the entry cycle count per activation; on exit accumulates the
    difference.  Both system-level (built-in dispatch shows up in the caller)
    and user-level methods are covered.
    """

    name = "method-duration"

    def __init__(self) -> None:
        self._entry_stack: List[tuple] = []
        self.durations: Dict[str, int] = {}
        self.calls: Dict[str, int] = {}

    def on_invoke(self, machine, method) -> None:
        machine.pending_extra += DURATION_EVENT_CYCLES
        self._entry_stack.append((method.qualified, machine.cycles))

    def on_return(self, machine, method) -> None:
        machine.pending_extra += DURATION_EVENT_CYCLES
        if not self._entry_stack:
            return
        name, entry = self._entry_stack.pop()
        self.durations[name] = self.durations.get(name, 0) + (machine.cycles - entry)
        self.calls[name] = self.calls.get(name, 0) + 1

    def report(self) -> ProfileReport:
        return ProfileReport(
            self.name,
            {
                "durations_cycles": dict(self.durations),
                "calls": dict(self.calls),
            },
        )


class MethodFrequencyProfiler(Profiler):
    """Invocation counter per method — "a less expensive substitute for the
    method duration metric"."""

    name = "method-frequency"

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def on_invoke(self, machine, method) -> None:
        machine.pending_extra += FREQUENCY_EVENT_CYCLES
        q = method.qualified
        self.counts[q] = self.counts.get(q, 0) + 1

    def report(self) -> ProfileReport:
        return ProfileReport(self.name, {"counts": dict(self.counts)})
