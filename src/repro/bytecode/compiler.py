"""AST → MJ bytecode compiler.

Follows javac's general lowering strategy: short-circuit booleans compile to
branch trees, comparisons in value position materialize ``true``/``false``,
``new C(...)`` compiles to ``NEW; DUP; <args>; INVOKESPECIAL C.<init>``
(exactly the shape the communication rewriter pattern-matches, Figure 9 of
the paper), and string ``+`` lowers to ``INVOKESTATIC Str.concat``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import CompileError
from repro.lang import ast
from repro.lang.symbols import ClassTable, MethodInfo
from repro.lang.types import (
    BOOLEAN,
    FLOAT,
    INT,
    LONG,
    NULL,
    STRING,
    VOID,
    ArrayType,
    ClassType,
    NullType,
    Type,
)
from repro.bytecode import opcodes as op
from repro.bytecode.model import BClass, BField, BMethod, BProgram, Label

_NEGATE = {"EQ": "NE", "NE": "EQ", "LT": "GE", "GE": "LT", "GT": "LE", "LE": "GT"}
_CMP = {"==": "EQ", "!=": "NE", "<": "LT", "<=": "LE", ">": "GT", ">=": "GE"}


def _tychar(ty: Type) -> str:
    if ty in (INT, BOOLEAN):
        return "I"
    if ty is LONG:
        return "J"
    if ty is FLOAT:
        return "F"
    return "A"


_ARITH = {
    ("+", "I"): op.IADD, ("-", "I"): op.ISUB, ("*", "I"): op.IMUL,
    ("/", "I"): op.IDIV, ("%", "I"): op.IREM,
    ("+", "J"): op.LADD, ("-", "J"): op.LSUB, ("*", "J"): op.LMUL,
    ("/", "J"): op.LDIV, ("%", "J"): op.LREM,
    ("+", "F"): op.FADD, ("-", "F"): op.FSUB, ("*", "F"): op.FMUL,
    ("/", "F"): op.FDIV, ("%", "F"): op.FREM,
    ("&", "I"): op.IAND, ("|", "I"): op.IOR, ("^", "I"): op.IXOR,
    ("<<", "I"): op.ISHL, (">>", "I"): op.ISHR, (">>>", "I"): op.IUSHR,
    ("&", "J"): op.LAND, ("|", "J"): op.LOR, ("^", "J"): op.LXOR,
    ("<<", "J"): op.LSHL, (">>", "J"): op.LSHR, (">>>", "J"): op.LUSHR,
}

_CONVERT: Dict[Tuple[str, str], str] = {
    ("I", "J"): op.I2L, ("I", "F"): op.I2F,
    ("J", "I"): op.L2I, ("J", "F"): op.L2F,
    ("F", "I"): op.F2I, ("F", "J"): op.F2L,
}


class _MethodCompiler:
    def __init__(self, table: ClassTable, bclass: BClass, mi: MethodInfo) -> None:
        self.table = table
        self.bclass = bclass
        self.mi = mi
        decl = mi.decl
        assert decl is not None
        self.method = BMethod(
            bclass.name,
            mi.name,
            [ty for _, ty in mi.params],
            mi.ret,
            mi.is_static,
            mi.is_ctor,
        )
        self.decl = decl
        # slot 0 is 'this' for instance methods
        self.slots: List[Dict[str, Tuple[int, Type]]] = [{}]
        self.next_slot = 0
        if not mi.is_static:
            self.next_slot = 1
        for pname, pty in mi.params:
            self._declare(pname, pty)
        self.break_labels: List[Label] = []
        self.continue_labels: List[Label] = []

    # ------------------------------------------------------------- scope/slots
    def _declare(self, name: str, ty: Type) -> int:
        slot = self.next_slot
        self.next_slot += 1
        self.method.max_locals = max(self.method.max_locals, self.next_slot)
        self.slots[-1][name] = (slot, ty)
        return slot

    def _lookup(self, name: str) -> Tuple[int, Type]:
        for frame in reversed(self.slots):
            if name in frame:
                return frame[name]
        raise CompileError(f"{self.method.qualified}: unbound local {name}")

    def _alloc_temp(self) -> int:
        slot = self.next_slot
        self.next_slot += 1
        self.method.max_locals = max(self.method.max_locals, self.next_slot)
        return slot

    # ------------------------------------------------------------- emission
    def emit(self, opname: str, a=None, b=None, c=None, line: int = 0):
        return self.method.emit(opname, a, b, c, line)

    def _load(self, slot: int, ty: Type, line: int = 0) -> None:
        self.emit({"I": op.ILOAD, "J": op.LLOAD, "F": op.FLOAD, "A": op.ALOAD}[
            _tychar(ty)
        ], slot, line=line)

    def _store(self, slot: int, ty: Type, line: int = 0) -> None:
        self.emit({"I": op.ISTORE, "J": op.LSTORE, "F": op.FSTORE, "A": op.ASTORE}[
            _tychar(ty)
        ], slot, line=line)

    def _coerce(self, src: Type, dst: Type) -> None:
        """Emit a conversion so a value of type ``src`` on the stack becomes
        ``dst`` (numeric only; reference widening is free)."""
        if src is dst or dst is VOID:
            return
        a, b = _tychar(src), _tychar(dst)
        if a == b:
            return
        conv = _CONVERT.get((a, b))
        if conv is not None:
            self.emit(conv)

    # ------------------------------------------------------------- entry point
    def compile(self) -> BMethod:
        if self.mi.is_ctor:
            self._emit_ctor_prologue()
        self._block(self.decl.body)
        code = self.method.code
        if not code or code[-1].op not in op.RETURNS:
            if self.mi.ret is VOID:
                self.emit(op.RETURN)
            else:
                # MJ is lenient: falling off the end of a non-void method
                # returns the type's default value.
                ch = _tychar(self.mi.ret)
                if ch == "A":
                    self.emit(op.ACONST_NULL)
                    self.emit(op.ARETURN)
                else:
                    self.emit(op.LDC, 0 if ch != "F" else 0.0, ch)
                    self.emit({"I": op.IRETURN, "J": op.LRETURN, "F": op.FRETURN}[ch])
        return self.method

    def _emit_ctor_prologue(self) -> None:
        sup = self.bclass.superclass
        info = self.table.get(self.bclass.name)
        if sup != "Object" and not self.table.get(sup).is_builtin:
            sup_ctor = self.table.resolve_ctor(sup)
            if sup_ctor is not None and sup_ctor.arity != 0:
                raise CompileError(
                    f"{self.bclass.name}: superclass {sup} has no zero-arg "
                    "constructor (MJ constructors chain implicitly)"
                )
            self.emit(op.ALOAD, 0)
            self.emit(op.INVOKESPECIAL, sup, "<init>", 0)
        # instance field initializers
        decl = info.decl
        if decl is not None:
            for fd in decl.fields:
                if fd.is_static or fd.init is None:
                    continue
                self.emit(op.ALOAD, 0, line=fd.pos.line)
                self._expr(fd.init)
                self._coerce(fd.init.ty, fd.ty)
                self.emit(op.PUTFIELD, self.bclass.name, fd.name, line=fd.pos.line)

    # ------------------------------------------------------------- statements
    def _block(self, block: ast.Block) -> None:
        self.slots.append({})
        for stmt in block.stmts:
            self._stmt(stmt)
        self.slots.pop()

    def _stmt(self, stmt: ast.Stmt) -> None:
        line = stmt.pos.line
        if isinstance(stmt, ast.Block):
            self._block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            slot = self._declare(stmt.name, stmt.ty)
            stmt.slot = slot
            if stmt.init is not None:
                self._expr(stmt.init)
                self._coerce(stmt.init.ty, stmt.ty)
                self._store(slot, stmt.ty, line)
        elif isinstance(stmt, ast.If):
            l_else = Label("ELSE")
            self._branch_if_false(stmt.cond, l_else)
            self._stmt(stmt.then)
            if stmt.otherwise is not None:
                l_end = Label("ENDIF")
                self.emit(op.GOTO, l_end, line=line)
                self.method.place(l_else)
                self._stmt(stmt.otherwise)
                self.method.place(l_end)
            else:
                self.method.place(l_else)
        elif isinstance(stmt, ast.While):
            l_cond, l_end = Label("WCOND"), Label("WEND")
            self.method.place(l_cond)
            self._branch_if_false(stmt.cond, l_end)
            self.break_labels.append(l_end)
            self.continue_labels.append(l_cond)
            self._stmt(stmt.body)
            self.break_labels.pop()
            self.continue_labels.pop()
            self.emit(op.GOTO, l_cond, line=line)
            self.method.place(l_end)
        elif isinstance(stmt, ast.For):
            self.slots.append({})
            if stmt.init is not None:
                self._stmt(stmt.init)
            l_cond, l_cont, l_end = Label("FCOND"), Label("FCONT"), Label("FEND")
            self.method.place(l_cond)
            if stmt.cond is not None:
                self._branch_if_false(stmt.cond, l_end)
            self.break_labels.append(l_end)
            self.continue_labels.append(l_cont)
            self._stmt(stmt.body)
            self.break_labels.pop()
            self.continue_labels.pop()
            self.method.place(l_cont)
            if stmt.update is not None:
                self._expr(stmt.update, want_value=False)
            self.emit(op.GOTO, l_cond, line=line)
            self.method.place(l_end)
            self.slots.pop()
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self.emit(op.RETURN, line=line)
            else:
                self._expr(stmt.value)
                self._coerce(stmt.value.ty, self.mi.ret)
                ch = _tychar(self.mi.ret)
                self.emit(
                    {"I": op.IRETURN, "J": op.LRETURN, "F": op.FRETURN, "A": op.ARETURN}[ch],
                    line=line,
                )
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr, want_value=False)
        elif isinstance(stmt, ast.Break):
            if not self.break_labels:
                raise CompileError("break outside loop")
            self.emit(op.GOTO, self.break_labels[-1], line=line)
        elif isinstance(stmt, ast.Continue):
            if not self.continue_labels:
                raise CompileError("continue outside loop")
            self.emit(op.GOTO, self.continue_labels[-1], line=line)
        else:  # pragma: no cover
            raise CompileError(f"unknown statement {type(stmt).__name__}")

    # ------------------------------------------------------------- conditions
    def _branch_if_false(self, expr: ast.Expr, target: Label) -> None:
        if isinstance(expr, ast.Binary):
            if expr.op == "&&":
                self._branch_if_false(expr.left, target)
                self._branch_if_false(expr.right, target)
                return
            if expr.op == "||":
                l_true = Label("ORT")
                self._branch_if_true(expr.left, l_true)
                self._branch_if_false(expr.right, target)
                self.method.place(l_true)
                return
            if expr.op in _CMP:
                self._compare_branch(expr, target, negate=True)
                return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self._branch_if_true(expr.operand, target)
            return
        if isinstance(expr, ast.BoolLit):
            if not expr.value:
                self.emit(op.GOTO, target, line=expr.pos.line)
            return
        self._expr(expr)
        self.emit(op.IFFALSE, target, line=expr.pos.line)

    def _branch_if_true(self, expr: ast.Expr, target: Label) -> None:
        if isinstance(expr, ast.Binary):
            if expr.op == "||":
                self._branch_if_true(expr.left, target)
                self._branch_if_true(expr.right, target)
                return
            if expr.op == "&&":
                l_false = Label("ANDF")
                self._branch_if_false(expr.left, l_false)
                self._branch_if_true(expr.right, target)
                self.method.place(l_false)
                return
            if expr.op in _CMP:
                self._compare_branch(expr, target, negate=False)
                return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self._branch_if_false(expr.operand, target)
            return
        if isinstance(expr, ast.BoolLit):
            if expr.value:
                self.emit(op.GOTO, target, line=expr.pos.line)
            return
        self._expr(expr)
        self.emit(op.IFTRUE, target, line=expr.pos.line)

    def _compare_branch(self, expr: ast.Binary, target: Label, negate: bool) -> None:
        lt, rt = expr.left.ty, expr.right.ty
        cond = _CMP[expr.op]
        if negate:
            cond = _NEGATE[cond]
        line = expr.pos.line
        if lt.is_numeric() and rt.is_numeric():
            from repro.lang.types import promote

            common = promote(lt, rt)
            assert common is not None
            self._expr(expr.left)
            self._coerce(lt, common)
            self._expr(expr.right)
            self._coerce(rt, common)
            cmp_op = {"I": op.IF_ICMP, "J": op.IF_LCMP, "F": op.IF_FCMP}[_tychar(common)]
            self.emit(cmp_op, cond, target, line=line)
        elif lt is BOOLEAN and rt is BOOLEAN:
            self._expr(expr.left)
            self._expr(expr.right)
            self.emit(op.IF_ICMP, cond, target, line=line)
        else:  # reference comparison
            self._expr(expr.left)
            self._expr(expr.right)
            self.emit(op.IF_ACMP, cond, target, line=line)

    # ------------------------------------------------------------- expressions
    def _expr(self, expr: ast.Expr, want_value: bool = True) -> None:
        line = expr.pos.line
        if isinstance(expr, ast.IntLit):
            self.emit(op.LDC, expr.value, "I", line=line)
        elif isinstance(expr, ast.LongLit):
            self.emit(op.LDC, expr.value, "J", line=line)
        elif isinstance(expr, ast.FloatLit):
            self.emit(op.LDC, expr.value, "F", line=line)
        elif isinstance(expr, ast.BoolLit):
            self.emit(op.LDC, 1 if expr.value else 0, "I", line=line)
        elif isinstance(expr, ast.StrLit):
            self.emit(op.LDC, expr.value, "S", line=line)
        elif isinstance(expr, ast.NullLit):
            self.emit(op.ACONST_NULL, line=line)
        elif isinstance(expr, ast.This):
            self.emit(op.ALOAD, 0, line=line)
        elif isinstance(expr, ast.VarRef):
            self._var_ref(expr)
        elif isinstance(expr, ast.FieldAccess):
            if expr.is_static:
                self.emit(op.GETSTATIC, expr.resolved_class, expr.name, line=line)
            else:
                self._expr(expr.target)
                self.emit(op.GETFIELD, expr.resolved_class, expr.name, line=line)
        elif isinstance(expr, ast.ArrayIndex):
            self._expr(expr.target)
            self._expr(expr.index)
            assert isinstance(expr.target.ty, ArrayType)
            self.emit(op.XALOAD, _tychar(expr.target.ty.elem), line=line)
        elif isinstance(expr, ast.ArrayLength):
            self._expr(expr.target)
            self.emit(op.ARRAYLENGTH, line=line)
        elif isinstance(expr, ast.Call):
            self._call(expr, want_value)
            return
        elif isinstance(expr, ast.New):
            self._new(expr)
        elif isinstance(expr, ast.NewArray):
            self._expr(expr.length)
            self.emit(op.NEWARRAY, expr.elem_ty.descriptor(), line=line)
        elif isinstance(expr, ast.Unary):
            self._unary(expr)
        elif isinstance(expr, ast.Binary):
            self._binary(expr)
        elif isinstance(expr, ast.Assign):
            self._assign(expr, want_value)
            return
        elif isinstance(expr, ast.Cast):
            self._cast(expr)
        elif isinstance(expr, ast.InstanceOf):
            self._expr(expr.expr)
            of = expr.of
            name = of.name if isinstance(of, ClassType) else of.descriptor()
            self.emit(op.INSTANCEOF, name, line=line)
        else:  # pragma: no cover
            raise CompileError(f"unknown expression {type(expr).__name__}")
        if not want_value:
            self.emit(op.POP, line=line)

    def _var_ref(self, expr: ast.VarRef) -> None:
        line = expr.pos.line
        kind = expr.binding[0] if expr.binding else None
        if kind == "local":
            slot, ty = self._lookup(expr.name)
            self._load(slot, ty, line)
        elif kind == "field":
            fi = expr.binding[1]
            if fi.is_static:
                self.emit(op.GETSTATIC, fi.declaring_class, fi.name, line=line)
            else:
                self.emit(op.ALOAD, 0, line=line)
                self.emit(op.GETFIELD, fi.declaring_class, fi.name, line=line)
        else:
            raise CompileError(f"class name {expr.name} used as a value")

    def _call(self, expr: ast.Call, want_value: bool) -> None:
        line = expr.pos.line
        recv_class, mi = expr.resolved
        if mi.is_static:
            pass  # no receiver
        elif expr.target is None:
            self.emit(op.ALOAD, 0, line=line)
        else:
            self._expr(expr.target)
        for arg, (_, pty) in zip(expr.args, mi.params):
            self._expr(arg)
            self._coerce(arg.ty, pty)
        if mi.is_static:
            self.emit(op.INVOKESTATIC, recv_class, mi.name, mi.arity, line=line)
        else:
            self.emit(op.INVOKEVIRTUAL, recv_class, mi.name, mi.arity, line=line)
        if not want_value and mi.ret is not VOID:
            self.emit(op.POP, line=line)

    def _new(self, expr: ast.New) -> None:
        line = expr.pos.line
        ctor = self.table.resolve_ctor(expr.class_name)
        assert ctor is not None
        self.emit(op.NEW, expr.class_name, line=line)
        self.emit(op.DUP, line=line)
        for arg, (_, pty) in zip(expr.args, ctor.params):
            self._expr(arg)
            self._coerce(arg.ty, pty)
        self.emit(op.INVOKESPECIAL, expr.class_name, "<init>", ctor.arity, line=line)

    def _unary(self, expr: ast.Unary) -> None:
        if expr.op == "-":
            self._expr(expr.operand)
            neg = {"I": op.INEG, "J": op.LNEG, "F": op.FNEG}[_tychar(expr.ty)]
            self.emit(neg, line=expr.pos.line)
        else:  # "!": materialize via branches
            self._materialize_bool(expr)

    def _materialize_bool(self, expr: ast.Expr) -> None:
        l_false, l_end = Label("BF"), Label("BE")
        self._branch_if_false(expr, l_false)
        self.emit(op.LDC, 1, "I", line=expr.pos.line)
        self.emit(op.GOTO, l_end)
        self.method.place(l_false)
        self.emit(op.LDC, 0, "I", line=expr.pos.line)
        self.method.place(l_end)

    def _binary(self, expr: ast.Binary) -> None:
        opname = expr.op
        line = expr.pos.line
        if opname in ("&&", "||") or opname in _CMP:
            self._materialize_bool(expr)
            return
        if opname == "+" and expr.ty is STRING:
            self._expr(expr.left)
            self._expr(expr.right)
            self.emit(op.INVOKESTATIC, "Str", "concat", 2, line=line)
            return
        assert expr.ty is not None
        ch = _tychar(expr.ty)
        if opname in ("<<", ">>", ">>>"):
            self._expr(expr.left)
            self._expr(expr.right)  # shift amount stays int
        else:
            self._expr(expr.left)
            self._coerce(expr.left.ty, expr.ty)
            self._expr(expr.right)
            self._coerce(expr.right.ty, expr.ty)
        try:
            self.emit(_ARITH[(opname, ch)], line=line)
        except KeyError:  # pragma: no cover
            raise CompileError(f"no opcode for {opname} on {expr.ty}") from None

    def _assign(self, expr: ast.Assign, want_value: bool) -> None:
        target = expr.target
        line = expr.pos.line
        if isinstance(target, ast.VarRef) and target.binding[0] == "local":
            slot, ty = self._lookup(target.name)
            self._expr(expr.value)
            self._coerce(expr.value.ty, ty)
            if want_value:
                self.emit(op.DUP, line=line)
            self._store(slot, ty, line)
            return
        # resolve the (class, field, static?) triple for field targets
        if isinstance(target, ast.VarRef):
            fi = target.binding[1]
            cls, fname, is_static, fty = fi.declaring_class, fi.name, fi.is_static, fi.ty
            obj_pusher = None if is_static else (lambda: self.emit(op.ALOAD, 0, line=line))
        elif isinstance(target, ast.FieldAccess):
            fi = self.table.resolve_field(target.resolved_class, target.name)
            assert fi is not None
            cls, fname, is_static, fty = (
                target.resolved_class,
                target.name,
                target.is_static,
                fi.ty,
            )
            obj_pusher = None if is_static else (lambda: self._expr(target.target))
        elif isinstance(target, ast.ArrayIndex):
            assert isinstance(target.target.ty, ArrayType)
            elem_ty = target.target.ty.elem
            if want_value:
                tmp = self._alloc_temp()
                self._expr(expr.value)
                self._coerce(expr.value.ty, elem_ty)
                self._store(tmp, elem_ty, line)
                self._expr(target.target)
                self._expr(target.index)
                self._load(tmp, elem_ty, line)
                self.emit(op.XASTORE, _tychar(elem_ty), line=line)
                self._load(tmp, elem_ty, line)
            else:
                self._expr(target.target)
                self._expr(target.index)
                self._expr(expr.value)
                self._coerce(expr.value.ty, elem_ty)
                self.emit(op.XASTORE, _tychar(elem_ty), line=line)
            return
        else:  # pragma: no cover
            raise CompileError("bad assignment target")

        if is_static:
            self._expr(expr.value)
            self._coerce(expr.value.ty, fty)
            if want_value:
                self.emit(op.DUP, line=line)
            self.emit(op.PUTSTATIC, cls, fname, line=line)
        elif want_value:
            tmp = self._alloc_temp()
            self._expr(expr.value)
            self._coerce(expr.value.ty, fty)
            self._store(tmp, fty, line)
            obj_pusher()
            self._load(tmp, fty, line)
            self.emit(op.PUTFIELD, cls, fname, line=line)
            self._load(tmp, fty, line)
        else:
            obj_pusher()
            self._expr(expr.value)
            self._coerce(expr.value.ty, fty)
            self.emit(op.PUTFIELD, cls, fname, line=line)

    def _cast(self, expr: ast.Cast) -> None:
        self._expr(expr.expr)
        src, dst = expr.expr.ty, expr.to
        if src.is_numeric() and dst.is_numeric():
            self._coerce(src, dst)
        elif isinstance(dst, (ClassType, ArrayType)) and not isinstance(
            src, NullType
        ):
            name = dst.name if isinstance(dst, ClassType) else dst.descriptor()
            self.emit(op.CHECKCAST, name, line=expr.pos.line)


def compile_program(program: ast.Program, table: ClassTable) -> BProgram:
    """Compile an analyzed AST into a :class:`BProgram`.

    Static field initializers become a synthetic ``<clinit>`` method run at
    class-load time; the class containing a static ``main`` becomes the
    program entry point.
    """
    classes: Dict[str, BClass] = {}
    main_class: Optional[str] = None
    for cd in program.classes:
        info = table.get(cd.name)
        bclass = BClass(cd.name, cd.superclass or "Object")
        for fd in cd.fields:
            bclass.fields[fd.name] = BField(fd.name, fd.ty, fd.is_static)
        # <clinit> for static initializers
        static_inits = [fd for fd in cd.fields if fd.is_static and fd.init is not None]
        if static_inits:
            clinit = BMethod(cd.name, "<clinit>", [], VOID, True, False)
            sub = _MethodCompiler.__new__(_MethodCompiler)
            sub.table = table
            sub.bclass = bclass
            sub.method = clinit
            sub.slots = [{}]
            sub.next_slot = 0
            sub.break_labels = []
            sub.continue_labels = []
            for fd in static_inits:
                sub._expr(fd.init)
                sub._coerce(fd.init.ty, fd.ty)
                clinit.emit(op.PUTSTATIC, cd.name, fd.name, line=fd.pos.line)
            clinit.emit(op.RETURN)
            bclass.methods["<clinit>"] = clinit
        for md in cd.methods:
            mi = info.methods[md.name]
            mc = _MethodCompiler(table, bclass, mi)
            bclass.methods[md.name] = mc.compile()
            if md.name == "main" and md.is_static:
                main_class = cd.name
        classes[cd.name] = bclass
    return BProgram(classes, table, main_class)
