"""Bytecode verifier: static stack-discipline checking.

A lightweight analogue of the JVM verifier: abstract interpretation of the
operand-stack *depth* over all paths.  Catches the bug classes the
communication rewriter could introduce (unbalanced PACK/LDC insertions,
missing POP after void accesses, branch-depth mismatches) before a program
reaches the interpreter.  Used by tests and by ``verify_program`` callers
that want fail-fast loading.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bytecode import opcodes as op
from repro.bytecode.model import BMethod, BProgram
from repro.errors import ReproError


class VerifyError(ReproError):
    """Raised when bytecode violates stack discipline."""


#: a generous per-method operand stack bound (sanity, not a JVM limit)
MAX_STACK = 4096


def verify_method(method: BMethod, table) -> int:
    """Verify ``method``; returns the maximum operand-stack depth.

    Checks:
    * no stack underflow on any path;
    * consistent depth at every join point;
    * every path ends in a return instruction;
    * value-returning methods end with the matching typed return.
    """
    from repro.quad.builder import stack_effect

    flat = method.flat()
    n = len(flat)
    if n == 0:
        raise VerifyError(f"{method.qualified}: empty code")
    depth_at: Dict[int, int] = {0: 0}
    work: List[int] = [0]
    max_depth = 0
    while work:
        i = work.pop()
        depth = depth_at[i]
        ins = flat[i]
        try:
            pops, pushes = stack_effect(ins, table)
        except Exception as exc:
            raise VerifyError(f"{method.qualified}@{i}: {exc}") from exc
        if depth - pops < 0:
            raise VerifyError(
                f"{method.qualified}@{i}: stack underflow "
                f"({ins.op} pops {pops}, depth {depth})"
            )
        out = depth - pops + pushes
        if out > MAX_STACK:
            raise VerifyError(f"{method.qualified}@{i}: stack overflow")
        max_depth = max(max_depth, out)

        succs: List[int] = []
        if ins.op == op.GOTO:
            succs = [ins.a]
        elif ins.op in op.CMP_BRANCHES:
            succs = [ins.b, i + 1]
        elif ins.op in op.BOOL_BRANCHES:
            succs = [ins.a, i + 1]
        elif ins.op in op.RETURNS:
            if out != 0:
                raise VerifyError(
                    f"{method.qualified}@{i}: {out} values left on stack at "
                    "return"
                )
            succs = []
        else:
            succs = [i + 1]
        for s in succs:
            if s >= n:
                raise VerifyError(
                    f"{method.qualified}@{i}: control flow falls off the end"
                )
            known = depth_at.get(s)
            if known is None:
                depth_at[s] = out
                work.append(s)
            elif known != out:
                raise VerifyError(
                    f"{method.qualified}@{s}: inconsistent stack depth at "
                    f"join ({known} vs {out})"
                )

    # terminal instruction type check (reachable returns only)
    from repro.lang.types import VOID

    want_void = method.ret_type is VOID
    for i, ins in enumerate(flat):
        if i not in depth_at:
            continue
        if ins.op in op.RETURNS:
            if want_void and ins.op != op.RETURN:
                raise VerifyError(
                    f"{method.qualified}@{i}: value return in void method"
                )
            if not want_void and ins.op == op.RETURN:
                raise VerifyError(
                    f"{method.qualified}@{i}: bare return in value method"
                )
    return max_depth


def verify_program(program: BProgram) -> Dict[str, int]:
    """Verify every method; returns max stack depth per qualified name."""
    out: Dict[str, int] = {}
    for bclass in program.classes.values():
        for method in bclass.methods.values():
            out[method.qualified] = verify_method(method, program.table)
    return out
