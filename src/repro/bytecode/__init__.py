"""MJ bytecode: a JVM-style stack bytecode.

This is the substrate standing in for Java class files (see DESIGN.md).  The
subpackage provides the instruction set (:mod:`opcodes`), the program model
(:mod:`model`), the AST-to-bytecode compiler (:mod:`compiler`) and a
disassembler used by the figure benches (:mod:`disassembler`).
"""

from repro.bytecode.compiler import compile_program
from repro.bytecode.disassembler import disassemble_method, disassemble_program
from repro.bytecode.model import BClass, BField, BMethod, BProgram, Instr, Label

__all__ = [
    "compile_program",
    "disassemble_method",
    "disassemble_program",
    "BProgram",
    "BClass",
    "BMethod",
    "BField",
    "Instr",
    "Label",
]
