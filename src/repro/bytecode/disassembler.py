"""Bytecode disassembler producing javap-style listings.

Used by the Figure 8 / Figure 9 benches to show the original and transformed
bytecode of method invocations and remote instantiations.
"""

from __future__ import annotations

from typing import List

from repro.bytecode import opcodes as op
from repro.bytecode.model import BMethod, BProgram


_LOWER = {
    op.LDC: "ldc",
    op.ACONST_NULL: "aconst_null",
    op.ILOAD: "iload",
    op.LLOAD: "lload",
    op.FLOAD: "fload",
    op.ALOAD: "aload",
    op.ISTORE: "istore",
    op.LSTORE: "lstore",
    op.FSTORE: "fstore",
    op.ASTORE: "astore",
    op.DUP: "dup",
    op.POP: "pop",
    op.NEW: "new",
    op.NEWARRAY: "newarray",
    op.INVOKEVIRTUAL: "invokevirtual",
    op.INVOKESPECIAL: "invokespecial",
    op.INVOKESTATIC: "invokestatic",
    op.GETFIELD: "getfield",
    op.PUTFIELD: "putfield",
    op.GETSTATIC: "getstatic",
    op.PUTSTATIC: "putstatic",
    op.CHECKCAST: "checkcast",
    op.INSTANCEOF: "instanceof",
    op.ARRAYLENGTH: "arraylength",
    op.PACK: "pack",
    op.GOTO: "goto",
    op.RETURN: "return",
    op.IRETURN: "ireturn",
    op.LRETURN: "lreturn",
    op.FRETURN: "freturn",
    op.ARETURN: "areturn",
}


def _fmt_instr(ins, idx_width: int, index: int) -> str:
    name = _LOWER.get(ins.op, ins.op.lower())
    parts: List[str] = []
    if ins.op == op.LDC:
        if ins.b == "S":
            parts.append(f'"{ins.a}"')
        else:
            ty = {"I": "int", "J": "long", "F": "float"}.get(ins.b, "")
            parts.append(f"{ins.a} ({ty})" if ty else str(ins.a))
    elif ins.op in op.INVOKES:
        parts.append(f"{ins.a}.{ins.b}:({ins.c})")
    elif ins.op in (op.GETFIELD, op.PUTFIELD, op.GETSTATIC, op.PUTSTATIC):
        parts.append(f"{ins.a}.{ins.b}")
    elif ins.op in op.CMP_BRANCHES:
        parts.append(f"{ins.a} -> {ins.b}")
    elif ins.op in op.BOOL_BRANCHES or ins.op == op.GOTO:
        parts.append(f"-> {ins.a}")
    else:
        parts.extend(str(v) for v in ins.operands())
    text = f"{index:>{idx_width}}: {name}"
    if parts:
        text += " " + " ".join(parts)
    return text


def disassemble_method(method: BMethod, header: bool = True) -> str:
    """Render the *flat* (label-resolved) code of ``method``."""
    flat = method.flat()
    width = max(2, len(str(len(flat))))
    lines: List[str] = []
    if header:
        mods = "static " if method.is_static else ""
        lines.append(f"{mods}{method.ret_type} {method.qualified}"
                     f"({', '.join(str(t) for t in method.param_types)}):")
    for i, ins in enumerate(flat):
        lines.append("  " + _fmt_instr(ins, width, i))
    return "\n".join(lines)


def disassemble_program(program: BProgram) -> str:
    out: List[str] = []
    for cname in sorted(program.classes):
        bclass = program.classes[cname]
        out.append(f"class {cname} extends {bclass.superclass} {{")
        for fld in bclass.fields.values():
            mods = "static " if fld.is_static else ""
            out.append(f"  {mods}{fld.ty} {fld.name};")
        for mname in sorted(bclass.methods):
            out.append(
                "  " + disassemble_method(bclass.methods[mname]).replace("\n", "\n  ")
            )
        out.append("}")
    return "\n".join(out)
