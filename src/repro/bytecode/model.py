"""Program model for MJ bytecode: classes, methods, instructions, labels.

A :class:`BMethod` holds *symbolic* code — a list of :class:`Instr` whose
branch operands are :class:`Label` objects, with ``LABEL`` pseudo-instructions
marking their positions.  Symbolic code is what the communication rewriter
edits (instructions can be inserted freely).  :meth:`BMethod.flat` resolves
labels to instruction indices and strips the markers, producing the executable
form consumed by the VM, the quad builder and the profiler.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CompileError
from repro.bytecode import opcodes as op
from repro.lang.types import Type


class Label:
    """A symbolic branch target; identity-based."""

    _ids = itertools.count()

    __slots__ = ("name",)

    def __init__(self, hint: str = "L") -> None:
        self.name = f"{hint}{next(Label._ids)}"

    def __repr__(self) -> str:  # pragma: no cover
        return self.name


class Instr:
    """One bytecode instruction: an opcode plus up to three operands.

    ``opx`` (dense interned opcode) and ``cost`` (abstract cycles) are
    precomputed at construction so the interpreter hot loop never does a
    string-keyed lookup; ``cfn`` holds the resolved comparison callable for
    flattened compare-branches (set by :meth:`BMethod.flat`).
    """

    __slots__ = ("op", "a", "b", "c", "line", "opx", "cost", "cfn")

    def __init__(self, opname: str, a=None, b=None, c=None, line: int = 0) -> None:
        self.op = opname
        self.a = a
        self.b = b
        self.c = c
        self.line = line
        self.opx = op.OPX.get(opname, 0)
        self.cost = op.COST.get(opname, 1)
        self.cfn = None

    def operands(self) -> Tuple:
        out = []
        for v in (self.a, self.b, self.c):
            if v is not None:
                out.append(v)
        return tuple(out)

    def __repr__(self) -> str:  # pragma: no cover
        ops = ", ".join(repr(v) for v in self.operands())
        return f"{self.op}({ops})" if ops else self.op


def basic_block_leaders(instrs: List[Instr]) -> Tuple[int, ...]:
    """Basic-block leader indices of flattened code: entry, every branch
    target, and every instruction following a branch, invoke or return.

    This is the *static* block structure (``repro bench`` reports it as
    mean block length — the shape metric behind the cost-batching win);
    the fast path itself batches dynamically, straight through branches
    and calls until the next syscall boundary."""
    leaders = {0}
    for i, ins in enumerate(instrs):
        o = ins.op
        if o in op.BRANCHES:
            target = ins.b if o in op.CMP_BRANCHES else ins.a
            leaders.add(target)
            leaders.add(i + 1)
        elif o in op.INVOKES or o in op.RETURNS:
            leaders.add(i + 1)
    return tuple(sorted(l for l in leaders if l < len(instrs)))


class FlatCode:
    """Executable form: label-free instruction list with integer targets."""

    __slots__ = ("instrs", "label_index", "_block_starts", "threaded", "fused")

    def __init__(self, instrs: List[Instr], label_index: Dict[Label, int]) -> None:
        self.instrs = instrs
        self.label_index = label_index
        self._block_starts: Optional[Tuple[int, ...]] = None
        #: threaded form ``[(handler, instr), ...]`` built lazily by the VM
        #: fast path on first execution (the bytecode layer stays ignorant
        #: of the handler table)
        self.threaded = None
        #: compiled-tier plan built lazily by :mod:`repro.vm.jit`: per-index
        #: either a fused Run (at run starts) or the plain threaded pair
        self.fused = None

    @property
    def block_starts(self) -> Tuple[int, ...]:
        """Basic-block leader indices (entry, branch targets, post-branch /
        post-call instructions) — static block structure for tooling and
        the ``repro bench`` block-shape statistics.  Computed lazily so the
        compile/rewrite hot path never pays for it."""
        if self._block_starts is None:
            self._block_starts = basic_block_leaders(self.instrs)
        return self._block_starts

    def basic_blocks(self) -> List[Tuple[int, int]]:
        """``(start, end)`` half-open index ranges of the basic blocks."""
        bounds = list(self.block_starts) + [len(self.instrs)]
        return [(a, b) for a, b in zip(bounds, bounds[1:]) if b > a]

    def __len__(self) -> int:
        return len(self.instrs)

    def __iter__(self):
        return iter(self.instrs)

    def __getitem__(self, i: int) -> Instr:
        return self.instrs[i]


class BField:
    __slots__ = ("name", "ty", "is_static")

    def __init__(self, name: str, ty: Type, is_static: bool) -> None:
        self.name = name
        self.ty = ty
        self.is_static = is_static


class BMethod:
    """Bytecode for one method."""

    __slots__ = (
        "class_name",
        "name",
        "param_types",
        "ret_type",
        "is_static",
        "is_ctor",
        "max_locals",
        "code",
        "_flat",
    )

    def __init__(
        self,
        class_name: str,
        name: str,
        param_types: Sequence[Type],
        ret_type: Type,
        is_static: bool,
        is_ctor: bool,
    ) -> None:
        self.class_name = class_name
        self.name = name
        self.param_types = list(param_types)
        self.ret_type = ret_type
        self.is_static = is_static
        self.is_ctor = is_ctor
        self.max_locals = 0
        self.code: List[Instr] = []
        self._flat: Optional[FlatCode] = None

    @property
    def qualified(self) -> str:
        return f"{self.class_name}.{self.name}"

    @property
    def nargs(self) -> int:
        return len(self.param_types)

    def emit(self, opname: str, a=None, b=None, c=None, line: int = 0) -> Instr:
        ins = Instr(opname, a, b, c, line)
        self.code.append(ins)
        self._flat = None
        return ins

    def place(self, label: Label) -> None:
        self.emit(op.LABEL, label)

    def invalidate(self) -> None:
        """Mark symbolic code as modified (used by the rewriter)."""
        self._flat = None

    def flat(self) -> FlatCode:
        """Resolve labels and strip ``LABEL`` markers (cached)."""
        if self._flat is not None:
            return self._flat
        label_at: Dict[Label, int] = {}
        instrs: List[Instr] = []
        for ins in self.code:
            if ins.op == op.LABEL:
                label_at[ins.a] = len(instrs)
            else:
                instrs.append(ins)
        resolved: List[Instr] = []
        for ins in instrs:
            if ins.op in op.BRANCHES:
                if ins.op in op.CMP_BRANCHES:
                    target = ins.b
                else:
                    target = ins.a
                if target not in label_at:
                    raise CompileError(
                        f"{self.qualified}: branch to unplaced label {target}"
                    )
                idx = label_at[target]
                if ins.op in op.CMP_BRANCHES:
                    ri = Instr(ins.op, ins.a, idx, None, ins.line)
                    # resolve the condition string to its comparison callable
                    # once, here, instead of per executed branch; mirror the
                    # reference path exactly: IF_ACMP treats every non-EQ
                    # condition as NE, the typed compares leave unknown
                    # conditions unresolved (the handler then raises the
                    # same KeyError the oracle's table lookup would)
                    if ins.op == op.IF_ACMP:
                        ri.cfn = op.ACMP_FUNCS["EQ" if ins.a == "EQ" else "NE"]
                    else:
                        ri.cfn = op.CMP_FUNCS.get(ins.a)
                    resolved.append(ri)
                else:
                    resolved.append(Instr(ins.op, idx, None, None, ins.line))
            else:
                resolved.append(ins)
        self._flat = FlatCode(resolved, label_at)
        return self._flat

    def size_bytes(self) -> int:
        """Rough serialized size (for Table 1's KB column): opcode byte plus
        two bytes per operand, strings by length."""
        total = 0
        for ins in self.code:
            if ins.op == op.LABEL:
                continue
            total += 1
            for v in ins.operands():
                total += len(v) if isinstance(v, str) else 2
        return total

    def __repr__(self) -> str:  # pragma: no cover
        return f"<BMethod {self.qualified} ({len(self.code)} instrs)>"


class BClass:
    __slots__ = ("name", "superclass", "fields", "methods")

    def __init__(self, name: str, superclass: str) -> None:
        self.name = name
        self.superclass = superclass
        self.fields: Dict[str, BField] = {}
        self.methods: Dict[str, BMethod] = {}

    def instance_fields(self) -> List[BField]:
        return [f for f in self.fields.values() if not f.is_static]

    def static_fields(self) -> List[BField]:
        return [f for f in self.fields.values() if f.is_static]

    def size_bytes(self) -> int:
        total = 32 + sum(len(f.name) + 4 for f in self.fields.values())
        total += sum(m.size_bytes() + len(m.name) for m in self.methods.values())
        return total

    def __repr__(self) -> str:  # pragma: no cover
        return f"<BClass {self.name}>"


class BProgram:
    """A compiled MJ program: all user classes plus links to the class table."""

    __slots__ = ("classes", "table", "main_class")

    def __init__(self, classes: Dict[str, BClass], table, main_class: Optional[str]):
        self.classes = classes
        self.table = table  # repro.lang.symbols.ClassTable
        self.main_class = main_class

    def lookup_method(self, class_name: str, method: str) -> Optional[BMethod]:
        """Resolve ``method`` starting at ``class_name``, walking supers
        (virtual dispatch resolution for compiled classes)."""
        cur: Optional[str] = class_name
        while cur is not None and cur in self.classes:
            bc = self.classes[cur]
            if method in bc.methods:
                return bc.methods[method]
            cur = bc.superclass
        return None

    def num_classes(self) -> int:
        return len(self.classes)

    def num_methods(self) -> int:
        return sum(len(c.methods) for c in self.classes.values())

    def size_bytes(self) -> int:
        return sum(c.size_bytes() for c in self.classes.values())

    def copy(self) -> "BProgram":
        """Deep-copy the symbolic code (used before rewriting so the original
        program stays runnable for the centralized baseline)."""
        new_classes: Dict[str, BClass] = {}
        for name, bc in self.classes.items():
            nc = BClass(bc.name, bc.superclass)
            nc.fields = dict(bc.fields)
            for mname, bm in bc.methods.items():
                nm = BMethod(
                    bm.class_name,
                    bm.name,
                    bm.param_types,
                    bm.ret_type,
                    bm.is_static,
                    bm.is_ctor,
                )
                nm.max_locals = bm.max_locals
                nm.code = [
                    Instr(i.op, i.a, i.b, i.c, i.line) for i in bm.code
                ]
                nc.methods[mname] = nm
            new_classes[name] = nc
        return BProgram(new_classes, self.table, self.main_class)
