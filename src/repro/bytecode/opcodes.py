"""The MJ bytecode instruction set and its abstract cost model.

Opcode names follow JVM conventions (``iload``-style semantics, spelled in
upper case).  Branch instructions carry :class:`~repro.bytecode.model.Label`
operands until :meth:`~repro.bytecode.model.BMethod.flat` resolves them to
instruction indices.

The **cost model** assigns each opcode an abstract cycle count.  Virtual time
on a simulated node advances by ``cycles / node.cpu_hz`` — this is what makes
the Figure 11 speedup experiment deterministic (see
:mod:`repro.runtime.simnet`).
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, FrozenSet, Tuple

# --- constants -------------------------------------------------------------
LDC = "LDC"                    # (value, type_char)
ACONST_NULL = "ACONST_NULL"

# --- locals ----------------------------------------------------------------
ILOAD = "ILOAD"
LLOAD = "LLOAD"
FLOAD = "FLOAD"
ALOAD = "ALOAD"
ISTORE = "ISTORE"
LSTORE = "LSTORE"
FSTORE = "FSTORE"
ASTORE = "ASTORE"

LOADS = frozenset({ILOAD, LLOAD, FLOAD, ALOAD})
STORES = frozenset({ISTORE, LSTORE, FSTORE, ASTORE})

# --- stack -----------------------------------------------------------------
DUP = "DUP"
POP = "POP"
SWAP = "SWAP"

# --- arithmetic / bitwise ----------------------------------------------------
IADD, ISUB, IMUL, IDIV, IREM, INEG = "IADD", "ISUB", "IMUL", "IDIV", "IREM", "INEG"
LADD, LSUB, LMUL, LDIV, LREM, LNEG = "LADD", "LSUB", "LMUL", "LDIV", "LREM", "LNEG"
FADD, FSUB, FMUL, FDIV, FREM, FNEG = "FADD", "FSUB", "FMUL", "FDIV", "FREM", "FNEG"
IAND, IOR, IXOR = "IAND", "IOR", "IXOR"
ISHL, ISHR, IUSHR = "ISHL", "ISHR", "IUSHR"
LAND, LOR, LXOR = "LAND", "LOR", "LXOR"
LSHL, LSHR, LUSHR = "LSHL", "LSHR", "LUSHR"

BINOPS: FrozenSet[str] = frozenset(
    {
        IADD, ISUB, IMUL, IDIV, IREM,
        LADD, LSUB, LMUL, LDIV, LREM,
        FADD, FSUB, FMUL, FDIV, FREM,
        IAND, IOR, IXOR, ISHL, ISHR, IUSHR,
        LAND, LOR, LXOR, LSHL, LSHR, LUSHR,
    }
)
NEGOPS = frozenset({INEG, LNEG, FNEG})

# --- conversions ---------------------------------------------------------------
I2L, I2F, L2I, L2F, F2I, F2L = "I2L", "I2F", "L2I", "L2F", "F2I", "F2L"
CONVERSIONS = frozenset({I2L, I2F, L2I, L2F, F2I, F2L})

# --- control flow ----------------------------------------------------------------
IF_ICMP = "IF_ICMP"            # (cond, label)   cond in EQ NE LT LE GT GE
IF_LCMP = "IF_LCMP"
IF_FCMP = "IF_FCMP"
IF_ACMP = "IF_ACMP"            # (cond, label)   cond in EQ NE
IFTRUE = "IFTRUE"              # (label,)
IFFALSE = "IFFALSE"
GOTO = "GOTO"
CMP_BRANCHES = frozenset({IF_ICMP, IF_LCMP, IF_FCMP, IF_ACMP})
BOOL_BRANCHES = frozenset({IFTRUE, IFFALSE})
BRANCHES = CMP_BRANCHES | BOOL_BRANCHES | {GOTO}

# --- objects -----------------------------------------------------------------------
NEW = "NEW"                          # (class_name,)
INVOKEVIRTUAL = "INVOKEVIRTUAL"      # (class_name, method, nargs)
INVOKESPECIAL = "INVOKESPECIAL"      # (class_name, method, nargs)  (constructors)
INVOKESTATIC = "INVOKESTATIC"        # (class_name, method, nargs)
GETFIELD = "GETFIELD"                # (class_name, field)
PUTFIELD = "PUTFIELD"
GETSTATIC = "GETSTATIC"
PUTSTATIC = "PUTSTATIC"
CHECKCAST = "CHECKCAST"              # (class_name,)
INSTANCEOF = "INSTANCEOF"
INVOKES = frozenset({INVOKEVIRTUAL, INVOKESPECIAL, INVOKESTATIC})

# --- arrays ----------------------------------------------------------------------
NEWARRAY = "NEWARRAY"          # (elem_descriptor,)
ARRAYLENGTH = "ARRAYLENGTH"
XALOAD = "XALOAD"              # (type_char,)   array element load
XASTORE = "XASTORE"

# --- returns ----------------------------------------------------------------------
RETURN = "RETURN"
IRETURN, LRETURN, FRETURN, ARETURN = "IRETURN", "LRETURN", "FRETURN", "ARETURN"
RETURNS = frozenset({RETURN, IRETURN, LRETURN, FRETURN, ARETURN})

# --- distribution support (inserted by the communication rewriter) -----------------
PACK = "PACK"                  # (n,)  pop n values, push a LinkedList of them

# --- pseudo ------------------------------------------------------------------------
LABEL = "LABEL"                # (Label,)  marker, removed by flattening


#: abstract cycles per opcode (defaults to 1)
COST: Dict[str, int] = {
    LDC: 1,
    ACONST_NULL: 1,
    DUP: 1,
    POP: 1,
    SWAP: 1,
    IMUL: 3,
    LMUL: 4,
    FMUL: 4,
    IDIV: 12,
    LDIV: 16,
    FDIV: 16,
    IREM: 12,
    LREM: 16,
    FREM: 18,
    FADD: 3,
    FSUB: 3,
    NEW: 24,
    NEWARRAY: 24,
    GETFIELD: 3,
    PUTFIELD: 3,
    GETSTATIC: 2,
    PUTSTATIC: 2,
    XALOAD: 3,
    XASTORE: 3,
    ARRAYLENGTH: 2,
    CHECKCAST: 3,
    INSTANCEOF: 3,
    INVOKEVIRTUAL: 14,
    INVOKESPECIAL: 12,
    INVOKESTATIC: 10,
    IRETURN: 4,
    LRETURN: 4,
    FRETURN: 4,
    ARETURN: 4,
    RETURN: 4,
    PACK: 8,
}


def cost_of(op: str) -> int:
    """Abstract cycle cost of one opcode (see module docstring).

    Static analyses (e.g. the resource model) still call this; the
    interpreter hot path does not — every :class:`~repro.bytecode.model.Instr`
    carries its cost precomputed in ``Instr.cost``.
    """
    return COST.get(op, 1)


# --- opcode interning -------------------------------------------------------
#: dense opcode numbering for the threaded-code dispatch table
#: (:mod:`repro.vm.dispatch`).  Index 0 is reserved for unknown opcodes so a
#: handcrafted bad instruction still fails with the VM's "unknown opcode"
#: error instead of an index error.  The order is load-bearing only in that
#: it must match the handler table built against ``OPCODE_LIST``.
OPCODE_LIST: Tuple[str, ...] = (
    "<unknown>",
    LDC, ACONST_NULL,
    ILOAD, LLOAD, FLOAD, ALOAD,
    ISTORE, LSTORE, FSTORE, ASTORE,
    DUP, POP, SWAP,
    IADD, ISUB, IMUL, IDIV, IREM, INEG,
    LADD, LSUB, LMUL, LDIV, LREM, LNEG,
    FADD, FSUB, FMUL, FDIV, FREM, FNEG,
    IAND, IOR, IXOR, ISHL, ISHR, IUSHR,
    LAND, LOR, LXOR, LSHL, LSHR, LUSHR,
    I2L, I2F, L2I, L2F, F2I, F2L,
    IF_ICMP, IF_LCMP, IF_FCMP, IF_ACMP, IFTRUE, IFFALSE, GOTO,
    NEW, INVOKEVIRTUAL, INVOKESPECIAL, INVOKESTATIC,
    GETFIELD, PUTFIELD, GETSTATIC, PUTSTATIC, CHECKCAST, INSTANCEOF,
    NEWARRAY, ARRAYLENGTH, XALOAD, XASTORE,
    RETURN, IRETURN, LRETURN, FRETURN, ARETURN,
    PACK,
    LABEL,
)

#: opcode name → dense int index (the interned form stored in ``Instr.opx``)
OPX: Dict[str, int] = {name: i for i, name in enumerate(OPCODE_LIST)}
NUM_OPCODES = len(OPCODE_LIST)


def _acmp_eq(a, b) -> bool:
    # reference equality with value semantics for boxed/str operands
    return (a == b) if (a is not None and b is not None) else (a is b)


def _acmp_ne(a, b) -> bool:
    return not _acmp_eq(a, b)


#: branch-condition name → comparison callable, resolved once at flatten
#: time onto ``Instr.cfn`` so the interpreter never does the string-keyed
#: lookup per executed branch
CMP_FUNCS: Dict[str, Callable] = {
    "EQ": operator.eq,
    "NE": operator.ne,
    "LT": operator.lt,
    "LE": operator.le,
    "GT": operator.gt,
    "GE": operator.ge,
}
ACMP_FUNCS: Dict[str, Callable] = {"EQ": _acmp_eq, "NE": _acmp_ne}


#: result type char pushed by each arithmetic/conversion opcode; used by the
#: quad builder's abstract stack interpretation
RESULT_TYPE: Dict[str, str] = {}
for _op in BINOPS | NEGOPS:
    RESULT_TYPE[_op] = {"I": "I", "L": "J", "F": "F"}[_op[0]]
RESULT_TYPE.update(
    {I2L: "J", I2F: "F", L2I: "I", L2F: "F", F2I: "I", F2L: "J", ARRAYLENGTH: "I"}
)
