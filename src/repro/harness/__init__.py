"""Experiment harness: the end-to-end pipeline plus per-table/figure
reproduction code (see DESIGN.md §4 for the experiment index), the
content-addressed stage cache, and the batch sweep orchestrator."""

from repro.harness.cache import StageCache, default_cache, reset_default_cache
from repro.harness.pipeline import CompiledWorkload, Pipeline, compile_workload
from repro.harness.sweep import (
    SweepConfig,
    SweepRecord,
    SweepResult,
    SweepRunner,
    run_config,
    sweep_grid,
)

__all__ = [
    "Pipeline",
    "CompiledWorkload",
    "compile_workload",
    "StageCache",
    "default_cache",
    "reset_default_cache",
    "SweepConfig",
    "SweepRecord",
    "SweepResult",
    "SweepRunner",
    "run_config",
    "sweep_grid",
]
