"""Experiment harness: the end-to-end pipeline plus per-table/figure
reproduction code (see DESIGN.md §4 for the experiment index)."""

from repro.harness.pipeline import CompiledWorkload, Pipeline, compile_workload

__all__ = ["Pipeline", "CompiledWorkload", "compile_workload"]
