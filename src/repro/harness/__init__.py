"""Experiment harness: the end-to-end pipeline plus per-table/figure
reproduction code (see DESIGN.md §4 for the experiment index), the
content-addressed stage cache, and the batch sweep orchestrator.

The heavy submodules import lazily (PEP 562): ``repro.api`` sits under the
harness shims now, and an eager ``pipeline`` import here would cycle back
through ``repro.api.experiment`` → ``repro.harness.cache``.
"""

from repro.harness.cache import StageCache, default_cache, reset_default_cache

_EXPORTS = {
    "Pipeline": "repro.harness.pipeline",
    "CompiledWorkload": "repro.harness.pipeline",
    "compile_workload": "repro.harness.pipeline",
    "SweepConfig": "repro.harness.sweep",
    "SweepRecord": "repro.harness.sweep",
    "SweepResult": "repro.harness.sweep",
    "SweepRunner": "repro.harness.sweep",
    "run_config": "repro.harness.sweep",
    "sweep_grid": "repro.harness.sweep",
}

__all__ = [
    "StageCache",
    "default_cache",
    "reset_default_cache",
    *sorted(_EXPORTS),
]


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return __all__
