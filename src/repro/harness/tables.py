"""Table reproduction (paper Tables 1, 2 and 3, Figure 11 series).

Each ``tableN`` function computes the rows and returns (rows, formatted
text); benches under ``benchmarks/`` call these and persist the text to
``benchmarks/out/``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.config import ExperimentConfig
from repro.api.experiment import Experiment, compile_workload
from repro.harness.cache import StageCache
from repro.profiler import ALL_METRICS, attach, make_profiler
from repro.vm.interpreter import Machine, run_sync
from repro.workloads import TABLE1_ORDER, WORKLOADS


def _experiment(
    name: str, size: str, cache: Optional[StageCache] = None
) -> Experiment:
    """One stock experiment per table row: the paper's defaults (2-way
    multilevel partition, paper testbed, simulator backend)."""
    return Experiment(
        ExperimentConfig.from_options(name, size=size), cache=cache
    )


def _fmt_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    cols = len(headers)
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for c in range(cols):
            widths[c] = max(widths[c], len(str(row[c])))
    def line(cells):
        return "  ".join(str(v).rjust(widths[c]) for c, v in enumerate(cells))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Table 1: benchmark sizes and CRG/ODG graph sizes + edgecuts
# ---------------------------------------------------------------------------
def table1(
    size: str = "test",
    names: Optional[Sequence[str]] = None,
    cache: Optional[StageCache] = None,
) -> Tuple[List[dict], str]:
    names = list(names or TABLE1_ORDER)
    rows: List[dict] = []
    for name in names:
        exp = _experiment(name, size, cache)
        work = exp.compile()
        a = exp.analyze()
        rows.append(
            {
                "benchmark": name,
                "classes": work.num_classes,
                "methods": work.num_methods,
                "kb": round(work.size_kb, 1),
                "crg_nodes": a.crg.num_nodes,
                "crg_edges": a.crg.num_edges,
                "crg_ec": round(a.crg_partition.edgecut),
                "odg_nodes": a.odg.num_nodes,
                "odg_edges": a.odg.num_edges,
                "odg_ec": round(a.odg_partition.edgecut),
            }
        )
    text = _fmt_table(
        ["benchmark", "#C", "#M", "KB", "CRG#N", "CRG#E", "CRG EC", "ODG#N", "ODG#E", "ODG EC"],
        [
            [r["benchmark"], r["classes"], r["methods"], r["kb"], r["crg_nodes"],
             r["crg_edges"], r["crg_ec"], r["odg_nodes"], r["odg_edges"], r["odg_ec"]]
            for r in rows
        ],
    )
    return rows, "Table 1 — benchmark and dependence-graph sizes\n" + text


# ---------------------------------------------------------------------------
# Table 2: pipeline stage timings (ms)
# ---------------------------------------------------------------------------
def table2(
    size: str = "test",
    names: Optional[Sequence[str]] = None,
    cache: Optional[StageCache] = None,
) -> Tuple[List[dict], str]:
    names = list(names or TABLE1_ORDER)
    rows: List[dict] = []
    for name in names:
        exp = _experiment(name, size, cache)
        a = exp.analyze()
        rewritten = exp.rewrite()  # plans on the paper testbed implicitly
        stats, rewrite_ms = rewritten.stats, rewritten.elapsed_ms
        rows.append(
            {
                "benchmark": name,
                "construct_crg_ms": round(a.timings.construct_crg_ms, 2),
                "construct_odg_ms": round(a.timings.construct_odg_ms, 2),
                "partition_trg_ms": round(a.timings.partition_trg_ms, 2),
                "partition_odg_ms": round(a.timings.partition_odg_ms, 2),
                "rewrite_ms": round(rewrite_ms, 2),
                "rewrites": stats.total,
            }
        )
    text = _fmt_table(
        ["benchmark", "CRG ms", "ODG ms", "part TRG ms", "part ODG ms", "rewrite ms", "#rewrites"],
        [
            [r["benchmark"], r["construct_crg_ms"], r["construct_odg_ms"],
             r["partition_trg_ms"], r["partition_odg_ms"], r["rewrite_ms"], r["rewrites"]]
            for r in rows
        ],
    )
    return rows, "Table 2 — code-distribution stage times (wall-clock ms)\n" + text


# ---------------------------------------------------------------------------
# Table 3: profiler overheads
# ---------------------------------------------------------------------------
#: the Table 3 benchmark set (paper: CreateBench variants, MethodBench,
#: FFT/HeapSort/MolDyn/MonteCarlo section-2/3 kernels — we use our closest
#: equivalents)
TABLE3_BENCHMARKS = ("create", "method", "crypt", "heapsort", "moldyn", "search")


def run_profiled(
    name: str,
    metric: str,
    size: str = "test",
    cache: Optional[StageCache] = None,
) -> Tuple[int, object]:
    """(virtual cycles, report) for one workload under one profiler."""
    work = compile_workload(name, size, cache=cache)
    machine = Machine(work.loaded)
    machine.statics = work.loaded.fresh_statics()
    profiler = make_profiler(metric)
    attach(machine, profiler)
    machine.call_bmethod(work.loaded.main_method(), None, [None])
    run_sync(machine)
    return machine.cycles, profiler.report()


def table3(
    size: str = "test",
    names: Optional[Sequence[str]] = None,
    cache: Optional[StageCache] = None,
) -> Tuple[List[dict], str]:
    names = list(names or TABLE3_BENCHMARKS)
    metrics = list(ALL_METRICS)
    rows: List[dict] = []
    totals: Dict[str, float] = {m: 0.0 for m in metrics}
    for name in names:
        row: dict = {"benchmark": name}
        for metric in metrics:
            cycles, _ = run_profiled(name, metric, size, cache=cache)
            # report virtual seconds on the paper's 1.67 GHz Athlon
            row[metric] = cycles / 1.67e9
            totals[metric] += row[metric]
        rows.append(row)
    overhead = {
        m: (100.0 * (totals[m] - totals["baseline"]) / totals["baseline"])
        if totals["baseline"]
        else 0.0
        for m in metrics
    }
    body = [
        [r["benchmark"]] + [f"{r[m]*1e3:.3f}" for m in metrics] for r in rows
    ]
    body.append(["Total:"] + [f"{totals[m]*1e3:.3f}" for m in metrics])
    body.append(["Overhead:"] + [f"{overhead[m]:.2f}%" for m in metrics])
    text = _fmt_table(["benchmark (ms)"] + metrics, body)
    avg = sum(v for k, v in overhead.items() if k != "baseline") / (len(metrics) - 1)
    return (
        rows,
        "Table 3 — profiler overheads (virtual ms per run; overhead vs "
        f"baseline; average overhead {avg:.2f}%)\n" + text,
    )


# ---------------------------------------------------------------------------
# Figure 11: centralized vs distributed speedup
# ---------------------------------------------------------------------------
def figure11(
    size: str = "bench",
    names: Optional[Sequence[str]] = None,
    cache: Optional[StageCache] = None,
) -> Tuple[List[dict], str]:
    names = list(names or TABLE1_ORDER)
    rows: List[dict] = []
    for name in names:
        res = _experiment(name, size, cache).run()
        rows.append(
            {
                "benchmark": name,
                "speedup_pct": round(res.speedup_pct, 1),
                "sequential_ms": round(res.sequential_s * 1e3, 3),
                "distributed_ms": round(res.distributed_s * 1e3, 3),
                "messages": res.messages,
                "bytes": res.bytes,
            }
        )
    text = _fmt_table(
        ["benchmark", "speedup %", "seq ms", "dist ms", "messages", "bytes"],
        [
            [r["benchmark"], r["speedup_pct"], r["sequential_ms"],
             r["distributed_ms"], r["messages"], r["bytes"]]
            for r in rows
        ],
    )
    lo = min(r["speedup_pct"] for r in rows)
    hi = max(r["speedup_pct"] for r in rows)
    return rows, (
        "Figure 11 — distributed vs centralized execution "
        f"(range {lo:.1f}%..{hi:.1f}%; paper: 79.2%..175.2%)\n" + text
    )
