"""Content-addressed stage caching for the experiment harness.

Every stage of the paper's Figure 1 pipeline is a pure function of
(source program, stage configuration): compilation, RTA/CRG/ODG analysis,
partitioning, plan construction, and — because the cluster runtime is a
deterministic discrete-event simulation — even distributed execution.
That makes each stage memoizable under a content hash, so a sweep that
varies only downstream knobs (partitioner, k, tolerance, network) pays the
upstream stages once.

Layout: one process-local :class:`StageCache` holds a flat
``(stage, sha256(key material)) -> object`` map.  Key material is the
canonical-JSON encoding of everything the stage result depends on — always
including the workload *source text*, never just its name, so editing a
workload invalidates every derived entry automatically.  There is no disk
tier and no TTL: invalidation is purely content-addressed.  Process-pool
sweep workers each hold their own shard (a worker warms up on its first
config and hits from the second onward).
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

__all__ = [
    "StageCache",
    "StageStats",
    "default_cache",
    "fingerprint",
    "reset_default_cache",
]


def _canonical(value: Any) -> str:
    """Deterministic JSON encoding of key material (sorted keys, no
    whitespace; non-JSON leaves fall back to ``str``)."""
    return json.dumps(value, sort_keys=True, default=str, separators=(",", ":"))


def fingerprint(*parts: Any) -> str:
    """sha256 hex digest over the canonical encoding of ``parts``."""
    h = hashlib.sha256()
    for part in parts:
        data = part if isinstance(part, bytes) else _canonical(part).encode()
        h.update(data)
        h.update(b"\x1f")  # unit separator: ("ab","c") != ("a","bc")
    return h.hexdigest()


@dataclass
class StageStats:
    """Hit/miss counters for one pipeline stage."""

    hits: int = 0
    misses: int = 0
    build_s: float = 0.0  # wall-clock spent building on misses

    @property
    def calls(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.calls if self.calls else 0.0


class StageCache:
    """Thread-safe content-addressed memo table for pipeline stages."""

    def __init__(self) -> None:
        self._store: Dict[Tuple[str, str], Any] = {}
        self._stats: Dict[str, StageStats] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ core
    def get_or_build(
        self, stage: str, key_material: Any, builder: Callable[[], Any]
    ) -> Any:
        """Return the cached value for ``(stage, key_material)``, building
        and storing it via ``builder()`` on a miss.  Hits return the
        *identical* object that the miss stored."""
        return self.get_or_build_info(stage, key_material, builder)[0]

    def get_or_build_info(
        self, stage: str, key_material: Any, builder: Callable[[], Any]
    ) -> Tuple[Any, bool]:
        """Like :meth:`get_or_build` but also reports whether the value was
        served from the cache: ``(value, hit)``.  The Experiment API's stage
        events carry this flag."""
        key = (stage, fingerprint(key_material))
        with self._lock:
            stats = self._stats.setdefault(stage, StageStats())
            if key in self._store:
                stats.hits += 1
                return self._store[key], True
        # build outside the lock: stages can be expensive and re-entrant
        # (plan building partitions, which may consult the cache itself)
        t0 = time.perf_counter()
        value = builder()
        elapsed = time.perf_counter() - t0
        with self._lock:
            # setdefault again: a concurrent clear() may have emptied _stats
            # while builder() ran outside the lock
            stats = self._stats.setdefault(stage, StageStats())
            if key in self._store:  # lost a race; keep the first object
                stats.hits += 1
                return self._store[key], True
            stats.misses += 1
            stats.build_s += elapsed
            self._store[key] = value
            return value, False

    # ------------------------------------------------------------------ views
    def __len__(self) -> int:
        return len(self._store)

    @property
    def hits(self) -> int:
        with self._lock:
            return sum(s.hits for s in self._stats.values())

    @property
    def misses(self) -> int:
        with self._lock:
            return sum(s.misses for s in self._stats.values())

    @property
    def hit_rate(self) -> float:
        calls = self.hits + self.misses
        return self.hits / calls if calls else 0.0

    def stats(self) -> Dict[str, StageStats]:
        """Per-stage counter snapshot (copies, safe to keep)."""
        with self._lock:
            return {
                stage: StageStats(s.hits, s.misses, s.build_s)
                for stage, s in self._stats.items()
            }

    def counts(self) -> Tuple[int, int]:
        """(hits, misses) across all stages."""
        with self._lock:
            return (
                sum(s.hits for s in self._stats.values()),
                sum(s.misses for s in self._stats.values()),
            )

    def summary(self) -> str:
        """One human line per stage plus the overall hit rate."""
        lines = []
        for stage, s in sorted(self.stats().items()):
            lines.append(
                f"  {stage:<12} {s.hits:4d} hits {s.misses:4d} misses "
                f"({100.0 * s.hit_rate:5.1f}% hit rate, "
                f"{s.build_s * 1e3:.1f} ms building)"
            )
        head = (
            f"stage cache: {self.hits} hits / {self.misses} misses "
            f"({100.0 * self.hit_rate:.1f}% hit rate, {len(self)} entries)"
        )
        return "\n".join([head] + lines)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self._stats.clear()


# ---------------------------------------------------------------------------
# process-default cache: what Pipeline/tables/benchmarks share when no
# explicit cache is passed.  Sweep workers inherit one per process.
# ---------------------------------------------------------------------------
_default = StageCache()


def default_cache() -> StageCache:
    return _default


def reset_default_cache() -> StageCache:
    """Swap in a fresh default cache (tests use this for isolation)."""
    global _default
    _default = StageCache()
    return _default
