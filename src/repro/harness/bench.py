"""VM / simulator throughput benchmarks — the engine behind ``repro bench``.

Measures, per JGF workload:

* **interpreter throughput** — instructions/sec of a full sequential run
  on each execution tier (``reference`` per-step oracle, ``fast``
  cost-batched threaded code, ``compiled`` superinstruction + trace-JIT),
  with the hardware-independent ratios ``speedup`` (fast vs reference)
  and ``compiled_vs_fast``;
* **simulator event counts** — discrete-event scheduler events of a 2-node
  distributed run on both paths; cost batching must shrink this by an
  order of magnitude at *identical* virtual timing (asserted here).

Results serialize to ``BENCH_vm.json`` — the recorded computing-time
baseline future PRs measure themselves against.  Because absolute
instructions/sec depend on the machine running the bench, the regression
gate (:func:`check_regression`) compares the *relative* metrics (tier
speedups, event reduction), which transfer across hardware; absolute
throughput is recorded alongside for trajectory plots.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Dict, Iterable, List, Optional

from repro.errors import ReproError
from repro.vm.interpreter import ENGINES, forced_engine, forced_slow_path

#: format tag of the BENCH_vm.json document
BENCH_SCHEMA = "repro.bench_vm/2"

#: the acceptance workloads: JGF section-2 kernels with deep hot loops
DEFAULT_WORKLOADS = ("heapsort", "crypt")

#: engine name -> row key in the per-workload ``interpreter`` dict (the
#: reference tier keeps its historical row name ``slow``)
ENGINE_ROWS = {"reference": "slow", "fast": "fast", "compiled": "compiled"}


def _run_sequential(workload: str, size: str):
    """One uncached sequential run; returns (machine, wall_seconds).

    Deliberately bypasses the stage cache's ``sequential`` memoization —
    a bench must execute, not replay."""
    from repro.api.experiment import compile_workload
    from repro.vm.interpreter import Machine, run_sync

    work = compile_workload(workload, size)
    machine = Machine(work.loaded)
    machine.statics = work.loaded.fresh_statics()
    machine.call_bmethod(work.loaded.main_method(), None, [None])
    t0 = time.perf_counter()
    run_sync(machine)
    return machine, time.perf_counter() - t0


def bench_interpreter(
    workload: str, size: str, *, engine: str = "fast", repeats: int = 1
) -> Dict[str, float]:
    """Best-of-``repeats`` sequential throughput on one execution tier."""
    best = None
    machine = None
    with forced_engine(engine):
        for _ in range(max(1, repeats)):
            machine, wall = _run_sequential(workload, size)
            best = wall if best is None else min(best, wall)
    wall = max(best, 1e-9)
    return {
        "steps": machine.steps,
        "cycles": machine.cycles,
        "wall_s": wall,
        "ips": machine.steps / wall,
        "jit": machine.jit_stats(),
    }


def bench_simulator(workload: str, size: str, *, slow: bool) -> Dict[str, float]:
    """One 2-node multilevel distributed run on the deterministic
    simulator; returns scheduler event count, events/sec and virtual
    makespan.  Executes the backend directly (no ``execute``-stage cache)."""
    from repro.harness.pipeline import Pipeline
    from repro.runtime.backend import RunPolicy, create_backend
    from repro.runtime.cluster import paper_testbed
    from repro.vm.loader import load_program

    pipe = Pipeline(workload, size)
    cluster = paper_testbed()
    plan = pipe.plan(2, method="multilevel", cluster=cluster)
    rewritten, _, _ = pipe.rewrite(plan)
    loaded = load_program(rewritten)
    with forced_slow_path(slow):
        backend = create_backend("sim", cluster)
        t0 = time.perf_counter()
        run = backend.execute(
            rewritten, loaded, RunPolicy(main_partition=plan.main_partition)
        )
        wall = max(time.perf_counter() - t0, 1e-9)
    return {
        "events": backend.events_processed,
        "eps": backend.events_processed / wall,
        "wall_s": wall,
        "makespan_s": run.makespan_s,
        "stdout_tail": run.stdout[-1] if run.stdout else "",
    }


def static_block_stats(workload: str, size: str) -> Dict[str, float]:
    """Static basic-block shape of one compiled workload (from
    ``FlatCode.block_starts``): how much straight-line code each branchy
    region offers is the shape metric behind the cost-batching win."""
    from repro.api.experiment import compile_workload

    work = compile_workload(workload, size)
    nblocks = 0
    ninstrs = 0
    for bclass in work.bprogram.classes.values():
        for bmethod in bclass.methods.values():
            flat = bmethod.flat()
            nblocks += len(flat.basic_blocks())
            ninstrs += len(flat.instrs)
    return {
        "blocks": nblocks,
        "instrs": ninstrs,
        "mean_block_len": ninstrs / nblocks if nblocks else 0.0,
    }


def _geomean(values: List[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    prod = 1.0
    for v in vals:
        prod *= v
    return prod ** (1.0 / len(vals))


def run_bench(
    workloads: Optional[Iterable[str]] = None,
    *,
    quick: bool = False,
    repeats: Optional[int] = None,
    engines: Optional[Iterable[str]] = None,
) -> Dict:
    """Run the full bench matrix and return the ``BENCH_vm.json`` document.

    ``quick`` uses the small ``test`` workload size (CI smoke); the default
    ``bench`` size matches the Figure 11 measurements.  Each workload is
    measured on every requested execution tier (default: all three), all
    tiers are asserted bit-identical on steps and cycles, and the two
    simulator runs are asserted to agree on virtual makespan and output —
    the bench refuses to report numbers from a diverged tier.
    """
    names = list(workloads) if workloads else list(DEFAULT_WORKLOADS)
    size = "test" if quick else "bench"
    if repeats is None:
        repeats = 3 if quick else 1
    engine_list = list(engines) if engines else list(ENGINES)
    for e in engine_list:
        if e not in ENGINE_ROWS:
            raise ReproError(
                f"unknown engine {e!r} (choose from {', '.join(ENGINES)})"
            )
    doc: Dict = {
        "schema": BENCH_SCHEMA,
        "size": size,
        "quick": quick,
        "engines": engine_list,
        "python": platform.python_version(),
        "workloads": {},
    }
    for name in names:
        meas = {
            e: bench_interpreter(name, size, engine=e, repeats=repeats)
            for e in engine_list
        }
        sigs = {(v["steps"], v["cycles"]) for v in meas.values()}
        if len(sigs) > 1:
            raise ReproError(
                f"bench: {name} diverged between engines "
                f"{sorted(meas)}: steps/cycles {sorted(sigs)}"
            )
        sim_fast = bench_simulator(name, size, slow=False)
        sim_ref = bench_simulator(name, size, slow=True)
        if sim_fast["makespan_s"] != sim_ref["makespan_s"] or (
            sim_fast["stdout_tail"] != sim_ref["stdout_tail"]
        ):
            raise ReproError(
                f"bench: {name} simulator timing diverged between fast and "
                f"reference paths ({sim_fast['makespan_s']} vs "
                f"{sim_ref['makespan_s']})"
            )
        any_row = next(iter(meas.values()))
        interp: Dict = {"steps": any_row["steps"], "cycles": any_row["cycles"]}
        for e, row in meas.items():
            interp[ENGINE_ROWS[e]] = {"wall_s": row["wall_s"], "ips": row["ips"]}
        if "compiled" in meas:
            interp["compiled"]["jit"] = meas["compiled"]["jit"]
        if "fast" in meas and "reference" in meas:
            ref_ips = meas["reference"]["ips"]
            interp["speedup"] = meas["fast"]["ips"] / ref_ips if ref_ips else 0.0
        if "compiled" in meas and "reference" in meas:
            ref_ips = meas["reference"]["ips"]
            interp["speedup_compiled"] = (
                meas["compiled"]["ips"] / ref_ips if ref_ips else 0.0
            )
        if "compiled" in meas and "fast" in meas:
            fast_ips = meas["fast"]["ips"]
            interp["compiled_vs_fast"] = (
                meas["compiled"]["ips"] / fast_ips if fast_ips else 0.0
            )
        doc["workloads"][name] = {
            "static_blocks": static_block_stats(name, size),
            "interpreter": interp,
            "simulator": {
                "makespan_s": sim_fast["makespan_s"],
                "fast": {
                    "events": sim_fast["events"],
                    "eps": sim_fast["eps"],
                    "wall_s": sim_fast["wall_s"],
                },
                "slow": {
                    "events": sim_ref["events"],
                    "eps": sim_ref["eps"],
                    "wall_s": sim_ref["wall_s"],
                },
                "event_reduction": (
                    sim_ref["events"] / sim_fast["events"]
                    if sim_fast["events"]
                    else 0.0
                ),
            },
        }
    per = list(doc["workloads"].values())
    summary: Dict = {
        "event_reduction": _geomean(
            [w["simulator"]["event_reduction"] for w in per]
        ),
    }
    for engine, row in ENGINE_ROWS.items():
        if engine in engine_list:
            summary[f"ips_{row}"] = _geomean(
                [w["interpreter"][row]["ips"] for w in per]
            )
    for key in ("speedup", "speedup_compiled", "compiled_vs_fast"):
        if all(key in w["interpreter"] for w in per) and per:
            summary[key] = _geomean([w["interpreter"][key] for w in per])
    doc["summary"] = summary
    return doc


def render_bench(doc: Dict) -> str:
    """Human-readable table of one bench document."""
    lines = [
        f"# VM throughput ({doc['size']} size, python {doc['python']})",
        f"{'workload':10s} {'ins/s ref':>12s} {'ins/s fast':>12s} "
        f"{'ins/s comp':>12s} {'speedup':>8s} {'xfast':>7s} "
        f"{'sim events':>11s} {'shrink':>8s}",
    ]

    def _ips(it: Dict, row: str) -> str:
        return f"{it[row]['ips']:12.0f}" if row in it else f"{'-':>12s}"

    def _ratio(it_or_s: Dict, key: str, width: int) -> str:
        if key in it_or_s:
            return f"{it_or_s[key]:{width - 1}.2f}x"
        return f"{'-':>{width}s}"

    for name, w in doc["workloads"].items():
        it, sim = w["interpreter"], w["simulator"]
        lines.append(
            f"{name:10s} {_ips(it, 'slow')} {_ips(it, 'fast')} "
            f"{_ips(it, 'compiled')} {_ratio(it, 'speedup', 8)} "
            f"{_ratio(it, 'compiled_vs_fast', 7)} "
            f"{sim['slow']['events']:11d} {sim['event_reduction']:7.1f}x"
        )
    s = doc["summary"]

    def _sips(key: str) -> str:
        return f"{s[key]:12.0f}" if key in s else f"{'-':>12s}"

    lines.append(
        f"{'geomean':10s} {_sips('ips_slow')} {_sips('ips_fast')} "
        f"{_sips('ips_compiled')} {_ratio(s, 'speedup', 8)} "
        f"{_ratio(s, 'compiled_vs_fast', 7)} "
        f"{'':11s} {s['event_reduction']:7.1f}x"
    )
    return "\n".join(lines)


def check_regression(
    doc: Dict, committed: Dict, tolerance: float = 0.30
) -> List[str]:
    """Compare a fresh bench against the committed baseline; returns a list
    of human-readable failures (empty = pass).

    Gates on the hardware-independent relative metrics: the fast-vs-slow
    interpreter speedup, the compiled-vs-fast tier speedup, and the
    simulator event reduction must not fall more than ``tolerance`` below
    the committed values.  Absolute instructions/sec vary with the host
    running CI, so they are reported but never gated on.
    """
    failures: List[str] = []
    if doc.get("size") != committed.get("size"):
        return [
            f"size mismatch: bench ran at {doc.get('size')!r} but the "
            f"committed baseline is {committed.get('size')!r} — event "
            "reduction scales with workload size, so the gate only "
            "compares like-for-like runs"
        ]
    gates = [
        ("speedup", "interpreter speedup vs reference path"),
        ("event_reduction", "simulator event reduction"),
    ]
    if "compiled_vs_fast" in committed.get("summary", {}):
        gates.append(("compiled_vs_fast", "compiled tier speedup vs fast path"))
    for key, label in gates:
        base = committed.get("summary", {}).get(key)
        got = doc.get("summary", {}).get(key)
        if base is None or got is None:
            failures.append(f"missing summary metric {key!r}")
            continue
        floor = base * (1.0 - tolerance)
        if got < floor:
            failures.append(
                f"{label} regressed: {got:.2f}x < {floor:.2f}x "
                f"(committed {base:.2f}x - {tolerance:.0%})"
            )
    return failures


def load_bench(path) -> Dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ReproError(f"cannot read bench baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(doc, dict) or doc.get("schema") != BENCH_SCHEMA:
        raise ReproError(f"{path}: not a {BENCH_SCHEMA} document")
    return doc


def write_bench(doc: Dict, path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
