"""Figure artifact generation (paper Figures 3–9).

Each function returns the artifact text; the figure benches write them under
``benchmarks/out/``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.bytecode import disassemble_method
from repro.codegen import StrongARMTarget, X86Target, method_to_trees, render_tree
from repro.distgen import build_plan, rewrite_program
from repro.harness.pipeline import Pipeline, compile_workload
from repro.lang import analyze, parse_program
from repro.bytecode import compile_program
from repro.partition import part_graph
from repro.quad import build_quads, format_method

#: the Figure 5 input: the paper's Example.ex method, verbatim
FIG5_SOURCE = """
public class Example {
    int ex(int b) {
        b = 4;          // 1
        if (b > 2) {    // 2
            b++;        // 3
        }
        return b;       // 4
    }
}
"""


def fig3_fig4(size: str = "test") -> Tuple[str, str]:
    """(Figure 3 CRG VCG text, Figure 4 ODG VCG text with partition ids) for
    the bank running example."""
    pipe = Pipeline("bank", size)
    a = pipe.analyze(nparts=2)
    crg_vcg = a.crg.to_vcg("class relation graph (bank)")
    graph, order = a.odg.partition_graph()
    result = part_graph(graph, 2)
    labels = {uid: a.odg.nodes[uid] for uid in order}
    # Figure 4 annotates labels with [partition]
    from repro.graph.vcg import vcg_digraph

    part_of = {uid: result.parts[i] for i, uid in enumerate(order)}
    nodes = [
        (uid, f"{labels[uid]} [{part_of[uid]}]") for uid in order
    ]
    edges = [
        (e.src, e.dst, e.kind)
        for e in a.odg.edges()
        if e.kind != "reference"  # "we can safely abandon it"
    ]
    odg_vcg = vcg_digraph("object dependence graph (bank, 2-way)", nodes, edges)
    return crg_vcg, odg_vcg


def _example_quads():
    ast = parse_program(FIG5_SOURCE)
    table = analyze(ast)
    bp = compile_program(ast, table)
    return build_quads(bp.classes["Example"].methods["ex"], table)


def fig5() -> str:
    """Java → quad listing in the paper's exact format."""
    return format_method(_example_quads())


def fig6() -> str:
    """Tree representation of the quads."""
    qm = _example_quads()
    chunks = []
    for bid, trees in method_to_trees(qm):
        for tree in trees:
            chunks.append(render_tree(tree))
    return "\n\n".join(chunks)


def fig7() -> Dict[str, str]:
    """x86 and StrongARM listings for the example method."""
    qm = _example_quads()
    return {
        "x86": X86Target().emit_method(qm),
        "StrongARM": StrongARMTarget().emit_method(qm),
    }


def fig8_fig9(size: str = "test") -> Dict[str, str]:
    """Original vs transformed bytecode for (a) a dependent-object method
    invocation (Figure 8) and (b) a remote instantiation (Figure 9), from
    the bank example."""
    work = compile_workload("bank", size)
    plan = build_plan(work.bprogram, 2, ubfactor=1.3)
    # make sure Account is treated as dependent for demonstration purposes
    plan.dependent_classes.update({"Account", "Bank"})
    rewritten, _ = rewrite_program(work.bprogram, plan)
    out: Dict[str, str] = {}
    out["fig8_before"] = disassemble_method(
        work.bprogram.classes["Bank"].methods["withdraw"]
    )
    out["fig8_after"] = disassemble_method(
        rewritten.classes["Bank"].methods["withdraw"]
    )
    out["fig9_before"] = disassemble_method(
        work.bprogram.classes["Bank"].methods["initializeAccounts"]
    )
    out["fig9_after"] = disassemble_method(
        rewritten.classes["Bank"].methods["initializeAccounts"]
    )
    return out
