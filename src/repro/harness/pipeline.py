"""Deprecated pipeline driver — a thin shim over :mod:`repro.api`.

The stage logic that used to live here (MJ source → bytecode → RTA/CRG/ODG
→ partitioning → rewriting → execution) moved to
:mod:`repro.api.experiment`; new code should use
:class:`repro.api.Experiment`.  This module keeps the historical surface —
``Pipeline``, ``compile_workload``, the artifact dataclasses — delegating
to the same engine, so existing imports keep working and both paths
produce byte-identical artifacts from identical cache keys.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

# re-exported for backward compatibility — these now live in repro.api
from repro.api.experiment import (  # noqa: F401
    PLAN_UBFACTOR,
    AnalysisResult,
    AnalysisTimings,
    CompiledWorkload,
    RewriteArtifact,
    analyze_workload,
    compile_workload,
    map_partitions,
    plan_workload,
    rewrite_workload,
    sequential_workload,
)
from repro.bytecode.model import BProgram
from repro.distgen.plan import DistributionPlan
from repro.distgen.rewriter import RewriteStats
from repro.harness.cache import StageCache, default_cache
from repro.runtime.cluster import ClusterSpec, NodeSpec, paper_testbed
from repro.runtime.executor import (
    DistributedExecutor,
    DistributedResult,
    SequentialResult,
)


class Pipeline:
    """Deprecated: use :class:`repro.api.Experiment`.

    One workload through the whole infrastructure.  All pure stages
    (compile, analysis, planning, the sequential baseline) route through
    the same content-addressed :class:`StageCache` engine as the
    Experiment API — the process-default cache unless ``cache`` is given —
    so repeated pipelines over the same workload skip recompilation and
    reanalysis."""

    #: kept as a class attribute for importers that read it here
    PLAN_UBFACTOR = PLAN_UBFACTOR

    def __init__(
        self, name: str, size: str = "test", cache: Optional[StageCache] = None
    ) -> None:
        self.cache = cache if cache is not None else default_cache()
        self.work = compile_workload(name, size, cache=self.cache)

    @property
    def bprogram(self) -> BProgram:
        return self.work.bprogram

    # ------------------------------------------------------------------ analysis
    def analyze(self, nparts: int = 2, method: str = "multilevel") -> AnalysisResult:
        return analyze_workload(self.work, nparts, method, cache=self.cache)

    # ------------------------------------------------------------------ distribution
    def plan(
        self,
        nparts: int = 2,
        granularity: str = "class",
        method: str = "multilevel",
        cluster: Optional[ClusterSpec] = None,
        pin_main: bool = True,
    ) -> DistributionPlan:
        return plan_workload(
            self.work, nparts, granularity=granularity, method=method,
            cluster=cluster, pin_main=pin_main, cache=self.cache,
        )

    def rewrite(self, plan: DistributionPlan) -> Tuple[BProgram, RewriteStats, float]:
        art = rewrite_workload(self.work, plan)
        return art.program, art.stats, art.elapsed_ms

    # ------------------------------------------------------------------ execution
    def run_sequential(self, node: Optional[NodeSpec] = None) -> SequentialResult:
        return sequential_workload(self.work, node, cache=self.cache)

    def map_partitions(
        self, plan: DistributionPlan, cluster: ClusterSpec
    ) -> ClusterSpec:
        return map_partitions(self.work, plan, cluster)

    def run_distributed(
        self,
        nparts: int = 2,
        cluster: Optional[ClusterSpec] = None,
        granularity: str = "class",
        method: str = "multilevel",
        auto_map: bool = True,
        backend: str = "sim",
    ) -> Tuple[DistributedResult, DistributionPlan, RewriteStats]:
        cluster = cluster or paper_testbed()
        # partition with capacity-proportional targets: partition p is sized
        # for cluster node p, so no remapping is needed afterwards
        plan = self.plan(nparts, granularity=granularity, method=method,
                         cluster=cluster if auto_map else None)
        rewritten, stats, _ = self.rewrite(plan)
        result = DistributedExecutor(
            rewritten, plan, cluster, backend=backend
        ).run()
        return result, plan, stats

    # ------------------------------------------------------------------ figure 11
    def speedup(
        self,
        nparts: int = 2,
        cluster: Optional[ClusterSpec] = None,
        granularity: str = "class",
        backend: str = "sim",
    ) -> Dict[str, float]:
        """The Figure 11 measurement: distributed vs the sequential baseline
        on the slow machine; returns percentages like the paper's y-axis."""
        cluster = cluster or paper_testbed()
        baseline_node = min(cluster.nodes, key=lambda n: n.cpu_hz)
        seq = self.run_sequential(baseline_node)
        dist, plan, stats = self.run_distributed(
            nparts, cluster, granularity=granularity, backend=backend
        )
        if dist.stdout and seq.stdout and dist.stdout[-1] != seq.stdout[-1]:
            raise AssertionError(
                f"{self.work.name}: distributed output diverged: "
                f"{seq.stdout[-1]!r} vs {dist.stdout[-1]!r}"
            )
        # keep the ratio commensurable: virtual/virtual on the simulator,
        # measured wall/wall on real backends
        seq_s = (
            seq.exec_time_s if backend == "sim" else max(seq.wall_time_s, 1e-9)
        )
        return {
            "sequential_s": seq_s,
            "distributed_s": dist.makespan_s,
            "speedup_pct": 100.0 * seq_s / dist.makespan_s,
            "messages": dist.total_messages,
            "bytes": dist.total_bytes,
            "rewrites": stats.total,
            "edgecut": plan.edgecut,
        }
