"""The end-to-end pipeline driver.

Chains every stage of Figure 1 of the paper: MJ source → bytecode → RTA →
CRG → object set → ODG → partitioning → communication rewriting →
centralized / distributed execution — with wall-clock timing per stage
(that's Table 2) and virtual-time results (that's Figure 11).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.class_relations import ClassRelationGraph, build_crg
from repro.analysis.object_set import ObjectNode, compute_object_set
from repro.analysis.odg import ObjectDependenceGraph, build_odg
from repro.analysis.resources import _class_cpu
from repro.analysis.rta import CallGraph, rapid_type_analysis
from repro.bytecode import compile_program
from repro.bytecode.model import BProgram
from repro.distgen.plan import DistributionPlan, build_plan
from repro.distgen.rewriter import RewriteStats, rewrite_program
from repro.harness.cache import StageCache, default_cache, fingerprint
from repro.lang import analyze, parse_program
from repro.partition.api import PartitionResult, part_config_key, part_graph
from repro.runtime.cluster import ClusterSpec, NodeSpec, paper_testbed
from repro.runtime.executor import (
    DistributedExecutor,
    DistributedResult,
    SequentialResult,
    run_sequential,
)
from repro.vm.loader import LoadedProgram, load_program
from repro.workloads import WORKLOADS


@dataclass
class CompiledWorkload:
    name: str
    size: str
    source: str
    bprogram: BProgram
    loaded: LoadedProgram
    #: content hash of the MJ source — the upstream half of every derived
    #: stage-cache key
    source_fp: str = ""

    @property
    def num_classes(self) -> int:
        return self.bprogram.num_classes()

    @property
    def num_methods(self) -> int:
        return self.bprogram.num_methods()

    @property
    def size_kb(self) -> float:
        return self.bprogram.size_bytes() / 1024.0


def compile_workload(
    name: str, size: str = "test", cache: Optional[StageCache] = None
) -> CompiledWorkload:
    """Front-end stage: MJ source → verified bytecode → loaded program.

    Memoized in ``cache`` (the process-default :class:`StageCache` when
    ``None``) under the source *text*, so two names/sizes yielding the same
    program share one compile and repeated calls return the identical
    object.  Safe to share: downstream consumers never mutate a
    ``BProgram`` (the rewriter copies) and every VM machine takes fresh
    statics from the shared ``LoadedProgram``."""
    cache = cache if cache is not None else default_cache()
    source = WORKLOADS[name].source(size)

    def build() -> CompiledWorkload:
        ast = parse_program(source)
        table = analyze(ast)
        bprogram = compile_program(ast, table)
        return CompiledWorkload(
            name, size, source, bprogram, load_program(bprogram),
            source_fp=fingerprint(source),
        )

    return cache.get_or_build("compile", {"source": source}, build)


@dataclass
class AnalysisTimings:
    """Table 2's measured stages, in milliseconds of wall-clock."""

    construct_crg_ms: float = 0.0
    construct_odg_ms: float = 0.0
    partition_trg_ms: float = 0.0
    partition_odg_ms: float = 0.0
    rewrite_ms: float = 0.0


@dataclass
class AnalysisResult:
    cg: CallGraph
    crg: ClassRelationGraph
    objects: List[ObjectNode]
    odg: ObjectDependenceGraph
    crg_partition: PartitionResult
    odg_partition: PartitionResult
    timings: AnalysisTimings


class Pipeline:
    """One workload through the whole infrastructure.

    All pure stages (compile, analysis, planning, the sequential baseline)
    route through a content-addressed :class:`StageCache` — the
    process-default one unless ``cache`` is given — so repeated pipelines
    over the same workload skip recompilation and reanalysis."""

    def __init__(
        self, name: str, size: str = "test", cache: Optional[StageCache] = None
    ) -> None:
        self.cache = cache if cache is not None else default_cache()
        self.work = compile_workload(name, size, cache=self.cache)

    @property
    def bprogram(self) -> BProgram:
        return self.work.bprogram

    # ------------------------------------------------------------------ analysis
    def analyze(self, nparts: int = 2, method: str = "multilevel") -> AnalysisResult:
        key = {
            "source_fp": self.work.source_fp,
            "nparts": nparts,
            "method": method,
        }
        return self.cache.get_or_build(
            "analysis", key, lambda: self._analyze(nparts, method)
        )

    def _analyze(self, nparts: int, method: str) -> AnalysisResult:
        timings = AnalysisTimings()
        t0 = time.perf_counter()
        cg = rapid_type_analysis(self.bprogram)
        crg = build_crg(cg)
        timings.construct_crg_ms = (time.perf_counter() - t0) * 1e3

        t0 = time.perf_counter()
        objects = compute_object_set(cg)
        odg = build_odg(cg, crg, objects)
        timings.construct_odg_ms = (time.perf_counter() - t0) * 1e3

        t0 = time.perf_counter()
        trg_graph, _ = crg.use_graph()
        crg_part = part_graph(trg_graph, min(nparts, max(trg_graph.num_nodes, 1)), method=method)
        timings.partition_trg_ms = (time.perf_counter() - t0) * 1e3

        t0 = time.perf_counter()
        odg_graph, _ = odg.partition_graph()
        odg_part = part_graph(odg_graph, min(nparts, max(odg_graph.num_nodes, 1)), method=method)
        timings.partition_odg_ms = (time.perf_counter() - t0) * 1e3

        return AnalysisResult(cg, crg, objects, odg, crg_part, odg_part, timings)

    # ------------------------------------------------------------------ distribution
    #: CPU-balance tolerance used for distribution plans.  Distribution of a
    #: *sequential* program is about placement, not load balance — the cut
    #: objective must dominate, so the tolerance is loose (the binding
    #: constraints on constrained devices are memory/battery, not CPU).
    PLAN_UBFACTOR = 4.0

    def plan(
        self,
        nparts: int = 2,
        granularity: str = "class",
        method: str = "multilevel",
        cluster: Optional[ClusterSpec] = None,
        pin_main: bool = True,
    ) -> DistributionPlan:
        tpwgts = None
        pin_to = None
        if cluster is not None:
            speeds = [cluster.nodes[p].cpu_hz for p in range(nparts)]
            total = sum(speeds)
            tpwgts = [s / total for s in speeds]
            if pin_main:
                # the user launches the program on the slowest machine (the
                # "computation node" of the paper's testbed); ExecutionStarter
                # lives there
                pin_to = min(range(nparts), key=lambda p: speeds[p])
        key = {
            "source_fp": self.work.source_fp,
            "granularity": granularity,
            "pin_to": pin_to,
            "partition": part_config_key(
                nparts, method, self.PLAN_UBFACTOR, tpwgts=tpwgts
            ),
        }
        return self.cache.get_or_build(
            "plan",
            key,
            lambda: build_plan(
                self.bprogram, nparts, granularity=granularity, method=method,
                tpwgts=tpwgts, ubfactor=self.PLAN_UBFACTOR, pin_main_to=pin_to,
            ),
        )

    def rewrite(self, plan: DistributionPlan) -> Tuple[BProgram, RewriteStats, float]:
        t0 = time.perf_counter()
        rewritten, stats = rewrite_program(self.bprogram, plan)
        return rewritten, stats, (time.perf_counter() - t0) * 1e3

    # ------------------------------------------------------------------ execution
    def run_sequential(self, node: Optional[NodeSpec] = None) -> SequentialResult:
        if node is None:
            node = paper_testbed().nodes[1]  # the 800 MHz baseline machine
        # the sequential VM is deterministic, so the centralized baseline is
        # a pure function of (program, node speed) — memoizable like any
        # other stage; sweeps re-run it once per distinct baseline machine
        key = {"source_fp": self.work.source_fp, "cpu_hz": node.cpu_hz}
        return self.cache.get_or_build(
            "sequential",
            key,
            lambda: run_sequential(self.bprogram, node, loaded=self.work.loaded),
        )

    def map_partitions(
        self, plan: DistributionPlan, cluster: ClusterSpec
    ) -> ClusterSpec:
        """Runtime virtual-processor → machine mapping (paper §4: "the
        program can be distributed by mapping virtual processors to actual
        processing units at runtime"): the partition with the largest static
        CPU weight gets the fastest machine, and so on down."""
        nparts = plan.nparts
        weights = [0.0] * nparts
        for cls, part in plan.class_home.items():
            if 0 <= part < nparts:
                weights[part] += _class_cpu(cls, self.bprogram)
        order_parts = sorted(range(nparts), key=lambda p: -weights[p])
        order_specs = sorted(cluster.nodes, key=lambda s: -s.cpu_hz)
        specs: List[NodeSpec] = list(cluster.nodes)[:nparts]
        for part, spec in zip(order_parts, order_specs):
            specs[part] = spec
        return ClusterSpec(nodes=specs, link=cluster.link)

    def run_distributed(
        self,
        nparts: int = 2,
        cluster: Optional[ClusterSpec] = None,
        granularity: str = "class",
        method: str = "multilevel",
        auto_map: bool = True,
        backend: str = "sim",
    ) -> Tuple[DistributedResult, DistributionPlan, RewriteStats]:
        cluster = cluster or paper_testbed()
        # partition with capacity-proportional targets: partition p is sized
        # for cluster node p, so no remapping is needed afterwards
        plan = self.plan(nparts, granularity=granularity, method=method,
                         cluster=cluster if auto_map else None)
        rewritten, stats, _ = self.rewrite(plan)
        result = DistributedExecutor(
            rewritten, plan, cluster, backend=backend
        ).run()
        return result, plan, stats

    # ------------------------------------------------------------------ figure 11
    def speedup(
        self,
        nparts: int = 2,
        cluster: Optional[ClusterSpec] = None,
        granularity: str = "class",
        backend: str = "sim",
    ) -> Dict[str, float]:
        """The Figure 11 measurement: distributed vs the sequential baseline
        on the slow machine; returns percentages like the paper's y-axis."""
        cluster = cluster or paper_testbed()
        baseline_node = min(cluster.nodes, key=lambda n: n.cpu_hz)
        seq = self.run_sequential(baseline_node)
        dist, plan, stats = self.run_distributed(
            nparts, cluster, granularity=granularity, backend=backend
        )
        if dist.stdout and seq.stdout and dist.stdout[-1] != seq.stdout[-1]:
            raise AssertionError(
                f"{self.work.name}: distributed output diverged: "
                f"{seq.stdout[-1]!r} vs {dist.stdout[-1]!r}"
            )
        # keep the ratio commensurable: virtual/virtual on the simulator,
        # measured wall/wall on real backends
        seq_s = (
            seq.exec_time_s if backend == "sim" else max(seq.wall_time_s, 1e-9)
        )
        return {
            "sequential_s": seq_s,
            "distributed_s": dist.makespan_s,
            "speedup_pct": 100.0 * seq_s / dist.makespan_s,
            "messages": dist.total_messages,
            "bytes": dist.total_bytes,
            "rewrites": stats.total,
            "edgecut": plan.edgecut,
        }
