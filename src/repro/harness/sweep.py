"""Batch sweep orchestration: grids of pipeline configurations.

The paper's evaluation is a family of tables that all re-run the same
front-end (compile → RTA → CRG/ODG) while varying only downstream knobs —
partitioner, node count, network, granularity, runtime backend.
``SweepRunner`` makes that cheap: each configuration is one
:class:`repro.api.Experiment` routed through the content-addressed
:class:`~repro.harness.cache.StageCache`, so within a sweep every workload
compiles once, is analyzed once per (nparts, method), and — because the
cluster runtime is a deterministic discrete-event simulation — even
executions are memoized across repeated runs.

Fan-out: ``SweepRunner(configs, workers=N)`` spreads configurations over a
``concurrent.futures`` process pool; each worker process holds its own
cache shard, warmed by its first configuration.  ``workers<=1`` runs
serially in-process against one shared cache (what tests use for
determinism and for measuring cache effectiveness).

The result table contains only *virtual* quantities (simulated times,
message counts, edgecuts), so a fully cached sweep is byte-identical to an
uncached one — the regression test relies on this.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.api.config import ExperimentConfig
from repro.api.experiment import Experiment
from repro.api.report import Report
from repro.errors import ReproError
from repro.harness.cache import StageCache, default_cache
from repro.runtime.cluster import NETWORKS, ClusterSpec  # noqa: F401  (re-export)
from repro.runtime.executor import NodeStats, aggregate_node_stats
from repro.workloads import TABLE1_ORDER


class SweepError(ReproError):
    """Bad sweep configuration."""


@dataclass(frozen=True)
class SweepConfig:
    """One point of the sweep grid.  Frozen + primitive fields only: the
    config is both the process-pool task payload and the flat-kwargs shape
    behind one :class:`~repro.api.config.ExperimentConfig`.  Validation
    happens by building that typed config — unknown plugin names raise
    :class:`~repro.errors.UnknownPluginError`, bad values
    :class:`~repro.errors.ConfigError`."""

    workload: str
    size: str = "test"
    method: str = "multilevel"
    nparts: int = 2
    network: str = "ethernet_100m"
    granularity: str = "class"
    backend: str = "sim"
    #: planned crash as "node:cycle" ("" = fault-free) — the fault the
    #: recovery axis masks
    crash: str = ""
    #: checkpoint interval in cycles (0 = recovery off); a non-zero value
    #: puts the recovery tier's overhead/latency on the sweep axis
    recovery_interval: int = 0
    #: service deployment: force a genuine distribution even when the
    #: makespan objective would co-locate (open-loop service workloads
    #: need remote round-trips for throughput/latency to mean anything)
    serve: bool = False
    #: comma-separated ``host:port`` endpoints for socket backends
    #: ("" = localhost ephemeral ports)
    roster: str = ""

    def __post_init__(self) -> None:
        self.experiment_config()  # validates every field

    def _faults(self):
        if not self.crash:
            return None
        from repro.runtime.faults import FaultPlan

        try:
            node_s, _, cycle_s = self.crash.partition(":")
            crash = (int(node_s), int(cycle_s))
        except ValueError:
            raise SweepError(
                f"crash must be 'node:cycle', got {self.crash!r}"
            ) from None
        return FaultPlan(crashes=(crash,))

    def _recovery(self):
        if self.recovery_interval <= 0:
            return None
        from repro.runtime.checkpoint import RecoveryPlan

        return RecoveryPlan(interval=self.recovery_interval)

    def experiment_config(self) -> ExperimentConfig:
        """The typed config this grid point denotes."""
        roster = (
            tuple(e.strip() for e in self.roster.split(","))
            if self.roster
            else None
        )
        return ExperimentConfig.from_options(
            self.workload, size=self.size, method=self.method,
            nparts=self.nparts, granularity=self.granularity,
            network=self.network, backend=self.backend,
            faults=self._faults(), recovery=self._recovery(),
            force_distribution=self.serve, roster=roster,
        )

    def key(self) -> dict:
        return asdict(self)

    def label(self) -> str:
        tags = ""
        if self.crash:
            tags += f"/crash{self.crash}"
        if self.recovery_interval > 0:
            tags += f"/rec{self.recovery_interval}"
        if self.serve:
            tags += "/serve"
        return (
            f"{self.workload}/{self.method}/k{self.nparts}/{self.network}"
            f"/{self.backend}{tags}"
        )


def build_cluster(cfg: SweepConfig) -> ClusterSpec:
    """The cluster a configuration runs on: the paper's heterogeneous
    two-node testbed for ``nparts == 2``, a homogeneous cluster otherwise,
    with the link swapped for the configured network preset."""
    return cfg.experiment_config().cluster.build(cfg.nparts)


def sweep_grid(
    workloads: Optional[Sequence[str]] = None,
    methods: Sequence[str] = ("multilevel",),
    cluster_sizes: Sequence[int] = (2,),
    networks: Sequence[str] = ("ethernet_100m",),
    size: str = "test",
    granularity: str = "class",
    backends: Sequence[str] = ("sim",),
    crash: str = "",
    recovery_intervals: Sequence[int] = (0,),
    serve: bool = False,
    roster: str = "",
) -> List[SweepConfig]:
    """The full cross product (workload × method × nparts × network ×
    backend × recovery interval).  ``recovery_intervals`` puts the
    checkpoint cadence on an axis (0 = recovery off); pair it with
    ``crash="node:cycle"`` to measure what masking that crash costs at
    each cadence."""
    names = list(workloads) if workloads is not None else list(TABLE1_ORDER)
    return [
        SweepConfig(
            workload=name, size=size, method=method, nparts=nparts,
            network=network, granularity=granularity, backend=backend,
            crash=crash, recovery_interval=interval, serve=serve,
            roster=roster,
        )
        for name in names
        for method in methods
        for nparts in cluster_sizes
        for network in networks
        for backend in backends
        for interval in recovery_intervals
    ]


@dataclass
class SweepRecord:
    """Result of one configuration: virtual measurements + cache telemetry."""

    config: SweepConfig
    sequential_s: float
    distributed_s: float
    speedup_pct: float
    messages: int
    bytes: int
    edgecut: float
    rewrites: int
    node_stats: List[NodeStats] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_s: float = 0.0
    #: the structured per-run record the --json CLI flag serializes
    report: Optional[Report] = None
    #: why this grid point produced no measurements (None = it ran clean);
    #: a failing config yields an error record, never aborts the sweep
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def aggregate(self) -> Dict[str, float]:
        return aggregate_node_stats(self.node_stats)


def error_record(
    cfg: SweepConfig,
    error: str,
    cache_hits: int = 0,
    cache_misses: int = 0,
    elapsed_s: float = 0.0,
) -> SweepRecord:
    """The zero-measurement record a failed grid point contributes."""
    return SweepRecord(
        config=cfg,
        sequential_s=0.0,
        distributed_s=0.0,
        speedup_pct=0.0,
        messages=0,
        bytes=0,
        edgecut=0.0,
        rewrites=0,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        elapsed_s=elapsed_s,
        error=error,
    )


def run_config(cfg: SweepConfig, cache: Optional[StageCache] = None) -> SweepRecord:
    """One grid point end to end — a thin consumer of
    :class:`repro.api.Experiment`, every stage through ``cache``.  An
    infrastructure failure (a diverged run, a backend fault) becomes an
    error record with real cache/elapsed telemetry, so one poisoned config
    cannot take down the rest of the grid."""
    cache = cache if cache is not None else default_cache()
    hits0, misses0 = cache.counts()
    t0 = time.perf_counter()

    try:
        res = Experiment(cfg.experiment_config(), cache=cache).run()
    except ReproError as exc:
        hits1, misses1 = cache.counts()
        return error_record(
            cfg,
            f"{type(exc).__name__}: {exc}",
            cache_hits=hits1 - hits0,
            cache_misses=misses1 - misses0,
            elapsed_s=time.perf_counter() - t0,
        )

    hits1, misses1 = cache.counts()
    return SweepRecord(
        config=cfg,
        sequential_s=res.sequential_s,
        distributed_s=res.distributed_s,
        speedup_pct=res.speedup_pct,
        messages=res.messages,
        bytes=res.bytes,
        edgecut=res.plan.edgecut,
        rewrites=res.rewrite_stats.total,
        node_stats=res.distributed.node_stats,
        cache_hits=hits1 - hits0,
        cache_misses=misses1 - misses0,
        elapsed_s=time.perf_counter() - t0,
        report=res.report,
    )


def _run_config_in_worker(cfg: SweepConfig) -> SweepRecord:
    """Process-pool entry point: each worker uses its own default cache,
    warm across the configs the pool hands it."""
    return run_config(cfg, default_cache())


@dataclass
class SweepResult:
    records: List[SweepRecord]
    elapsed_s: float
    workers: int

    # -------------------------------------------------------------- telemetry
    @property
    def cache_hits(self) -> int:
        return sum(r.cache_hits for r in self.records)

    @property
    def cache_misses(self) -> int:
        return sum(r.cache_misses for r in self.records)

    @property
    def cache_hit_rate(self) -> float:
        calls = self.cache_hits + self.cache_misses
        return self.cache_hits / calls if calls else 0.0

    # -------------------------------------------------------------- rendering
    def table(self) -> str:
        """Result table.  For ``sim``-backend grids it contains virtual
        quantities only, so cached and uncached runs render byte-identically;
        wall-clock backends report measured times that naturally vary."""
        from repro.harness.tables import _fmt_table

        rows = []
        for r in self.records:
            agg = r.aggregate if r.ok else {"busy_frac": 0.0}
            status = "ok" if r.ok else "ERROR"
            if r.ok and r.report is not None:
                # fault-free grids keep rendering "ok" byte-identically;
                # fault/recovery axes say what actually happened to the run
                if r.report.recovered:
                    status = "recovered"
                elif r.report.degraded:
                    status = "degraded"
            rep = r.report
            tput = rep.throughput_rps if rep is not None else None
            p50 = rep.latency_p50_ms if rep is not None else None
            p95 = rep.latency_p95_ms if rep is not None else None
            p99 = rep.latency_p99_ms if rep is not None else None
            rows.append(
                [
                    r.config.workload,
                    r.config.method,
                    r.config.nparts,
                    r.config.network,
                    r.config.backend,
                    f"{r.sequential_s * 1e3:.3f}",
                    f"{r.distributed_s * 1e3:.3f}",
                    f"{r.speedup_pct:.1f}",
                    r.messages,
                    r.bytes,
                    f"{r.edgecut:.0f}",
                    r.rewrites,
                    f"{100.0 * agg['busy_frac']:.1f}",
                    f"{tput:.0f}" if tput is not None else "-",
                    f"{p50:.3f}" if p50 is not None else "-",
                    f"{p95:.3f}" if p95 is not None else "-",
                    f"{p99:.3f}" if p99 is not None else "-",
                    status,
                ]
            )
        return _fmt_table(
            [
                "workload", "method", "k", "network", "backend", "seq ms",
                "dist ms", "speedup %", "msgs", "bytes", "edgecut",
                "rewrites", "busy %", "tput r/s", "p50 ms", "p95 ms",
                "p99 ms", "status",
            ],
            rows,
        )

    def summary(self) -> str:
        calls = self.cache_hits + self.cache_misses
        failed = sum(1 for r in self.records if not r.ok)
        suffix = f"; {failed} config(s) FAILED" if failed else ""
        return (
            f"{len(self.records)} configs in {self.elapsed_s:.2f} s wall-clock "
            f"({self.workers or 1} worker(s)); stage cache: "
            f"{self.cache_hits}/{calls} hits "
            f"({100.0 * self.cache_hit_rate:.1f}% hit rate){suffix}"
        )

    def to_dict(self) -> dict:
        """Machine-readable sweep outcome: one
        :class:`~repro.api.report.Report` dict per grid point plus the
        cache telemetry (what ``repro sweep --json`` emits)."""
        return {
            "records": [
                r.report.to_dict() if r.report is not None else None
                for r in self.records
            ],
            "errors": [
                {"config": r.config.key(), "error": r.error}
                for r in self.records
                if r.error is not None
            ],
            "elapsed_s": self.elapsed_s,
            "workers": self.workers,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    def to_json(self, **dumps_kwargs) -> str:
        import json

        dumps_kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **dumps_kwargs)


class SweepRunner:
    """Fan a grid of :class:`SweepConfig` across a process pool (or run
    serially for ``workers <= 1``) and aggregate the records in grid order."""

    def __init__(
        self,
        configs: Iterable[SweepConfig],
        workers: int = 0,
        cache: Optional[StageCache] = None,
    ) -> None:
        self.configs = list(configs)
        if not self.configs:
            raise SweepError("empty sweep grid")
        if workers > 1 and cache is not None:
            # pool workers are separate processes: a caller-supplied cache
            # can neither be consulted nor warmed there, so silently
            # accepting it would drop the caching the caller asked for
            raise SweepError(
                "an explicit cache only works with workers <= 1 (pool "
                "workers each use their own process-default cache)"
            )
        self.workers = workers
        self.cache = cache

    def run(self) -> SweepResult:
        t0 = time.perf_counter()
        if self.workers > 1:
            # one future per config (not pool.map): a config whose worker
            # dies — or a BrokenProcessPool taking the survivors with it —
            # yields an error record for that grid point instead of
            # aborting the whole sweep
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                futures = [
                    pool.submit(_run_config_in_worker, cfg)
                    for cfg in self.configs
                ]
                records = []
                for cfg, fut in zip(self.configs, futures):
                    try:
                        records.append(fut.result())
                    except Exception as exc:  # BrokenProcessPool et al.
                        records.append(
                            error_record(cfg, f"{type(exc).__name__}: {exc}")
                        )
        else:
            records = [run_config(cfg, self.cache) for cfg in self.configs]
        return SweepResult(
            records=records,
            elapsed_s=time.perf_counter() - t0,
            workers=self.workers,
        )
