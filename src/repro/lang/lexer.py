"""Hand-written scanner for MJ source text.

Supports Java-style ``//`` and ``/* */`` comments, decimal and hexadecimal
integer literals with an optional ``L`` suffix, floating literals (with
optional ``f``/``F``/``d``/``D`` suffix), string literals with the common
escapes, and all MJ operators (see :mod:`repro.lang.tokens`).
"""

from __future__ import annotations

from typing import List

from repro.errors import LexerError, SourcePosition
from repro.lang.tokens import KEYWORDS, T, Token

_TWO_CHAR = {
    "==": T.EQ,
    "!=": T.NE,
    "<=": T.LE,
    ">=": T.GE,
    "&&": T.ANDAND,
    "||": T.OROR,
    "<<": T.SHL,
    ">>": T.SHR,
    "++": T.PLUSPLUS,
    "--": T.MINUSMINUS,
    "+=": T.PLUS_ASSIGN,
    "-=": T.MINUS_ASSIGN,
    "*=": T.STAR_ASSIGN,
    "/=": T.SLASH_ASSIGN,
}

_ONE_CHAR = {
    "(": T.LPAREN,
    ")": T.RPAREN,
    "{": T.LBRACE,
    "}": T.RBRACE,
    "[": T.LBRACKET,
    "]": T.RBRACKET,
    ";": T.SEMI,
    ",": T.COMMA,
    ".": T.DOT,
    "=": T.ASSIGN,
    "+": T.PLUS,
    "-": T.MINUS,
    "*": T.STAR,
    "/": T.SLASH,
    "%": T.PERCENT,
    "!": T.NOT,
    "<": T.LT,
    ">": T.GT,
    "&": T.AMP,
    "|": T.PIPE,
    "^": T.CARET,
}

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\", "'": "'", "0": "\0"}


class Lexer:
    """Streaming tokenizer; use :func:`tokenize` for the common path."""

    def __init__(self, source: str) -> None:
        self.src = source
        self.i = 0
        self.line = 1
        self.col = 1

    # -- low-level helpers -------------------------------------------------
    def _pos(self) -> SourcePosition:
        return SourcePosition(self.line, self.col)

    def _peek(self, ahead: int = 0) -> str:
        j = self.i + ahead
        return self.src[j] if j < len(self.src) else ""

    def _advance(self) -> str:
        ch = self.src[self.i]
        self.i += 1
        if ch == "\n":
            self.line += 1
            self.col = 1
        else:
            self.col += 1
        return ch

    def _skip_trivia(self) -> None:
        while self.i < len(self.src):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.i < len(self.src) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._pos()
                self._advance()
                self._advance()
                while True:
                    if self.i >= len(self.src):
                        raise LexerError("unterminated block comment", start)
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance()
                        self._advance()
                        break
                    self._advance()
            else:
                return

    # -- literal scanning --------------------------------------------------
    def _number(self) -> Token:
        pos = self._pos()
        start = self.i
        if self._peek() == "0" and self._peek(1) and self._peek(1) in "xX":
            self._advance()
            self._advance()
            while self._peek() and (self._peek() in "0123456789abcdefABCDEF"):
                self._advance()
            text = self.src[start : self.i]
            value = int(text, 16)
            nxt = self._peek()
            if nxt and nxt in "lL":
                self._advance()
                return Token(T.LONG_LIT, text + "L", pos, value)
            return Token(T.INT_LIT, text, pos, value)

        is_float = False
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() and self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() and self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.src[start : self.i]
        if self._peek() and self._peek() in "fFdD":
            self._advance()
            return Token(T.FLOAT_LIT, text, pos, float(text))
        if self._peek() and self._peek() in "lL":
            if is_float:
                raise LexerError("'L' suffix on floating literal", pos)
            self._advance()
            return Token(T.LONG_LIT, text + "L", pos, int(text))
        if is_float:
            return Token(T.FLOAT_LIT, text, pos, float(text))
        return Token(T.INT_LIT, text, pos, int(text))

    def _string(self) -> Token:
        pos = self._pos()
        self._advance()  # opening quote
        out: List[str] = []
        while True:
            if self.i >= len(self.src):
                raise LexerError("unterminated string literal", pos)
            ch = self._advance()
            if ch == '"':
                break
            if ch == "\n":
                raise LexerError("newline in string literal", pos)
            if ch == "\\":
                esc = self._advance() if self.i < len(self.src) else ""
                if esc not in _ESCAPES:
                    raise LexerError(f"bad escape '\\{esc}'", pos)
                out.append(_ESCAPES[esc])
            else:
                out.append(ch)
        value = "".join(out)
        return Token(T.STR_LIT, f'"{value}"', pos, value)

    # -- main loop ----------------------------------------------------------
    def next_token(self) -> Token:
        self._skip_trivia()
        pos = self._pos()
        if self.i >= len(self.src):
            return Token(T.EOF, "", pos)
        ch = self._peek()
        if ch.isdigit():
            return self._number()
        if ch == '"':
            return self._string()
        if ch.isalpha() or ch == "_":
            start = self.i
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
            text = self.src[start : self.i]
            kind = KEYWORDS.get(text, T.IDENT)
            return Token(kind, text, pos)
        # operators; check ">>>" before ">>"
        if self.src.startswith(">>>", self.i):
            for _ in range(3):
                self._advance()
            return Token(T.USHR, ">>>", pos)
        two = self.src[self.i : self.i + 2]
        if two in _TWO_CHAR:
            self._advance()
            self._advance()
            return Token(_TWO_CHAR[two], two, pos)
        if ch in _ONE_CHAR:
            self._advance()
            return Token(_ONE_CHAR[ch], ch, pos)
        raise LexerError(f"unexpected character {ch!r}", pos)

    def tokens(self) -> List[Token]:
        out: List[Token] = []
        while True:
            tok = self.next_token()
            out.append(tok)
            if tok.kind is T.EOF:
                return out


def tokenize(source: str) -> List[Token]:
    """Tokenize MJ source text, returning a list ending with an EOF token."""
    return Lexer(source).tokens()
