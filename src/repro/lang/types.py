"""The MJ type lattice.

MJ has the primitive types ``int`` (32-bit), ``long`` (64-bit), ``float``
(binary64 — MJ's ``float`` plays the role of Java's ``double``), ``boolean``
and ``void``; reference types are class types (user classes plus the built-in
``Object``, ``String``, ``Vector``, ``LinkedList``) and array types.  ``null``
has the bottom reference type.

Type objects are interned so identity comparison works for primitives and the
constructors below can be used freely without allocation churn.
"""

from __future__ import annotations

from typing import Dict, Optional


class Type:
    """Base class for MJ types."""

    name: str

    def is_primitive(self) -> bool:
        return False

    def is_reference(self) -> bool:
        return False

    def is_numeric(self) -> bool:
        return False

    def descriptor(self) -> str:
        """A one-character (primitives) or textual descriptor used by the
        bytecode layer, e.g. ``I``, ``J``, ``F``, ``Z``, ``V``,
        ``LBank;``, ``[I``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.name


class PrimType(Type):
    """A primitive type; singletons INT/LONG/FLOAT/BOOLEAN/VOID."""

    __slots__ = ("name", "_desc", "width")

    def __init__(self, name: str, desc: str, width: int) -> None:
        self.name = name
        self._desc = desc
        #: size of a value of this type in bytes (used by the resource model)
        self.width = width

    def is_primitive(self) -> bool:
        return True

    def is_numeric(self) -> bool:
        return self in (INT, LONG, FLOAT)

    def descriptor(self) -> str:
        return self._desc


INT = PrimType("int", "I", 4)
LONG = PrimType("long", "J", 8)
FLOAT = PrimType("float", "F", 8)
BOOLEAN = PrimType("boolean", "Z", 1)
VOID = PrimType("void", "V", 0)


class ClassType(Type):
    """A (possibly built-in) class reference type, interned by name."""

    __slots__ = ("name",)
    _interned: Dict[str, "ClassType"] = {}

    def __new__(cls, name: str) -> "ClassType":
        inst = cls._interned.get(name)
        if inst is None:
            inst = super().__new__(cls)
            inst.name = name
            cls._interned[name] = inst
        return inst

    def is_reference(self) -> bool:
        return True

    def descriptor(self) -> str:
        return f"L{self.name};"


class ArrayType(Type):
    """Array-of-``elem`` type, interned by element type."""

    __slots__ = ("name", "elem")
    _interned: Dict[Type, "ArrayType"] = {}

    def __new__(cls, elem: Type) -> "ArrayType":
        inst = cls._interned.get(elem)
        if inst is None:
            inst = super().__new__(cls)
            inst.elem = elem
            inst.name = elem.name + "[]"
            cls._interned[elem] = inst
        return inst

    def is_reference(self) -> bool:
        return True

    def descriptor(self) -> str:
        return "[" + self.elem.descriptor()


class NullType(Type):
    """The type of the ``null`` literal: assignable to any reference type."""

    name = "null"

    def is_reference(self) -> bool:
        return True

    def descriptor(self) -> str:
        return "N"


NULL = NullType()

OBJECT = ClassType("Object")
STRING = ClassType("String")
VECTOR = ClassType("Vector")
LINKED_LIST = ClassType("LinkedList")


def elem_width(ty: Type) -> int:
    """Byte width of an element of ``ty`` when stored in an array or field
    (references are modelled as 8-byte slots)."""
    if isinstance(ty, PrimType):
        return max(ty.width, 1)
    return 8


def numeric_rank(ty: Type) -> int:
    """Promotion rank: int < long < float.  Raises KeyError for others."""
    return {INT: 0, LONG: 1, FLOAT: 2}[ty]


def promote(a: Type, b: Type) -> Optional[Type]:
    """Binary numeric promotion: the wider of the two, or None if either is
    not numeric."""
    if not (a.is_numeric() and b.is_numeric()):
        return None
    order = [INT, LONG, FLOAT]
    return order[max(numeric_rank(a), numeric_rank(b))]


def is_assignable(src: Type, dst: Type, subtype_fn=None) -> bool:
    """Can a value of static type ``src`` be assigned to a slot of type
    ``dst``?

    ``subtype_fn(sub_name, super_name)`` resolves user-class subtyping; when
    omitted only reflexive class assignment (plus Object-as-top) is allowed.
    Widening primitive conversions (int->long, int->float, long->float) are
    implicit, as in Java.
    """
    if src is dst:
        return True
    if src.is_numeric() and dst.is_numeric():
        return numeric_rank(src) <= numeric_rank(dst)
    if isinstance(src, NullType) and dst.is_reference():
        return True
    if dst is OBJECT and src.is_reference():
        return True
    if isinstance(src, ClassType) and isinstance(dst, ClassType):
        if subtype_fn is not None:
            return subtype_fn(src.name, dst.name)
        return src.name == dst.name
    if isinstance(src, ArrayType) and isinstance(dst, ArrayType):
        # MJ arrays are invariant (safer than Java's covariant arrays).
        return src.elem is dst.elem
    return False


def parse_descriptor(desc: str) -> Type:
    """Inverse of :meth:`Type.descriptor` (used by tooling and tests)."""
    if desc.startswith("["):
        return ArrayType(parse_descriptor(desc[1:]))
    if desc.startswith("L") and desc.endswith(";"):
        return ClassType(desc[1:-1])
    table = {"I": INT, "J": LONG, "F": FLOAT, "Z": BOOLEAN, "V": VOID, "N": NULL}
    try:
        return table[desc]
    except KeyError:
        raise ValueError(f"bad type descriptor: {desc!r}") from None
