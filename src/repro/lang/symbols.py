"""Symbol tables: classes, fields, methods, and the MJ built-in library.

The built-in library mirrors the slice of ``java.lang`` / ``java.util`` the
paper's examples rely on: ``Object``, ``String``, ``Vector`` (Figure 2 uses
``java.lang.Vector``), ``LinkedList`` (used by the communication rewriting in
Figure 8), ``Math``, ``Sys`` (``System.out`` stand-in), ``Random``
(deterministic LCG for workloads) and the runtime-support class
``DependentObject`` (Section 5 of the paper).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import SemanticError
from repro.lang.types import (
    BOOLEAN,
    FLOAT,
    INT,
    LINKED_LIST,
    LONG,
    OBJECT,
    STRING,
    VECTOR,
    VOID,
    ArrayType,
    ClassType,
    Type,
)


class FieldInfo:
    __slots__ = ("name", "ty", "is_static", "declaring_class", "init")

    def __init__(self, name, ty, is_static, declaring_class, init=None):
        self.name = name
        self.ty = ty
        self.is_static = is_static
        self.declaring_class = declaring_class
        self.init = init  # AST expr or None

    def __repr__(self) -> str:  # pragma: no cover
        kind = "static " if self.is_static else ""
        return f"<field {kind}{self.declaring_class}.{self.name}: {self.ty}>"


class MethodInfo:
    __slots__ = (
        "name",
        "params",
        "ret",
        "is_static",
        "is_ctor",
        "is_native",
        "declaring_class",
        "decl",
    )

    def __init__(
        self,
        name: str,
        params: List[Tuple[str, Type]],
        ret: Type,
        is_static: bool,
        is_ctor: bool,
        declaring_class: str,
        is_native: bool = False,
        decl=None,
    ):
        self.name = name
        self.params = params
        self.ret = ret
        self.is_static = is_static
        self.is_ctor = is_ctor
        self.is_native = is_native
        self.declaring_class = declaring_class
        self.decl = decl  # MethodDecl AST for user methods

    @property
    def arity(self) -> int:
        return len(self.params)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<method {self.declaring_class}.{self.name}/{self.arity}>"


class ClassInfo:
    __slots__ = ("name", "superclass", "fields", "methods", "is_builtin", "decl")

    def __init__(
        self,
        name: str,
        superclass: Optional[str],
        is_builtin: bool = False,
        decl=None,
    ):
        self.name = name
        self.superclass = superclass  # None only for Object
        self.fields: Dict[str, FieldInfo] = {}
        self.methods: Dict[str, MethodInfo] = {}
        self.is_builtin = is_builtin
        self.decl = decl

    def __repr__(self) -> str:  # pragma: no cover
        return f"<class {self.name}>"


class ClassTable:
    """All classes of a program (user + built-in), with lookup helpers that
    walk the superclass chain."""

    def __init__(self) -> None:
        self.classes: Dict[str, ClassInfo] = {}
        _install_builtins(self)

    # -- registration -------------------------------------------------------
    def add_class(self, info: ClassInfo) -> None:
        if info.name in self.classes:
            raise SemanticError(f"duplicate class {info.name}")
        self.classes[info.name] = info

    def get(self, name: str) -> ClassInfo:
        try:
            return self.classes[name]
        except KeyError:
            raise SemanticError(f"unknown class {name}") from None

    def has(self, name: str) -> bool:
        return name in self.classes

    # -- hierarchy ------------------------------------------------------------
    def supers(self, name: str):
        """Yield ``name`` and its ancestors, ending at Object."""
        cur: Optional[str] = name
        seen = set()
        while cur is not None:
            if cur in seen:
                raise SemanticError(f"inheritance cycle through {cur}")
            seen.add(cur)
            info = self.get(cur)
            yield info
            cur = info.superclass

    def is_subtype(self, sub: str, sup: str) -> bool:
        if sup == "Object":
            return True
        return any(info.name == sup for info in self.supers(sub))

    def subclasses(self, name: str) -> List[str]:
        """All classes X with X <: name (including name itself)."""
        return [c for c in self.classes if self.is_subtype(c, name)]

    # -- member lookup ----------------------------------------------------------
    def resolve_field(self, class_name: str, field: str) -> Optional[FieldInfo]:
        for info in self.supers(class_name):
            fi = info.fields.get(field)
            if fi is not None:
                return fi
        return None

    def resolve_method(self, class_name: str, method: str) -> Optional[MethodInfo]:
        for info in self.supers(class_name):
            mi = info.methods.get(method)
            if mi is not None:
                return mi
        return None

    def resolve_ctor(self, class_name: str) -> Optional[MethodInfo]:
        # Constructors are not inherited.
        return self.get(class_name).methods.get("<init>")

    def user_classes(self) -> List[ClassInfo]:
        return [c for c in self.classes.values() if not c.is_builtin]


# ---------------------------------------------------------------------------
# built-in library
# ---------------------------------------------------------------------------
def _native(
    cls: ClassInfo,
    name: str,
    params: List[Tuple[str, Type]],
    ret: Type,
    is_static: bool = False,
    is_ctor: bool = False,
) -> None:
    cls.methods[name] = MethodInfo(
        name, params, ret, is_static, is_ctor, cls.name, is_native=True
    )


#: name of the runtime proxy class injected by communication generation
DEPENDENT_OBJECT = "DependentObject"

#: access-type constants carried by rewritten bytecode (Figure 8 of the paper)
INVOKE_METHOD_HASRETURN = 1
INVOKE_METHOD_VOID = 2
FIELD_GET = 3
FIELD_SET = 4
#: extensions for remote arrays (references to arrays may cross partitions)
ARRAY_GET = 5
ARRAY_SET = 6
ARRAY_LEN = 7


def _install_builtins(table: ClassTable) -> None:
    obj = ClassInfo("Object", None, is_builtin=True)
    _native(obj, "equals", [("other", OBJECT)], BOOLEAN)
    _native(obj, "hashCode", [], INT)
    table.add_class(obj)

    string = ClassInfo("String", "Object", is_builtin=True)
    _native(string, "length", [], INT)
    _native(string, "charAt", [("index", INT)], INT)
    _native(string, "substring", [("begin", INT), ("end", INT)], STRING)
    _native(string, "indexOf", [("needle", STRING)], INT)
    _native(string, "equals", [("other", OBJECT)], BOOLEAN)
    _native(string, "hashCode", [], INT)
    _native(string, "compareTo", [("other", STRING)], INT)
    table.add_class(string)

    vector = ClassInfo("Vector", "Object", is_builtin=True)
    _native(vector, "<init>", [], VOID, is_ctor=True)
    _native(vector, "add", [("elem", OBJECT)], VOID)
    _native(vector, "get", [("index", INT)], OBJECT)
    _native(vector, "set", [("index", INT), ("elem", OBJECT)], VOID)
    _native(vector, "size", [], INT)
    _native(vector, "clear", [], VOID)
    _native(vector, "contains", [("elem", OBJECT)], BOOLEAN)
    _native(vector, "removeLast", [], OBJECT)
    table.add_class(vector)

    linked = ClassInfo("LinkedList", "Object", is_builtin=True)
    _native(linked, "<init>", [], VOID, is_ctor=True)
    _native(linked, "add", [("elem", OBJECT)], VOID)
    _native(linked, "addFirst", [("elem", OBJECT)], VOID)
    _native(linked, "get", [("index", INT)], OBJECT)
    _native(linked, "size", [], INT)
    table.add_class(linked)

    math = ClassInfo("Math", "Object", is_builtin=True)
    for name in ("sqrt", "sin", "cos", "exp", "log", "floor", "abs"):
        _native(math, name, [("x", FLOAT)], FLOAT, is_static=True)
    _native(math, "pow", [("x", FLOAT), ("y", FLOAT)], FLOAT, is_static=True)
    _native(math, "min", [("a", FLOAT), ("b", FLOAT)], FLOAT, is_static=True)
    _native(math, "max", [("a", FLOAT), ("b", FLOAT)], FLOAT, is_static=True)
    _native(math, "imin", [("a", INT), ("b", INT)], INT, is_static=True)
    _native(math, "imax", [("a", INT), ("b", INT)], INT, is_static=True)
    _native(math, "iabs", [("a", INT)], INT, is_static=True)
    table.add_class(math)

    sys = ClassInfo("Sys", "Object", is_builtin=True)
    _native(sys, "println", [("value", OBJECT)], VOID, is_static=True)
    _native(sys, "print", [("value", OBJECT)], VOID, is_static=True)
    _native(sys, "time", [], LONG, is_static=True)
    table.add_class(sys)

    # Compiler-internal string helpers ('+' concatenation).
    strutil = ClassInfo("Str", "Object", is_builtin=True)
    _native(strutil, "concat", [("a", OBJECT), ("b", OBJECT)], STRING, is_static=True)
    _native(strutil, "valueOf", [("a", OBJECT)], STRING, is_static=True)
    table.add_class(strutil)

    rng = ClassInfo("Random", "Object", is_builtin=True)
    _native(rng, "<init>", [("seed", LONG)], VOID, is_ctor=True)
    _native(rng, "nextInt", [("bound", INT)], INT)
    _native(rng, "nextFloat", [], FLOAT)
    _native(rng, "nextLong", [], LONG)
    table.add_class(rng)

    # Runtime support proxy for communication generation (paper Section 4.2/5).
    dep = ClassInfo(DEPENDENT_OBJECT, "Object", is_builtin=True)
    _native(
        dep,
        "<init>",
        [("location", INT), ("clsName", STRING), ("args", LINKED_LIST)],
        VOID,
        is_ctor=True,
    )
    _native(
        dep,
        "access",
        [("args", LINKED_LIST), ("accessType", INT), ("member", STRING)],
        OBJECT,
    )
    table.add_class(dep)


#: classes that are pure namespaces (cannot be instantiated / used as values)
STATIC_ONLY_BUILTINS = frozenset({"Math", "Sys", "Str"})

#: built-in classes considered part of the runtime, excluded from analysis
RUNTIME_CLASSES = frozenset(
    {"Object", "String", "Vector", "LinkedList", "Math", "Sys", "Str", "Random",
     DEPENDENT_OBJECT}
)
