"""MJ language front-end.

MJ is the Java-subset substrate this reproduction uses in place of real Java
(see DESIGN.md, substitution table).  The subpackage provides:

* :mod:`repro.lang.lexer`    — tokenizer
* :mod:`repro.lang.parser`   — recursive-descent parser producing the AST
* :mod:`repro.lang.ast`      — AST node definitions
* :mod:`repro.lang.types`    — the MJ type lattice
* :mod:`repro.lang.symbols`  — class/field/method symbol tables + built-ins
* :mod:`repro.lang.semantic` — resolver and type checker

The usual entry point is :func:`parse_program` followed by
:func:`repro.lang.semantic.analyze`.
"""

from repro.lang.lexer import Lexer, tokenize
from repro.lang.parser import Parser, parse_program
from repro.lang.semantic import analyze
from repro.lang.types import (
    BOOLEAN,
    FLOAT,
    INT,
    LONG,
    NULL,
    STRING,
    VOID,
    ArrayType,
    ClassType,
    Type,
)

__all__ = [
    "Lexer",
    "tokenize",
    "Parser",
    "parse_program",
    "analyze",
    "Type",
    "ClassType",
    "ArrayType",
    "INT",
    "LONG",
    "FLOAT",
    "BOOLEAN",
    "VOID",
    "STRING",
    "NULL",
]
