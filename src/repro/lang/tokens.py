"""Token kinds for the MJ lexer."""

from __future__ import annotations

from enum import Enum, auto
from typing import Any

from repro.errors import SourcePosition


class T(Enum):
    """Token kinds.  Punctuation tokens carry their spelling in ``text``."""

    # literals / identifiers
    INT_LIT = auto()
    LONG_LIT = auto()
    FLOAT_LIT = auto()
    STR_LIT = auto()
    IDENT = auto()

    # keywords
    CLASS = auto()
    EXTENDS = auto()
    STATIC = auto()
    VOID = auto()
    INT = auto()
    LONG = auto()
    FLOAT = auto()
    BOOLEAN = auto()
    IF = auto()
    ELSE = auto()
    WHILE = auto()
    FOR = auto()
    RETURN = auto()
    NEW = auto()
    THIS = auto()
    NULL = auto()
    TRUE = auto()
    FALSE = auto()
    BREAK = auto()
    CONTINUE = auto()
    INSTANCEOF = auto()
    PUBLIC = auto()
    PRIVATE = auto()
    PROTECTED = auto()
    FINAL = auto()

    # punctuation / operators
    LPAREN = auto()
    RPAREN = auto()
    LBRACE = auto()
    RBRACE = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    SEMI = auto()
    COMMA = auto()
    DOT = auto()
    ASSIGN = auto()       # =
    PLUS = auto()
    MINUS = auto()
    STAR = auto()
    SLASH = auto()
    PERCENT = auto()
    NOT = auto()          # !
    LT = auto()
    LE = auto()
    GT = auto()
    GE = auto()
    EQ = auto()           # ==
    NE = auto()           # !=
    ANDAND = auto()       # &&
    OROR = auto()         # ||
    AMP = auto()          # &
    PIPE = auto()         # |
    CARET = auto()        # ^
    SHL = auto()          # <<
    SHR = auto()          # >>
    USHR = auto()         # >>>
    PLUSPLUS = auto()     # ++
    MINUSMINUS = auto()   # --
    PLUS_ASSIGN = auto()  # +=
    MINUS_ASSIGN = auto() # -=
    STAR_ASSIGN = auto()  # *=
    SLASH_ASSIGN = auto() # /=
    EOF = auto()


KEYWORDS = {
    "class": T.CLASS,
    "extends": T.EXTENDS,
    "static": T.STATIC,
    "void": T.VOID,
    "int": T.INT,
    "long": T.LONG,
    "float": T.FLOAT,
    "double": T.FLOAT,   # MJ treats double as an alias of float (binary64)
    "boolean": T.BOOLEAN,
    "if": T.IF,
    "else": T.ELSE,
    "while": T.WHILE,
    "for": T.FOR,
    "return": T.RETURN,
    "new": T.NEW,
    "this": T.THIS,
    "null": T.NULL,
    "true": T.TRUE,
    "false": T.FALSE,
    "break": T.BREAK,
    "continue": T.CONTINUE,
    "instanceof": T.INSTANCEOF,
    "public": T.PUBLIC,
    "private": T.PRIVATE,
    "protected": T.PROTECTED,
    "final": T.FINAL,
}


class Token:
    """A single lexed token with source position."""

    __slots__ = ("kind", "text", "value", "pos")

    def __init__(self, kind: T, text: str, pos: SourcePosition, value: Any = None):
        self.kind = kind
        self.text = text
        self.pos = pos
        #: decoded literal value for *_LIT tokens
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name}, {self.text!r}@{self.pos})"
