"""Recursive-descent parser for MJ.

The grammar is the familiar Java subset (see README).  One MJ convention the
parser relies on: **class names start with an uppercase letter**, which
disambiguates casts ``(Foo) x`` from parenthesized expressions ``(foo) + x``
without full backtracking.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.lexer import tokenize
from repro.lang.tokens import T, Token
from repro.lang.types import (
    BOOLEAN,
    FLOAT,
    INT,
    LONG,
    VOID,
    ArrayType,
    ClassType,
    Type,
)

_PRIM_TOKENS = {T.INT: INT, T.LONG: LONG, T.FLOAT: FLOAT, T.BOOLEAN: BOOLEAN}

_MODIFIER_TOKENS = (T.PUBLIC, T.PRIVATE, T.PROTECTED, T.FINAL)


class Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.toks = tokens
        self.i = 0

    # ------------------------------------------------------------------ util
    def _peek(self, ahead: int = 0) -> Token:
        j = min(self.i + ahead, len(self.toks) - 1)
        return self.toks[j]

    def _at(self, kind: T, ahead: int = 0) -> bool:
        return self._peek(ahead).kind is kind

    def _advance(self) -> Token:
        tok = self.toks[self.i]
        if tok.kind is not T.EOF:
            self.i += 1
        return tok

    def _expect(self, kind: T, what: str = "") -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            msg = what or f"expected {kind.name}, found {tok.kind.name} {tok.text!r}"
            raise ParseError(msg, tok.pos)
        return self._advance()

    def _accept(self, kind: T) -> Optional[Token]:
        if self._at(kind):
            return self._advance()
        return None

    def _skip_modifiers(self) -> bool:
        """Consume visibility/final modifiers; return True if 'static' seen."""
        is_static = False
        while True:
            tok = self._peek()
            if tok.kind in _MODIFIER_TOKENS:
                self._advance()
            elif tok.kind is T.STATIC:
                is_static = True
                self._advance()
            else:
                return is_static

    # ------------------------------------------------------------------ types
    def _at_type_start(self, ahead: int = 0) -> bool:
        tok = self._peek(ahead)
        return tok.kind in _PRIM_TOKENS or tok.kind is T.IDENT

    def _parse_type(self) -> Type:
        tok = self._advance()
        if tok.kind in _PRIM_TOKENS:
            ty: Type = _PRIM_TOKENS[tok.kind]
        elif tok.kind is T.IDENT:
            ty = ClassType(tok.text)
        else:
            raise ParseError(f"expected a type, found {tok.text!r}", tok.pos)
        while self._at(T.LBRACKET) and self._at(T.RBRACKET, 1):
            self._advance()
            self._advance()
            ty = ArrayType(ty)
        return ty

    # ------------------------------------------------------------ declarations
    def parse_program(self) -> ast.Program:
        pos = self._peek().pos
        classes: List[ast.ClassDecl] = []
        while not self._at(T.EOF):
            self._skip_modifiers()
            classes.append(self._parse_class())
        return ast.Program(classes, pos)

    def _parse_class(self) -> ast.ClassDecl:
        start = self._expect(T.CLASS)
        name = self._expect(T.IDENT).text
        superclass = None
        if self._accept(T.EXTENDS):
            superclass = self._expect(T.IDENT).text
        self._expect(T.LBRACE)
        fields: List[ast.FieldDecl] = []
        methods: List[ast.MethodDecl] = []
        while not self._at(T.RBRACE):
            self._parse_member(name, fields, methods)
        self._expect(T.RBRACE)
        return ast.ClassDecl(name, superclass, fields, methods, start.pos)

    def _parse_member(
        self,
        class_name: str,
        fields: List[ast.FieldDecl],
        methods: List[ast.MethodDecl],
    ) -> None:
        is_static = self._skip_modifiers()
        pos = self._peek().pos

        # constructor: ClassName '('
        if self._at(T.IDENT) and self._peek().text == class_name and self._at(T.LPAREN, 1):
            self._advance()
            params = self._parse_params()
            body = self._parse_block()
            methods.append(
                ast.MethodDecl("<init>", params, VOID, body, False, True, pos)
            )
            return

        if self._accept(T.VOID):
            ret: Type = VOID
        else:
            ret = self._parse_type()
        name = self._expect(T.IDENT).text
        if self._at(T.LPAREN):
            params = self._parse_params()
            body = self._parse_block()
            methods.append(
                ast.MethodDecl(name, params, ret, body, is_static, False, pos)
            )
        else:
            init = None
            if self._accept(T.ASSIGN):
                init = self._parse_expr()
            self._expect(T.SEMI)
            if ret is VOID:
                raise ParseError("field cannot have type void", pos)
            fields.append(ast.FieldDecl(name, ret, is_static, init, pos))

    def _parse_params(self) -> List[ast.Param]:
        self._expect(T.LPAREN)
        params: List[ast.Param] = []
        if not self._at(T.RPAREN):
            while True:
                pos = self._peek().pos
                ty = self._parse_type()
                name = self._expect(T.IDENT).text
                params.append(ast.Param(name, ty, pos))
                if not self._accept(T.COMMA):
                    break
        self._expect(T.RPAREN)
        return params

    # ---------------------------------------------------------------- statements
    def _parse_block(self) -> ast.Block:
        start = self._expect(T.LBRACE)
        stmts: List[ast.Stmt] = []
        while not self._at(T.RBRACE):
            stmts.append(self._parse_stmt())
        self._expect(T.RBRACE)
        return ast.Block(stmts, start.pos)

    def _looks_like_vardecl(self) -> bool:
        """A statement starts a local declaration if it begins with a
        primitive type, or ``Ident Ident``, or ``Ident [ ] ``."""
        if self._peek().kind in _PRIM_TOKENS:
            return True
        if self._at(T.IDENT):
            if self._at(T.IDENT, 1):
                return True
            k = 1
            # Ident ([])* Ident
            while self._at(T.LBRACKET, k) and self._at(T.RBRACKET, k + 1):
                k += 2
            if k > 1 and self._at(T.IDENT, k):
                return True
        return False

    def _parse_stmt(self) -> ast.Stmt:
        tok = self._peek()
        if tok.kind is T.LBRACE:
            return self._parse_block()
        if tok.kind is T.IF:
            return self._parse_if()
        if tok.kind is T.WHILE:
            return self._parse_while()
        if tok.kind is T.FOR:
            return self._parse_for()
        if tok.kind is T.RETURN:
            self._advance()
            value = None if self._at(T.SEMI) else self._parse_expr()
            self._expect(T.SEMI)
            return ast.Return(value, tok.pos)
        if tok.kind is T.BREAK:
            self._advance()
            self._expect(T.SEMI)
            return ast.Break(tok.pos)
        if tok.kind is T.CONTINUE:
            self._advance()
            self._expect(T.SEMI)
            return ast.Continue(tok.pos)
        if self._looks_like_vardecl():
            stmt = self._parse_vardecl()
            self._expect(T.SEMI)
            return stmt
        expr = self._parse_expr()
        self._expect(T.SEMI)
        return ast.ExprStmt(expr, tok.pos)

    def _parse_vardecl(self) -> ast.Stmt:
        pos = self._peek().pos
        ty = self._parse_type()
        name = self._expect(T.IDENT).text
        init = None
        if self._accept(T.ASSIGN):
            init = self._parse_expr()
        return ast.VarDecl(name, ty, init, pos)

    def _parse_if(self) -> ast.Stmt:
        start = self._expect(T.IF)
        self._expect(T.LPAREN)
        cond = self._parse_expr()
        self._expect(T.RPAREN)
        then = self._parse_stmt()
        otherwise = None
        if self._accept(T.ELSE):
            otherwise = self._parse_stmt()
        return ast.If(cond, then, otherwise, start.pos)

    def _parse_while(self) -> ast.Stmt:
        start = self._expect(T.WHILE)
        self._expect(T.LPAREN)
        cond = self._parse_expr()
        self._expect(T.RPAREN)
        body = self._parse_stmt()
        return ast.While(cond, body, start.pos)

    def _parse_for(self) -> ast.Stmt:
        start = self._expect(T.FOR)
        self._expect(T.LPAREN)
        init: Optional[ast.Stmt] = None
        if not self._at(T.SEMI):
            if self._looks_like_vardecl():
                init = self._parse_vardecl()
            else:
                init = ast.ExprStmt(self._parse_expr(), self._peek().pos)
        self._expect(T.SEMI)
        cond = None if self._at(T.SEMI) else self._parse_expr()
        self._expect(T.SEMI)
        update = None if self._at(T.RPAREN) else self._parse_expr()
        self._expect(T.RPAREN)
        body = self._parse_stmt()
        return ast.For(init, cond, update, body, start.pos)

    # ---------------------------------------------------------------- expressions
    def _parse_expr(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_or()
        tok = self._peek()
        if tok.kind is T.ASSIGN:
            self._advance()
            value = self._parse_assignment()
            self._check_lvalue(left)
            return ast.Assign(left, value, tok.pos)
        compound = {
            T.PLUS_ASSIGN: "+",
            T.MINUS_ASSIGN: "-",
            T.STAR_ASSIGN: "*",
            T.SLASH_ASSIGN: "/",
        }
        if tok.kind in compound:
            self._advance()
            rhs = self._parse_assignment()
            self._check_lvalue(left)
            return ast.Assign(
                left, ast.Binary(compound[tok.kind], left, rhs, tok.pos), tok.pos
            )
        return left

    def _check_lvalue(self, expr: ast.Expr) -> None:
        if not isinstance(expr, (ast.VarRef, ast.FieldAccess, ast.ArrayIndex)):
            raise ParseError("invalid assignment target", expr.pos)

    def _binary_level(self, sub, ops) -> ast.Expr:
        left = sub()
        while self._peek().kind in ops:
            tok = self._advance()
            right = sub()
            left = ast.Binary(ops[tok.kind], left, right, tok.pos)
        return left

    def _parse_or(self) -> ast.Expr:
        return self._binary_level(self._parse_and, {T.OROR: "||"})

    def _parse_and(self) -> ast.Expr:
        return self._binary_level(self._parse_bitor, {T.ANDAND: "&&"})

    def _parse_bitor(self) -> ast.Expr:
        return self._binary_level(self._parse_bitxor, {T.PIPE: "|"})

    def _parse_bitxor(self) -> ast.Expr:
        return self._binary_level(self._parse_bitand, {T.CARET: "^"})

    def _parse_bitand(self) -> ast.Expr:
        return self._binary_level(self._parse_equality, {T.AMP: "&"})

    def _parse_equality(self) -> ast.Expr:
        return self._binary_level(self._parse_relational, {T.EQ: "==", T.NE: "!="})

    def _parse_relational(self) -> ast.Expr:
        left = self._parse_shift()
        while True:
            tok = self._peek()
            ops = {T.LT: "<", T.LE: "<=", T.GT: ">", T.GE: ">="}
            if tok.kind in ops:
                self._advance()
                right = self._parse_shift()
                left = ast.Binary(ops[tok.kind], left, right, tok.pos)
            elif tok.kind is T.INSTANCEOF:
                self._advance()
                ty = self._parse_type()
                left = ast.InstanceOf(left, ty, tok.pos)
            else:
                return left

    def _parse_shift(self) -> ast.Expr:
        return self._binary_level(
            self._parse_additive, {T.SHL: "<<", T.SHR: ">>", T.USHR: ">>>"}
        )

    def _parse_additive(self) -> ast.Expr:
        return self._binary_level(self._parse_multiplicative, {T.PLUS: "+", T.MINUS: "-"})

    def _parse_multiplicative(self) -> ast.Expr:
        return self._binary_level(
            self._parse_unary, {T.STAR: "*", T.SLASH: "/", T.PERCENT: "%"}
        )

    def _at_cast(self) -> bool:
        """LPAREN (prim | UpperIdent ([])* ) RPAREN <expr-start>?"""
        if not self._at(T.LPAREN):
            return False
        if self._peek(1).kind in _PRIM_TOKENS:
            return True
        if self._at(T.IDENT, 1) and self._peek(1).text[:1].isupper():
            k = 2
            while self._at(T.LBRACKET, k) and self._at(T.RBRACKET, k + 1):
                k += 2
            if self._at(T.RPAREN, k):
                nxt = self._peek(k + 1)
                return nxt.kind in (
                    T.IDENT,
                    T.INT_LIT,
                    T.LONG_LIT,
                    T.FLOAT_LIT,
                    T.STR_LIT,
                    T.THIS,
                    T.NEW,
                    T.NULL,
                    T.LPAREN,
                    T.NOT,
                    T.TRUE,
                    T.FALSE,
                )
        return False

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is T.MINUS:
            self._advance()
            return ast.Unary("-", self._parse_unary(), tok.pos)
        if tok.kind is T.NOT:
            self._advance()
            return ast.Unary("!", self._parse_unary(), tok.pos)
        if tok.kind is T.PLUSPLUS or tok.kind is T.MINUSMINUS:
            # pre-increment: ++x  ==>  x = x + 1 (value is the new value)
            op = "+" if tok.kind is T.PLUSPLUS else "-"
            self._advance()
            operand = self._parse_unary()
            self._check_lvalue(operand)
            return ast.Assign(
                operand, ast.Binary(op, operand, ast.IntLit(1, tok.pos), tok.pos), tok.pos
            )
        if self._at_cast():
            self._advance()  # (
            to = self._parse_type()
            self._expect(T.RPAREN)
            return ast.Cast(to, self._parse_unary(), tok.pos)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.kind is T.DOT:
                self._advance()
                name = self._expect(T.IDENT).text
                if self._at(T.LPAREN):
                    args = self._parse_args()
                    expr = ast.Call(expr, name, args, tok.pos)
                elif name == "length" and not self._at(T.LPAREN):
                    expr = ast.ArrayLength(expr, tok.pos)
                else:
                    expr = ast.FieldAccess(expr, name, tok.pos)
            elif tok.kind is T.LBRACKET:
                self._advance()
                index = self._parse_expr()
                self._expect(T.RBRACKET)
                expr = ast.ArrayIndex(expr, index, tok.pos)
            elif tok.kind in (T.PLUSPLUS, T.MINUSMINUS):
                # postfix inc/dec desugars like the prefix form; MJ code in
                # this repo only uses it in statement position where the
                # difference in result value is unobservable.
                op = "+" if tok.kind is T.PLUSPLUS else "-"
                self._advance()
                self._check_lvalue(expr)
                expr = ast.Assign(
                    expr,
                    ast.Binary(op, expr, ast.IntLit(1, tok.pos), tok.pos),
                    tok.pos,
                )
            else:
                return expr

    def _parse_args(self) -> List[ast.Expr]:
        self._expect(T.LPAREN)
        args: List[ast.Expr] = []
        if not self._at(T.RPAREN):
            while True:
                args.append(self._parse_expr())
                if not self._accept(T.COMMA):
                    break
        self._expect(T.RPAREN)
        return args

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is T.INT_LIT:
            self._advance()
            return ast.IntLit(tok.value, tok.pos)
        if tok.kind is T.LONG_LIT:
            self._advance()
            return ast.LongLit(tok.value, tok.pos)
        if tok.kind is T.FLOAT_LIT:
            self._advance()
            return ast.FloatLit(tok.value, tok.pos)
        if tok.kind is T.STR_LIT:
            self._advance()
            return ast.StrLit(tok.value, tok.pos)
        if tok.kind is T.TRUE:
            self._advance()
            return ast.BoolLit(True, tok.pos)
        if tok.kind is T.FALSE:
            self._advance()
            return ast.BoolLit(False, tok.pos)
        if tok.kind is T.NULL:
            self._advance()
            return ast.NullLit(tok.pos)
        if tok.kind is T.THIS:
            self._advance()
            return ast.This(tok.pos)
        if tok.kind is T.NEW:
            return self._parse_new()
        if tok.kind is T.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(T.RPAREN)
            return expr
        if tok.kind is T.IDENT:
            self._advance()
            if self._at(T.LPAREN):
                args = self._parse_args()
                return ast.Call(None, tok.text, args, tok.pos)
            return ast.VarRef(tok.text, tok.pos)
        raise ParseError(f"unexpected token {tok.text!r}", tok.pos)

    def _parse_new(self) -> ast.Expr:
        start = self._expect(T.NEW)
        tok = self._peek()
        if tok.kind in _PRIM_TOKENS:
            self._advance()
            base: Type = _PRIM_TOKENS[tok.kind]
            self._expect(T.LBRACKET)
            length = self._parse_expr()
            self._expect(T.RBRACKET)
            ty: Type = base
            while self._at(T.LBRACKET) and self._at(T.RBRACKET, 1):
                self._advance()
                self._advance()
                ty = ArrayType(ty)
            return ast.NewArray(ty, length, start.pos)
        name = self._expect(T.IDENT).text
        if self._at(T.LPAREN):
            args = self._parse_args()
            return ast.New(name, args, start.pos)
        self._expect(T.LBRACKET)
        length = self._parse_expr()
        self._expect(T.RBRACKET)
        ty = ClassType(name)
        while self._at(T.LBRACKET) and self._at(T.RBRACKET, 1):
            self._advance()
            self._advance()
            ty = ArrayType(ty)
        return ast.NewArray(ty, length, start.pos)


def parse_program(source: str) -> ast.Program:
    """Parse MJ source text into an (unanalyzed) :class:`~repro.lang.ast.Program`."""
    return Parser(tokenize(source)).parse_program()
