"""Semantic analysis for MJ: name resolution and type checking.

``analyze(program)`` builds the :class:`~repro.lang.symbols.ClassTable`,
resolves every name, annotates every expression node with its static type
(``node.ty``) and resolution results (``VarRef.binding``, ``Call.resolved``,
``FieldAccess.resolved_class``), and raises
:class:`~repro.errors.SemanticError` on ill-typed programs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import SemanticError
from repro.lang import ast
from repro.lang.symbols import (
    STATIC_ONLY_BUILTINS,
    ClassInfo,
    ClassTable,
    FieldInfo,
    MethodInfo,
)
from repro.lang.types import (
    BOOLEAN,
    FLOAT,
    INT,
    LONG,
    NULL,
    OBJECT,
    STRING,
    VOID,
    ArrayType,
    ClassType,
    NullType,
    PrimType,
    Type,
    promote,
)


class _Scope:
    """Lexically nested name -> type environment for locals."""

    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.names: Dict[str, Type] = {}

    def declare(self, name: str, ty: Type, pos) -> None:
        if name in self.names:
            raise SemanticError(f"duplicate local {name}", pos)
        self.names[name] = ty

    def lookup(self, name: str) -> Optional[Type]:
        scope: Optional[_Scope] = self
        while scope is not None:
            ty = scope.names.get(name)
            if ty is not None:
                return ty
            scope = scope.parent
        return None


class Analyzer:
    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.table = ClassTable()
        self._cur_class: Optional[ClassInfo] = None
        self._cur_method: Optional[MethodInfo] = None
        self._loop_depth = 0

    # ------------------------------------------------------------------ pass 1
    def _register_classes(self) -> None:
        for cd in self.program.classes:
            info = ClassInfo(cd.name, cd.superclass or "Object", decl=cd)
            self.table.add_class(info)
        for cd in self.program.classes:
            info = self.table.get(cd.name)
            if not self.table.has(info.superclass):
                raise SemanticError(
                    f"unknown superclass {info.superclass} of {cd.name}", cd.pos
                )
            # validate no cycles (supers() raises)
            list(self.table.supers(cd.name))

        for cd in self.program.classes:
            info = self.table.get(cd.name)
            for fd in cd.fields:
                if fd.name in info.fields:
                    raise SemanticError(
                        f"duplicate field {cd.name}.{fd.name}", fd.pos
                    )
                self._check_type_exists(fd.ty, fd.pos)
                info.fields[fd.name] = FieldInfo(
                    fd.name, fd.ty, fd.is_static, cd.name, fd.init
                )
            have_ctor = False
            for md in cd.methods:
                if md.name in info.methods:
                    raise SemanticError(
                        f"duplicate method {cd.name}.{md.name} "
                        "(MJ does not support overloading)",
                        md.pos,
                    )
                for p in md.params:
                    self._check_type_exists(p.ty, p.pos)
                self._check_type_exists(md.ret, md.pos)
                info.methods[md.name] = MethodInfo(
                    md.name,
                    [(p.name, p.ty) for p in md.params],
                    md.ret,
                    md.is_static,
                    md.is_ctor,
                    cd.name,
                    decl=md,
                )
                if md.is_ctor:
                    have_ctor = True
            if not have_ctor:
                self._synthesize_default_ctor(cd, info)
        # shadowed fields across the hierarchy are rejected (keeps the object
        # model — and the dependence analysis — simple)
        for cd in self.program.classes:
            info = self.table.get(cd.name)
            sup = info.superclass
            for fname in info.fields:
                if sup and self.table.resolve_field(sup, fname) is not None:
                    raise SemanticError(
                        f"field {cd.name}.{fname} shadows an inherited field", cd.pos
                    )

    def _synthesize_default_ctor(self, cd: ast.ClassDecl, info: ClassInfo) -> None:
        body = ast.Block([], cd.pos)
        md = ast.MethodDecl("<init>", [], VOID, body, False, True, cd.pos)
        cd.methods.append(md)
        info.methods["<init>"] = MethodInfo(
            "<init>", [], VOID, False, True, cd.name, decl=md
        )

    def _check_type_exists(self, ty: Type, pos) -> None:
        while isinstance(ty, ArrayType):
            ty = ty.elem
        if isinstance(ty, ClassType) and not self.table.has(ty.name):
            raise SemanticError(f"unknown type {ty.name}", pos)

    # ------------------------------------------------------------------ pass 2
    def analyze(self) -> ClassTable:
        self._register_classes()
        for cd in self.program.classes:
            info = self.table.get(cd.name)
            self._cur_class = info
            for fd in cd.fields:
                if fd.init is not None:
                    scope = _Scope()
                    ty = self._expr(fd.init, scope)
                    self._require_assignable(ty, fd.ty, fd.pos, "field initializer")
            for md in cd.methods:
                self._method(info, md)
        self._cur_class = None
        return self.table

    def _method(self, info: ClassInfo, md: ast.MethodDecl) -> None:
        self._cur_method = info.methods[md.name]
        scope = _Scope()
        for p in md.params:
            scope.declare(p.name, p.ty, p.pos)
        self._block(md.body, scope)
        self._cur_method = None

    # ------------------------------------------------------------------ statements
    def _block(self, block: ast.Block, scope: _Scope) -> None:
        inner = _Scope(scope)
        for stmt in block.stmts:
            self._stmt(stmt, inner)

    def _stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.Block):
            self._block(stmt, scope)
        elif isinstance(stmt, ast.VarDecl):
            self._check_type_exists(stmt.ty, stmt.pos)
            if stmt.init is not None:
                ty = self._expr(stmt.init, scope)
                self._require_assignable(ty, stmt.ty, stmt.pos, "initializer")
            scope.declare(stmt.name, stmt.ty, stmt.pos)
        elif isinstance(stmt, ast.If):
            self._condition(stmt.cond, scope)
            self._stmt(stmt.then, scope)
            if stmt.otherwise is not None:
                self._stmt(stmt.otherwise, scope)
        elif isinstance(stmt, ast.While):
            self._condition(stmt.cond, scope)
            self._loop_depth += 1
            self._stmt(stmt.body, scope)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._condition(stmt.cond, inner)
            if stmt.update is not None:
                self._expr(stmt.update, inner)
            self._loop_depth += 1
            self._stmt(stmt.body, inner)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.Return):
            assert self._cur_method is not None
            want = self._cur_method.ret
            if stmt.value is None:
                if want is not VOID:
                    raise SemanticError("missing return value", stmt.pos)
            else:
                if want is VOID:
                    raise SemanticError("void method returns a value", stmt.pos)
                got = self._expr(stmt.value, scope)
                self._require_assignable(got, want, stmt.pos, "return")
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr, scope)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self._loop_depth == 0:
                raise SemanticError("break/continue outside loop", stmt.pos)
        else:  # pragma: no cover - parser produces no other nodes
            raise SemanticError(f"unknown statement {type(stmt).__name__}", stmt.pos)

    def _condition(self, expr: ast.Expr, scope: _Scope) -> None:
        ty = self._expr(expr, scope)
        if ty is not BOOLEAN:
            raise SemanticError(f"condition must be boolean, got {ty}", expr.pos)

    # ------------------------------------------------------------------ expressions
    def _require_assignable(self, src: Type, dst: Type, pos, what: str) -> None:
        if dst is OBJECT and src is not VOID:
            return  # implicit boxing of primitives into Object slots
        from repro.lang.types import is_assignable

        if not is_assignable(src, dst, self.table.is_subtype):
            raise SemanticError(f"{what}: cannot assign {src} to {dst}", pos)

    def _expr(self, expr: ast.Expr, scope: _Scope) -> Type:
        ty = self._expr_inner(expr, scope)
        expr.ty = ty
        return ty

    def _expr_inner(self, expr: ast.Expr, scope: _Scope) -> Type:
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.LongLit):
            return LONG
        if isinstance(expr, ast.FloatLit):
            return FLOAT
        if isinstance(expr, ast.BoolLit):
            return BOOLEAN
        if isinstance(expr, ast.StrLit):
            return STRING
        if isinstance(expr, ast.NullLit):
            return NULL
        if isinstance(expr, ast.This):
            if self._cur_method is None or self._cur_method.is_static:
                raise SemanticError("'this' in static context", expr.pos)
            assert self._cur_class is not None
            return ClassType(self._cur_class.name)
        if isinstance(expr, ast.VarRef):
            return self._var_ref(expr, scope)
        if isinstance(expr, ast.FieldAccess):
            return self._field_access(expr, scope)
        if isinstance(expr, ast.ArrayIndex):
            target = self._expr(expr.target, scope)
            if not isinstance(target, ArrayType):
                raise SemanticError(f"indexing non-array {target}", expr.pos)
            idx = self._expr(expr.index, scope)
            if idx is not INT:
                raise SemanticError(f"array index must be int, got {idx}", expr.pos)
            return target.elem
        if isinstance(expr, ast.ArrayLength):
            target = self._expr(expr.target, scope)
            if not isinstance(target, ArrayType):
                raise SemanticError(f".length on non-array {target}", expr.pos)
            return INT
        if isinstance(expr, ast.Call):
            return self._call(expr, scope)
        if isinstance(expr, ast.New):
            return self._new(expr, scope)
        if isinstance(expr, ast.NewArray):
            self._check_type_exists(expr.elem_ty, expr.pos)
            n = self._expr(expr.length, scope)
            if n is not INT:
                raise SemanticError("array length must be int", expr.pos)
            return ArrayType(expr.elem_ty)
        if isinstance(expr, ast.Unary):
            return self._unary(expr, scope)
        if isinstance(expr, ast.Binary):
            return self._binary(expr, scope)
        if isinstance(expr, ast.Assign):
            return self._assign(expr, scope)
        if isinstance(expr, ast.Cast):
            return self._cast(expr, scope)
        if isinstance(expr, ast.InstanceOf):
            src = self._expr(expr.expr, scope)
            if not src.is_reference():
                raise SemanticError("instanceof on non-reference", expr.pos)
            self._check_type_exists(expr.of, expr.pos)
            return BOOLEAN
        raise SemanticError(f"unknown expression {type(expr).__name__}", expr.pos)

    def _var_ref(self, expr: ast.VarRef, scope: _Scope) -> Type:
        local = scope.lookup(expr.name)
        if local is not None:
            expr.binding = ("local", expr.name)
            return local
        assert self._cur_class is not None
        fi = self.table.resolve_field(self._cur_class.name, expr.name)
        if fi is not None:
            if not fi.is_static and self._cur_method is not None and self._cur_method.is_static:
                raise SemanticError(
                    f"instance field {expr.name} referenced from static context",
                    expr.pos,
                )
            expr.binding = ("field", fi)
            return fi.ty
        if self.table.has(expr.name):
            expr.binding = ("class", expr.name)
            return ClassType(expr.name)  # only legal as a static-call receiver
        raise SemanticError(f"unknown name {expr.name}", expr.pos)

    def _field_access(self, expr: ast.FieldAccess, scope: _Scope) -> Type:
        if isinstance(expr.target, ast.VarRef) and scope.lookup(expr.target.name) is None:
            assert self._cur_class is not None
            shadow = self.table.resolve_field(self._cur_class.name, expr.target.name)
            if shadow is None and self.table.has(expr.target.name):
                # static field access Class.field
                expr.target.binding = ("class", expr.target.name)
                expr.target.ty = ClassType(expr.target.name)
                fi = self.table.resolve_field(expr.target.name, expr.name)
                if fi is None or not fi.is_static:
                    raise SemanticError(
                        f"unknown static field {expr.target.name}.{expr.name}",
                        expr.pos,
                    )
                expr.resolved_class = fi.declaring_class
                expr.is_static = True
                return fi.ty
        target_ty = self._expr(expr.target, scope)
        if not isinstance(target_ty, ClassType):
            raise SemanticError(f"field access on {target_ty}", expr.pos)
        fi = self.table.resolve_field(target_ty.name, expr.name)
        if fi is None:
            raise SemanticError(
                f"unknown field {target_ty.name}.{expr.name}", expr.pos
            )
        if fi.is_static:
            expr.is_static = True
        expr.resolved_class = fi.declaring_class
        return fi.ty

    def _call(self, expr: ast.Call, scope: _Scope) -> Type:
        # resolve receiver
        if expr.target is None:
            assert self._cur_class is not None
            mi = self.table.resolve_method(self._cur_class.name, expr.name)
            if mi is None:
                raise SemanticError(f"unknown method {expr.name}", expr.pos)
            if (
                not mi.is_static
                and self._cur_method is not None
                and self._cur_method.is_static
            ):
                raise SemanticError(
                    f"instance method {expr.name} called from static context",
                    expr.pos,
                )
            recv_class = self._cur_class.name
        elif isinstance(expr.target, ast.VarRef) and scope.lookup(
            expr.target.name
        ) is None and self.table.has(expr.target.name) and (
            self.table.resolve_field(
                self._cur_class.name, expr.target.name  # type: ignore[union-attr]
            )
            is None
        ):
            # static call Class.method(...)
            expr.target.binding = ("class", expr.target.name)
            expr.target.ty = ClassType(expr.target.name)
            mi = self.table.resolve_method(expr.target.name, expr.name)
            if mi is None or not mi.is_static:
                raise SemanticError(
                    f"unknown static method {expr.target.name}.{expr.name}", expr.pos
                )
            recv_class = expr.target.name
        else:
            target_ty = self._expr(expr.target, scope)
            if isinstance(target_ty, ArrayType):
                raise SemanticError("method call on array", expr.pos)
            if not isinstance(target_ty, ClassType):
                raise SemanticError(f"method call on {target_ty}", expr.pos)
            if target_ty.name in STATIC_ONLY_BUILTINS:
                raise SemanticError(
                    f"{target_ty.name} has no instances", expr.pos
                )
            mi = self.table.resolve_method(target_ty.name, expr.name)
            if mi is None:
                raise SemanticError(
                    f"unknown method {target_ty.name}.{expr.name}", expr.pos
                )
            if mi.is_static:
                raise SemanticError(
                    f"static method {expr.name} called on instance", expr.pos
                )
            recv_class = target_ty.name

        if mi.is_ctor:
            raise SemanticError("constructors cannot be called directly", expr.pos)
        self._check_args(mi, expr.args, scope, expr.pos)
        expr.resolved = (recv_class, mi)
        return mi.ret

    def _check_args(self, mi: MethodInfo, args: List[ast.Expr], scope, pos) -> None:
        if len(args) != mi.arity:
            raise SemanticError(
                f"{mi.declaring_class}.{mi.name} expects {mi.arity} args, "
                f"got {len(args)}",
                pos,
            )
        for arg, (pname, pty) in zip(args, mi.params):
            got = self._expr(arg, scope)
            self._require_assignable(got, pty, arg.pos, f"argument {pname}")

    def _new(self, expr: ast.New, scope: _Scope) -> Type:
        if not self.table.has(expr.class_name):
            raise SemanticError(f"unknown class {expr.class_name}", expr.pos)
        if expr.class_name in STATIC_ONLY_BUILTINS or expr.class_name in (
            "Object",
            "String",
        ):
            raise SemanticError(f"cannot instantiate {expr.class_name}", expr.pos)
        ctor = self.table.resolve_ctor(expr.class_name)
        if ctor is None:
            raise SemanticError(f"{expr.class_name} has no constructor", expr.pos)
        self._check_args(ctor, expr.args, scope, expr.pos)
        return ClassType(expr.class_name)

    def _unary(self, expr: ast.Unary, scope: _Scope) -> Type:
        ty = self._expr(expr.operand, scope)
        if expr.op == "-":
            if not ty.is_numeric():
                raise SemanticError(f"unary - on {ty}", expr.pos)
            return ty
        if expr.op == "!":
            if ty is not BOOLEAN:
                raise SemanticError(f"! on {ty}", expr.pos)
            return BOOLEAN
        raise SemanticError(f"unknown unary op {expr.op}", expr.pos)

    def _binary(self, expr: ast.Binary, scope: _Scope) -> Type:
        op = expr.op
        lt = self._expr(expr.left, scope)
        rt = self._expr(expr.right, scope)
        if op == "+" and (lt is STRING or rt is STRING):
            return STRING
        if op in ("+", "-", "*", "/", "%"):
            res = promote(lt, rt)
            if res is None:
                raise SemanticError(f"arithmetic {op} on {lt} and {rt}", expr.pos)
            return res
        if op in ("<", "<=", ">", ">="):
            if promote(lt, rt) is None:
                raise SemanticError(f"comparison {op} on {lt} and {rt}", expr.pos)
            return BOOLEAN
        if op in ("==", "!="):
            if promote(lt, rt) is not None:
                return BOOLEAN
            if lt is BOOLEAN and rt is BOOLEAN:
                return BOOLEAN
            if lt.is_reference() and rt.is_reference():
                return BOOLEAN
            raise SemanticError(f"cannot compare {lt} and {rt}", expr.pos)
        if op in ("&&", "||"):
            if lt is not BOOLEAN or rt is not BOOLEAN:
                raise SemanticError(f"{op} on {lt} and {rt}", expr.pos)
            return BOOLEAN
        if op in ("&", "|", "^"):
            if lt in (INT, LONG) and rt in (INT, LONG):
                return LONG if LONG in (lt, rt) else INT
            raise SemanticError(f"bitwise {op} on {lt} and {rt}", expr.pos)
        if op in ("<<", ">>", ">>>"):
            if lt not in (INT, LONG):
                raise SemanticError(f"shift on {lt}", expr.pos)
            if rt is not INT:
                raise SemanticError("shift amount must be int", expr.pos)
            return lt
        raise SemanticError(f"unknown binary op {op}", expr.pos)

    def _assign(self, expr: ast.Assign, scope: _Scope) -> Type:
        target_ty = self._expr(expr.target, scope)
        if isinstance(expr.target, ast.VarRef) and expr.target.binding and (
            expr.target.binding[0] == "class"
        ):
            raise SemanticError("cannot assign to a class name", expr.pos)
        value_ty = self._expr(expr.value, scope)
        self._require_assignable(value_ty, target_ty, expr.pos, "assignment")
        return target_ty

    def _cast(self, expr: ast.Cast, scope: _Scope) -> Type:
        self._check_type_exists(expr.to, expr.pos)
        src = self._expr(expr.expr, scope)
        dst = expr.to
        if src.is_numeric() and dst.is_numeric():
            return dst
        if src.is_reference() and dst.is_reference():
            return dst
        if src.is_reference() and (dst.is_numeric() or dst is BOOLEAN):
            # unboxing a primitive stored in an Object slot (Vector.get...)
            return dst
        if src is dst:
            return dst
        raise SemanticError(f"cannot cast {src} to {dst}", expr.pos)


def analyze(program: ast.Program) -> ClassTable:
    """Resolve and type check ``program`` (annotating its AST in place);
    returns the populated class table."""
    return Analyzer(program).analyze()
