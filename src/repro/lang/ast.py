"""AST node definitions for MJ.

Nodes are plain classes with ``__slots__`` (cheap, picklable) and carry a
:class:`~repro.errors.SourcePosition`.  Expression nodes gain a ``ty``
attribute (the static type) during semantic analysis; some nodes gain
resolution results (e.g. :class:`Call.resolved`).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SourcePosition
from repro.lang.types import Type


class Node:
    __slots__ = ("pos",)

    def __init__(self, pos: SourcePosition) -> None:
        self.pos = pos


# --------------------------------------------------------------------------
# declarations
# --------------------------------------------------------------------------
class Program(Node):
    __slots__ = ("classes",)

    def __init__(self, classes: List["ClassDecl"], pos: SourcePosition) -> None:
        super().__init__(pos)
        self.classes = classes


class ClassDecl(Node):
    __slots__ = ("name", "superclass", "fields", "methods")

    def __init__(
        self,
        name: str,
        superclass: Optional[str],
        fields: List["FieldDecl"],
        methods: List["MethodDecl"],
        pos: SourcePosition,
    ) -> None:
        super().__init__(pos)
        self.name = name
        self.superclass = superclass  # None means implicit Object
        self.fields = fields
        self.methods = methods


class FieldDecl(Node):
    __slots__ = ("name", "ty", "is_static", "init")

    def __init__(
        self,
        name: str,
        ty: Type,
        is_static: bool,
        init: Optional["Expr"],
        pos: SourcePosition,
    ) -> None:
        super().__init__(pos)
        self.name = name
        self.ty = ty
        self.is_static = is_static
        self.init = init


class Param(Node):
    __slots__ = ("name", "ty")

    def __init__(self, name: str, ty: Type, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.name = name
        self.ty = ty


class MethodDecl(Node):
    __slots__ = ("name", "params", "ret", "body", "is_static", "is_ctor")

    def __init__(
        self,
        name: str,
        params: List[Param],
        ret: Type,
        body: "Block",
        is_static: bool,
        is_ctor: bool,
        pos: SourcePosition,
    ) -> None:
        super().__init__(pos)
        self.name = name
        self.params = params
        self.ret = ret
        self.body = body
        self.is_static = is_static
        self.is_ctor = is_ctor


# --------------------------------------------------------------------------
# statements
# --------------------------------------------------------------------------
class Stmt(Node):
    __slots__ = ()


class Block(Stmt):
    __slots__ = ("stmts",)

    def __init__(self, stmts: List[Stmt], pos: SourcePosition) -> None:
        super().__init__(pos)
        self.stmts = stmts


class VarDecl(Stmt):
    __slots__ = ("name", "ty", "init", "slot")

    def __init__(
        self, name: str, ty: Type, init: Optional["Expr"], pos: SourcePosition
    ) -> None:
        super().__init__(pos)
        self.name = name
        self.ty = ty
        self.init = init
        self.slot: Optional[int] = None  # local slot, assigned by the compiler


class If(Stmt):
    __slots__ = ("cond", "then", "otherwise")

    def __init__(
        self, cond: "Expr", then: Stmt, otherwise: Optional[Stmt], pos: SourcePosition
    ) -> None:
        super().__init__(pos)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise


class While(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond: "Expr", body: Stmt, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.cond = cond
        self.body = body


class For(Stmt):
    __slots__ = ("init", "cond", "update", "body")

    def __init__(
        self,
        init: Optional[Stmt],
        cond: Optional["Expr"],
        update: Optional["Expr"],
        body: Stmt,
        pos: SourcePosition,
    ) -> None:
        super().__init__(pos)
        self.init = init
        self.cond = cond
        self.update = update
        self.body = body


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, value: Optional["Expr"], pos: SourcePosition) -> None:
        super().__init__(pos)
        self.value = value


class ExprStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr: "Expr", pos: SourcePosition) -> None:
        super().__init__(pos)
        self.expr = expr


class Break(Stmt):
    __slots__ = ()


class Continue(Stmt):
    __slots__ = ()


# --------------------------------------------------------------------------
# expressions
# --------------------------------------------------------------------------
class Expr(Node):
    __slots__ = ("ty",)

    def __init__(self, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.ty: Optional[Type] = None  # filled in by semantic analysis


class IntLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.value = value


class LongLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.value = value


class FloatLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: float, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.value = value


class BoolLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: bool, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.value = value


class StrLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: str, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.value = value


class NullLit(Expr):
    __slots__ = ()


class This(Expr):
    __slots__ = ()


class VarRef(Expr):
    """An unqualified name.  After semantic analysis ``binding`` is one of
    ``("local", slot_name)``, ``("field", class_name)``,
    ``("static_field", class_name)`` or ``("class", class_name)`` (for the
    receiver of a static call like ``Math.sqrt``)."""

    __slots__ = ("name", "binding")

    def __init__(self, name: str, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.name = name
        self.binding = None


class FieldAccess(Expr):
    """``target.name``; ``resolved_class`` is set during analysis; for static
    field reads the target is a VarRef bound to a class."""

    __slots__ = ("target", "name", "resolved_class", "is_static")

    def __init__(self, target: Expr, name: str, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.target = target
        self.name = name
        self.resolved_class: Optional[str] = None
        self.is_static = False


class ArrayIndex(Expr):
    __slots__ = ("target", "index")

    def __init__(self, target: Expr, index: Expr, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.target = target
        self.index = index


class ArrayLength(Expr):
    __slots__ = ("target",)

    def __init__(self, target: Expr, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.target = target


class Call(Expr):
    """``target.name(args)``.  ``target is None`` means an unqualified call
    (implicit ``this`` or same-class static).  After analysis
    ``resolved = (class_name, method_name, is_static)``."""

    __slots__ = ("target", "name", "args", "resolved")

    def __init__(
        self, target: Optional[Expr], name: str, args: List[Expr], pos: SourcePosition
    ) -> None:
        super().__init__(pos)
        self.target = target
        self.name = name
        self.args = args
        self.resolved = None


class New(Expr):
    __slots__ = ("class_name", "args")

    def __init__(self, class_name: str, args: List[Expr], pos: SourcePosition) -> None:
        super().__init__(pos)
        self.class_name = class_name
        self.args = args


class NewArray(Expr):
    __slots__ = ("elem_ty", "length")

    def __init__(self, elem_ty: Type, length: Expr, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.elem_ty = elem_ty
        self.length = length


class Unary(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.op = op  # "-" | "!"
        self.operand = operand


class Binary(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.op = op  # + - * / % < <= > >= == != && || & | ^ << >> >>>
        self.left = left
        self.right = right


class Assign(Expr):
    """``target = value`` where target is VarRef | FieldAccess | ArrayIndex."""

    __slots__ = ("target", "value")

    def __init__(self, target: Expr, value: Expr, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.target = target
        self.value = value


class Cast(Expr):
    __slots__ = ("to", "expr")

    def __init__(self, to: Type, expr: Expr, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.to = to
        self.expr = expr


class InstanceOf(Expr):
    __slots__ = ("expr", "of")

    def __init__(self, expr: Expr, of: Type, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.expr = expr
        self.of = of
