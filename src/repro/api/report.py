"""Structured experiment reports: one JSON-serializable record per run.

A :class:`Report` captures what the tables and sweep rows used to compute
ad hoc — per-stage wall-clock timings with cache-hit flags, partition
quality, per-node runtime statistics, and the Figure 11 speedup — in one
machine-readable shape (the bench-trajectory format the ``--json`` CLI
flags emit).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ConfigError

__all__ = ["StageTiming", "Report"]


@dataclass(frozen=True)
class StageTiming:
    """One completed stage: how long it took and whether the stage cache
    served it."""

    stage: str
    elapsed_s: float
    cache_hit: bool

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass
class Report:
    """Everything one experiment produced, ready to serialize.

    ``sequential_s`` / ``distributed_s`` are virtual seconds on the
    simulator and measured wall seconds on real backends (commensurable
    pairs either way, like the paper's Figure 11).
    """

    #: ExperimentConfig.to_dict() of the run
    config: Dict[str, Any]
    #: completed stages in completion order
    stages: List[StageTiming] = field(default_factory=list)
    #: distribution-plan quality: nparts, method, granularity, edgecut,
    #: main_partition — None until planning ran
    partition: Optional[Dict[str, Any]] = None
    #: per-node runtime statistics (NodeStats as dicts) — None until a run
    node_stats: Optional[List[Dict[str, Any]]] = None
    sequential_s: Optional[float] = None
    distributed_s: Optional[float] = None
    speedup_pct: Optional[float] = None
    messages: Optional[int] = None
    bytes: Optional[int] = None
    rewrites: Optional[int] = None
    #: stage-cache counters accumulated over this experiment's stages
    cache_hits: int = 0
    cache_misses: int = 0
    #: structured fault evidence (FaultRecord dicts); None until a run,
    #: empty list for a clean run
    faults: Optional[List[Dict[str, Any]]] = None
    #: True when the distributed run survived one or more faults
    degraded: bool = False
    #: crashes that were fully *masked* by the recovery tier (FaultRecord
    #: dicts, kind "recovered"); None until a run, empty list when the run
    #: had no recovery plan or nothing to recover
    recovered: Optional[List[Dict[str, Any]]] = None
    #: cycles spent taking/shipping checkpoints across the cluster
    checkpoint_overhead_cycles: int = 0
    #: cycles spent restoring state and replaying lost work
    recovery_cycles: int = 0
    #: replication factor of the run (1 = unreplicated)
    replication: int = 1
    #: modeled availability of the replica arrangement (see
    #: repro.distgen.quorum.plan_availability); None when not computed
    availability: Optional[float] = None
    #: VM execution tier the run was forced to ("default" = ambient
    #: REPRO_VM_ENGINE); mirrors BackendConfig.engine
    vm_engine: str = "default"
    #: cluster-wide JIT counters (see Machine.jit_stats) merged across the
    #: distributed nodes and the sequential baseline; None until a run
    jit: Optional[Dict[str, int]] = None
    #: requests served per second of makespan across the cluster (the
    #: "users/sec sustained" figure service workloads target); None until
    #: a distributed run
    throughput_rps: Optional[float] = None
    #: per-request latency distribution merged across all nodes, in
    #: milliseconds (virtual on the simulator, wall elsewhere); None until
    #: a distributed run, 0.0 when the run exchanged no requests
    latency_p50_ms: Optional[float] = None
    latency_p95_ms: Optional[float] = None
    latency_p99_ms: Optional[float] = None
    #: number of request round-trips behind those percentiles
    latency_count: Optional[int] = None

    # -------------------------------------------------------------- views
    def stage_timings_ms(self) -> Dict[str, float]:
        """stage name -> wall-clock milliseconds (last completion wins)."""
        return {t.stage: t.elapsed_s * 1e3 for t in self.stages}

    def aggregate(self) -> Dict[str, float]:
        """Cluster-wide rollup of the node statistics."""
        from repro.runtime.backend import NodeStats, aggregate_node_stats

        stats = [NodeStats(**ns) for ns in (self.node_stats or [])]
        return aggregate_node_stats(stats)

    # ------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        return {
            "config": self.config,
            "stages": [t.to_dict() for t in self.stages],
            "partition": self.partition,
            "node_stats": self.node_stats,
            "sequential_s": self.sequential_s,
            "distributed_s": self.distributed_s,
            "speedup_pct": self.speedup_pct,
            "messages": self.messages,
            "bytes": self.bytes,
            "rewrites": self.rewrites,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "faults": self.faults,
            "degraded": self.degraded,
            "recovered": self.recovered,
            "checkpoint_overhead_cycles": self.checkpoint_overhead_cycles,
            "recovery_cycles": self.recovery_cycles,
            "replication": self.replication,
            "availability": self.availability,
            "vm_engine": self.vm_engine,
            "jit": self.jit,
            "throughput_rps": self.throughput_rps,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_count": self.latency_count,
        }

    def to_json(self, **dumps_kwargs: Any) -> str:
        dumps_kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Report":
        if not isinstance(data, dict):
            raise ConfigError(
                f"Report.from_dict needs a dict, got {type(data).__name__}"
            )
        stages = [StageTiming(**t) for t in data.get("stages", [])]
        kwargs = {k: v for k, v in data.items() if k != "stages"}
        return cls(stages=stages, **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "Report":
        return cls.from_dict(json.loads(text))
