"""The :class:`Experiment` façade and the stage engine behind it.

This module owns the Figure 1 stage logic that used to live inside
``repro.harness.pipeline.Pipeline``: MJ source → bytecode → RTA/CRG/ODG →
partitioning → plan → rewriting → centralized / distributed execution.
Two consumers share it:

* :class:`Experiment` — the typed public API: composable stage methods
  (``compile() → analyze() → partition() → plan() → run()``), each
  returning a typed artifact, each memoized through the content-addressed
  :class:`~repro.harness.cache.StageCache`, each wrapped in
  ``on_stage_start`` / ``on_stage_end`` events carrying timings and
  cache-hit flags, and a structured :class:`~repro.api.report.Report`.
* the legacy ``Pipeline`` shim in :mod:`repro.harness.pipeline`, which
  delegates here so both paths produce byte-identical artifacts from
  identical cache keys (the differential suite asserts this).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.analysis.class_relations import ClassRelationGraph, build_crg
from repro.analysis.object_set import ObjectNode, compute_object_set
from repro.analysis.odg import ObjectDependenceGraph, build_odg
from repro.analysis.resources import _class_cpu
from repro.analysis.rta import CallGraph, rapid_type_analysis
from repro.api.config import ExperimentConfig
from repro.api.events import EventBus, Observer, StageRecorder
from repro.api.report import Report, StageTiming
from repro.bytecode import compile_program
from repro.bytecode.model import BProgram
from repro.distgen.plan import DistributionPlan, build_plan
from repro.distgen.rewriter import RewriteStats, rewrite_program
from repro.errors import ExperimentError
from repro.harness.cache import StageCache, default_cache, fingerprint
from repro.lang import analyze as _semantic_analyze
from repro.lang import parse_program
from repro.partition.api import PartitionResult, part_config_key, part_graph
from repro.runtime.cluster import ClusterSpec, NodeSpec, paper_testbed
from repro.runtime.executor import (
    DistributedExecutor,
    DistributedResult,
    SequentialResult,
    run_sequential,
)
from repro.vm.loader import LoadedProgram, load_program

__all__ = [
    "AnalysisResult",
    "AnalysisTimings",
    "CompiledWorkload",
    "Experiment",
    "ExperimentResult",
    "RewriteArtifact",
    "PLAN_UBFACTOR",
    "compile_workload",
    "analyze_workload",
    "plan_workload",
    "rewrite_workload",
    "sequential_workload",
    "map_partitions",
    "cluster_signature",
]

#: CPU-balance tolerance used for distribution plans.  Distribution of a
#: *sequential* program is about placement, not load balance — the cut
#: objective must dominate, so the tolerance is loose (the binding
#: constraints on constrained devices are memory/battery, not CPU).
PLAN_UBFACTOR = 4.0


# ---------------------------------------------------------------------------
# typed stage artifacts
# ---------------------------------------------------------------------------
@dataclass
class CompiledWorkload:
    name: str
    size: str
    source: str
    bprogram: BProgram
    loaded: LoadedProgram
    #: content hash of the MJ source — the upstream half of every derived
    #: stage-cache key
    source_fp: str = ""

    @property
    def num_classes(self) -> int:
        return self.bprogram.num_classes()

    @property
    def num_methods(self) -> int:
        return self.bprogram.num_methods()

    @property
    def size_kb(self) -> float:
        return self.bprogram.size_bytes() / 1024.0


@dataclass
class AnalysisTimings:
    """Table 2's measured stages, in milliseconds of wall-clock."""

    construct_crg_ms: float = 0.0
    construct_odg_ms: float = 0.0
    partition_trg_ms: float = 0.0
    partition_odg_ms: float = 0.0
    rewrite_ms: float = 0.0


@dataclass
class AnalysisResult:
    cg: CallGraph
    crg: ClassRelationGraph
    objects: List[ObjectNode]
    odg: ObjectDependenceGraph
    crg_partition: PartitionResult
    odg_partition: PartitionResult
    timings: AnalysisTimings


@dataclass
class RewriteArtifact:
    """Communication-rewritten program + what the rewriter did."""

    program: BProgram
    stats: RewriteStats
    elapsed_ms: float


# ---------------------------------------------------------------------------
# stage engine: (key material, builder) pairs around the StageCache.  Both
# Experiment and the legacy Pipeline route through these, so cache keys have
# exactly one definition.
# ---------------------------------------------------------------------------
def _build_compiled(name: str, size: str, source: str) -> CompiledWorkload:
    ast = parse_program(source)
    table = _semantic_analyze(ast)
    bprogram = compile_program(ast, table)
    return CompiledWorkload(
        name, size, source, bprogram, load_program(bprogram),
        source_fp=fingerprint(source),
    )


def _compile_entry(name: str, size: str) -> Tuple[str, dict, Callable[[], Any]]:
    from repro.workloads import WORKLOADS

    source = WORKLOADS.get(name).source(size)
    return (
        "compile",
        {"source": source},
        lambda: _build_compiled(name, size, source),
    )


def compile_workload(
    name: str, size: str = "test", cache: Optional[StageCache] = None
) -> CompiledWorkload:
    """Front-end stage: MJ source → verified bytecode → loaded program.

    Memoized in ``cache`` (the process-default :class:`StageCache` when
    ``None``) under the source *text*, so two names/sizes yielding the same
    program share one compile and repeated calls return the identical
    object.  Safe to share: downstream consumers never mutate a
    ``BProgram`` (the rewriter copies) and every VM machine takes fresh
    statics from the shared ``LoadedProgram``."""
    cache = cache if cache is not None else default_cache()
    return cache.get_or_build(*_compile_entry(name, size))


def _run_analysis(work: CompiledWorkload, nparts: int, method: str) -> AnalysisResult:
    timings = AnalysisTimings()
    t0 = time.perf_counter()
    cg = rapid_type_analysis(work.bprogram)
    crg = build_crg(cg)
    timings.construct_crg_ms = (time.perf_counter() - t0) * 1e3

    t0 = time.perf_counter()
    objects = compute_object_set(cg)
    odg = build_odg(cg, crg, objects)
    timings.construct_odg_ms = (time.perf_counter() - t0) * 1e3

    t0 = time.perf_counter()
    trg_graph, _ = crg.use_graph()
    crg_part = part_graph(
        trg_graph, min(nparts, max(trg_graph.num_nodes, 1)), method=method
    )
    timings.partition_trg_ms = (time.perf_counter() - t0) * 1e3

    t0 = time.perf_counter()
    odg_graph, _ = odg.partition_graph()
    odg_part = part_graph(
        odg_graph, min(nparts, max(odg_graph.num_nodes, 1)), method=method
    )
    timings.partition_odg_ms = (time.perf_counter() - t0) * 1e3

    return AnalysisResult(cg, crg, objects, odg, crg_part, odg_part, timings)


def _analysis_entry(
    work: CompiledWorkload, nparts: int, method: str
) -> Tuple[str, dict, Callable[[], Any]]:
    key = {
        "source_fp": work.source_fp,
        "nparts": nparts,
        "method": method,
    }
    return "analysis", key, lambda: _run_analysis(work, nparts, method)


def analyze_workload(
    work: CompiledWorkload,
    nparts: int = 2,
    method: str = "multilevel",
    cache: Optional[StageCache] = None,
) -> AnalysisResult:
    """Dependence-analysis stage: RTA → CRG → object set → ODG plus the
    Table 1 reference partitions, memoized under (source, nparts, method)."""
    cache = cache if cache is not None else default_cache()
    return cache.get_or_build(*_analysis_entry(work, nparts, method))


def _cluster_plan_targets(
    cluster: Optional[ClusterSpec], nparts: int, pin_main: bool
) -> Tuple[Optional[List[float]], Optional[int]]:
    """Capacity-proportional partition targets for a concrete cluster: the
    partition sizes follow relative CPU speeds, and ``main`` is pinned to
    the slowest machine (the "computation node" of the paper's testbed,
    where the user launches the program and ExecutionStarter lives)."""
    if cluster is None:
        return None, None
    speeds = [cluster.nodes[p].cpu_hz for p in range(nparts)]
    total = sum(speeds)
    tpwgts = [s / total for s in speeds]
    pin_to = (
        min(range(nparts), key=lambda p: speeds[p]) if pin_main else None
    )
    return tpwgts, pin_to


def _plan_entry(
    work: CompiledWorkload,
    nparts: int,
    granularity: str,
    method: str,
    cluster: Optional[ClusterSpec],
    pin_main: bool,
    force_distribution: bool = False,
) -> Tuple[str, dict, Callable[[], Any]]:
    tpwgts, pin_to = _cluster_plan_targets(cluster, nparts, pin_main)
    key = {
        "source_fp": work.source_fp,
        "granularity": granularity,
        "pin_to": pin_to,
        "force_distribution": force_distribution,
        "partition": part_config_key(
            nparts, method, PLAN_UBFACTOR, tpwgts=tpwgts
        ),
    }
    builder = lambda: build_plan(  # noqa: E731
        work.bprogram, nparts, granularity=granularity, method=method,
        tpwgts=tpwgts, ubfactor=PLAN_UBFACTOR, pin_main_to=pin_to,
        force_distribution=force_distribution,
    )
    return "plan", key, builder


def plan_workload(
    work: CompiledWorkload,
    nparts: int = 2,
    granularity: str = "class",
    method: str = "multilevel",
    cluster: Optional[ClusterSpec] = None,
    pin_main: bool = True,
    cache: Optional[StageCache] = None,
) -> DistributionPlan:
    """Planning stage: partition the dependence graph (capacity-weighted
    for ``cluster``) and assign every class/object a home node."""
    cache = cache if cache is not None else default_cache()
    return cache.get_or_build(
        *_plan_entry(work, nparts, granularity, method, cluster, pin_main)
    )


def _partition_entry(
    work: CompiledWorkload,
    analysis: AnalysisResult,
    nparts: int,
    granularity: str,
    method: str,
    cluster: Optional[ClusterSpec],
) -> Tuple[str, dict, Callable[[], Any]]:
    tpwgts, _ = _cluster_plan_targets(cluster, nparts, pin_main=False)
    key = {
        "source_fp": work.source_fp,
        "granularity": granularity,
        "partition": part_config_key(
            nparts, method, PLAN_UBFACTOR, tpwgts=tpwgts
        ),
    }

    def builder() -> PartitionResult:
        if granularity == "object":
            graph, _ = analysis.odg.partition_graph()
        else:
            graph, _ = analysis.crg.use_graph()
        return part_graph(
            graph, nparts, method=method, ubfactor=PLAN_UBFACTOR, tpwgts=tpwgts
        )

    return "partition", key, builder


def rewrite_workload(
    work: CompiledWorkload, plan: DistributionPlan
) -> RewriteArtifact:
    """Communication-generation stage (paper Figures 8/9).  Deliberately
    uncached: Table 2 measures its wall-clock every run."""
    t0 = time.perf_counter()
    rewritten, stats = rewrite_program(work.bprogram, plan)
    return RewriteArtifact(rewritten, stats, (time.perf_counter() - t0) * 1e3)


def _sequential_entry(
    work: CompiledWorkload, node: NodeSpec, engine: str = "default"
) -> Tuple[str, dict, Callable[[], Any]]:
    # the sequential VM is deterministic, so the centralized baseline is
    # a pure function of (program, node speed) — memoizable like any
    # other stage; sweeps re-run it once per distinct baseline machine.
    # Cycles are engine-invariant, but the jit counters riding on the
    # result are not, so a forced engine gets its own cache entry.
    key = {"source_fp": work.source_fp, "cpu_hz": node.cpu_hz}
    if engine != "default":
        key["engine"] = engine
    return (
        "sequential",
        key,
        lambda: run_sequential(
            work.bprogram, node, loaded=work.loaded, engine=engine
        ),
    )


def sequential_workload(
    work: CompiledWorkload,
    node: Optional[NodeSpec] = None,
    cache: Optional[StageCache] = None,
) -> SequentialResult:
    """Centralized baseline on ``node`` (the paper's 800 MHz machine when
    ``None``)."""
    if node is None:
        node = paper_testbed().nodes[1]
    cache = cache if cache is not None else default_cache()
    return cache.get_or_build(*_sequential_entry(work, node))


def map_partitions(
    work: CompiledWorkload, plan: DistributionPlan, cluster: ClusterSpec
) -> ClusterSpec:
    """Runtime virtual-processor → machine mapping (paper §4: "the
    program can be distributed by mapping virtual processors to actual
    processing units at runtime"): the partition with the largest static
    CPU weight gets the fastest machine, and so on down."""
    nparts = plan.nparts
    weights = [0.0] * nparts
    for cls, part in plan.class_home.items():
        if 0 <= part < nparts:
            weights[part] += _class_cpu(cls, work.bprogram)
    order_parts = sorted(range(nparts), key=lambda p: -weights[p])
    order_specs = sorted(cluster.nodes, key=lambda s: -s.cpu_hz)
    specs: List[NodeSpec] = list(cluster.nodes)[:nparts]
    for part, spec in zip(order_parts, order_specs):
        specs[part] = spec
    return ClusterSpec(nodes=specs, link=cluster.link)


def cluster_signature(cluster: ClusterSpec) -> dict:
    """JSON-stable encoding of a cluster — the execution-cache key part."""
    return {
        "nodes": [
            (n.cpu_hz, n.mem_bytes, n.battery_j) for n in cluster.nodes
        ],
        "link": (cluster.link.latency_s, cluster.link.bandwidth_Bps),
    }


# ---------------------------------------------------------------------------
# the Experiment façade
# ---------------------------------------------------------------------------
@dataclass
class ExperimentResult:
    """Typed outcome of :meth:`Experiment.run`.

    ``sequential_s`` / ``distributed_s`` are commensurable: virtual seconds
    against virtual seconds on the simulator, measured wall seconds against
    wall seconds on real backends (the Figure 11 discipline)."""

    config: ExperimentConfig
    plan: DistributionPlan
    sequential: SequentialResult
    distributed: DistributedResult
    rewrite_stats: RewriteStats
    sequential_s: float
    distributed_s: float
    speedup_pct: float
    report: Report

    @property
    def messages(self) -> int:
        return self.distributed.total_messages

    @property
    def bytes(self) -> int:
        return self.distributed.total_bytes

    @property
    def node_stats(self):
        return self.distributed.node_stats

    @property
    def stdout(self) -> List[str]:
        return self.distributed.stdout


class Experiment:
    """One experiment configuration through the whole infrastructure.

    Stage methods compose and memoize: each returns a typed artifact,
    caches it on the instance *and* in the content-addressed stage cache
    (shared with every other experiment/pipeline on the same cache), and
    transparently runs its prerequisites first.  Every stage emits
    ``on_stage_start`` / ``on_stage_end`` events with wall-clock timings
    and cache-hit flags; :meth:`report` assembles the structured record.

    >>> exp = Experiment.from_options("crypt", backend="thread")
    >>> result = exp.run()
    >>> print(result.speedup_pct, result.report.to_json())
    """

    def __init__(
        self,
        config: ExperimentConfig,
        cache: Optional[StageCache] = None,
        observers: Iterable[Observer] = (),
    ) -> None:
        self.config = config
        self.cache = cache if cache is not None else default_cache()
        self.events = EventBus(config.label())
        self.recorder = StageRecorder()
        self.events.subscribe(self.recorder)
        for observer in observers:
            self.events.subscribe(observer)
        self._artifacts: Dict[str, Any] = {}
        self._result: Optional[ExperimentResult] = None

    @classmethod
    def from_options(
        cls,
        workload: str,
        cache: Optional[StageCache] = None,
        observers: Iterable[Observer] = (),
        **options: Any,
    ) -> "Experiment":
        """``Experiment.from_options("crypt", method="kl", backend="thread")``
        — see :meth:`ExperimentConfig.from_options` for the knobs."""
        return cls(
            ExperimentConfig.from_options(workload, **options),
            cache=cache,
            observers=observers,
        )

    # ------------------------------------------------------------- plumbing
    def subscribe(self, observer: Observer) -> Observer:
        """Attach an event observer (see :mod:`repro.api.events`)."""
        return self.events.subscribe(observer)

    def _stage(self, name: str, thunk: Callable[[], Tuple[Any, bool]]) -> Any:
        """Run one stage exactly once: instance-memoized, event-wrapped."""
        if name in self._artifacts:
            return self._artifacts[name]
        self.events.stage_start(name)
        t0 = time.perf_counter()
        value, cache_hit = thunk()
        self.events.stage_end(name, time.perf_counter() - t0, cache_hit)
        self._artifacts[name] = value
        return value

    def cluster(self) -> ClusterSpec:
        """The concrete cluster this experiment runs on (not a stage —
        construction is trivial and deterministic)."""
        if "cluster" not in self._artifacts:
            self._artifacts["cluster"] = self.config.cluster.build(
                self.config.partition.nparts
            )
        return self._artifacts["cluster"]

    # ------------------------------------------------------- stage methods
    def compile(self) -> CompiledWorkload:
        """MJ source → verified bytecode → loaded program."""
        w = self.config.workload
        return self._stage(
            "compile",
            lambda: self.cache.get_or_build_info(*_compile_entry(w.name, w.size)),
        )

    def analyze(self) -> AnalysisResult:
        """RTA call graph, CRG, object set, ODG + reference partitions."""
        work = self.compile()
        p = self.config.partition
        return self._stage(
            "analyze",
            lambda: self.cache.get_or_build_info(
                *_analysis_entry(work, p.nparts, p.method)
            ),
        )

    def partition(self) -> PartitionResult:
        """The placement partition of the configured dependence graph
        (CRG at class granularity, ODG at object granularity), using the
        plan's capacity-proportional targets."""
        work = self.compile()
        analysis = self.analyze()
        p = self.config.partition
        return self._stage(
            "partition",
            lambda: self.cache.get_or_build_info(
                *_partition_entry(
                    work, analysis, p.nparts, p.granularity, p.method,
                    self.cluster(),
                )
            ),
        )

    def plan(self) -> DistributionPlan:
        """Distribution plan: a home node for every class/object."""
        work = self.compile()
        p = self.config.partition
        return self._stage(
            "plan",
            lambda: self.cache.get_or_build_info(
                *_plan_entry(
                    work, p.nparts, p.granularity, p.method, self.cluster(),
                    p.pin_main, p.force_distribution,
                )
            ),
        )

    def rewrite(self) -> RewriteArtifact:
        """Communication-rewritten program (uncached; Table 2 times it)."""
        work = self.compile()
        plan = self.plan()
        return self._stage(
            "rewrite", lambda: (rewrite_workload(work, plan), False)
        )

    def baseline(self) -> SequentialResult:
        """Centralized baseline on the slowest cluster machine."""
        work = self.compile()
        node = min(self.cluster().nodes, key=lambda n: n.cpu_hz)
        entry = _sequential_entry(work, node, self.config.backend.engine)
        return self._stage(
            "sequential",
            lambda: self.cache.get_or_build_info(*entry),
        )

    def replicas(self) -> Optional[Dict[str, tuple]]:
        """The quorum replica map for this experiment (class -> node tuple,
        primary first), or None when replication is off or nothing is safe
        to replicate.  Derived deterministically from the plan + rewritten
        program, so it needs no stage cache of its own."""
        factor = self.config.partition.replication
        if factor <= 1:
            return None
        from repro.distgen.quorum import plan_replication

        rmap = plan_replication(
            self.plan(),
            self.rewrite().program,
            self.cluster().size,
            factor,
        )
        return rmap or None

    def run(self) -> ExperimentResult:
        """The full chain: baseline, plan, rewrite, distributed execution,
        output-equivalence check, speedup — one typed result + report."""
        if self._result is not None:
            return self._result
        work = self.compile()
        cluster = self.cluster()
        seq = self.baseline()
        plan = self.plan()
        rewritten = self.rewrite()
        backend = self.config.backend

        replicas = self.replicas()

        def execute() -> DistributedResult:
            return DistributedExecutor(
                rewritten.program, plan, cluster,
                async_writes=backend.async_writes, backend=backend.name,
                faults=self.config.cluster.faults, replicas=replicas,
                engine=backend.engine,
                recovery=self.config.cluster.recovery,
            ).run(max_events=backend.max_events)

        if backend.is_virtual:
            # only the simulator is deterministic; wall-clock backends must
            # really execute every time
            dist = self._stage(
                "execute",
                lambda: self.cache.get_or_build_info(
                    "execute",
                    {
                        "source_fp": work.source_fp,
                        "config": self.config.to_dict(),
                        "cluster": cluster_signature(cluster),
                    },
                    execute,
                ),
            )
        else:
            dist = self._stage("execute", lambda: (execute(), False))

        if (
            not dist.degraded
            and dist.stdout and seq.stdout
            and dist.stdout[-1] != seq.stdout[-1]
        ):
            # a degraded run legitimately produced partial output — the
            # divergence check only applies to fault-free completions.
            # A *recovered* run (crashes masked by the recovery tier) is
            # not degraded, so it is held to full output equality: that is
            # the recovery contract.
            raise ExperimentError(
                f"{self.config.label()}: distributed output diverged: "
                f"{seq.stdout[-1]!r} vs {dist.stdout[-1]!r}"
            )
        # keep the ratio commensurable: virtual/virtual on the simulator,
        # measured wall/wall on real backends
        seq_s = (
            seq.exec_time_s if backend.is_virtual else max(seq.wall_time_s, 1e-9)
        )
        self._result = ExperimentResult(
            config=self.config,
            plan=plan,
            sequential=seq,
            distributed=dist,
            rewrite_stats=rewritten.stats,
            sequential_s=seq_s,
            distributed_s=dist.makespan_s,
            speedup_pct=100.0 * seq_s / max(dist.makespan_s, 1e-9),
            report=self.report(),
        )
        return self._result

    # -------------------------------------------------------- conformance
    def conformance(self, deep: bool = False):
        """Differentially verify this experiment's equivalence claims: the
        fast VM path against the per-step reference oracle on its workload,
        and the configured distributed backend against the sequential
        baseline (stdout byte-identity, result equality, NodeStats sanity).
        With ``deep=True`` the simulator execution is additionally compared
        byte-for-byte between VM engines.

        Returns a :class:`repro.testing.oracle.ConformanceOutcome`; an
        empty ``divergences`` list means the claims hold for this
        configuration.  This is the programmatic face of ``repro fuzz`` —
        same oracle, one hand-picked scenario instead of generated ones."""
        from repro.testing.oracle import check_experiment

        return check_experiment(self, deep=deep)

    # -------------------------------------------------------------- report
    def report(self) -> Report:
        """Structured record of everything run so far (complete after
        :meth:`run`); serializes to JSON via :meth:`Report.to_json`."""
        from dataclasses import asdict

        stages = [
            StageTiming(e.stage, e.elapsed_s, bool(e.cache_hit))
            for e in self.recorder.stages
        ]
        report = Report(
            config=self.config.to_dict(),
            stages=stages,
            cache_hits=sum(1 for t in stages if t.cache_hit),
            cache_misses=sum(1 for t in stages if not t.cache_hit),
        )
        plan = self._artifacts.get("plan")
        if plan is not None:
            report.partition = {
                "nparts": plan.nparts,
                "method": plan.method,
                "granularity": plan.granularity,
                "edgecut": plan.edgecut,
                "main_partition": plan.main_partition,
            }
        seq = self._artifacts.get("sequential")
        dist = self._artifacts.get("execute")
        report.replication = self.config.partition.replication
        report.vm_engine = self.config.backend.engine
        jit: Dict[str, int] = {}
        for res in (seq, dist):
            for key, value in (getattr(res, "jit", None) or {}).items():
                jit[key] = jit.get(key, 0) + value
        if seq is not None or dist is not None:
            report.jit = jit
        if seq is not None and dist is not None:
            seq_s = (
                seq.exec_time_s
                if self.config.backend.is_virtual
                else max(seq.wall_time_s, 1e-9)
            )
            report.sequential_s = seq_s
            report.distributed_s = dist.makespan_s
            report.speedup_pct = 100.0 * seq_s / max(dist.makespan_s, 1e-9)
            report.messages = dist.total_messages
            report.bytes = dist.total_bytes
            report.node_stats = [asdict(ns) for ns in dist.node_stats]
            report.faults = [
                f if isinstance(f, dict) else f.to_dict() for f in dist.faults
            ]
            report.degraded = dist.degraded
            report.recovered = [
                f if isinstance(f, dict) else f.to_dict()
                for f in (getattr(dist, "recovered", None) or [])
            ]
            report.checkpoint_overhead_cycles = getattr(
                dist, "checkpoint_overhead_cycles", 0
            )
            report.recovery_cycles = getattr(dist, "recovery_cycles", 0)
            from repro.runtime.backend import latency_summary

            served = sum(ns.requests_served for ns in dist.node_stats)
            report.throughput_rps = served / max(dist.makespan_s, 1e-9)
            lat = latency_summary(getattr(dist, "latency_s", None))
            report.latency_count = lat["latency_count"]
            report.latency_p50_ms = lat["latency_p50_ms"]
            report.latency_p95_ms = lat["latency_p95_ms"]
            report.latency_p99_ms = lat["latency_p99_ms"]
            if self.config.partition.replication > 1:
                from repro.distgen.quorum import plan_availability

                report.availability = plan_availability(self.replicas() or {})
        elif seq is not None:
            report.sequential_s = seq.exec_time_s
            report.node_stats = [asdict(ns) for ns in seq.node_stats]
        rewritten = self._artifacts.get("rewrite")
        if rewritten is not None:
            report.rewrites = rewritten.stats.total
        return report
