"""Typed experiment configuration: frozen dataclasses with validation and
dict/JSON round-tripping.

Every knob the pipeline, sweep and CLI used to pass as ad-hoc kwargs lives
in exactly one place here:

* :class:`WorkloadSpec`     — which program, at which input size;
* :class:`PartitionConfig`  — partitioner, k, granularity, main pinning;
* :class:`ClusterConfig`    — node count and network preset;
* :class:`BackendConfig`    — runtime backend and execution limits;
* :class:`ExperimentConfig` — the composition of all four.

Validation happens eagerly in ``__post_init__``: unknown plugin names
(workload, partitioner, backend, network) raise
:class:`~repro.errors.UnknownPluginError` with a did-you-mean suggestion,
bad field values raise :class:`~repro.errors.ConfigError`.  Round-tripping
is lossless: ``Cfg.from_dict(cfg.to_dict()) == cfg`` and likewise via JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, ClassVar, Dict, Optional

from repro.errors import ConfigError

__all__ = [
    "WorkloadSpec",
    "PartitionConfig",
    "ClusterConfig",
    "BackendConfig",
    "ExperimentConfig",
]

#: workload input sizes the generators understand
SIZES = ("test", "bench", "large")

#: distribution granularities the planner understands
GRANULARITIES = ("class", "object")


@dataclass(frozen=True)
class _Config:
    """Shared dict/JSON round-trip machinery for the flat config types."""

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "_Config":
        if not isinstance(data, dict):
            raise ConfigError(
                f"{cls.__name__}.from_dict needs a dict, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown {cls.__name__} field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        return cls(**data)

    def to_json(self, **dumps_kwargs: Any) -> str:
        dumps_kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "_Config":
        return cls.from_dict(json.loads(text))

    def replace(self, **changes: Any) -> "_Config":
        """A modified copy (configs are frozen)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class WorkloadSpec(_Config):
    """Which benchmark program to run, at which input size."""

    name: str
    size: str = "test"

    def __post_init__(self) -> None:
        from repro.workloads import WORKLOADS

        WORKLOADS.get(self.name)  # UnknownPluginError on bad names
        if self.size not in SIZES:
            raise ConfigError(
                f"unknown workload size {self.size!r}; pick one of {SIZES}"
            )

    def source(self) -> str:
        """The MJ source text this spec denotes."""
        from repro.workloads import WORKLOADS

        return WORKLOADS.get(self.name).source(self.size)


@dataclass(frozen=True)
class PartitionConfig(_Config):
    """How the dependence graphs are split into placement partitions."""

    method: str = "multilevel"
    nparts: int = 2
    granularity: str = "class"
    #: pin ``main`` to the slowest machine (the paper's "computation node")
    pin_main: bool = True
    #: copies per replication-safe dependent object (1 = no replication;
    #: >= 2 enables the quorum protocol of repro.distgen.quorum)
    replication: int = 1
    #: service deployment: force a genuine distribution even when the
    #: makespan objective would co-locate everything (a request-serving
    #: workload wants the service on a remote node, like the paper's
    #: service/computation testbed split)
    force_distribution: bool = False

    def __post_init__(self) -> None:
        from repro.partition.api import PARTITIONERS

        PARTITIONERS.get(self.method)
        if self.nparts < 1:
            raise ConfigError(f"nparts must be >= 1, got {self.nparts}")
        if self.granularity not in GRANULARITIES:
            raise ConfigError(
                f"unknown granularity {self.granularity!r}; "
                f"pick one of {GRANULARITIES}"
            )
        if self.replication < 1:
            raise ConfigError(
                f"replication must be >= 1, got {self.replication}"
            )


@dataclass(frozen=True)
class ClusterConfig(_Config):
    """The machines and the link between them.

    ``nodes is None`` means "as many nodes as the partition config needs":
    the paper's heterogeneous two-node testbed for k == 2, a homogeneous
    cluster otherwise — exactly the sweep's historical behavior.

    ``speeds`` makes the cluster explicitly heterogeneous: one ``cpu_hz``
    per node (the scenario generator's degenerate 1-node and wide 16-node
    topologies use this).  When given, it fixes the node count; ``nodes``
    may be omitted or must agree.  ``mem_mb`` bounds every node's memory.
    """

    nodes: Optional[int] = None
    network: str = "ethernet_100m"
    #: explicit per-node CPU speeds in Hz (heterogeneous clusters); None
    #: keeps the historical paper-testbed/homogeneous shapes
    speeds: Optional[tuple] = None
    #: per-node memory bound in MB (None = the NodeSpec default)
    mem_mb: Optional[int] = None
    #: seeded fault plan injected at runtime (None = fault-free); accepts a
    #: FaultPlan or its dict form and normalizes to the typed plan
    faults: Optional[Any] = None
    #: recovery plan: checkpointing + heartbeat leases + object migration
    #: (None = degradation only); accepts a RecoveryPlan or its dict form
    recovery: Optional[Any] = None
    #: ``host:port`` endpoint per node for socket transports (the tcp
    #: backend); None = localhost with OS-assigned ephemeral ports
    roster: Optional[tuple] = None

    def __post_init__(self) -> None:
        from repro.runtime.checkpoint import RecoveryPlan
        from repro.runtime.cluster import NETWORKS
        from repro.runtime.faults import FaultPlan

        NETWORKS.get(self.network)
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            if not isinstance(self.faults, dict):
                raise ConfigError(
                    "ClusterConfig.faults must be a FaultPlan or dict, "
                    f"got {type(self.faults).__name__}"
                )
            object.__setattr__(self, "faults", FaultPlan.from_dict(self.faults))
        if self.recovery is not None and not isinstance(
            self.recovery, RecoveryPlan
        ):
            if not isinstance(self.recovery, dict):
                raise ConfigError(
                    "ClusterConfig.recovery must be a RecoveryPlan or dict, "
                    f"got {type(self.recovery).__name__}"
                )
            object.__setattr__(
                self, "recovery", RecoveryPlan.from_dict(self.recovery)
            )
        if self.speeds is not None:
            # normalize the JSON round-trip (lists) to the hashable tuple
            object.__setattr__(
                self, "speeds", tuple(float(s) for s in self.speeds)
            )
            if not self.speeds:
                raise ConfigError("speeds must name at least one node")
            if any(s <= 0 for s in self.speeds):
                raise ConfigError(f"speeds must be positive, got {self.speeds}")
            if self.nodes is not None and self.nodes != len(self.speeds):
                raise ConfigError(
                    f"nodes={self.nodes} disagrees with "
                    f"{len(self.speeds)} speeds"
                )
        if self.nodes is not None and self.nodes < 1:
            raise ConfigError(f"cluster needs >= 1 node, got {self.nodes}")
        if self.mem_mb is not None and self.mem_mb < 1:
            raise ConfigError(f"mem_mb must be >= 1, got {self.mem_mb}")
        if self.roster is not None:
            # normalize the JSON round-trip (lists) to the hashable tuple
            object.__setattr__(
                self, "roster", tuple(str(e) for e in self.roster)
            )
            for entry in self.roster:
                host, sep, port = entry.rpartition(":")
                if not sep or not host or not port.isdigit():
                    raise ConfigError(
                        f"roster entry {entry!r} is not host:port"
                    )
            pinned = self.size
            if pinned is not None and len(self.roster) != pinned:
                raise ConfigError(
                    f"roster names {len(self.roster)} endpoints for "
                    f"{pinned} nodes"
                )

    def to_dict(self) -> Dict[str, Any]:
        d = super().to_dict()
        if self.faults is not None:
            d["faults"] = self.faults.to_dict()
        if self.recovery is not None:
            d["recovery"] = self.recovery.to_dict()
        return d

    @property
    def size(self) -> Optional[int]:
        """Node count when the config pins one (``nodes`` or ``speeds``)."""
        if self.speeds is not None:
            return len(self.speeds)
        return self.nodes

    def build(self, nparts: int = 2):
        """Materialize the :class:`~repro.runtime.cluster.ClusterSpec`."""
        from repro.runtime.cluster import (
            MB,
            ClusterSpec,
            NETWORKS,
            NodeSpec,
            homogeneous,
            paper_testbed,
        )

        link = NETWORKS.get(self.network)()
        roster = list(self.roster) if self.roster is not None else None
        if self.speeds is not None:
            mem = (self.mem_mb if self.mem_mb is not None else 512) * MB
            return ClusterSpec(
                nodes=[
                    NodeSpec(f"node{i}", hz, mem_bytes=mem)
                    for i, hz in enumerate(self.speeds)
                ],
                link=link,
                roster=roster,
            )
        size = self.nodes if self.nodes is not None else nparts
        if size == 2:
            base = paper_testbed()
            cluster = ClusterSpec(nodes=list(base.nodes), link=link,
                                  roster=roster)
        else:
            cluster = homogeneous(max(size, 1), link=link)
            if roster is not None:
                # re-construct so ClusterSpec validates roster vs node count
                cluster = ClusterSpec(
                    nodes=cluster.nodes, link=link, roster=roster
                )
        if self.mem_mb is not None:
            from dataclasses import replace as _replace

            cluster.nodes = [
                _replace(n, mem_bytes=self.mem_mb * MB) for n in cluster.nodes
            ]
        return cluster


@dataclass(frozen=True)
class BackendConfig(_Config):
    """Which runtime executes the distributed plan, and its limits."""

    name: str = "sim"
    #: paper §4.2: fire-and-forget remote writes (FIFO links keep
    #: read-after-write consistent)
    async_writes: bool = False
    #: scheduler/driver event bound (global for the simulator, per node for
    #: wall-clock backends)
    max_events: int = 200_000_000
    #: VM execution tier for every node machine: ``"default"`` inherits the
    #: ambient engine (``REPRO_VM_ENGINE``, normally the compiled tier), or
    #: pin one of ``reference`` / ``fast`` / ``compiled`` explicitly — all
    #: three are bit-identical in cycles, NodeStats and output
    engine: str = "default"

    def __post_init__(self) -> None:
        from repro.runtime.backend import BACKENDS
        from repro.vm.interpreter import ENGINES

        BACKENDS.get(self.name)
        if self.max_events < 1:
            raise ConfigError(f"max_events must be >= 1, got {self.max_events}")
        if self.engine != "default" and self.engine not in ENGINES:
            raise ConfigError(
                f"unknown vm engine {self.engine!r}; pick one of "
                f"{('default',) + ENGINES}"
            )

    @property
    def is_virtual(self) -> bool:
        """True for the deterministic discrete-event simulator — virtual
        times, memoizable executions."""
        return self.name == "sim"


@dataclass(frozen=True)
class ExperimentConfig(_Config):
    """One fully specified experiment: workload × partition × cluster ×
    backend."""

    workload: WorkloadSpec
    partition: PartitionConfig = field(default_factory=PartitionConfig)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    backend: BackendConfig = field(default_factory=BackendConfig)

    #: nested field name -> config class, used by the round-trip machinery
    _NESTED: ClassVar[Dict[str, type]] = {
        "workload": WorkloadSpec,
        "partition": PartitionConfig,
        "cluster": ClusterConfig,
        "backend": BackendConfig,
    }

    def __post_init__(self) -> None:
        for name, cls in self._NESTED.items():
            value = getattr(self, name)
            if not isinstance(value, cls):
                raise ConfigError(
                    f"ExperimentConfig.{name} must be a {cls.__name__}, "
                    f"got {type(value).__name__}"
                )
        if (
            self.cluster.size is not None
            and self.cluster.size < self.partition.nparts
        ):
            raise ConfigError(
                f"plan needs {self.partition.nparts} nodes, cluster config "
                f"has {self.cluster.size}"
            )

    @classmethod
    def from_options(
        cls,
        workload: str,
        size: str = "test",
        method: str = "multilevel",
        nparts: int = 2,
        granularity: str = "class",
        network: str = "ethernet_100m",
        backend: str = "sim",
        nodes: Optional[int] = None,
        pin_main: bool = True,
        async_writes: bool = False,
        faults: Optional[Any] = None,
        recovery: Optional[Any] = None,
        replication: int = 1,
        engine: str = "default",
        roster: Optional[tuple] = None,
        force_distribution: bool = False,
    ) -> "ExperimentConfig":
        """Flat-kwargs convenience constructor — the shape the CLI and the
        sweep grid speak."""
        return cls(
            workload=WorkloadSpec(name=workload, size=size),
            partition=PartitionConfig(
                method=method, nparts=nparts, granularity=granularity,
                pin_main=pin_main, replication=replication,
                force_distribution=force_distribution,
            ),
            cluster=ClusterConfig(
                nodes=nodes, network=network, faults=faults,
                recovery=recovery, roster=roster,
            ),
            backend=BackendConfig(
                name=backend, async_writes=async_writes, engine=engine
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {name: getattr(self, name).to_dict() for name in self._NESTED}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentConfig":
        if not isinstance(data, dict):
            raise ConfigError(
                f"ExperimentConfig.from_dict needs a dict, "
                f"got {type(data).__name__}"
            )
        unknown = sorted(set(data) - set(cls._NESTED))
        if unknown:
            raise ConfigError(
                f"unknown ExperimentConfig field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(cls._NESTED))})"
            )
        if "workload" not in data:
            raise ConfigError("ExperimentConfig needs a 'workload' section")
        kwargs = {
            name: nested_cls.from_dict(data[name])
            for name, nested_cls in cls._NESTED.items()
            if name in data
        }
        return cls(**kwargs)

    def label(self) -> str:
        """Compact human identifier (sweep tables, event streams)."""
        return (
            f"{self.workload.name}/{self.partition.method}"
            f"/k{self.partition.nparts}/{self.cluster.network}"
            f"/{self.backend.name}"
        )
