"""Stage lifecycle events: the observer hook replacing scattered
``time.time()`` bookkeeping.

An :class:`Experiment <repro.api.experiment.Experiment>` emits one
``on_stage_start`` / ``on_stage_end`` pair around every stage it executes
(compile, analyze, partition, plan, sequential, rewrite, execute).  End
events carry the measured wall-clock duration and whether the artifact came
out of the stage cache.  Observers subscribe through :class:`EventBus`;
:class:`StageRecorder` is the built-in observer that accumulates the
per-stage timings a :class:`~repro.api.report.Report` serializes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Union

__all__ = ["StageEvent", "ExperimentObserver", "EventBus", "StageRecorder"]


@dataclass(frozen=True)
class StageEvent:
    """One edge of a stage's lifecycle."""

    stage: str              #: "compile", "analyze", "partition", ...
    phase: str              #: "start" | "end"
    experiment: str         #: the owning experiment's label
    seq: int                #: 0-based emission index within the experiment
    elapsed_s: Optional[float] = None   #: end events: wall-clock duration
    cache_hit: Optional[bool] = None    #: end events: served from StageCache?


class ExperimentObserver:
    """Subclass-and-override observer interface.  Both hooks default to
    no-ops so observers implement only what they need."""

    def on_stage_start(self, event: StageEvent) -> None:  # pragma: no cover
        pass

    def on_stage_end(self, event: StageEvent) -> None:  # pragma: no cover
        pass


#: observers may also be plain callables taking one StageEvent
Observer = Union[ExperimentObserver, Callable[[StageEvent], None]]


class EventBus:
    """Ordered fan-out of stage events to subscribed observers.

    Observers are notified synchronously, in subscription order; an
    observer added mid-run sees only subsequent events.
    """

    def __init__(self, experiment: str = "") -> None:
        self.experiment = experiment
        self._observers: List[Observer] = []
        self._seq = 0

    def subscribe(self, observer: Observer) -> Observer:
        self._observers.append(observer)
        return observer

    def unsubscribe(self, observer: Observer) -> None:
        self._observers.remove(observer)

    # ------------------------------------------------------------- emission
    def _emit(self, event: StageEvent) -> None:
        for observer in list(self._observers):
            if isinstance(observer, ExperimentObserver):
                hook = (
                    observer.on_stage_start
                    if event.phase == "start"
                    else observer.on_stage_end
                )
                hook(event)
            else:
                observer(event)

    def stage_start(self, stage: str) -> StageEvent:
        event = StageEvent(
            stage=stage, phase="start", experiment=self.experiment,
            seq=self._seq,
        )
        self._seq += 1
        self._emit(event)
        return event

    def stage_end(self, stage: str, elapsed_s: float, cache_hit: bool) -> StageEvent:
        event = StageEvent(
            stage=stage, phase="end", experiment=self.experiment,
            seq=self._seq, elapsed_s=elapsed_s, cache_hit=cache_hit,
        )
        self._seq += 1
        self._emit(event)
        return event


class StageRecorder(ExperimentObserver):
    """Built-in observer: keeps every event in order and exposes the
    end-event view the report serializes."""

    def __init__(self) -> None:
        self.events: List[StageEvent] = []

    def on_stage_start(self, event: StageEvent) -> None:
        self.events.append(event)

    def on_stage_end(self, event: StageEvent) -> None:
        self.events.append(event)

    @property
    def stages(self) -> List[StageEvent]:
        """End events only, in completion order."""
        return [e for e in self.events if e.phase == "end"]
