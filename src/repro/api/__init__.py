"""``repro.api`` — the typed, composable public entry point.

Everything a programmatic consumer needs, in one namespace:

* **Configs** — :class:`WorkloadSpec`, :class:`PartitionConfig`,
  :class:`ClusterConfig`, :class:`BackendConfig`, :class:`ExperimentConfig`:
  frozen dataclasses with validation and dict/JSON round-tripping.
* **Experiment** — composable stage methods ``compile() → analyze() →
  partition() → plan() → run()``, each returning a typed artifact and each
  memoized through the content-addressed stage cache.
* **Registry** — the one plugin-lookup abstraction behind partitioners,
  runtime backends, workloads and network presets, with a uniform
  :class:`~repro.errors.UnknownPluginError` (did-you-mean included).
* **Events** — ``on_stage_start`` / ``on_stage_end`` observer hooks with
  per-stage timings and cache-hit flags.
* **Report** — a structured, JSON-serializable record of one experiment:
  stage timings, partition quality, per-node statistics, speedup.

Quickstart::

    from repro.api import Experiment

    exp = Experiment.from_options("crypt", backend="thread")
    result = exp.run()
    print(result.speedup_pct, result.report.to_json())

Submodules import lazily (PEP 562) so ``import repro.api`` stays cheap and
the plugin registries can live next to their plugins without import cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

#: attribute name -> defining submodule, resolved lazily on first access
_EXPORTS = {
    # registry
    "Registry": "repro.api.registry",
    # errors (re-exported for one-stop imports)
    "UnknownPluginError": "repro.errors",
    "ConfigError": "repro.errors",
    "ExperimentError": "repro.errors",
    # configs
    "WorkloadSpec": "repro.api.config",
    "PartitionConfig": "repro.api.config",
    "ClusterConfig": "repro.api.config",
    "BackendConfig": "repro.api.config",
    "ExperimentConfig": "repro.api.config",
    # events
    "StageEvent": "repro.api.events",
    "EventBus": "repro.api.events",
    "ExperimentObserver": "repro.api.events",
    "StageRecorder": "repro.api.events",
    # report
    "StageTiming": "repro.api.report",
    "Report": "repro.api.report",
    # experiment + artifacts
    "Experiment": "repro.api.experiment",
    "ExperimentResult": "repro.api.experiment",
    "RewriteArtifact": "repro.api.experiment",
    "CompiledWorkload": "repro.api.experiment",
    "AnalysisResult": "repro.api.experiment",
    "AnalysisTimings": "repro.api.experiment",
    "compile_workload": "repro.api.experiment",
    # conformance (the repro.testing oracle behind Experiment.conformance)
    "ConformanceOutcome": "repro.testing.oracle",
    "Divergence": "repro.testing.oracle",
    # plugin registries
    "PARTITIONERS": "repro.partition.api",
    "BACKENDS": "repro.runtime.backend",
    "WORKLOADS": "repro.workloads",
    "NETWORKS": "repro.runtime.cluster",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return __all__


if TYPE_CHECKING:  # pragma: no cover - static-analysis imports only
    from repro.api.config import (  # noqa: F401
        BackendConfig,
        ClusterConfig,
        ExperimentConfig,
        PartitionConfig,
        WorkloadSpec,
    )
    from repro.api.events import (  # noqa: F401
        EventBus,
        ExperimentObserver,
        StageEvent,
        StageRecorder,
    )
    from repro.api.experiment import (  # noqa: F401
        AnalysisResult,
        AnalysisTimings,
        CompiledWorkload,
        Experiment,
        ExperimentResult,
        RewriteArtifact,
        compile_workload,
    )
    from repro.api.registry import Registry  # noqa: F401
    from repro.api.report import Report, StageTiming  # noqa: F401
    from repro.errors import (  # noqa: F401
        ConfigError,
        ExperimentError,
        UnknownPluginError,
    )
