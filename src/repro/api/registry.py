"""One registry abstraction for every pluggable axis of the infrastructure.

Before this module existed the repo grew three divergent lookup mechanisms:
partition methods were an ``if/elif`` chain behind a ``METHODS`` tuple
(:mod:`repro.partition.api`), runtime backends a module-private dict with
bespoke ``register_backend``/``create_backend`` helpers
(:mod:`repro.runtime.backend`), and workloads a plain dict with its own
``get`` (:mod:`repro.workloads`) — each with a different unknown-name error.

:class:`Registry` consolidates them: uniform ``register`` / ``names`` /
``get``, a shared :class:`~repro.errors.UnknownPluginError` with a
did-you-mean suggestion on lookup failure, and the full ``Mapping``
protocol so existing dict-style consumers (``WORKLOADS[name]``,
``sorted(WORKLOADS)``, ``name in WORKLOADS``) keep working unchanged.
"""

from __future__ import annotations

import difflib
import threading
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, TypeVar

from repro.errors import ReproError, UnknownPluginError

T = TypeVar("T")

__all__ = ["Registry", "UnknownPluginError"]


class Registry(Mapping[str, T]):
    """A named map of plugins with uniform registration and error paths.

    ``kind`` is the human noun used in error messages ("workload",
    "runtime backend", "partition method", ...).  Lookups of unknown names
    raise :class:`UnknownPluginError` carrying the sorted list of available
    names plus a closest-match suggestion.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._items: Dict[str, T] = {}
        self._lock = threading.RLock()
        #: optional hook letting the owner lazily populate the registry
        #: (the backend registry imports its builtin modules on first use)
        self._loader: Optional[Callable[[], None]] = None

    # -------------------------------------------------------------- loading
    def set_loader(self, loader: Callable[[], None]) -> None:
        """Install a one-shot populate hook run before the first lookup."""
        self._loader = loader

    def _ensure_loaded(self) -> None:
        loader, self._loader = self._loader, None
        if loader is not None:
            loader()

    # ---------------------------------------------------------- registration
    def register(
        self, name: str, obj: Optional[T] = None, *, override: bool = False
    ):
        """Register ``obj`` under ``name``; usable as a decorator when
        ``obj`` is omitted.  Re-registering an existing name requires
        ``override=True`` — silent replacement hides plugin collisions."""
        if obj is None:
            def decorator(value: T) -> T:
                self.register(name, value, override=override)
                return value
            return decorator
        with self._lock:
            if name in self._items and not override:
                raise ReproError(
                    f"{self.kind} {name!r} is already registered; pass "
                    f"override=True to replace it"
                )
            self._items[name] = obj
        return obj

    def unregister(self, name: str) -> T:
        """Remove and return the plugin registered under ``name``."""
        self._ensure_loaded()
        with self._lock:
            if name not in self._items:
                raise self._unknown(name)
            return self._items.pop(name)

    # --------------------------------------------------------------- lookup
    _MISSING = object()

    def get(self, name: str, default: Any = _MISSING) -> T:
        """The one sanctioned lookup: returns the plugin for ``name``.

        With no ``default``, an unknown name raises
        :class:`UnknownPluginError` with a did-you-mean suggestion — a
        deliberate deviation from ``Mapping.get`` (plugin lookups should
        fail loudly).  Pass ``default`` explicitly for the dict-style
        ``get(name, None)`` idiom."""
        self._ensure_loaded()
        with self._lock:
            try:
                return self._items[name]
            except KeyError:
                if default is not self._MISSING:
                    return default
                raise self._unknown(name) from None

    def names(self) -> List[str]:
        """Sorted registered names."""
        self._ensure_loaded()
        with self._lock:
            return sorted(self._items)

    def _unknown(self, name: str) -> UnknownPluginError:
        available = sorted(self._items)
        matches = difflib.get_close_matches(str(name), available, n=1, cutoff=0.5)
        return UnknownPluginError(
            self.kind, name, available, matches[0] if matches else None
        )

    # ------------------------------------------------------------- Mapping
    def __getitem__(self, name: str) -> T:
        return self.get(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_loaded()
        with self._lock:
            return len(self._items)

    def __contains__(self, name: Any) -> bool:
        self._ensure_loaded()
        with self._lock:
            return name in self._items

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Registry {self.kind}: {', '.join(self.names())}>"
